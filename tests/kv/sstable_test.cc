#include "kv/sstable.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "storage/disk.h"

#include "test_util.h"

namespace liquid::kv {
namespace {

std::vector<Entry> SortedEntries(int count, const std::string& value = "v") {
  std::vector<Entry> out;
  for (int i = 0; i < count; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06d", i);
    Entry e;
    e.key = buf;
    e.value = value + std::to_string(i);
    e.sequence = static_cast<uint64_t>(i + 1);
    out.push_back(std::move(e));
  }
  return out;
}

class SSTableTest : public ::testing::Test {
 protected:
  std::unique_ptr<SSTable> WriteAndOpen(const std::vector<Entry>& entries,
                                        SSTable::Options options = {}) {
    EXPECT_TRUE(SSTable::Write(&disk_, "t.sst", entries, options).ok());
    auto table = SSTable::Open(&disk_, "t.sst");
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    return std::move(table).value();
  }

  storage::MemDisk disk_;
};

TEST_F(SSTableTest, GetFindsEveryKey) {
  const auto entries = SortedEntries(500);
  auto table = WriteAndOpen(entries);
  EXPECT_EQ(table->entry_count(), 500u);
  for (const auto& entry : entries) {
    auto found = table->Get(entry.key);
    ASSERT_TRUE(found.ok()) << entry.key;
    EXPECT_EQ(found->value, entry.value);
    EXPECT_EQ(found->sequence, entry.sequence);
  }
}

TEST_F(SSTableTest, GetMissingIsNotFound) {
  auto table = WriteAndOpen(SortedEntries(100));
  EXPECT_TRUE(table->Get("nope").status().IsNotFound());
  EXPECT_TRUE(table->Get("key999999").status().IsNotFound());
  EXPECT_TRUE(table->Get("").status().IsNotFound());
}

TEST_F(SSTableTest, MinMaxKeys) {
  auto table = WriteAndOpen(SortedEntries(100));
  EXPECT_EQ(table->min_key(), "key000000");
  EXPECT_EQ(table->max_key(), "key000099");
}

TEST_F(SSTableTest, DeleteEntriesAreFoundAsDeletes) {
  std::vector<Entry> entries = SortedEntries(10);
  entries[3].type = EntryType::kDelete;
  auto table = WriteAndOpen(entries);
  auto found = table->Get(entries[3].key);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->type, EntryType::kDelete);
}

TEST_F(SSTableTest, SmallBlocksStillFindEverything) {
  SSTable::Options options;
  options.block_size = 64;  // Many blocks.
  const auto entries = SortedEntries(300);
  auto table = WriteAndOpen(entries, options);
  for (int i = 0; i < 300; i += 17) {
    auto found = table->Get(entries[i].key);
    ASSERT_TRUE(found.ok()) << i;
    EXPECT_EQ(found->value, entries[i].value);
  }
}

TEST_F(SSTableTest, IteratorVisitsAllInOrder) {
  const auto entries = SortedEntries(200);
  auto table = WriteAndOpen(entries);
  int i = 0;
  for (auto it = table->NewIterator(); it.Valid(); it.Next()) {
    ASSERT_LT(i, 200);
    EXPECT_EQ(it.entry().key, entries[i].key);
    EXPECT_EQ(it.entry().value, entries[i].value);
    ++i;
  }
  EXPECT_EQ(i, 200);
}

TEST_F(SSTableTest, IteratorSeek) {
  const auto entries = SortedEntries(100);
  auto table = WriteAndOpen(entries);
  auto it = table->NewIterator();
  it.Seek("key000050");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.entry().key, "key000050");

  it.Seek("key0000505");  // Between 50 and 51.
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.entry().key, "key000051");

  it.Seek("zzz");
  EXPECT_FALSE(it.Valid());
}

TEST_F(SSTableTest, EmptyTable) {
  auto table = WriteAndOpen({});
  EXPECT_EQ(table->entry_count(), 0u);
  EXPECT_TRUE(table->Get("any").status().IsNotFound());
  auto it = table->NewIterator();
  EXPECT_FALSE(it.Valid());
}

TEST_F(SSTableTest, RejectsUnsortedEntries) {
  std::vector<Entry> bad;
  Entry a, b;
  a.key = "b";
  b.key = "a";
  bad.push_back(a);
  bad.push_back(b);
  EXPECT_TRUE(SSTable::Write(&disk_, "bad.sst", bad, {}).IsInvalidArgument());
}

TEST_F(SSTableTest, RejectsDuplicateKeys) {
  std::vector<Entry> bad(2);
  bad[0].key = bad[1].key = "same";
  EXPECT_TRUE(SSTable::Write(&disk_, "dup.sst", bad, {}).IsInvalidArgument());
}

TEST_F(SSTableTest, OpenCorruptFileFails) {
  auto file = disk_.OpenOrCreate("junk.sst");
  LIQUID_ASSERT_OK((*file)->Append("this is not a table"));
  EXPECT_TRUE(SSTable::Open(&disk_, "junk.sst").status().IsCorruption());
}

TEST_F(SSTableTest, OpenWithBadMagicFails) {
  ASSERT_TRUE(SSTable::Write(&disk_, "t.sst", SortedEntries(10), {}).ok());
  auto file = disk_.OpenOrCreate("t.sst");
  const uint64_t size = (*file)->Size();
  LIQUID_ASSERT_OK((*file)->Truncate(size - 8));
  LIQUID_ASSERT_OK((*file)->Append("XXXXXXXX"));  // Clobber the magic.
  EXPECT_TRUE(SSTable::Open(&disk_, "t.sst").status().IsCorruption());
}

TEST_F(SSTableTest, InvalidEntryTypeByteIsCorruption) {
  // One entry, key "a" / value "v": the type byte lives at file offset
  // 1 (keylen varint) + 1 (key) + 1 (vallen varint) + 1 (value) + 8 (seq).
  std::vector<Entry> entries(1);
  entries[0].key = "a";
  entries[0].value = "v";
  entries[0].sequence = 1;
  ASSERT_TRUE(SSTable::Write(&disk_, "t.sst", entries, {}).ok());

  auto file = disk_.OpenOrCreate("t.sst");
  std::string bytes;
  LIQUID_ASSERT_OK((*file)->ReadAt(0, (*file)->Size(), &bytes));
  bytes[12] = 0x07;  // Not a valid EntryType.
  LIQUID_ASSERT_OK((*file)->Truncate(0));
  LIQUID_ASSERT_OK((*file)->Append(bytes));

  // Open decodes the first entry (for min_key) and must reject the bogus
  // type byte instead of materializing an out-of-range enum.
  EXPECT_TRUE(SSTable::Open(&disk_, "t.sst").status().IsCorruption());
}

TEST_F(SSTableTest, WriteToNonEmptyFileFails) {
  auto file = disk_.OpenOrCreate("used.sst");
  LIQUID_ASSERT_OK((*file)->Append("existing"));
  EXPECT_TRUE(
      SSTable::Write(&disk_, "used.sst", SortedEntries(1), {}).IsAlreadyExists());
}

TEST_F(SSTableTest, LargeValues) {
  std::vector<Entry> entries(2);
  entries[0].key = "a";
  entries[0].value = std::string(100000, 'A');
  entries[1].key = "b";
  entries[1].value = std::string(50000, 'B');
  auto table = WriteAndOpen(entries);
  EXPECT_EQ(table->Get("a")->value.size(), 100000u);
  EXPECT_EQ(table->Get("b")->value.size(), 50000u);
}

}  // namespace
}  // namespace liquid::kv
