#include "kv/kv_store.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "storage/disk.h"

#include "test_util.h"

namespace liquid::kv {
namespace {

class KvStoreTest : public ::testing::Test {
 protected:
  std::unique_ptr<KvStore> OpenStore(KvOptions options = SmallOptions()) {
    auto store = KvStore::Open(&disk_, "db/", options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  }

  static KvOptions SmallOptions() {
    KvOptions options;
    options.memtable_bytes = 1024;  // Flush often to exercise the LSM.
    options.l0_compaction_trigger = 3;
    options.block_size = 256;
    return options;
  }

  storage::MemDisk disk_;
};

TEST_F(KvStoreTest, PutGetDelete) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("k", "v").ok());
  EXPECT_EQ(*store->Get("k"), "v");
  ASSERT_TRUE(store->Delete("k").ok());
  EXPECT_TRUE(store->Get("k").status().IsNotFound());
}

TEST_F(KvStoreTest, OverwriteKeepsLatest) {
  auto store = OpenStore();
  LIQUID_ASSERT_OK(store->Put("k", "v1"));
  LIQUID_ASSERT_OK(store->Put("k", "v2"));
  LIQUID_ASSERT_OK(store->Put("k", "v3"));
  EXPECT_EQ(*store->Get("k"), "v3");
}

TEST_F(KvStoreTest, GetMissingIsNotFound) {
  auto store = OpenStore();
  EXPECT_TRUE(store->Get("never").status().IsNotFound());
}

TEST_F(KvStoreTest, SurvivesFlushAndLookupFromTables) {
  auto store = OpenStore();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i), "val" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->memtable_size_bytes(), 0u);
  EXPECT_GT(store->l0_table_count() + store->l1_table_count(), 0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(*store->Get("key" + std::to_string(i)), "val" + std::to_string(i));
  }
}

TEST_F(KvStoreTest, DeleteShadowsOlderTableVersion) {
  auto store = OpenStore();
  LIQUID_ASSERT_OK(store->Put("k", "old"));
  LIQUID_ASSERT_OK(store->Flush());  // "old" now in a table.
  LIQUID_ASSERT_OK(store->Delete("k"));
  EXPECT_TRUE(store->Get("k").status().IsNotFound());
  LIQUID_ASSERT_OK(store->Flush());  // Tombstone now in a newer table.
  EXPECT_TRUE(store->Get("k").status().IsNotFound());
}

TEST_F(KvStoreTest, NewerTableShadowsOlder) {
  auto store = OpenStore();
  LIQUID_ASSERT_OK(store->Put("k", "v1"));
  LIQUID_ASSERT_OK(store->Flush());
  LIQUID_ASSERT_OK(store->Put("k", "v2"));
  LIQUID_ASSERT_OK(store->Flush());
  EXPECT_EQ(store->l0_table_count(), 2);
  EXPECT_EQ(*store->Get("k"), "v2");
}

TEST_F(KvStoreTest, CompactionMergesAndDropsTombstones) {
  auto store = OpenStore();
  for (int i = 0; i < 100; ++i) {
    LIQUID_ASSERT_OK(store->Put("k" + std::to_string(i), "v"));
  }
  LIQUID_ASSERT_OK(store->Flush());
  for (int i = 0; i < 50; ++i) {
    LIQUID_ASSERT_OK(store->Delete("k" + std::to_string(i)));
  }
  LIQUID_ASSERT_OK(store->Flush());
  ASSERT_TRUE(store->CompactAll().ok());
  EXPECT_EQ(store->l0_table_count(), 0);
  EXPECT_GE(store->l1_table_count(), 1);
  EXPECT_EQ(*store->CountLiveKeys(), 50);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(store->Get("k" + std::to_string(i)).status().IsNotFound());
  }
  for (int i = 50; i < 100; ++i) {
    EXPECT_TRUE(store->Get("k" + std::to_string(i)).ok());
  }
}

TEST_F(KvStoreTest, AutomaticFlushAndCompactionUnderLoad) {
  auto store = OpenStore();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        store->Put("key" + std::to_string(i % 300), std::string(32, 'x')).ok());
  }
  // The trigger keeps L0 bounded.
  EXPECT_LE(store->l0_table_count(), SmallOptions().l0_compaction_trigger);
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(store->Get("key" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(KvStoreTest, RecoveryFromWalAfterCrash) {
  {
    auto store = OpenStore();
    LIQUID_ASSERT_OK(store->Put("durable", "yes"));
    LIQUID_ASSERT_OK(store->Put("also", "this"));
    // No flush: data only in WAL + memtable. "Crash" = drop the object.
  }
  auto reopened = OpenStore();
  EXPECT_EQ(*reopened->Get("durable"), "yes");
  EXPECT_EQ(*reopened->Get("also"), "this");
}

TEST_F(KvStoreTest, RecoveryFromManifestAndTables) {
  {
    auto store = OpenStore();
    for (int i = 0; i < 500; ++i) {
      LIQUID_ASSERT_OK(store->Put("key" + std::to_string(i), "v" + std::to_string(i)));
    }
    LIQUID_ASSERT_OK(store->Flush());
    LIQUID_ASSERT_OK(store->CompactAll());
    LIQUID_ASSERT_OK(store->Put("in-wal", "tail"));
  }
  auto reopened = OpenStore();
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(*reopened->Get("key" + std::to_string(i)), "v" + std::to_string(i));
  }
  EXPECT_EQ(*reopened->Get("in-wal"), "tail");
}

TEST_F(KvStoreTest, DeleteSurvivesRecovery) {
  {
    auto store = OpenStore();
    LIQUID_ASSERT_OK(store->Put("k", "v"));
    LIQUID_ASSERT_OK(store->Flush());
    LIQUID_ASSERT_OK(store->Delete("k"));
  }
  auto reopened = OpenStore();
  EXPECT_TRUE(reopened->Get("k").status().IsNotFound());
}

TEST_F(KvStoreTest, ForEachVisitsLiveKeysInOrder) {
  auto store = OpenStore();
  LIQUID_ASSERT_OK(store->Put("c", "3"));
  LIQUID_ASSERT_OK(store->Put("a", "1"));
  LIQUID_ASSERT_OK(store->Put("b", "2"));
  LIQUID_ASSERT_OK(store->Put("d", "4"));
  LIQUID_ASSERT_OK(store->Delete("b"));
  LIQUID_ASSERT_OK(store->Flush());
  LIQUID_ASSERT_OK(store->Put("e", "5"));  // Mixed: tables + memtable.
  std::vector<std::string> keys;
  ASSERT_TRUE(store
                  ->ForEach([&](const Slice& key, const Slice&) {
                    keys.push_back(key.ToString());
                  })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "c", "d", "e"}));
}

TEST_F(KvStoreTest, RandomizedAgainstReferenceMap) {
  auto store = OpenStore();
  std::map<std::string, std::string> reference;
  Random rng(2024);
  for (int op = 0; op < 3000; ++op) {
    const std::string key = "k" + std::to_string(rng.Uniform(200));
    if (rng.Bernoulli(0.25)) {
      LIQUID_ASSERT_OK(store->Delete(key));
      reference.erase(key);
    } else {
      const std::string value = rng.Bytes(16);
      LIQUID_ASSERT_OK(store->Put(key, value));
      reference[key] = value;
    }
    if (rng.Bernoulli(0.01)) LIQUID_ASSERT_OK(store->Flush());
    if (rng.Bernoulli(0.005)) LIQUID_ASSERT_OK(store->CompactAll());
  }
  for (const auto& [key, value] : reference) {
    auto got = store->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  EXPECT_EQ(*store->CountLiveKeys(), static_cast<int64_t>(reference.size()));
}

TEST_F(KvStoreTest, RandomizedSurvivesReopen) {
  std::map<std::string, std::string> reference;
  {
    auto store = OpenStore();
    Random rng(99);
    for (int op = 0; op < 1500; ++op) {
      const std::string key = "k" + std::to_string(rng.Uniform(100));
      if (rng.Bernoulli(0.2)) {
        LIQUID_ASSERT_OK(store->Delete(key));
        reference.erase(key);
      } else {
        const std::string value = rng.Bytes(8);
        LIQUID_ASSERT_OK(store->Put(key, value));
        reference[key] = value;
      }
    }
  }
  auto reopened = OpenStore();
  for (const auto& [key, value] : reference) {
    auto got = reopened->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
}

TEST_F(KvStoreTest, RangeScanAcrossLevels) {
  auto store = OpenStore();
  // Spread keys over L1, L0 and the memtable.
  for (int i = 0; i < 30; ++i) {
    LIQUID_ASSERT_OK(store->Put("key" + std::string(1, static_cast<char>('a' + i % 26)), "v"));
  }
  LIQUID_ASSERT_OK(store->Flush());
  LIQUID_ASSERT_OK(store->CompactAll());  // -> L1
  LIQUID_ASSERT_OK(store->Put("keyb", "updated"));  // memtable shadows L1
  LIQUID_ASSERT_OK(store->Delete("keyc"));
  LIQUID_ASSERT_OK(store->Flush());  // -> L0

  std::vector<std::string> keys;
  std::map<std::string, std::string> values;
  ASSERT_TRUE(store
                  ->ForEachInRange("keya", "keye",
                                   [&](const Slice& key, const Slice& value) {
                                     keys.push_back(key.ToString());
                                     values[key.ToString()] = value.ToString();
                                   })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"keya", "keyb", "keyd"}));
  EXPECT_EQ(values["keyb"], "updated");  // Newest version wins.
}

TEST_F(KvStoreTest, ApproximateSizeGrows) {
  auto store = OpenStore();
  auto empty = store->ApproximateSizeBytes();
  for (int i = 0; i < 100; ++i) {
    LIQUID_ASSERT_OK(store->Put("k" + std::to_string(i), std::string(32, 'x')));
  }
  auto full = store->ApproximateSizeBytes();
  EXPECT_GT(*full, *empty);
}

}  // namespace
}  // namespace liquid::kv
