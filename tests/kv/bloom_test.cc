#include "kv/bloom.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace liquid::kv {
namespace {

std::vector<std::string> Keys(int n, const std::string& prefix) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

TEST(BloomTest, NoFalseNegatives) {
  const auto keys = Keys(1000, "key");
  const std::string filter = BloomFilter::Build(keys, 10);
  for (const auto& key : keys) {
    EXPECT_TRUE(BloomFilter::MayContain(filter, key)) << key;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  const auto keys = Keys(1000, "present");
  const std::string filter = BloomFilter::Build(keys, 10);
  int false_positives = 0;
  for (const auto& absent : Keys(10000, "absent")) {
    if (BloomFilter::MayContain(filter, absent)) ++false_positives;
  }
  // 10 bits/key targets ~1%; allow 3%.
  EXPECT_LT(false_positives, 300);
}

TEST(BloomTest, MoreBitsFewerFalsePositives) {
  const auto keys = Keys(2000, "k");
  const std::string small = BloomFilter::Build(keys, 4);
  const std::string large = BloomFilter::Build(keys, 16);
  int small_fp = 0, large_fp = 0;
  for (const auto& absent : Keys(5000, "x")) {
    if (BloomFilter::MayContain(small, absent)) ++small_fp;
    if (BloomFilter::MayContain(large, absent)) ++large_fp;
  }
  EXPECT_LT(large_fp, small_fp);
}

TEST(BloomTest, EmptyKeySetMatchesNothing) {
  const std::string filter = BloomFilter::Build({}, 10);
  EXPECT_FALSE(BloomFilter::MayContain(filter, "anything"));
}

TEST(BloomTest, EmptyFilterDataMatchesNothing) {
  EXPECT_FALSE(BloomFilter::MayContain(Slice("", size_t{0}), "key"));
  EXPECT_FALSE(BloomFilter::MayContain(Slice("x", 1), "key"));
}

TEST(BloomTest, EmptyStringKeyWorks) {
  const std::string filter = BloomFilter::Build({""}, 10);
  EXPECT_TRUE(BloomFilter::MayContain(filter, ""));
}

TEST(BloomTest, BinaryKeysWork) {
  std::vector<std::string> keys{std::string("\x00\x01\x02", 3),
                                std::string("\xff\xfe", 2)};
  const std::string filter = BloomFilter::Build(keys, 10);
  EXPECT_TRUE(BloomFilter::MayContain(filter, Slice(keys[0])));
  EXPECT_TRUE(BloomFilter::MayContain(filter, Slice(keys[1])));
}

}  // namespace
}  // namespace liquid::kv
