#include "kv/wal.h"

#include <gtest/gtest.h>

#include <vector>

#include "storage/disk.h"

#include "test_util.h"

namespace liquid::kv {
namespace {

Entry MakeEntry(const std::string& key, const std::string& value, uint64_t seq,
                EntryType type = EntryType::kPut) {
  Entry e;
  e.key = key;
  e.value = value;
  e.sequence = seq;
  e.type = type;
  return e;
}

class WalTest : public ::testing::Test {
 protected:
  storage::MemDisk disk_;
};

TEST_F(WalTest, AppendAndReplayInOrder) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        (*wal)->Append(MakeEntry("k" + std::to_string(i), "v", i + 1)).ok());
  }
  std::vector<Entry> replayed;
  ASSERT_TRUE((*wal)->Replay([&](const Entry& e) { replayed.push_back(e); }).ok());
  ASSERT_EQ(replayed.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(replayed[i].key, "k" + std::to_string(i));
    EXPECT_EQ(replayed[i].sequence, static_cast<uint64_t>(i + 1));
  }
}

TEST_F(WalTest, ReplayAfterReopen) {
  {
    auto wal = WriteAheadLog::Open(&disk_, "WAL");
    LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("persist", "value", 1)));
  }
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  int count = 0;
  LIQUID_ASSERT_OK((*wal)->Replay([&](const Entry& e) {
    EXPECT_EQ(e.key, "persist");
    ++count;
  }));
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, DeletesReplayWithType) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("k", "v", 1)));
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("k", "", 2, EntryType::kDelete)));
  std::vector<Entry> replayed;
  LIQUID_ASSERT_OK((*wal)->Replay([&](const Entry& e) { replayed.push_back(e); }));
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].type, EntryType::kPut);
  EXPECT_EQ(replayed[1].type, EntryType::kDelete);
}

TEST_F(WalTest, TornTailIgnored) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("good", "v", 1)));
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("alsogood", "v", 2)));
  // Simulate a crash mid-write: chop bytes off the end.
  auto file = disk_.OpenOrCreate("WAL");
  LIQUID_ASSERT_OK((*file)->Truncate((*file)->Size() - 4));

  auto reopened = WriteAheadLog::Open(&disk_, "WAL");
  std::vector<Entry> replayed;
  ASSERT_TRUE(
      (*reopened)->Replay([&](const Entry& e) { replayed.push_back(e); }).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].key, "good");
}

TEST_F(WalTest, BitFlippedCompleteFrameIsCorruption) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("first", "v", 1)));
  const uint64_t intact = (*wal)->size_bytes();
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("second", "v", 2)));
  // Flip a byte inside the second record's payload. Unlike a torn tail, the
  // frame is complete, so this is bit rot on acknowledged data — replay must
  // report it instead of silently dropping the write.
  auto file = disk_.OpenOrCreate("WAL");
  std::string bytes;
  LIQUID_ASSERT_OK((*file)->ReadAt(0, (*file)->Size(), &bytes));
  bytes[intact + 10] ^= 0x40;
  LIQUID_ASSERT_OK((*file)->Truncate(0));
  LIQUID_ASSERT_OK((*file)->Append(bytes));

  int count = 0;
  const Status replay = (*wal)->Replay([&](const Entry&) { ++count; });
  EXPECT_TRUE(replay.IsCorruption()) << replay.ToString();
  EXPECT_EQ(count, 1);  // The intact prefix was still delivered.
}

TEST_F(WalTest, TruncatedTailReplaysIntactPrefixCleanly) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("acked", "v", 1)));
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("torn", "v", 2)));
  // Chop a single byte: the final frame is incomplete, which is exactly what
  // a crash mid-Append leaves behind. That must NOT read as corruption.
  auto file = disk_.OpenOrCreate("WAL");
  LIQUID_ASSERT_OK((*file)->Truncate((*file)->Size() - 1));

  std::vector<Entry> replayed;
  LIQUID_ASSERT_OK(
      (*wal)->Replay([&](const Entry& e) { replayed.push_back(e); }));
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].key, "acked");
}

TEST_F(WalTest, ResetEmptiesLog) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("k", "v", 1)));
  EXPECT_GT((*wal)->size_bytes(), 0u);
  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ((*wal)->size_bytes(), 0u);
  int count = 0;
  LIQUID_ASSERT_OK((*wal)->Replay([&](const Entry&) { ++count; }));
  EXPECT_EQ(count, 0);
}

TEST_F(WalTest, EmptyValuesAndKeys) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  LIQUID_ASSERT_OK((*wal)->Append(MakeEntry("", "", 1)));
  int count = 0;
  LIQUID_ASSERT_OK((*wal)->Replay([&](const Entry& e) {
    EXPECT_TRUE(e.key.empty());
    EXPECT_TRUE(e.value.empty());
    ++count;
  }));
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace liquid::kv
