#include "kv/wal.h"

#include <gtest/gtest.h>

#include <vector>

#include "storage/disk.h"

namespace liquid::kv {
namespace {

Entry MakeEntry(const std::string& key, const std::string& value, uint64_t seq,
                EntryType type = EntryType::kPut) {
  Entry e;
  e.key = key;
  e.value = value;
  e.sequence = seq;
  e.type = type;
  return e;
}

class WalTest : public ::testing::Test {
 protected:
  storage::MemDisk disk_;
};

TEST_F(WalTest, AppendAndReplayInOrder) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        (*wal)->Append(MakeEntry("k" + std::to_string(i), "v", i + 1)).ok());
  }
  std::vector<Entry> replayed;
  ASSERT_TRUE((*wal)->Replay([&](const Entry& e) { replayed.push_back(e); }).ok());
  ASSERT_EQ(replayed.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(replayed[i].key, "k" + std::to_string(i));
    EXPECT_EQ(replayed[i].sequence, static_cast<uint64_t>(i + 1));
  }
}

TEST_F(WalTest, ReplayAfterReopen) {
  {
    auto wal = WriteAheadLog::Open(&disk_, "WAL");
    (*wal)->Append(MakeEntry("persist", "value", 1));
  }
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  int count = 0;
  (*wal)->Replay([&](const Entry& e) {
    EXPECT_EQ(e.key, "persist");
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, DeletesReplayWithType) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  (*wal)->Append(MakeEntry("k", "v", 1));
  (*wal)->Append(MakeEntry("k", "", 2, EntryType::kDelete));
  std::vector<Entry> replayed;
  (*wal)->Replay([&](const Entry& e) { replayed.push_back(e); });
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].type, EntryType::kPut);
  EXPECT_EQ(replayed[1].type, EntryType::kDelete);
}

TEST_F(WalTest, TornTailIgnored) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  (*wal)->Append(MakeEntry("good", "v", 1));
  (*wal)->Append(MakeEntry("alsogood", "v", 2));
  // Simulate a crash mid-write: chop bytes off the end.
  auto file = disk_.OpenOrCreate("WAL");
  (*file)->Truncate((*file)->Size() - 4);

  auto reopened = WriteAheadLog::Open(&disk_, "WAL");
  std::vector<Entry> replayed;
  ASSERT_TRUE(
      (*reopened)->Replay([&](const Entry& e) { replayed.push_back(e); }).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].key, "good");
}

TEST_F(WalTest, CorruptedRecordStopsReplay) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  (*wal)->Append(MakeEntry("first", "v", 1));
  const uint64_t intact = (*wal)->size_bytes();
  (*wal)->Append(MakeEntry("second", "v", 2));
  // Flip a byte inside the second record's payload.
  auto file = disk_.OpenOrCreate("WAL");
  std::string bytes;
  (*file)->ReadAt(0, (*file)->Size(), &bytes);
  bytes[intact + 10] ^= 0x40;
  (*file)->Truncate(0);
  (*file)->Append(bytes);

  int count = 0;
  ASSERT_TRUE((*wal)->Replay([&](const Entry&) { ++count; }).ok());
  EXPECT_EQ(count, 1);  // Only the intact prefix.
}

TEST_F(WalTest, ResetEmptiesLog) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  (*wal)->Append(MakeEntry("k", "v", 1));
  EXPECT_GT((*wal)->size_bytes(), 0u);
  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ((*wal)->size_bytes(), 0u);
  int count = 0;
  (*wal)->Replay([&](const Entry&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST_F(WalTest, EmptyValuesAndKeys) {
  auto wal = WriteAheadLog::Open(&disk_, "WAL");
  (*wal)->Append(MakeEntry("", "", 1));
  int count = 0;
  (*wal)->Replay([&](const Entry& e) {
    EXPECT_TRUE(e.key.empty());
    EXPECT_TRUE(e.value.empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace liquid::kv
