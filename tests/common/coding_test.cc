#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>

namespace liquid {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  ASSERT_EQ(buf.size(), 16u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 4), 1u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 8), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed32(buf.data() + 12), std::numeric_limits<uint32_t>::max());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0);
  PutFixed64(&buf, 0x0123456789abcdefull);
  PutFixed64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(DecodeFixed64(buf.data()), 0u);
  EXPECT_EQ(DecodeFixed64(buf.data() + 8), 0x0123456789abcdefull);
  EXPECT_EQ(DecodeFixed64(buf.data() + 16), std::numeric_limits<uint64_t>::max());
}

TEST(CodingTest, Fixed32IsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x01020304);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Encodes) {
  const uint64_t value = GetParam();
  std::string buf;
  PutVarint64(&buf, value);
  EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(value));
  Slice input(buf);
  uint64_t decoded = 0;
  ASSERT_TRUE(GetVarint64(&input, &decoded).ok());
  EXPECT_EQ(decoded, value);
  EXPECT_TRUE(input.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                      (1ull << 21) - 1, 1ull << 21, (1ull << 28) - 1,
                      1ull << 35, 1ull << 56,
                      std::numeric_limits<uint64_t>::max()));

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  Slice input(buf);
  uint32_t value = 0;
  EXPECT_TRUE(GetVarint32(&input, &value).IsCorruption());
}

TEST(CodingTest, Varint64OverflowIsCorruption) {
  // Nine continuation bytes consume shifts 0..56; a 10th byte may only
  // contribute bit 63. Anything larger used to be silently shifted away.
  std::string buf(9, '\x80');
  buf.push_back('\x02');
  Slice input(buf);
  uint64_t value = 0;
  EXPECT_TRUE(GetVarint64(&input, &value).IsCorruption());

  // The canonical encoding of UINT64_MAX (10th byte == 0x01) still decodes.
  std::string max_buf;
  PutVarint64(&max_buf, std::numeric_limits<uint64_t>::max());
  Slice max_input(max_buf);
  ASSERT_TRUE(GetVarint64(&max_input, &value).ok());
  EXPECT_EQ(value, std::numeric_limits<uint64_t>::max());
}

TEST(CodingTest, VarintTruncatedIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(2);  // Chop continuation bytes.
  Slice input(buf);
  uint64_t value = 0;
  EXPECT_TRUE(GetVarint64(&input, &value).IsCorruption());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'z'));
  Slice input(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&input, &a).ok());
  ASSERT_TRUE(GetLengthPrefixed(&input, &b).ok());
  ASSERT_TRUE(GetLengthPrefixed(&input, &c).ok());
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedIsCorruption) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello world");
  buf.resize(buf.size() - 3);
  Slice input(buf);
  Slice out;
  EXPECT_TRUE(GetLengthPrefixed(&input, &out).IsCorruption());
}

TEST(CodingTest, GetFixedFromShortInputIsCorruption) {
  std::string buf = "abc";
  Slice input(buf);
  uint32_t v32 = 0;
  EXPECT_TRUE(GetFixed32(&input, &v32).IsCorruption());
  uint64_t v64 = 0;
  EXPECT_TRUE(GetFixed64(&input, &v64).IsCorruption());
}

TEST(CodingTest, VarintLengthMatchesSpec) {
  EXPECT_EQ(VarintLength(0), 1);
  EXPECT_EQ(VarintLength(127), 1);
  EXPECT_EQ(VarintLength(128), 2);
  EXPECT_EQ(VarintLength(std::numeric_limits<uint64_t>::max()), 10);
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);  // Prefix sorts first.
}

TEST(SliceTest, StartsWithAndRemovePrefix) {
  Slice s("topic-partition");
  EXPECT_TRUE(s.StartsWith("topic"));
  EXPECT_FALSE(s.StartsWith("partition"));
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "partition");
}

}  // namespace
}  // namespace liquid
