#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace liquid {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::NotLeader("").IsNotLeader());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut("").IsTimedOut());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::Unsupported("").IsUnsupported());
  EXPECT_TRUE(Status::Internal("").IsInternal());
}

TEST(StatusTest, PredicatesAreMutuallyExclusive) {
  Status st = Status::IOError("disk gone");
  EXPECT_FALSE(st.IsNotFound());
  EXPECT_FALSE(st.IsCorruption());
  EXPECT_FALSE(st.ok());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotLeader), "NotLeader");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    LIQUID_RETURN_NOT_OK(Status::IOError("boom"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIOError());

  auto succeeds = []() -> Status {
    LIQUID_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("reached the end");
  };
  EXPECT_TRUE(succeeds().IsAlreadyExists());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  ASSERT_TRUE(r.ok());
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken.size(), 1000u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Unavailable("down");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    LIQUID_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsUnavailable());
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace liquid
