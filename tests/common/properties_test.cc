#include "common/properties.h"

#include <gtest/gtest.h>

namespace liquid {
namespace {

TEST(PropertiesTest, MissingKeyReturnsFallback) {
  Properties props;
  EXPECT_EQ(props.Get("absent", "fallback"), "fallback");
  EXPECT_EQ(props.GetInt("absent", 42), 42);
  EXPECT_DOUBLE_EQ(props.GetDouble("absent", 1.5), 1.5);
  EXPECT_TRUE(props.GetBool("absent", true));
  EXPECT_FALSE(props.Has("absent"));
}

TEST(PropertiesTest, TypedRoundTrips) {
  Properties props;
  props.Set("s", "text");
  props.SetInt("i", -17);
  props.SetDouble("d", 2.75);
  props.SetBool("b1", true);
  props.SetBool("b0", false);
  EXPECT_EQ(props.Get("s"), "text");
  EXPECT_EQ(props.GetInt("i", 0), -17);
  EXPECT_DOUBLE_EQ(props.GetDouble("d", 0), 2.75);
  EXPECT_TRUE(props.GetBool("b1", false));
  EXPECT_FALSE(props.GetBool("b0", true));
}

TEST(PropertiesTest, BoolAcceptsOneAsTrue) {
  Properties props;
  props.Set("flag", "1");
  EXPECT_TRUE(props.GetBool("flag", false));
  props.Set("flag", "yes");  // Anything else is false.
  EXPECT_FALSE(props.GetBool("flag", true));
}

TEST(PropertiesTest, OverwriteReplaces) {
  Properties props;
  props.SetInt("key", 1);
  props.SetInt("key", 2);
  EXPECT_EQ(props.GetInt("key", 0), 2);
  EXPECT_EQ(props.values().size(), 1u);
}

TEST(PropertiesTest, ParseAcceptsCommentsBlanksAndTrimming) {
  auto props = Properties::Parse(
      "# a comment\n"
      "! another comment style\n"
      "\n"
      "broker.id = 7\n"
      "  log.dirs\t=\t/data  \n"
      "equals.in.value=a=b=c\n"
      "empty.value=\n"
      "no.trailing.newline=yes");
  ASSERT_TRUE(props.ok()) << props.status().ToString();
  EXPECT_EQ(props->GetInt("broker.id", 0), 7);
  EXPECT_EQ(props->Get("log.dirs"), "/data");
  EXPECT_EQ(props->Get("equals.in.value"), "a=b=c");
  EXPECT_TRUE(props->Has("empty.value"));
  EXPECT_EQ(props->Get("empty.value"), "");
  EXPECT_EQ(props->Get("no.trailing.newline"), "yes");
  EXPECT_EQ(props->values().size(), 5u);
}

TEST(PropertiesTest, ParseRejectsLineWithoutSeparator) {
  auto props = Properties::Parse("ok=1\njust-some-words\n");
  EXPECT_TRUE(props.status().IsCorruption());
}

TEST(PropertiesTest, ParseRejectsEmptyKey) {
  auto props = Properties::Parse("=value\n");
  EXPECT_TRUE(props.status().IsCorruption());
}

TEST(PropertiesTest, SerializeParseRoundTrip) {
  Properties props;
  props.Set("b", "2");
  props.Set("a", "1");
  props.SetBool("c", true);
  auto reparsed = Properties::Parse(props.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->values(), props.values());
}

}  // namespace
}  // namespace liquid
