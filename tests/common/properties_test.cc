#include "common/properties.h"

#include <gtest/gtest.h>

namespace liquid {
namespace {

TEST(PropertiesTest, MissingKeyReturnsFallback) {
  Properties props;
  EXPECT_EQ(props.Get("absent", "fallback"), "fallback");
  EXPECT_EQ(props.GetInt("absent", 42), 42);
  EXPECT_DOUBLE_EQ(props.GetDouble("absent", 1.5), 1.5);
  EXPECT_TRUE(props.GetBool("absent", true));
  EXPECT_FALSE(props.Has("absent"));
}

TEST(PropertiesTest, TypedRoundTrips) {
  Properties props;
  props.Set("s", "text");
  props.SetInt("i", -17);
  props.SetDouble("d", 2.75);
  props.SetBool("b1", true);
  props.SetBool("b0", false);
  EXPECT_EQ(props.Get("s"), "text");
  EXPECT_EQ(props.GetInt("i", 0), -17);
  EXPECT_DOUBLE_EQ(props.GetDouble("d", 0), 2.75);
  EXPECT_TRUE(props.GetBool("b1", false));
  EXPECT_FALSE(props.GetBool("b0", true));
}

TEST(PropertiesTest, BoolAcceptsOneAsTrue) {
  Properties props;
  props.Set("flag", "1");
  EXPECT_TRUE(props.GetBool("flag", false));
  props.Set("flag", "yes");  // Anything else is false.
  EXPECT_FALSE(props.GetBool("flag", true));
}

TEST(PropertiesTest, OverwriteReplaces) {
  Properties props;
  props.SetInt("key", 1);
  props.SetInt("key", 2);
  EXPECT_EQ(props.GetInt("key", 0), 2);
  EXPECT_EQ(props.values().size(), 1u);
}

}  // namespace
}  // namespace liquid
