#include "common/metrics.h"

#include <gtest/gtest.h>

namespace liquid {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  g.Set(10);
  g.Set(3);
  EXPECT_EQ(g.value(), 3);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 100);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 100);
}

TEST(HistogramTest, QuantilesAreApproximatelyRight) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(i);
  // Log-bucketed: allow ~5% relative error.
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(0.5)), 5000.0, 300.0);
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(0.99)), 9900.0, 600.0);
  EXPECT_EQ(h.max(), 10000);
  EXPECT_EQ(h.min(), 1);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);  // Mean is exact (sum/count).
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i < 32; ++i) h.Record(i);
  // Values below 2^kSubBucketBits land in exact buckets.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(h.max(), 31);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), -5);  // min/max track raw values...
  EXPECT_EQ(h.ValueAtQuantile(0.5), -5);  // ...and quantiles clamp to them.
}

TEST(HistogramTest, SummaryMentionsFields) {
  Histogram h;
  h.Record(42);
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("count=1"), std::string::npos);
  EXPECT_NE(summary.find("p99="), std::string::npos);
}

TEST(MetricsRegistryTest, SameNameSameInstance) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1);
}

TEST(MetricsRegistryTest, CounterValuesSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Increment(3);
  registry.GetCounter("b")->Increment(7);
  auto snapshot = registry.CounterValues();
  EXPECT_EQ(snapshot.at("a"), 3);
  EXPECT_EQ(snapshot.at("b"), 7);
}

TEST(MetricsRegistryTest, DistinctKindsDoNotCollide) {
  MetricsRegistry registry;
  registry.GetCounter("name")->Increment();
  registry.GetGauge("name")->Set(5);
  registry.GetHistogram("name")->Record(1);
  EXPECT_EQ(registry.GetCounter("name")->value(), 1);
  EXPECT_EQ(registry.GetGauge("name")->value(), 5);
  EXPECT_EQ(registry.GetHistogram("name")->count(), 1);
}

TEST(HistogramTest, StatsIsOneConsistentSnapshot) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 100);
  EXPECT_EQ(stats.sum, 5050);
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 100);
  EXPECT_NEAR(stats.mean, 50.5, 1e-9);
  EXPECT_LE(stats.p50, stats.p90);
  EXPECT_LE(stats.p90, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
  EXPECT_LE(stats.p99, stats.max);
}

TEST(MetricsRegistryTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(MetricsRegistry::Default(), MetricsRegistry::Default());
}

TEST(MetricsRegistryTest, GaugeValuesSnapshot) {
  MetricsRegistry registry;
  registry.GetGauge("liquid.consumer.g.lag")->Set(42);
  auto snapshot = registry.GaugeValues();
  EXPECT_EQ(snapshot.at("liquid.consumer.g.lag"), 42);
}

TEST(MetricsRegistryTest, RenderPrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("liquid.broker.0.produce_records")->Increment(5);
  registry.GetGauge("liquid.consumer.audit.lag")->Set(7);
  registry.GetHistogram("liquid.job.enrich.process_us")->Record(100);

  const std::string text = registry.RenderPrometheus();
  // Dotted names are sanitized to the Prometheus charset.
  EXPECT_NE(text.find("# TYPE liquid_broker_0_produce_records counter"),
            std::string::npos);
  EXPECT_NE(text.find("liquid_broker_0_produce_records 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE liquid_consumer_audit_lag gauge"),
            std::string::npos);
  EXPECT_NE(text.find("liquid_consumer_audit_lag 7\n"), std::string::npos);
  // Histograms render as summaries with quantile labels plus _sum/_count.
  EXPECT_NE(text.find("# TYPE liquid_job_enrich_process_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("liquid_job_enrich_process_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("liquid_job_enrich_process_us_sum 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("liquid_job_enrich_process_us_count 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, RenderJsonDump) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(-2);
  registry.GetHistogram("h")->Record(10);

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\":{\"c\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"g\":-2}"), std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"count\":1,\"sum\":10"), std::string::npos);
  // Names are JSON-escaped.
  MetricsRegistry tricky;
  tricky.GetCounter("a\"b")->Increment();
  EXPECT_NE(tricky.RenderJson().find("\"a\\\"b\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllForTestZeroesInPlace) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Increment(5);
  gauge->Set(5);
  histogram->Record(5);
  registry.ResetAllForTest();
  // Same instances (callers may have cached the pointers), zeroed values.
  EXPECT_EQ(registry.GetCounter("c"), counter);
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), 0);
}

}  // namespace
}  // namespace liquid
