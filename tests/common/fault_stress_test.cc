#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/status.h"

namespace liquid {
namespace {

/// TSan-oriented stress: fault points hammer the registry while a chaos
/// driver concurrently loads schedules, re-arms sites, drains crash
/// requests and clears everything. The assertions are deliberately loose —
/// the point is that every interleaving is data-race-free and no Hit()
/// observes a torn configuration (e.g. a kFail site injecting anything but
/// its configured code).
TEST(FaultRegistryStressTest, ConcurrentHitsAgainstReconfiguration) {
  FaultRegistry* registry = FaultRegistry::Default();
  registry->Clear();

  constexpr int kHitters = 4;
  constexpr int kHitsPerThread = 4000;
  const std::string sites[] = {"stress.a", "stress.b", "stress.c"};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> unexpected{0};

  std::vector<std::thread> threads;
  threads.reserve(kHitters + 2);
  for (int t = 0; t < kHitters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        const std::string& site = sites[(t + i) % 3];
        if (!FaultRegistry::Default()->armed()) continue;
        Status st = FaultRegistry::Default()->Hit(site);
        // Sites are only ever configured as fail(NotLeader), fail(IOError)
        // or crash (-> Unavailable); anything else means a torn config.
        if (!st.ok() && !st.IsNotLeader() && !st.IsIOError() &&
            !st.IsUnavailable()) {
          unexpected.fetch_add(1);
        }
      }
    });
  }

  // Reconfigurer: alternates whole-schedule loads with single-site churn.
  threads.emplace_back([&] {
    FaultSchedule schedule;
    schedule.seed = 99;
    FaultSiteConfig fail_config;
    fail_config.kind = FaultActionKind::kFail;
    fail_config.fail_code = StatusCode::kNotLeader;
    fail_config.probability = 0.5;
    schedule.sites["stress.a"] = fail_config;
    FaultSiteConfig crash_config;
    crash_config.kind = FaultActionKind::kCrash;
    schedule.sites["stress.b"] = crash_config;

    FaultSiteConfig io_config;
    io_config.kind = FaultActionKind::kFail;
    io_config.fail_code = StatusCode::kIOError;
    io_config.every = 3;

    for (int round = 0; !stop.load(); ++round) {
      switch (round % 4) {
        case 0:
          registry->Load(schedule);
          break;
        case 1:
          registry->Arm("stress.c", io_config);
          break;
        case 2:
          registry->Disarm("stress.b");
          break;
        default:
          registry->Clear();
          break;
      }
      std::this_thread::yield();
    }
  });

  // Driver: drains crash requests like the chaos soak harness would.
  threads.emplace_back([&] {
    int64_t drained = 0;
    while (!stop.load()) {
      drained += static_cast<int64_t>(
          FaultRegistry::Default()->DrainCrashRequests().size());
      (void)FaultRegistry::Default()->triggers_total();
      (void)FaultRegistry::Default()->crash_requests_dropped();
      std::this_thread::yield();
    }
    EXPECT_GE(drained, 0);
  });

  for (int t = 0; t < kHitters; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = kHitters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(unexpected.load(), 0);
  registry->Clear();
  EXPECT_FALSE(registry->armed());
}

}  // namespace
}  // namespace liquid
