#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace liquid {
namespace {

// Concurrency stress for the pool's Submit/Wait/Shutdown surface. These tests
// assert little beyond task counts — their real job is to put every lock
// transition under ThreadSanitizer (scripts/check.sh runs the suite with
// -DLIQUID_SANITIZE=thread).

TEST(ThreadPoolStressTest, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 250;

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &executed] {
      for (int i = 0; i < kTasksEach; ++i) {
        ASSERT_TRUE(pool.Submit([&executed] { executed.fetch_add(1); }));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStressTest, WaitRacesWithSubmit) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::atomic<bool> stop{false};

  // Waiters spin on Wait() while a submitter keeps the queue breathing.
  std::vector<std::thread> waiters;
  for (int t = 0; t < 2; ++t) {
    waiters.emplace_back([&pool, &stop] {
      while (!stop.load()) pool.Wait();
    });
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pool.Submit([&executed] { executed.fetch_add(1); }));
  }
  pool.Wait();
  stop.store(true);
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(executed.load(), 500);
}

TEST(ThreadPoolStressTest, ShutdownRacesWithSubmit) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};

    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&pool, &accepted, &executed] {
        for (int i = 0; i < 50; ++i) {
          if (pool.Submit([&executed] { executed.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    std::thread stopper([&pool] { pool.Shutdown(); });
    for (auto& thread : submitters) thread.join();
    stopper.join();
    pool.Shutdown();
    // Shutdown drains the queue: everything accepted must have run.
    EXPECT_EQ(executed.load(), accepted.load());
  }
}

TEST(ThreadPoolStressTest, TasksSubmittingTasks) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&pool, &executed] {
      executed.fetch_add(1);
      pool.Submit([&executed] { executed.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(executed.load(), 200);
}

}  // namespace
}  // namespace liquid
