// Regression stress test for Histogram under concurrent mutation.
//
// The interesting bug class here is not unserialized primitives (every
// Histogram method takes the lock) but *torn composition*: building a summary
// out of several individually-locked accessors (count(), mean(), quantiles)
// lets a concurrent Reset() or Merge() land between them, yielding summaries
// like "count=0 p99=4000". Histogram::Stats() takes one lock around the whole
// snapshot; this test hammers Record/Merge/Reset/Stats concurrently and
// asserts snapshot-internal invariants that torn reads violate.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace liquid {
namespace {

TEST(HistogramStressTest, StatsSnapshotsAreInternallyConsistent) {
  Histogram histogram;
  Histogram donor;
  donor.Record(100);
  donor.Record(200);
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&histogram, &stop, t] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        histogram.Record(1 + ((t * 7919 + i) % 5000));
        ++i;
      }
    });
  }
  std::thread merger([&histogram, &donor, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      histogram.Merge(donor);
      std::this_thread::yield();
    }
  });
  std::thread resetter([&histogram, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      histogram.Reset();
      std::this_thread::yield();
    }
  });

  for (int i = 0; i < 20000; ++i) {
    const HistogramStats stats = histogram.Stats();
    if (stats.count == 0) {
      // An empty snapshot must be empty in every field — a non-zero quantile
      // or sum here is exactly the torn composition this test guards against.
      ASSERT_EQ(stats.sum, 0);
      ASSERT_EQ(stats.p50, 0);
      ASSERT_EQ(stats.p99, 0);
      ASSERT_DOUBLE_EQ(stats.mean, 0.0);
    } else {
      // All recorded values are >= 1 and <= 5000; a snapshot mixing sample
      // sets can produce a mean outside [min, max] or quantiles above max.
      ASSERT_GE(stats.min, 1);
      ASSERT_LE(stats.max, 5000);
      ASSERT_GE(stats.mean, static_cast<double>(stats.min));
      ASSERT_LE(stats.mean, static_cast<double>(stats.max));
      ASSERT_LE(stats.p50, stats.p99);
      ASSERT_GE(stats.p50, stats.min);
      ASSERT_LE(stats.p99, stats.max);
      ASSERT_EQ(stats.count == 0, stats.sum == 0);
    }
    // Summary() renders from one snapshot; it must never mix "count=0" with
    // non-zero percentiles. Spot-check occasionally (string work is slow).
    if (i % 500 == 0) {
      const std::string summary = histogram.Summary();
      if (summary.find("count=0 ") != std::string::npos) {
        ASSERT_NE(summary.find("p99=0"), std::string::npos) << summary;
      }
    }
  }

  stop.store(true);
  for (auto& thread : writers) thread.join();
  merger.join();
  resetter.join();
}

TEST(HistogramStressTest, ConcurrentMergeBothDirectionsDoesNotDeadlock) {
  // Opposite-direction merges exercise the address-ordered two-lock path: a
  // naive lock(this)-then-lock(other) scheme deadlocks here within a few
  // iterations. Each loop resets its own side before merging so counts stay
  // bounded — merging back and forth without resets compounds count/sum
  // exponentially and overflows int64 within milliseconds.
  Histogram a;
  Histogram b;
  a.Record(1);
  b.Record(2);
  std::atomic<bool> stop{false};
  std::thread ab([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      a.Reset();
      a.Record(1);
      a.Merge(b);
    }
  });
  std::thread ba([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      b.Reset();
      b.Record(2);
      b.Merge(a);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  ab.join();
  ba.join();
  EXPECT_GT(a.count(), 0);
  EXPECT_GT(b.count(), 0);
}

TEST(HistogramStressTest, ConcurrentRecordsAllLand) {
  Histogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Record(i);
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramStats stats = histogram.Stats();
  EXPECT_EQ(stats.count, kThreads * kPerThread);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, kPerThread - 1);
}

}  // namespace
}  // namespace liquid
