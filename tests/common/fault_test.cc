#include "common/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "test_util.h"

namespace liquid {
namespace {

/// Every test runs against the process-wide registry (that is what
/// LIQUID_FAULT_POINT consults), so the fixture restores the disarmed
/// production state around each test.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Default()->Clear();
    FaultRegistry::Default()->SetClock(nullptr);
  }
  void TearDown() override {
    FaultRegistry::Default()->Clear();
    FaultRegistry::Default()->SetClock(nullptr);
  }
};

// ---- Schedule parsing ----

TEST(FaultScheduleTest, ParsesSeedAndSites) {
  auto schedule = FaultSchedule::Parse(
      "# chaos schedule\n"
      "seed = 42\n"
      "fault.log.sync.before.action = fail(IOError)\n"
      "fault.log.sync.before.after = 100\n"
      "fault.log.sync.before.count = 3\n"
      "fault.broker.produce.before_append.action = delay(2ms)\n"
      "fault.broker.produce.before_append.probability = 0.05\n"
      "fault.broker.replicate.before_append.action = crash\n");
  LIQUID_ASSERT_OK(schedule.status());
  EXPECT_EQ(schedule->seed, 42u);
  ASSERT_EQ(schedule->sites.size(), 3u);

  const FaultSiteConfig& sync = schedule->sites.at("log.sync.before");
  EXPECT_EQ(sync.kind, FaultActionKind::kFail);
  EXPECT_EQ(sync.fail_code, StatusCode::kIOError);
  EXPECT_EQ(sync.after, 100);
  EXPECT_EQ(sync.max_triggers, 3);

  const FaultSiteConfig& produce =
      schedule->sites.at("broker.produce.before_append");
  EXPECT_EQ(produce.kind, FaultActionKind::kDelay);
  EXPECT_EQ(produce.delay_us, 2000);
  EXPECT_DOUBLE_EQ(produce.probability, 0.05);

  EXPECT_EQ(schedule->sites.at("broker.replicate.before_append").kind,
            FaultActionKind::kCrash);
}

TEST(FaultScheduleTest, ParsesMicrosecondDelays) {
  auto schedule =
      FaultSchedule::Parse("fault.log.append.before.action = delay(250us)\n");
  LIQUID_ASSERT_OK(schedule.status());
  EXPECT_EQ(schedule->sites.at("log.append.before").delay_us, 250);
}

TEST(FaultScheduleTest, RejectsMalformedInput) {
  const char* bad[] = {
      "bogus = 1\n",                                  // Unknown top-level key.
      "seed = -1\n",                                  // Negative seed.
      "seed = nope\n",                                // Non-numeric seed.
      "fault.x.action = explode\n",                   // Unknown action verb.
      "fault.x.action = fail(NoSuchCode)\n",          // Unknown status code.
      "fault.x.action = fail(Ok)\n",                  // kOk is not injectable.
      "fault.x.action = delay(5)\n",                  // Missing unit.
      "fault.x.action = delay(-5ms)\n",               // Negative delay.
      "fault.x.action = delay(0us)\n",                // Zero delay.
      "fault.x.action = fail(IOError\n",              // Unbalanced paren.
      "fault.x.after = 3\n",                          // Clauses but no action.
      "fault.x.action = crash\nfault.x.every = 0\n",  // every < 1.
      "fault.x.action = crash\nfault.x.bogus = 1\n",  // Unknown param.
      "fault.x.action = crash\nfault.x.probability = 1.5\n",  // Out of range.
      "fault.x.action = crash\nfault.x.probability = nan\n",  // NaN.
      "fault.X.action = crash\n",                     // Uppercase site.
      "fault.a..b.action = crash\n",                  // Double dot in site.
      "fault..action = crash\n",                      // Empty site.
  };
  for (const char* text : bad) {
    auto schedule = FaultSchedule::Parse(text);
    EXPECT_FALSE(schedule.ok()) << "accepted: " << text;
  }
}

TEST(FaultScheduleTest, SerializeRoundTrips) {
  FaultSchedule schedule;
  schedule.seed = 7;
  schedule.sites["log.sync.before"] = FaultSiteConfig{
      FaultActionKind::kFail, StatusCode::kIOError, 0, 10, 2, 3, 1.0};
  schedule.sites["broker.fetch.before_read"] = FaultSiteConfig{
      FaultActionKind::kDelay, StatusCode::kUnavailable, 1500, 0, 1, -1, 0.25};
  schedule.sites["coord.create"] = FaultSiteConfig{
      FaultActionKind::kCrash, StatusCode::kUnavailable, 0, 0, 1, -1, 1e-7};

  auto reparsed = FaultSchedule::Parse(schedule.Serialize());
  LIQUID_ASSERT_OK(reparsed.status());
  EXPECT_EQ(*reparsed, schedule);
}

// ---- Registry behavior ----

TEST_F(FaultRegistryTest, DisarmedByDefaultAndUnknownSitesAreFree) {
  FaultRegistry* registry = FaultRegistry::Default();
  EXPECT_FALSE(registry->armed());
  registry->Arm("some.site", FaultSiteConfig{});
  EXPECT_TRUE(registry->armed());
  LIQUID_EXPECT_OK(registry->Hit("other.site"));
  EXPECT_EQ(registry->hits("other.site"), 0);
  registry->Disarm("some.site");
  EXPECT_FALSE(registry->armed());
}

TEST_F(FaultRegistryTest, FailActionInjectsConfiguredStatus) {
  FaultRegistry* registry = FaultRegistry::Default();
  FaultSiteConfig config;
  config.kind = FaultActionKind::kFail;
  config.fail_code = StatusCode::kIOError;
  registry->Arm("log.sync.before", config);

  Status st = registry->Hit("log.sync.before");
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.ToString().find("log.sync.before"), std::string::npos);
  EXPECT_EQ(registry->hits("log.sync.before"), 1);
  EXPECT_EQ(registry->triggers("log.sync.before"), 1);
  EXPECT_EQ(registry->triggers_total(), 1);
}

TEST_F(FaultRegistryTest, ScriptingGatesComposeInOrder) {
  // Skip 2 hits, then fire every 2nd eligible hit, at most 2 times.
  FaultRegistry* registry = FaultRegistry::Default();
  FaultSiteConfig config;
  config.kind = FaultActionKind::kFail;
  config.after = 2;
  config.every = 2;
  config.max_triggers = 2;
  registry->Arm("s", config);

  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(!registry->Hit("s").ok());
  // Hits 1,2 skipped by `after`; eligible hits 3,4,5,... fire on 3 and 5
  // (every=2), then `count` caps further firing.
  EXPECT_EQ(fired, std::vector<bool>(
                       {false, false, true, false, true, false, false, false,
                        false, false}));
  EXPECT_EQ(registry->hits("s"), 10);
  EXPECT_EQ(registry->triggers("s"), 2);
}

TEST_F(FaultRegistryTest, ProbabilityIsDeterministicUnderSeed) {
  FaultSchedule schedule;
  schedule.seed = 1234;
  FaultSiteConfig config;
  config.kind = FaultActionKind::kFail;
  config.probability = 0.3;
  schedule.sites["s"] = config;

  FaultRegistry* registry = FaultRegistry::Default();
  auto run = [&] {
    registry->Load(schedule);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!registry->Hit("s").ok());
    return fired;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  const int64_t triggered = registry->triggers("s");
  EXPECT_GT(triggered, 0);
  EXPECT_LT(triggered, 200);
}

TEST_F(FaultRegistryTest, DelayActionSleepsOnInjectedClock) {
  SimulatedClock clock(1000);
  FaultRegistry* registry = FaultRegistry::Default();
  registry->SetClock(&clock);
  FaultSiteConfig config;
  config.kind = FaultActionKind::kDelay;
  config.delay_us = 5000;
  registry->Arm("s", config);

  const int64_t before = clock.NowMs();
  LIQUID_EXPECT_OK(registry->Hit("s"));
  EXPECT_EQ(clock.NowMs() - before, 5);
}

TEST_F(FaultRegistryTest, CrashActionQueuesRequestForTheDriver) {
  FaultRegistry* registry = FaultRegistry::Default();
  FaultSiteConfig config;
  config.kind = FaultActionKind::kCrash;
  registry->Arm("broker.start.session", config);

  Status st = registry->Hit("broker.start.session");
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(registry->DrainCrashRequests(),
            std::vector<std::string>{"broker.start.session"});
  EXPECT_TRUE(registry->DrainCrashRequests().empty());
}

TEST_F(FaultRegistryTest, CrashQueueIsBounded) {
  FaultRegistry* registry = FaultRegistry::Default();
  FaultSiteConfig config;
  config.kind = FaultActionKind::kCrash;
  registry->Arm("s", config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(registry->Hit("s").ok());
  }
  EXPECT_EQ(registry->DrainCrashRequests().size(), 64u);
  EXPECT_EQ(registry->crash_requests_dropped(), 36);
}

TEST_F(FaultRegistryTest, LoadReplacesSitesAndResetsCounters) {
  FaultRegistry* registry = FaultRegistry::Default();
  registry->Arm("old.site", FaultSiteConfig{});
  EXPECT_FALSE(registry->Hit("old.site").ok());

  FaultSchedule schedule;
  schedule.sites["new.site"] = FaultSiteConfig{};
  registry->Load(schedule);
  EXPECT_TRUE(registry->armed());
  EXPECT_EQ(registry->triggers_total(), 0);
  LIQUID_EXPECT_OK(registry->Hit("old.site"));  // Replaced, now unknown.
  EXPECT_FALSE(registry->Hit("new.site").ok());

  registry->Clear();
  EXPECT_FALSE(registry->armed());
  LIQUID_EXPECT_OK(registry->Hit("new.site"));
}

Status GuardedOperation() {
  LIQUID_FAULT_POINT("test.macro.site");
  return Status::OK();
}

Result<int> GuardedResultOperation() {
  LIQUID_FAULT_POINT("test.macro.site");
  return 42;
}

TEST_F(FaultRegistryTest, MacroWorksInStatusAndResultFunctions) {
  LIQUID_EXPECT_OK(GuardedOperation());

  FaultSiteConfig config;
  config.kind = FaultActionKind::kFail;
  config.fail_code = StatusCode::kNotLeader;
  FaultRegistry::Default()->Arm("test.macro.site", config);
  EXPECT_TRUE(GuardedOperation().IsNotLeader());
  EXPECT_TRUE(GuardedResultOperation().status().IsNotLeader());

  FaultRegistry::Default()->Clear();
  auto result = GuardedResultOperation();
  LIQUID_ASSERT_OK(result.status());
  EXPECT_EQ(*result, 42);
}

}  // namespace
}  // namespace liquid
