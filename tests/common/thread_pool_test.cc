#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/clock.h"

namespace liquid {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DoubleShutdownIsSafe) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ClockTest, SimulatedClockAdvancesManually) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.NowMs(), 1000);
  clock.AdvanceMs(500);
  EXPECT_EQ(clock.NowMs(), 1500);
  clock.SleepMs(250);  // Sleep = advance for the simulated clock.
  EXPECT_EQ(clock.NowMs(), 1750);
  clock.SetMs(10);
  EXPECT_EQ(clock.NowMs(), 10);
  EXPECT_EQ(clock.NowUs(), 10000);
}

TEST(ClockTest, SystemClockMonotonic) {
  SystemClock clock;
  const int64_t a = clock.NowUs();
  const int64_t b = clock.NowUs();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace liquid
