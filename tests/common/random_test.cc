#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace liquid {
namespace {

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRespectsP) {
  Random rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 3000, 300);
}

TEST(RandomTest, BytesHasRequestedLength) {
  Random rng(7);
  EXPECT_EQ(rng.Bytes(0).size(), 0u);
  EXPECT_EQ(rng.Bytes(57).size(), 57u);
}

TEST(RandomTest, ZeroSeedStillWorks) {
  Random rng(0);
  EXPECT_NE(rng.Next(), rng.Next());
}

TEST(ZipfTest, ValuesInRange) {
  ZipfGenerator zipf(1000, 0.9, 42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, SkewConcentratesOnHeadKeys) {
  ZipfGenerator zipf(10000, 0.99, 42);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[zipf.Next()]++;
  // The most popular key should take far more than the uniform share.
  int max_count = 0;
  for (const auto& [key, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, n / 1000);  // Uniform share would be n/10000.
  // And the distinct-key count should be well below n (heavy reuse).
  EXPECT_LT(counts.size(), static_cast<size_t>(n) / 2);
}

TEST(ZipfTest, LowThetaIsCloserToUniform) {
  ZipfGenerator skewed(1000, 0.99, 1), flat(1000, 0.1, 1);
  std::map<uint64_t, int> skew_counts, flat_counts;
  for (int i = 0; i < 20000; ++i) {
    skew_counts[skewed.Next()]++;
    flat_counts[flat.Next()]++;
  }
  int skew_max = 0, flat_max = 0;
  for (const auto& [k, c] : skew_counts) skew_max = std::max(skew_max, c);
  for (const auto& [k, c] : flat_counts) flat_max = std::max(flat_max, c);
  EXPECT_GT(skew_max, flat_max);
}

}  // namespace
}  // namespace liquid
