#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace liquid {
namespace {

Span MakeSpan(uint64_t trace_id, uint64_t span_id, int64_t start_us) {
  Span span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.start_us = start_us;
  span.end_us = start_us + 1;
  span.name = "test";
  return span;
}

TEST(TraceCollectorTest, DisabledByDefault) {
  TraceCollector collector;
  EXPECT_FALSE(collector.enabled());
  EXPECT_DOUBLE_EQ(collector.sample_rate(), 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(collector.ShouldSample());
}

TEST(TraceCollectorTest, FullSamplingTracesEveryRecord) {
  TraceCollector collector;
  collector.SetSampleRate(1.0);
  EXPECT_TRUE(collector.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(collector.ShouldSample());
}

TEST(TraceCollectorTest, FractionalRateIsDeterministicStride) {
  TraceCollector collector;
  collector.SetSampleRate(0.25);  // Every 4th decision.
  int sampled = 0;
  for (int i = 0; i < 400; ++i) {
    if (collector.ShouldSample()) ++sampled;
  }
  EXPECT_EQ(sampled, 100);
}

TEST(TraceCollectorTest, RateClampedToUnitInterval) {
  TraceCollector collector;
  collector.SetSampleRate(7.0);
  EXPECT_DOUBLE_EQ(collector.sample_rate(), 1.0);
  collector.SetSampleRate(-1.0);
  EXPECT_FALSE(collector.enabled());
}

TEST(TraceCollectorTest, IdsAreUniqueAndNonZero) {
  TraceCollector collector;
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = collector.NewTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

TEST(TraceCollectorTest, RecordAndSnapshotOldestFirst) {
  TraceCollector collector;
  for (int i = 0; i < 5; ++i) {
    collector.Record(MakeSpan(1, static_cast<uint64_t>(i + 1), i * 10));
  }
  const auto spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(spans[i].span_id, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(collector.recorded(), 5);
  EXPECT_EQ(collector.dropped(), 0);
}

TEST(TraceCollectorTest, RingOverwritesOldestWhenFull) {
  TraceCollector collector(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    collector.Record(MakeSpan(1, static_cast<uint64_t>(i + 1), i));
  }
  const auto spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().span_id, 7u);  // 7, 8, 9, 10 survive.
  EXPECT_EQ(spans.back().span_id, 10u);
  EXPECT_EQ(collector.recorded(), 10);
  EXPECT_EQ(collector.dropped(), 6);
}

TEST(TraceCollectorTest, TraceFiltersById) {
  TraceCollector collector;
  collector.Record(MakeSpan(7, 1, 0));
  collector.Record(MakeSpan(8, 2, 1));
  collector.Record(MakeSpan(7, 3, 2));
  const auto spans = collector.Trace(7);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].span_id, 1u);
  EXPECT_EQ(spans[1].span_id, 3u);
}

TEST(TraceCollectorTest, ClearDropsSpansKeepsIds) {
  TraceCollector collector;
  const uint64_t before = collector.NewTraceId();
  collector.Record(MakeSpan(1, 1, 0));
  collector.Clear();
  EXPECT_TRUE(collector.Snapshot().empty());
  EXPECT_GT(collector.NewTraceId(), before);
}

TEST(TraceCollectorTest, SetCapacityKeepsNewest) {
  TraceCollector collector(/*capacity=*/8);
  for (int i = 0; i < 8; ++i) {
    collector.Record(MakeSpan(1, static_cast<uint64_t>(i + 1), i));
  }
  collector.SetCapacity(3);
  const auto spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.front().span_id, 6u);
  EXPECT_EQ(spans.back().span_id, 8u);
}

// TSan regression test: concurrent recording, sampling, snapshotting,
// clearing and resizing must be race-free (the collector is process-wide and
// hit from every producer/broker/consumer thread at once).
TEST(TraceCollectorStressTest, ConcurrentRecordSnapshotClearResize) {
  TraceCollector collector(/*capacity=*/128);
  collector.SetSampleRate(0.5);
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&collector, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (collector.ShouldSample()) {
          collector.Record(
              MakeSpan(collector.NewTraceId(), collector.NewSpanId(),
                       static_cast<int64_t>(t * 1000 + i)));
        }
        ++i;
      }
    });
  }
  std::thread reader([&collector, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto spans = collector.Snapshot();
      for (const Span& span : spans) {
        ASSERT_NE(span.trace_id, 0u);
        ASSERT_EQ(span.name, "test");
      }
      (void)collector.Trace(1);
      (void)collector.recorded();
      (void)collector.dropped();
    }
  });
  std::thread mutator([&collector, &stop] {
    size_t capacity = 64;
    while (!stop.load(std::memory_order_relaxed)) {
      collector.SetCapacity(capacity);
      capacity = capacity == 64 ? 256 : 64;
      collector.SetSampleRate(0.25);
      collector.SetSampleRate(0.5);
      collector.Clear();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& thread : writers) thread.join();
  reader.join();
  mutator.join();

  // Counters stay coherent after the storm.
  EXPECT_GE(collector.recorded(), 0);
  EXPECT_GE(collector.dropped(), 0);
}

}  // namespace
}  // namespace liquid
