#include "common/retry.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/metrics.h"
#include "test_util.h"

namespace liquid {
namespace {

RetryPolicy NoJitterPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  return policy;
}

TEST(RetryPolicyTest, ClassifiesStatuses) {
  EXPECT_TRUE(RetryPolicy::IsRetriable(Status::Unavailable("isr shrank")));
  EXPECT_TRUE(RetryPolicy::IsRetriable(Status::NotLeader("moved")));
  EXPECT_TRUE(RetryPolicy::IsRetriable(Status::ResourceExhausted("ring full")));
  EXPECT_FALSE(RetryPolicy::IsRetriable(Status::OK()));
  EXPECT_FALSE(RetryPolicy::IsRetriable(Status::IOError("disk")));
  EXPECT_FALSE(RetryPolicy::IsRetriable(Status::Corruption("crc")));
  EXPECT_FALSE(RetryPolicy::IsRetriable(Status::InvalidArgument("bad")));

  EXPECT_TRUE(RetryPolicy::NeedsMetadataRefresh(Status::NotLeader("moved")));
  EXPECT_TRUE(RetryPolicy::NeedsMetadataRefresh(Status::Unavailable("down")));
  EXPECT_FALSE(
      RetryPolicy::NeedsMetadataRefresh(Status::ResourceExhausted("full")));
}

TEST(RetryStateTest, NonRetriableFailsFastWithoutSleepingOrGivingUp) {
  SimulatedClock clock(0);
  RetryState retry(NoJitterPolicy(), &clock, Deadline::Infinite(), 1);
  EXPECT_FALSE(retry.ShouldRetry(Status::IOError("disk")));
  EXPECT_FALSE(retry.ShouldRetry(Status::OK()));
  EXPECT_EQ(retry.retries(), 0);
  EXPECT_EQ(clock.NowMs(), 0);
  EXPECT_FALSE(retry.gave_up());
}

TEST(RetryStateTest, CappedExponentialBackoffSequence) {
  SimulatedClock clock(0);
  RetryState retry(NoJitterPolicy(), &clock, Deadline::Infinite(), 1);
  // max_attempts=5: four backoffs (1, 2, 4, 8ms — capped), then give up.
  int64_t last_ms = 0;
  for (int64_t expected : {1, 2, 4, 8}) {
    EXPECT_TRUE(retry.ShouldRetry(Status::Unavailable("down")));
    EXPECT_EQ(clock.NowMs() - last_ms, expected);
    last_ms = clock.NowMs();
  }
  EXPECT_FALSE(retry.ShouldRetry(Status::Unavailable("down")));
  EXPECT_TRUE(retry.gave_up());
  EXPECT_EQ(retry.retries(), 4);
  EXPECT_EQ(retry.total_backoff_us(), 15000);
}

TEST(RetryStateTest, BackoffStaysCappedPastTheKnee) {
  SimulatedClock clock(0);
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 10;
  RetryState retry(policy, &clock, Deadline::Infinite(), 1);
  int64_t last_ms = 0;
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(retry.ShouldRetry(Status::Unavailable("down")));
    const int64_t slept = clock.NowMs() - last_ms;
    last_ms = clock.NowMs();
    EXPECT_LE(slept, policy.max_backoff_ms);
    if (i >= 3) EXPECT_EQ(slept, policy.max_backoff_ms);
  }
}

TEST(RetryStateTest, JitterShrinksBackoffWithinBounds) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter = 0.5;
  policy.max_attempts = 2;
  // Across seeds, the single 10ms backoff lands in (5ms, 10ms] — floored to
  // whole simulated milliseconds that is [5, 10] — and at least one seed must
  // actually shave something off (sleep < 10ms).
  bool saw_shaved = false;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    SimulatedClock clock(0);
    policy.initial_backoff_ms = 10;
    policy.max_backoff_ms = 10;  // NoJitterPolicy caps at 8; lift the cap.
    RetryState retry(policy, &clock, Deadline::Infinite(), seed);
    EXPECT_TRUE(retry.ShouldRetry(Status::Unavailable("down")));
    EXPECT_GE(clock.NowMs(), 5);
    EXPECT_LE(clock.NowMs(), 10);
    if (clock.NowMs() < 10) saw_shaved = true;
  }
  EXPECT_TRUE(saw_shaved);
}

TEST(RetryStateTest, DeterministicForEqualSeeds) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter = 0.25;
  policy.max_attempts = 6;
  auto run = [&](uint64_t seed) {
    SimulatedClock clock(0);
    RetryState retry(policy, &clock, Deadline::Infinite(), seed);
    while (retry.ShouldRetry(Status::Unavailable("down"))) {
    }
    return retry.total_backoff_us();
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(RetryStateTest, DeadlineCapsSleepAndStopsRetries) {
  SimulatedClock clock(0);
  RetryPolicy policy = NoJitterPolicy();
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 10;
  RetryState retry(policy, &clock, Deadline::AfterMs(&clock, 5), 1);
  // First backoff (10ms) is clamped to the 5ms remaining.
  EXPECT_TRUE(retry.ShouldRetry(Status::Unavailable("down")));
  EXPECT_EQ(clock.NowMs(), 5);
  // Deadline now expired: a retriable status becomes a giveup.
  EXPECT_FALSE(retry.ShouldRetry(Status::Unavailable("down")));
  EXPECT_TRUE(retry.gave_up());
}

TEST(RetryStateTest, MetadataRefreshFlagTracksLastStatus) {
  SimulatedClock clock(0);
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 10;
  RetryState retry(policy, &clock, Deadline::Infinite(), 1);
  EXPECT_TRUE(retry.ShouldRetry(Status::NotLeader("moved")));
  EXPECT_TRUE(retry.needs_metadata_refresh());
  EXPECT_TRUE(retry.ShouldRetry(Status::ResourceExhausted("ring full")));
  EXPECT_FALSE(retry.needs_metadata_refresh());
}

TEST(RetryStateTest, RecordsRetryAndGiveupMetrics) {
  const RetryMetrics metrics = RetryMetrics::Create("liquid.retry_test.");
  metrics.retries_total->Reset();
  metrics.giveups_total->Reset();

  SimulatedClock clock(0);
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 3;
  RetryState retry(policy, &clock, Deadline::Infinite(), 1, &metrics);
  EXPECT_TRUE(retry.ShouldRetry(Status::Unavailable("down")));
  EXPECT_TRUE(retry.ShouldRetry(Status::Unavailable("down")));
  EXPECT_FALSE(retry.ShouldRetry(Status::Unavailable("down")));
  EXPECT_EQ(metrics.retries_total->value(), 2);
  EXPECT_EQ(metrics.giveups_total->value(), 1);

  // Fail-fast statuses count neither as retries nor as giveups.
  RetryState fresh(policy, &clock, Deadline::Infinite(), 1, &metrics);
  EXPECT_FALSE(fresh.ShouldRetry(Status::Corruption("crc")));
  EXPECT_EQ(metrics.retries_total->value(), 2);
  EXPECT_EQ(metrics.giveups_total->value(), 1);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline deadline = Deadline::Infinite();
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_ms(), 1ll << 60);
}

TEST(DeadlineTest, ExpiresOnSchedule) {
  SimulatedClock clock(100);
  Deadline deadline = Deadline::AfterMs(&clock, 50);
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ms(), 50);
  clock.SleepMs(49);
  EXPECT_FALSE(deadline.expired());
  clock.SleepMs(1);
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ms(), 0);
}

}  // namespace
}  // namespace liquid
