#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace liquid {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C test vector: "123456789" -> 0xe3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
  // All-zero 32 bytes -> 0x8a9136aa (iSCSI test vector).
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8a9136aau);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(crc32c::Value("", 0), 0u);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(crc32c::Value("hello", 5), crc32c::Value("hellp", 5));
  EXPECT_NE(crc32c::Value("hello", 5), crc32c::Value("hell", 4));
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{10}, data.size()}) {
    const uint32_t part1 = crc32c::Value(data.data(), split);
    const uint32_t combined =
        crc32c::Extend(part1, data.data() + split, data.size() - split);
    EXPECT_EQ(combined, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xe3069283u}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);  // Masking actually changes the value.
  }
}

TEST(Crc32cTest, SensitiveToEveryByte) {
  std::string data(64, 'a');
  const uint32_t base = crc32c::Value(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 7) {
    std::string mutated = data;
    mutated[i] = 'b';
    EXPECT_NE(crc32c::Value(mutated.data(), mutated.size()), base)
        << "flip at " << i;
  }
}

}  // namespace
}  // namespace liquid
