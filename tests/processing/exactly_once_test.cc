#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "processing/job.h"
#include "processing/operators.h"
#include "processing_test_util.h"

namespace liquid::processing {
namespace {

using messaging::TopicPartition;
using storage::Record;

/// Exactly-once read-process-write (§4.3 "ongoing effort to design and
/// implement support for exactly-once semantics"): outputs, changelog updates
/// and input checkpoints commit atomically; a crash mid-cycle leaves an
/// aborted transaction whose effects are invisible, so replay produces no
/// duplicates for read_committed consumers.
class ExactlyOnceTest : public ProcessingTestBase {
 protected:
  void SetUp() override {
    ProcessingTestBase::SetUp();
    txn_ = std::make_unique<messaging::TransactionCoordinator>(cluster_.get(),
                                                               offsets_.get());
    CreateTopic("in", 1);
    CreateTopic("out", 1);
  }

  JobConfig ForwarderConfig(bool exactly_once) {
    JobConfig config;
    config.name = "fwd";
    config.inputs = {"in"};
    config.exactly_once = exactly_once;
    return config;
  }

  TaskFactory Forwarder() {
    return [] {
      return std::make_unique<MapTask>(
          "out", [](const messaging::ConsumerRecord& envelope) {
            return std::optional<Record>(envelope.record);
          });
    };
  }

  std::unique_ptr<Job> MakeEoJob(const JobConfig& config) {
    auto job = Job::Create(cluster_.get(), offsets_.get(), coordinator_.get(),
                           &state_disk_, config, Forwarder(), "0", txn_.get());
    EXPECT_TRUE(job.ok()) << job.status().ToString();
    return std::move(job).value();
  }

  /// Values visible to a read_committed consumer of "out".
  std::vector<std::string> CommittedOutput(const std::string& group) {
    messaging::ConsumerConfig config;
    config.group = group;
    config.read_committed = true;
    messaging::Consumer consumer(cluster_.get(), offsets_.get(),
                                 coordinator_.get(), group + "-m", config);
    LIQUID_EXPECT_OK(consumer.Subscribe({"out"}));
    std::vector<std::string> values;
    for (int i = 0; i < 20; ++i) {
      auto records = consumer.Poll(256);
      if (!records.ok()) break;
      for (const auto& envelope : *records) {
        values.push_back(envelope.record.value);
      }
    }
    return values;
  }

  std::unique_ptr<messaging::TransactionCoordinator> txn_;
};

TEST_F(ExactlyOnceTest, RequiresCoordinator) {
  auto job = Job::Create(cluster_.get(), offsets_.get(), coordinator_.get(),
                         &state_disk_, ForwarderConfig(true), Forwarder());
  EXPECT_TRUE(job.status().IsInvalidArgument());
}

TEST_F(ExactlyOnceTest, HappyPathDeliversEverythingOnce) {
  std::vector<Record> input;
  for (int i = 0; i < 25; ++i) {
    input.push_back(Record::KeyValue("k", "v" + std::to_string(i)));
  }
  Produce("in", input);

  auto job = MakeEoJob(ForwarderConfig(true));
  ASSERT_TRUE(job->RunUntilIdle().ok());
  ASSERT_TRUE(job->Stop().ok());
  EXPECT_EQ(CommittedOutput("check").size(), 25u);
}

TEST_F(ExactlyOnceTest, CrashBeforeCommitProducesNoDuplicates) {
  std::vector<Record> input;
  for (int i = 0; i < 10; ++i) {
    input.push_back(Record::KeyValue("k", "v" + std::to_string(i)));
  }
  Produce("in", input);

  {
    // First incarnation processes everything but CRASHES before committing:
    // its transaction stays open, its offsets were never checkpointed.
    auto job = MakeEoJob(ForwarderConfig(true));
    ASSERT_TRUE(job->RunOnce().ok());  // Processes + produces inside the txn.
    ASSERT_TRUE(job->Kill().ok());     // SIGKILL: no commit.
  }
  // Nothing is visible: the transaction never committed.
  EXPECT_TRUE(CommittedOutput("mid").empty());

  // The next incarnation fences the zombie (aborting its txn), re-reads the
  // input from the last committed offset (0) and commits.
  auto job = MakeEoJob(ForwarderConfig(true));
  ASSERT_TRUE(job->RunUntilIdle().ok());
  ASSERT_TRUE(job->Stop().ok());

  auto values = CommittedOutput("final");
  ASSERT_EQ(values.size(), 10u);  // Exactly once, despite the replay.
  std::map<std::string, int> counts;
  for (const auto& value : values) counts[value]++;
  for (const auto& [value, count] : counts) {
    EXPECT_EQ(count, 1) << value;
  }
}

TEST_F(ExactlyOnceTest, AtLeastOnceBaselineDuplicatesUnderSameCrash) {
  // The contrast case: without exactly_once the same crash yields duplicates
  // (output flushed, offsets not committed -> replay re-emits).
  std::vector<Record> input;
  for (int i = 0; i < 10; ++i) {
    input.push_back(Record::KeyValue("k", "v" + std::to_string(i)));
  }
  Produce("in", input);

  {
    auto job = MakeJob(ForwarderConfig(false), Forwarder());
    ASSERT_TRUE(job->RunOnce().ok());  // Outputs flushed immediately.
    ASSERT_TRUE(job->Kill().ok());     // Crash before checkpoint.
  }
  auto job = MakeJob(ForwarderConfig(false), Forwarder());
  ASSERT_TRUE(job->RunUntilIdle().ok());
  ASSERT_TRUE(job->Stop().ok());

  EXPECT_EQ(CommittedOutput("dup-check").size(), 20u);  // Each record twice.
}

TEST_F(ExactlyOnceTest, OffsetsAdvanceOnlyOnCommit) {
  std::vector<Record> input{Record::KeyValue("k", "v")};
  Produce("in", input);
  const TopicPartition tp{"in", 0};

  {
    auto job = MakeEoJob(ForwarderConfig(true));
    ASSERT_TRUE(job->RunOnce().ok());
    // Crash: offsets must NOT have advanced.
    ASSERT_TRUE(job->Kill().ok());
  }
  EXPECT_TRUE(offsets_->Fetch("job.fwd", tp).status().IsNotFound());

  auto job = MakeEoJob(ForwarderConfig(true));
  ASSERT_TRUE(job->RunUntilIdle().ok());
  ASSERT_TRUE(job->Stop().ok());
  EXPECT_EQ(offsets_->Fetch("job.fwd", tp)->offset, 1);
}

TEST_F(ExactlyOnceTest, StatefulExactlyOnceCountsAreExact) {
  JobConfig config;
  config.name = "eo-counter";
  config.inputs = {"in"};
  config.exactly_once = true;
  config.stores = {{"counts", StoreConfig::Kind::kInMemory, true}};

  std::vector<Record> input;
  for (int i = 0; i < 12; ++i) input.push_back(Record::KeyValue("user", "e"));
  Produce("in", input);

  auto factory = [] { return std::make_unique<KeyedCounterTask>("counts"); };
  {
    auto job = Job::Create(cluster_.get(), offsets_.get(), coordinator_.get(),
                           &state_disk_, config, factory, "0", txn_.get());
    ASSERT_TRUE((*job)->RunOnce().ok());
    ASSERT_TRUE((*job)->Kill().ok());  // Crash: txn (incl. changelog) aborted.
  }
  // Restart on a fresh machine: the aborted changelog entries are invisible
  // to the read_committed restore, so the count is rebuilt exactly.
  storage::MemDisk fresh;
  auto job = Job::Create(cluster_.get(), offsets_.get(), coordinator_.get(),
                         &fresh, config, factory, "0", txn_.get());
  ASSERT_TRUE((*job)->RunUntilIdle().ok());
  KeyValueStore* store = (*job)->GetStore(0, "counts");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(*store->Get("user"), "12");  // Not 24.
  ASSERT_TRUE((*job)->Stop().ok());
}

}  // namespace
}  // namespace liquid::processing
