#include <gtest/gtest.h>

#include <cstdlib>

#include "processing/job.h"
#include "processing/operators.h"
#include "processing_test_util.h"

namespace liquid::processing {
namespace {

using messaging::TopicPartition;
using storage::Record;

/// Stateful-task failure recovery via the changelog (§3.2: "the processing
/// layer publish[es] state updates to a changelog ... after failure, state is
/// reconstructed from the changelog") — experiment E9's correctness side.
class RecoveryTest : public ProcessingTestBase {
 protected:
  JobConfig CounterConfig(const std::string& name, bool changelog = true) {
    JobConfig config;
    config.name = name;
    config.inputs = {"in"};
    config.stores = {{"counts", StoreConfig::Kind::kInMemory, changelog}};
    return config;
  }

  int64_t StoredCount(Job* job, const std::string& key, int partition = 0) {
    KeyValueStore* store =
        job->GetStore(TopicPartition{"in", partition}, "counts");
    if (store == nullptr) return -1;
    auto value = store->Get(key);
    if (!value.ok()) return 0;
    return std::strtoll(value->c_str(), nullptr, 10);
  }
};

TEST_F(RecoveryTest, StateRestoredFromChangelogAfterTaskLoss) {
  CreateTopic("in", 1);
  std::vector<Record> records;
  for (int i = 0; i < 30; ++i) {
    records.push_back(Record::KeyValue("user" + std::to_string(i % 3), "e"));
  }
  Produce("in", records);

  {
    auto job = MakeJob(CounterConfig("counter"),
                       [] { return std::make_unique<KeyedCounterTask>("counts"); });
    ASSERT_TRUE(job->RunUntilIdle().ok());
    EXPECT_EQ(StoredCount(job.get(), "user0"), 10);
    ASSERT_TRUE(job->Stop().ok());
  }

  // The container is rescheduled on a NEW machine: fresh state disk, state
  // must come back from the changelog feed alone.
  storage::MemDisk fresh_disk;
  auto job = MakeJob(CounterConfig("counter"),
                     [] { return std::make_unique<KeyedCounterTask>("counts"); },
                     &fresh_disk);
  ASSERT_TRUE(job->RunUntilIdle().ok());  // No new input.
  EXPECT_EQ(StoredCount(job.get(), "user0"), 10);
  EXPECT_EQ(StoredCount(job.get(), "user1"), 10);
  EXPECT_EQ(StoredCount(job.get(), "user2"), 10);
  EXPECT_GT(job->metrics()
                ->GetCounter("job.counter.restored_records")
                ->value(),
            0);
}

TEST_F(RecoveryTest, RecoveredStateContinuesIncrementally) {
  CreateTopic("in", 1);
  std::vector<Record> first;
  for (int i = 0; i < 10; ++i) first.push_back(Record::KeyValue("k", "e"));
  Produce("in", first);
  {
    auto job = MakeJob(CounterConfig("cont"),
                       [] { return std::make_unique<KeyedCounterTask>("counts"); });
    ASSERT_TRUE(job->RunUntilIdle().ok());
    ASSERT_TRUE(job->Stop().ok());
  }
  // More data while down.
  Produce("in", first);

  storage::MemDisk fresh_disk;
  auto job = MakeJob(CounterConfig("cont"),
                     [] { return std::make_unique<KeyedCounterTask>("counts"); },
                     &fresh_disk);
  ASSERT_TRUE(job->RunUntilIdle().ok());
  // 10 restored + 10 newly processed, no double counting of the first batch.
  EXPECT_EQ(StoredCount(job.get(), "k"), 20);
}

TEST_F(RecoveryTest, WithoutChangelogStateIsLost) {
  CreateTopic("in", 1);
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) records.push_back(Record::KeyValue("k", "e"));
  Produce("in", records);
  {
    auto job =
        MakeJob(CounterConfig("lossy", /*changelog=*/false),
                [] { return std::make_unique<KeyedCounterTask>("counts"); });
    ASSERT_TRUE(job->RunUntilIdle().ok());
    EXPECT_EQ(StoredCount(job.get(), "k"), 10);
    ASSERT_TRUE(job->Stop().ok());
  }
  storage::MemDisk fresh_disk;
  auto job = MakeJob(CounterConfig("lossy", /*changelog=*/false),
                     [] { return std::make_unique<KeyedCounterTask>("counts"); },
                     &fresh_disk);
  ASSERT_TRUE(job->RunUntilIdle().ok());
  // Offsets were committed, state was not replicated: counts are gone. This
  // is exactly why changelogs exist.
  EXPECT_LE(StoredCount(job.get(), "k"), 0);
}

TEST_F(RecoveryTest, ChangelogIsCompactedKeyedFeed) {
  CreateTopic("in", 1);
  // Many updates to few keys.
  std::vector<Record> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back(Record::KeyValue("k" + std::to_string(i % 4), "e"));
  }
  Produce("in", records);
  auto job = MakeJob(CounterConfig("compacting"),
                     [] { return std::make_unique<KeyedCounterTask>("counts"); });
  ASSERT_TRUE(job->RunUntilIdle().ok());

  const std::string changelog = Job::ChangelogTopic("compacting", "counts");
  auto config = cluster_->GetTopicConfig(changelog);
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->log.compaction_enabled);

  // Compact and verify only the latest update per key survives the cleaned
  // portion while restore still yields correct state (§4.1: "performing log
  // compaction not only reduces the changelog size, but it also allows for
  // faster recovery").
  const TopicPartition changelog_tp{changelog, 0};
  auto leader = cluster_->LeaderFor(changelog_tp);
  auto stats = (*leader)->CompactPartition(changelog_tp);
  ASSERT_TRUE(stats.ok());

  ASSERT_TRUE(job->Stop().ok());
  storage::MemDisk fresh_disk;
  auto restored = MakeJob(CounterConfig("compacting"),
                          [] { return std::make_unique<KeyedCounterTask>("counts"); },
                          &fresh_disk);
  ASSERT_TRUE(restored->RunUntilIdle().ok());
  EXPECT_EQ(StoredCount(restored.get(), "k0"), 50);
  EXPECT_EQ(StoredCount(restored.get(), "k3"), 50);
}

TEST_F(RecoveryTest, PersistentStoreSkipsChangelogWhenDiskSurvives) {
  CreateTopic("in", 1);
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) records.push_back(Record::KeyValue("k", "e"));
  Produce("in", records);

  JobConfig config;
  config.name = "durable";
  config.inputs = {"in"};
  config.stores = {{"counts", StoreConfig::Kind::kPersistent, true}};
  {
    auto job = MakeJob(config,
                       [] { return std::make_unique<KeyedCounterTask>("counts"); });
    ASSERT_TRUE(job->RunUntilIdle().ok());
    ASSERT_TRUE(job->Stop().ok());
  }
  // Same disk (restart on the same machine): state is already there; the
  // changelog replay is idempotent (latest value per key overwrites).
  auto job = MakeJob(config,
                     [] { return std::make_unique<KeyedCounterTask>("counts"); });
  ASSERT_TRUE(job->RunUntilIdle().ok());
  EXPECT_EQ(StoredCount(job.get(), "k"), 10);
}

}  // namespace
}  // namespace liquid::processing
