#ifndef LIQUID_TESTS_PROCESSING_PROCESSING_TEST_UTIL_H_
#define LIQUID_TESTS_PROCESSING_PROCESSING_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/producer.h"
#include "processing/job.h"
#include "test_util.h"

namespace liquid::processing {

/// Shared fixture wiring a cluster + offset manager + group coordinator for
/// processing-layer tests.
class ProcessingTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    messaging::ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<messaging::Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    auto offsets =
        messaging::OffsetManager::Open(&offsets_disk_, "offsets/", &clock_);
    ASSERT_TRUE(offsets.ok());
    offsets_ = std::move(offsets).value();
    coordinator_ =
        std::make_unique<messaging::GroupCoordinator>(cluster_.get());
  }

  void CreateTopic(const std::string& name, int partitions, int rf = 1) {
    messaging::TopicConfig config;
    config.partitions = partitions;
    config.replication_factor = rf;
    ASSERT_TRUE(cluster_->CreateTopic(name, config).ok());
  }

  void Produce(const std::string& topic,
               const std::vector<storage::Record>& records) {
    messaging::Producer producer(cluster_.get(), messaging::ProducerConfig{});
    for (const auto& record : records) {
      ASSERT_TRUE(producer.Send(topic, record).ok());
    }
    ASSERT_TRUE(producer.Flush().ok());
  }

  std::unique_ptr<Job> MakeJob(JobConfig config, TaskFactory factory,
                               storage::Disk* state_disk = nullptr,
                               const std::string& instance = "0") {
    auto job = Job::Create(cluster_.get(), offsets_.get(), coordinator_.get(),
                           state_disk != nullptr ? state_disk : &state_disk_,
                           std::move(config), std::move(factory), instance);
    EXPECT_TRUE(job.ok()) << job.status().ToString();
    return std::move(job).value();
  }

  /// All records currently committed in one partition.
  std::vector<storage::Record> ReadAll(const messaging::TopicPartition& tp) {
    std::vector<storage::Record> out;
    auto leader = cluster_->LeaderFor(tp);
    if (!leader.ok()) return out;
    int64_t cursor = 0;
    while (true) {
      auto resp = (*leader)->Fetch(tp, cursor, 1 << 20, -1);
      if (!resp.ok() || resp->records.empty()) break;
      cursor = resp->records.back().offset + 1;
      for (auto& record : resp->records) out.push_back(std::move(record));
    }
    return out;
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<messaging::Cluster> cluster_;
  storage::MemDisk offsets_disk_;
  std::unique_ptr<messaging::OffsetManager> offsets_;
  std::unique_ptr<messaging::GroupCoordinator> coordinator_;
  storage::MemDisk state_disk_;
};

}  // namespace liquid::processing

#endif  // LIQUID_TESTS_PROCESSING_PROCESSING_TEST_UTIL_H_
