#include "processing/state_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "storage/disk.h"

#include "test_util.h"

namespace liquid::processing {
namespace {

/// Both store kinds must satisfy the same contract.
enum class StoreKind { kInMemory, kPersistent };

class StoreContractTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    if (GetParam() == StoreKind::kInMemory) {
      store_ = std::make_unique<InMemoryStore>();
    } else {
      auto persistent = PersistentStore::Open(&disk_, "s/", kv::KvOptions{});
      ASSERT_TRUE(persistent.ok());
      store_ = std::move(persistent).value();
    }
  }

  storage::MemDisk disk_;
  std::unique_ptr<KeyValueStore> store_;
};

TEST_P(StoreContractTest, PutGetDelete) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  EXPECT_EQ(*store_->Get("k"), "v");
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_TRUE(store_->Get("k").status().IsNotFound());
}

TEST_P(StoreContractTest, OverwriteKeepsLatest) {
  LIQUID_ASSERT_OK(store_->Put("k", "v1"));
  LIQUID_ASSERT_OK(store_->Put("k", "v2"));
  EXPECT_EQ(*store_->Get("k"), "v2");
  EXPECT_EQ(*store_->Count(), 1);
}

TEST_P(StoreContractTest, ForEachVisitsAllInKeyOrder) {
  LIQUID_ASSERT_OK(store_->Put("b", "2"));
  LIQUID_ASSERT_OK(store_->Put("a", "1"));
  LIQUID_ASSERT_OK(store_->Put("c", "3"));
  std::vector<std::string> keys;
  ASSERT_TRUE(store_
                  ->ForEach([&](const Slice& key, const Slice&) {
                    keys.push_back(key.ToString());
                  })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_P(StoreContractTest, RangeScanHonoursBounds) {
  for (const char* key : {"a", "b", "c", "d", "e"}) {
    LIQUID_ASSERT_OK(store_->Put(key, key));
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(store_
                  ->ForEachInRange("b", "d",
                                   [&](const Slice& key, const Slice&) {
                                     seen.push_back(key.ToString());
                                   })
                  .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"b", "c"}));  // [b, d).
}

TEST_P(StoreContractTest, RangeScanEmptyEndIsUnbounded) {
  for (const char* key : {"a", "b", "c"}) {
    LIQUID_ASSERT_OK(store_->Put(key, key));
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(store_
                  ->ForEachInRange("b", "",
                                   [&](const Slice& key, const Slice&) {
                                     seen.push_back(key.ToString());
                                   })
                  .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"b", "c"}));
}

TEST_P(StoreContractTest, RangeScanSkipsDeleted) {
  LIQUID_ASSERT_OK(store_->Put("a", "1"));
  LIQUID_ASSERT_OK(store_->Put("b", "2"));
  LIQUID_ASSERT_OK(store_->Delete("a"));
  std::vector<std::string> seen;
  ASSERT_TRUE(store_
                  ->ForEachInRange("", "",
                                   [&](const Slice& key, const Slice&) {
                                     seen.push_back(key.ToString());
                                   })
                  .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"b"}));
}

TEST_P(StoreContractTest, DeleteMissingIsOk) {
  EXPECT_TRUE(store_->Delete("ghost").ok());
}

TEST_P(StoreContractTest, CountTracksLiveKeys) {
  EXPECT_EQ(*store_->Count(), 0);
  for (int i = 0; i < 10; ++i) {
    LIQUID_ASSERT_OK(store_->Put("k" + std::to_string(i), "v"));
  }
  EXPECT_EQ(*store_->Count(), 10);
  LIQUID_ASSERT_OK(store_->Delete("k3"));
  EXPECT_EQ(*store_->Count(), 9);
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreContractTest,
                         ::testing::Values(StoreKind::kInMemory,
                                           StoreKind::kPersistent),
                         [](const auto& info) {
                           return info.param == StoreKind::kInMemory
                                      ? "InMemory"
                                      : "Persistent";
                         });

TEST(PersistentStoreTest, SurvivesReopen) {
  storage::MemDisk disk;
  {
    auto store = PersistentStore::Open(&disk, "s/", kv::KvOptions{});
    LIQUID_ASSERT_OK((*store)->Put("durable", "yes"));
  }
  auto reopened = PersistentStore::Open(&disk, "s/", kv::KvOptions{});
  EXPECT_EQ(*(*reopened)->Get("durable"), "yes");
}

TEST(ChangelogStoreTest, MutationsEmitChangelogRecords) {
  std::vector<storage::Record> emitted;
  ChangelogStore store(std::make_unique<InMemoryStore>(),
                       [&](storage::Record record) {
                         emitted.push_back(std::move(record));
                         return Status::OK();
                       });
  LIQUID_ASSERT_OK(store.Put("k1", "v1"));
  LIQUID_ASSERT_OK(store.Put("k2", "v2"));
  LIQUID_ASSERT_OK(store.Delete("k1"));
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted[0].key, "k1");
  EXPECT_EQ(emitted[0].value, "v1");
  EXPECT_FALSE(emitted[0].is_tombstone);
  EXPECT_TRUE(emitted[2].is_tombstone);
  EXPECT_EQ(emitted[2].key, "k1");
}

TEST(ChangelogStoreTest, ReadsDoNotEmit) {
  int emissions = 0;
  ChangelogStore store(std::make_unique<InMemoryStore>(),
                       [&](storage::Record) {
                         ++emissions;
                         return Status::OK();
                       });
  LIQUID_ASSERT_OK(store.Put("k", "v"));
  LIQUID_ASSERT_OK(store.Get("k"));
  LIQUID_ASSERT_OK(store.Count());
  LIQUID_ASSERT_OK(store.ForEach([](const Slice&, const Slice&) {}));
  EXPECT_EQ(emissions, 1);
}

TEST(ChangelogStoreTest, ApplyChangelogRecordRestoresWithoutEmitting) {
  int emissions = 0;
  ChangelogStore store(std::make_unique<InMemoryStore>(),
                       [&](storage::Record) {
                         ++emissions;
                         return Status::OK();
                       });
  ASSERT_TRUE(store.ApplyChangelogRecord(storage::Record::KeyValue("k", "v")).ok());
  EXPECT_EQ(*store.Get("k"), "v");
  ASSERT_TRUE(store.ApplyChangelogRecord(storage::Record::Tombstone("k")).ok());
  EXPECT_TRUE(store.Get("k").status().IsNotFound());
  EXPECT_EQ(emissions, 0);
}

TEST(ChangelogStoreTest, ReplayingFullChangelogRebuildsState) {
  // The §3.2 recovery path in miniature: capture the changelog of one store,
  // replay it into a fresh one, require identical contents.
  std::vector<storage::Record> changelog;
  ChangelogStore original(std::make_unique<InMemoryStore>(),
                          [&](storage::Record record) {
                            changelog.push_back(std::move(record));
                            return Status::OK();
                          });
  LIQUID_ASSERT_OK(original.Put("a", "1"));
  LIQUID_ASSERT_OK(original.Put("b", "2"));
  LIQUID_ASSERT_OK(original.Put("a", "updated"));
  LIQUID_ASSERT_OK(original.Delete("b"));
  LIQUID_ASSERT_OK(original.Put("c", "3"));

  ChangelogStore restored(std::make_unique<InMemoryStore>(),
                          [](storage::Record) { return Status::OK(); });
  for (const auto& record : changelog) {
    ASSERT_TRUE(restored.ApplyChangelogRecord(record).ok());
  }
  EXPECT_EQ(*restored.Get("a"), "updated");
  EXPECT_TRUE(restored.Get("b").status().IsNotFound());
  EXPECT_EQ(*restored.Get("c"), "3");
  EXPECT_EQ(*restored.Count(), *original.Count());
}

}  // namespace
}  // namespace liquid::processing
