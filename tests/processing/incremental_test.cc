#include <gtest/gtest.h>

#include <cstdlib>

#include "processing/job.h"
#include "processing/operators.h"
#include "processing_test_util.h"

namespace liquid::processing {
namespace {

using messaging::TopicPartition;
using storage::Record;

/// Incremental processing (§4.2): maintain statistics over a growing feed by
/// reading only data newer than the checkpoint — experiment E5's correctness
/// side.
class IncrementalTest : public ProcessingTestBase {
 protected:
  std::vector<Record> Batch(int count, const std::string& key = "k") {
    std::vector<Record> out;
    for (int i = 0; i < count; ++i) out.push_back(Record::KeyValue(key, "e"));
    return out;
  }
};

TEST_F(IncrementalTest, EachRoundProcessesOnlyNewData) {
  CreateTopic("in", 1);
  JobConfig config;
  config.name = "stats";
  config.inputs = {"in"};
  config.stores = {{"counts", StoreConfig::Kind::kInMemory, true}};
  auto job = MakeJob(config, [] {
    return std::make_unique<KeyedCounterTask>("counts");
  });

  int64_t cumulative_work = 0;
  for (int round = 1; round <= 5; ++round) {
    Produce("in", Batch(100));
    auto processed = job->RunUntilIdle();
    ASSERT_TRUE(processed.ok());
    EXPECT_EQ(*processed, 100) << "round " << round
                               << ": incremental work stays constant";
    cumulative_work += *processed;

    KeyValueStore* store = job->GetStore(TopicPartition{"in", 0}, "counts");
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(std::strtoll(store->Get("k")->c_str(), nullptr, 10), round * 100);
  }
  EXPECT_EQ(cumulative_work, 500);  // Not 100+200+...: no reprocessing.
}

TEST_F(IncrementalTest, FullReprocessingCostGrowsLinearly) {
  // The alternative the paper rules out: re-reading all data each round.
  CreateTopic("in", 1);
  int64_t cumulative_work = 0;
  for (int round = 1; round <= 5; ++round) {
    Produce("in", Batch(100));
    // Fresh group every round = bulk re-read from offset 0.
    JobConfig config;
    config.name = "bulk-round" + std::to_string(round);
    config.inputs = {"in"};
    config.stores = {{"counts", StoreConfig::Kind::kInMemory, false}};
    auto job = MakeJob(config, [] {
      return std::make_unique<KeyedCounterTask>("counts");
    });
    auto processed = job->RunUntilIdle();
    ASSERT_TRUE(processed.ok());
    EXPECT_EQ(*processed, round * 100);  // Work grows with total data size.
    cumulative_work += *processed;
    LIQUID_ASSERT_OK(job->Stop());
  }
  EXPECT_EQ(cumulative_work, 100 + 200 + 300 + 400 + 500);
}

TEST_F(IncrementalTest, RewindToLabeledCheckpointReprocessesFromThere) {
  CreateTopic("in", 1);
  Produce("in", Batch(50));
  const TopicPartition tp{"in", 0};

  JobConfig config;
  config.name = "rewind";
  config.inputs = {"in"};
  config.stores = {{"counts", StoreConfig::Kind::kInMemory, false}};
  {
    auto job = MakeJob(config, [] {
      return std::make_unique<KeyedCounterTask>("counts");
    });
    ASSERT_TRUE(job->RunUntilIdle().ok());
    ASSERT_TRUE(job->Stop().ok());
  }

  // Mark "v2 starts at offset 20" via the offset manager, then overwrite the
  // group's live checkpoint with it (annotation-based rewind, §4.2).
  messaging::OffsetCommit marker;
  marker.offset = 20;
  marker.annotations = {{"version", "v2"}};
  ASSERT_TRUE(offsets_->CommitLabeled("job.rewind", tp, "v2-start", marker).ok());
  auto labeled = offsets_->FetchLabeled("job.rewind", tp, "v2-start");
  ASSERT_TRUE(labeled.ok());
  ASSERT_TRUE(offsets_->Commit("job.rewind", tp, *labeled).ok());

  auto job = MakeJob(config, [] {
    return std::make_unique<KeyedCounterTask>("counts");
  });
  auto processed = job->RunUntilIdle();
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(*processed, 30);  // Offsets 20..49 replayed.
}

TEST_F(IncrementalTest, IdempotentKeyedUpdatesAbsorbAtLeastOnceReplay) {
  // §4.3: at-least-once duplicates are harmless for keyed idempotent state.
  CreateTopic("in", 1);
  Produce("in", {Record::KeyValue("user", "status=gold")});
  JobConfig config;
  config.name = "idem";
  config.inputs = {"in"};
  config.stores = {{"latest", StoreConfig::Kind::kInMemory, false}};
  // Upsert task: last write wins.
  class UpsertTask : public StreamTask {
   public:
    Status Init(TaskContext* context) override {
      store_ = context->GetStore("latest");
      return Status::OK();
    }
    Status Process(const messaging::ConsumerRecord& envelope, MessageCollector*,
                   TaskCoordinator*) override {
      return store_->Put(envelope.record.key, envelope.record.value);
    }
    KeyValueStore* store_ = nullptr;
  };
  auto job = MakeJob(config, [] { return std::make_unique<UpsertTask>(); });
  ASSERT_TRUE(job->RunUntilIdle().ok());

  // Replay the same record (simulated duplicate delivery). Stop first: Stop
  // commits current positions and would overwrite the rewind.
  ASSERT_TRUE(job->Stop().ok());
  messaging::OffsetCommit rewind;
  rewind.offset = 0;
  ASSERT_TRUE(offsets_->Commit("job.idem", TopicPartition{"in", 0}, rewind).ok());
  auto job2 = MakeJob(config, [] { return std::make_unique<UpsertTask>(); });
  ASSERT_TRUE(job2->RunUntilIdle().ok());
  KeyValueStore* store = job2->GetStore(TopicPartition{"in", 0}, "latest");
  EXPECT_EQ(*store->Get("user"), "status=gold");  // Same value, no harm.
  EXPECT_EQ(*store->Count(), 1);
}

}  // namespace
}  // namespace liquid::processing
