#include "processing/job.h"

#include <gtest/gtest.h>

#include <atomic>

#include "processing/operators.h"
#include "processing_test_util.h"

namespace liquid::processing {
namespace {

using messaging::TopicPartition;
using storage::Record;

class JobTest : public ProcessingTestBase {};

/// Counts invocations; optionally asks for shutdown after N records.
class ProbeTask : public StreamTask {
 public:
  ProbeTask(std::atomic<int>* processed, int shutdown_after = -1)
      : processed_(processed), shutdown_after_(shutdown_after) {}

  Status Process(const messaging::ConsumerRecord&, MessageCollector*,
                 TaskCoordinator* coordinator) override {
    const int n = ++*processed_;
    if (shutdown_after_ > 0 && n >= shutdown_after_) {
      coordinator->RequestShutdown();
    }
    return Status::OK();
  }

 private:
  std::atomic<int>* processed_;
  int shutdown_after_;
};

TEST_F(JobTest, ProcessesAllInputRecords) {
  CreateTopic("in", 2);
  std::vector<Record> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(Record::KeyValue("k" + std::to_string(i), "v"));
  }
  Produce("in", records);

  std::atomic<int> processed{0};
  JobConfig config;
  config.name = "probe";
  config.inputs = {"in"};
  auto job = MakeJob(config, [&] { return std::make_unique<ProbeTask>(&processed); });
  auto total = job->RunUntilIdle();
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 50);
  EXPECT_EQ(processed.load(), 50);
}

TEST_F(JobTest, OneTaskPerInputPartition) {
  CreateTopic("in", 3);
  std::vector<Record> records;
  for (int i = 0; i < 30; ++i) {
    records.push_back(Record::KeyValue("k" + std::to_string(i), "v"));
  }
  Produce("in", records);

  std::atomic<int> processed{0};
  std::atomic<int> tasks_created{0};
  JobConfig config;
  config.name = "tasks";
  config.inputs = {"in"};
  auto job = MakeJob(config, [&] {
    ++tasks_created;
    return std::make_unique<ProbeTask>(&processed);
  });
  ASSERT_TRUE(job->RunUntilIdle().ok());
  EXPECT_EQ(tasks_created.load(), 3);  // One task per partition (§3.2).
  EXPECT_EQ(job->AssignedPartitions().size(), 3u);
}

TEST_F(JobTest, MapJobWritesDerivedFeed) {
  CreateTopic("in", 1);
  CreateTopic("out", 1);
  Produce("in", {Record::KeyValue("a", "1"), Record::KeyValue("b", "2"),
                 Record::KeyValue("c", "3")});

  JobConfig config;
  config.name = "upper";
  config.inputs = {"in"};
  auto job = MakeJob(config, [] {
    return std::make_unique<MapTask>(
        "out", [](const messaging::ConsumerRecord& envelope) {
          Record mapped = envelope.record;
          mapped.value = "mapped-" + mapped.value;
          return std::optional<Record>(std::move(mapped));
        });
  });
  ASSERT_TRUE(job->RunUntilIdle().ok());
  auto out = ReadAll(TopicPartition{"out", 0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value.substr(0, 7), "mapped-");
}

TEST_F(JobTest, FilterDropsRecords) {
  CreateTopic("in", 1);
  CreateTopic("out", 1);
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(Record::KeyValue("k", std::to_string(i)));
  }
  Produce("in", records);

  JobConfig config;
  config.name = "filter";
  config.inputs = {"in"};
  auto job = MakeJob(config, [] {
    return std::make_unique<MapTask>(
        "out", [](const messaging::ConsumerRecord& envelope)
                   -> std::optional<Record> {
          if (std::stoi(envelope.record.value) % 2 != 0) return std::nullopt;
          return envelope.record;
        });
  });
  ASSERT_TRUE(job->RunUntilIdle().ok());
  EXPECT_EQ(ReadAll(TopicPartition{"out", 0}).size(), 5u);
}

TEST_F(JobTest, CheckpointsResumeAcrossJobRestarts) {
  CreateTopic("in", 1);
  std::vector<Record> first;
  for (int i = 0; i < 10; ++i) first.push_back(Record::KeyValue("k", "v"));
  Produce("in", first);

  std::atomic<int> processed{0};
  JobConfig config;
  config.name = "resume";
  config.inputs = {"in"};
  {
    auto job = MakeJob(config, [&] { return std::make_unique<ProbeTask>(&processed); });
    ASSERT_TRUE(job->RunUntilIdle().ok());
    EXPECT_EQ(processed.load(), 10);
    ASSERT_TRUE(job->Stop().ok());
  }
  // New data arrives while the job is down.
  Produce("in", first);
  // A fresh job instance resumes from the checkpoint: only new data.
  processed = 0;
  auto job = MakeJob(config, [&] { return std::make_unique<ProbeTask>(&processed); });
  ASSERT_TRUE(job->RunUntilIdle().ok());
  EXPECT_EQ(processed.load(), 10);
}

TEST_F(JobTest, CheckpointAnnotationsVisibleInOffsetManager) {
  CreateTopic("in", 1);
  Produce("in", {Record::KeyValue("k", "v")});
  JobConfig config;
  config.name = "annotated";
  config.inputs = {"in"};
  config.checkpoint_annotations = {{"version", "v7"}};
  std::atomic<int> processed{0};
  auto job = MakeJob(config, [&] { return std::make_unique<ProbeTask>(&processed); });
  ASSERT_TRUE(job->RunUntilIdle().ok());

  auto commit = offsets_->Fetch("job.annotated", TopicPartition{"in", 0});
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->offset, 1);
  EXPECT_EQ(commit->annotations.at("version"), "v7");
}

TEST_F(JobTest, TaskRequestedShutdownStopsJob) {
  CreateTopic("in", 1);
  std::vector<Record> records;
  for (int i = 0; i < 20; ++i) records.push_back(Record::KeyValue("k", "v"));
  Produce("in", records);

  std::atomic<int> processed{0};
  JobConfig config;
  config.name = "shutdown";
  config.inputs = {"in"};
  config.poll_max_records = 5;
  auto job = MakeJob(config, [&] {
    return std::make_unique<ProbeTask>(&processed, /*shutdown_after=*/10);
  });
  auto total = job->RunUntilIdle();
  ASSERT_TRUE(total.ok());
  EXPECT_LT(processed.load(), 20);
  // Further RunOnce fails: the job is stopped.
  EXPECT_TRUE(job->RunOnce().status().IsFailedPrecondition());
}

TEST_F(JobTest, TwoInstancesSplitPartitions) {
  CreateTopic("in", 4);
  std::vector<Record> records;
  for (int i = 0; i < 40; ++i) {
    records.push_back(Record::KeyValue("k" + std::to_string(i), "v"));
  }
  Produce("in", records);

  std::atomic<int> p1{0}, p2{0};
  JobConfig config;
  config.name = "shared";
  config.inputs = {"in"};
  auto job1 = MakeJob(config, [&] { return std::make_unique<ProbeTask>(&p1); },
                      nullptr, "0");
  auto job2 = MakeJob(config, [&] { return std::make_unique<ProbeTask>(&p2); },
                      nullptr, "1");
  for (int round = 0; round < 30; ++round) {
    LIQUID_ASSERT_OK(job1->RunOnce());
    LIQUID_ASSERT_OK(job2->RunOnce());
  }
  EXPECT_EQ(p1.load() + p2.load(), 40);
  EXPECT_GT(p1.load(), 0);
  EXPECT_GT(p2.load(), 0);
  EXPECT_EQ(job1->AssignedPartitions().size(), 2u);
  EXPECT_EQ(job2->AssignedPartitions().size(), 2u);
}

TEST_F(JobTest, WindowCalledOnInterval) {
  CreateTopic("in", 1);
  CreateTopic("counts", 1);
  Produce("in", {Record::KeyValue("x", "1"), Record::KeyValue("x", "1"),
                 Record::KeyValue("y", "1")});

  JobConfig config;
  config.name = "windowed";
  config.inputs = {"in"};
  config.stores = {{"state", StoreConfig::Kind::kInMemory, false}};
  config.window_interval_ms = 100;
  auto job = MakeJob(config, [] {
    return std::make_unique<KeyedCounterTask>("state", "counts");
  });
  ASSERT_TRUE(job->RunOnce().ok());  // Processes data; no window yet.
  EXPECT_TRUE(ReadAll(TopicPartition{"counts", 0}).empty());

  clock_.AdvanceMs(150);
  ASSERT_TRUE(job->RunOnce().ok());  // Window fires.
  ASSERT_TRUE(job->Commit().ok());
  auto out = ReadAll(TopicPartition{"counts", 0});
  ASSERT_EQ(out.size(), 2u);  // One record per key.
}

TEST_F(JobTest, InvalidConfigRejected) {
  JobConfig config;  // No name, no inputs.
  auto job = Job::Create(cluster_.get(), offsets_.get(), coordinator_.get(),
                         &state_disk_, config,
                         [] { return nullptr; });
  EXPECT_TRUE(job.status().IsInvalidArgument());
}

}  // namespace
}  // namespace liquid::processing
