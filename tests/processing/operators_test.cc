#include "processing/operators.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "processing_test_util.h"

namespace liquid::processing {
namespace {

using messaging::TopicPartition;
using storage::Record;

class OperatorsTest : public ProcessingTestBase {
 protected:
  std::map<std::string, std::string> OutputAsMap(const std::string& topic,
                                                 int partitions = 1) {
    std::map<std::string, std::string> out;
    for (int p = 0; p < partitions; ++p) {
      for (const auto& record : ReadAll(TopicPartition{topic, p})) {
        out[record.key] = record.value;
      }
    }
    return out;
  }
};

TEST_F(OperatorsTest, WindowedAggregateSumsPerWindowAndKey) {
  CreateTopic("in", 1);
  CreateTopic("out", 1);
  std::vector<Record> records;
  // Window size 1000ms: events at 100..900 in window 0, 1100.. in window 1000.
  records.push_back(Record::KeyValue("cdn0", "5", 100));
  records.push_back(Record::KeyValue("cdn0", "7", 900));
  records.push_back(Record::KeyValue("cdn1", "3", 500));
  records.push_back(Record::KeyValue("cdn0", "11", 1100));
  records.push_back(Record::KeyValue("cdn0", "1", 2500));  // Closes window 1000.
  Produce("in", records);

  JobConfig config;
  config.name = "agg";
  config.inputs = {"in"};
  config.stores = {{"windows", StoreConfig::Kind::kInMemory, false}};
  config.window_interval_ms = 1;
  auto job = MakeJob(config, [] {
    return std::make_unique<WindowedAggregateTask>("windows", "out", 1000);
  });
  ASSERT_TRUE(job->RunOnce().ok());
  clock_.AdvanceMs(10);
  ASSERT_TRUE(job->RunOnce().ok());  // Window() emits closed windows.
  ASSERT_TRUE(job->Commit().ok());

  auto out = OutputAsMap("out");
  // Window [0,1000) closed: cdn0=12, cdn1=3. Window [1000,2000) closed: 11.
  EXPECT_EQ(out.at(WindowedAggregateTask::WindowKey(0, "cdn0")), "12");
  EXPECT_EQ(out.at(WindowedAggregateTask::WindowKey(0, "cdn1")), "3");
  EXPECT_EQ(out.at(WindowedAggregateTask::WindowKey(1000, "cdn0")), "11");
  // Window [2000,3000) still open: not emitted.
  EXPECT_EQ(out.count(WindowedAggregateTask::WindowKey(2000, "cdn0")), 0u);
}

TEST_F(OperatorsTest, WindowedAggregateEmitsEachWindowOnce) {
  CreateTopic("in", 1);
  CreateTopic("out", 1);
  Produce("in", {Record::KeyValue("k", "1", 100),
                 Record::KeyValue("k", "1", 5000)});
  JobConfig config;
  config.name = "agg-once";
  config.inputs = {"in"};
  config.stores = {{"windows", StoreConfig::Kind::kInMemory, false}};
  config.window_interval_ms = 1;
  auto job = MakeJob(config, [] {
    return std::make_unique<WindowedAggregateTask>("windows", "out", 1000);
  });
  for (int i = 0; i < 5; ++i) {
    LIQUID_ASSERT_OK(job->RunOnce());
    clock_.AdvanceMs(5);
  }
  LIQUID_ASSERT_OK(job->Commit());
  EXPECT_EQ(ReadAll(TopicPartition{"out", 0}).size(), 1u);  // Emitted once.
}

TEST_F(OperatorsTest, StreamTableJoinEnrichesStream) {
  CreateTopic("profiles", 1);  // Table side.
  CreateTopic("clicks", 1);    // Stream side.
  CreateTopic("joined", 1);
  Produce("profiles", {Record::KeyValue("u1", "alice"),
                       Record::KeyValue("u2", "bob")});

  JobConfig config;
  config.name = "join";
  config.inputs = {"profiles", "clicks"};
  config.stores = {{"table", StoreConfig::Kind::kInMemory, true}};
  auto job = MakeJob(config, [] {
    return std::make_unique<StreamTableJoinTask>("table", "profiles", "joined");
  });
  ASSERT_TRUE(job->RunUntilIdle().ok());  // Table loaded.

  Produce("clicks", {Record::KeyValue("u1", "click-home"),
                     Record::KeyValue("u3", "click-feed"),  // No profile.
                     Record::KeyValue("u2", "click-jobs")});
  ASSERT_TRUE(job->RunUntilIdle().ok());

  auto out = OutputAsMap("joined");
  EXPECT_EQ(out.at("u1"), "click-home|alice");
  EXPECT_EQ(out.at("u2"), "click-jobs|bob");
  EXPECT_EQ(out.count("u3"), 0u);  // Unmatched stream records dropped.
}

TEST_F(OperatorsTest, StreamTableJoinSeesTableUpdates) {
  CreateTopic("profiles", 1);
  CreateTopic("clicks", 1);
  CreateTopic("joined", 1);
  JobConfig config;
  config.name = "join-upd";
  config.inputs = {"profiles", "clicks"};
  config.stores = {{"table", StoreConfig::Kind::kInMemory, false}};
  auto job = MakeJob(config, [] {
    return std::make_unique<StreamTableJoinTask>("table", "profiles", "joined");
  });

  Produce("profiles", {Record::KeyValue("u1", "old-name")});
  ASSERT_TRUE(job->RunUntilIdle().ok());
  Produce("profiles", {Record::KeyValue("u1", "new-name")});
  ASSERT_TRUE(job->RunUntilIdle().ok());
  Produce("clicks", {Record::KeyValue("u1", "click")});
  ASSERT_TRUE(job->RunUntilIdle().ok());
  EXPECT_EQ(OutputAsMap("joined").at("u1"), "click|new-name");
}

TEST_F(OperatorsTest, StreamTableJoinHonoursTombstones) {
  CreateTopic("profiles", 1);
  CreateTopic("clicks", 1);
  CreateTopic("joined", 1);
  JobConfig config;
  config.name = "join-del";
  config.inputs = {"profiles", "clicks"};
  config.stores = {{"table", StoreConfig::Kind::kInMemory, false}};
  auto job = MakeJob(config, [] {
    return std::make_unique<StreamTableJoinTask>("table", "profiles", "joined");
  });
  Produce("profiles", {Record::KeyValue("u1", "alice")});
  ASSERT_TRUE(job->RunUntilIdle().ok());
  Produce("profiles", {Record::Tombstone("u1")});
  ASSERT_TRUE(job->RunUntilIdle().ok());
  Produce("clicks", {Record::KeyValue("u1", "click")});
  ASSERT_TRUE(job->RunUntilIdle().ok());
  EXPECT_TRUE(OutputAsMap("joined").empty());  // Deleted: no join.
}

TEST_F(OperatorsTest, KeyedCounterWindowEmitsCurrentCounts) {
  CreateTopic("in", 1);
  CreateTopic("out", 1);
  Produce("in", {Record::KeyValue("a", "e"), Record::KeyValue("a", "e"),
                 Record::KeyValue("b", "e")});
  JobConfig config;
  config.name = "kc";
  config.inputs = {"in"};
  config.stores = {{"c", StoreConfig::Kind::kInMemory, false}};
  config.window_interval_ms = 1;
  auto job = MakeJob(config, [] {
    return std::make_unique<KeyedCounterTask>("c", "out");
  });
  LIQUID_ASSERT_OK(job->RunOnce());
  clock_.AdvanceMs(5);
  LIQUID_ASSERT_OK(job->RunOnce());
  LIQUID_ASSERT_OK(job->Commit());
  auto out = OutputAsMap("out");
  EXPECT_EQ(out.at("a"), "2");
  EXPECT_EQ(out.at("b"), "1");
}

TEST_F(OperatorsTest, MissingStoreFailsInit) {
  CreateTopic("in", 1);
  Produce("in", {Record::KeyValue("k", "v")});
  JobConfig config;
  config.name = "broken";
  config.inputs = {"in"};  // No stores declared.
  auto job = MakeJob(config, [] {
    return std::make_unique<KeyedCounterTask>("undeclared");
  });
  auto result = job->RunOnce();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace liquid::processing
