#include "processing/pipeline.h"

#include <gtest/gtest.h>

#include "processing_test_util.h"

namespace liquid::processing {
namespace {

using messaging::TopicPartition;
using storage::Record;

/// Multi-stage dataflow graphs chained through the messaging layer (§3.2).
class PipelineTest : public ProcessingTestBase {};

TEST_F(PipelineTest, ThreeStageChainTransformsEndToEnd) {
  CreateTopic("raw", 1);
  CreateTopic("s1", 1);
  CreateTopic("s2", 1);
  CreateTopic("final", 1);
  std::vector<Record> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(Record::KeyValue("k" + std::to_string(i), "x"));
  }
  Produce("raw", records);

  Pipeline pipeline(cluster_.get(), offsets_.get(), coordinator_.get(),
                    &state_disk_);
  auto append_stage = [](const std::string& tag) {
    return [tag](const messaging::ConsumerRecord& envelope) {
      Record out = envelope.record;
      out.value += "-" + tag;
      return std::optional<Record>(std::move(out));
    };
  };
  ASSERT_TRUE(pipeline.AddMapStage("stage-a", "raw", "s1", append_stage("a")).ok());
  ASSERT_TRUE(pipeline.AddMapStage("stage-b", "s1", "s2", append_stage("b")).ok());
  ASSERT_TRUE(
      pipeline.AddMapStage("stage-c", "s2", "final", append_stage("c")).ok());
  EXPECT_EQ(pipeline.stage_count(), 3u);

  auto total = pipeline.RunUntilAllIdle();
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 60);  // 20 records through 3 stages.

  auto out = ReadAll(TopicPartition{"final", 0});
  ASSERT_EQ(out.size(), 20u);
  for (const auto& record : out) EXPECT_EQ(record.value, "x-a-b-c");
}

TEST_F(PipelineTest, StagesDecoupledThroughLog) {
  // A slow (not-yet-run) downstream stage does not block the upstream one:
  // the intermediate feed buffers everything (§3: "a job at the processing
  // layer can consume from a feed more slowly than the rate at which another
  // job published the data").
  CreateTopic("raw", 1);
  CreateTopic("mid", 1);
  CreateTopic("final", 1);
  std::vector<Record> records;
  for (int i = 0; i < 50; ++i) records.push_back(Record::KeyValue("k", "v"));
  Produce("raw", records);

  Pipeline pipeline(cluster_.get(), offsets_.get(), coordinator_.get(),
                    &state_disk_);
  LIQUID_ASSERT_OK(pipeline.AddMapStage(
      "fast", "raw", "mid", [](const messaging::ConsumerRecord& envelope) {
        return std::optional<Record>(envelope.record);
      }));
  LIQUID_ASSERT_OK(pipeline.AddMapStage(
      "slow", "mid", "final", [](const messaging::ConsumerRecord& envelope) {
        return std::optional<Record>(envelope.record);
      }));

  // Run only the upstream stage to completion.
  Job* fast = pipeline.stage(0);
  while (*fast->RunOnce() > 0) {
  }
  ASSERT_TRUE(fast->Commit().ok());
  EXPECT_EQ(ReadAll(TopicPartition{"mid", 0}).size(), 50u);
  EXPECT_TRUE(ReadAll(TopicPartition{"final", 0}).empty());

  // The downstream stage catches up later, nothing lost.
  Job* slow = pipeline.stage(1);
  while (*slow->RunOnce() > 0) {
  }
  ASSERT_TRUE(slow->Commit().ok());
  EXPECT_EQ(ReadAll(TopicPartition{"final", 0}).size(), 50u);
}

TEST_F(PipelineTest, FanOutTwoConsumersOfOneFeed) {
  // One derived feed consumed by two independent jobs (different groups).
  CreateTopic("raw", 1);
  CreateTopic("out-a", 1);
  CreateTopic("out-b", 1);
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) records.push_back(Record::KeyValue("k", "v"));
  Produce("raw", records);

  Pipeline pipeline(cluster_.get(), offsets_.get(), coordinator_.get(),
                    &state_disk_);
  LIQUID_ASSERT_OK(pipeline.AddMapStage(
      "branch-a", "raw", "out-a", [](const messaging::ConsumerRecord& envelope) {
        return std::optional<Record>(envelope.record);
      }));
  LIQUID_ASSERT_OK(pipeline.AddMapStage(
      "branch-b", "raw", "out-b", [](const messaging::ConsumerRecord& envelope) {
        return std::optional<Record>(envelope.record);
      }));
  ASSERT_TRUE(pipeline.RunUntilAllIdle().ok());
  EXPECT_EQ(ReadAll(TopicPartition{"out-a", 0}).size(), 10u);
  EXPECT_EQ(ReadAll(TopicPartition{"out-b", 0}).size(), 10u);
}

TEST_F(PipelineTest, LongChainPropagatesIncrementally) {
  const int kStages = 6;
  CreateTopic("stage0", 1);
  for (int i = 1; i <= kStages; ++i) {
    CreateTopic("stage" + std::to_string(i), 1);
  }
  Pipeline pipeline(cluster_.get(), offsets_.get(), coordinator_.get(),
                    &state_disk_);
  for (int i = 0; i < kStages; ++i) {
    LIQUID_ASSERT_OK(pipeline.AddMapStage(
        "hop" + std::to_string(i), "stage" + std::to_string(i),
        "stage" + std::to_string(i + 1),
        [](const messaging::ConsumerRecord& envelope) {
          return std::optional<Record>(envelope.record);
        }));
  }
  // Two waves of input; each fully traverses the chain.
  for (int wave = 0; wave < 2; ++wave) {
    Produce("stage0", {Record::KeyValue("k", "wave" + std::to_string(wave))});
    ASSERT_TRUE(pipeline.RunUntilAllIdle().ok());
    EXPECT_EQ(ReadAll(TopicPartition{"stage" + std::to_string(kStages), 0}).size(),
              static_cast<size_t>(wave + 1));
  }
}

}  // namespace
}  // namespace liquid::processing
