#include "isolation/scheduler.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "storage/disk.h"

#include "test_util.h"

namespace liquid::isolation {
namespace {

/// Resource isolation (§3.2, §4.4): ETL-as-a-service must guarantee that a
/// resource-hungry job cannot starve its neighbours.
class SchedulerTest : public ::testing::Test {
 protected:
  SystemClock clock_;
};

TEST(ContainerTest, MemoryBudgetEnforced) {
  Container container({"job", 1.0, 1000});
  EXPECT_TRUE(container.ChargeMemory(600).ok());
  EXPECT_TRUE(container.ChargeMemory(600).IsResourceExhausted());
  EXPECT_EQ(container.memory_used(), 600);
  container.ReleaseMemory(500);
  EXPECT_TRUE(container.ChargeMemory(600).ok());
  container.ReleaseMemory(10000);  // Clamped at zero.
  EXPECT_EQ(container.memory_used(), 0);
}

TEST(ContainerTest, VruntimeScalesInverselyWithShare) {
  Container heavy({"heavy", 4.0, 1 << 20});
  Container light({"light", 1.0, 1 << 20});
  heavy.ChargeCpuUs(4000);
  light.ChargeCpuUs(4000);
  // Same CPU burned: the high-share container has LOWER vruntime (it is
  // entitled to more).
  EXPECT_LT(heavy.vruntime(), light.vruntime());
}

TEST_F(SchedulerTest, RunsEverythingEventually) {
  FairScheduler scheduler(/*isolation=*/true, &clock_);
  const int a = scheduler.RegisterContainer({"a", 1.0, 1 << 20});
  const int b = scheduler.RegisterContainer({"b", 1.0, 1 << 20});
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    LIQUID_ASSERT_OK(scheduler.Submit(a, [&done] { ++done; }));
    LIQUID_ASSERT_OK(scheduler.Submit(b, [&done] { ++done; }));
  }
  auto completed = scheduler.RunUntilIdle();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(completed[a], 10);
  EXPECT_EQ(completed[b], 10);
}

TEST_F(SchedulerTest, SubmitToUnknownContainerFails) {
  FairScheduler scheduler(true, &clock_);
  EXPECT_TRUE(scheduler.Submit(3, [] {}).IsInvalidArgument());
  EXPECT_EQ(scheduler.container(3), nullptr);
}

TEST_F(SchedulerTest, FairSchedulingInterleavesDespiteNoisyNeighbour) {
  // Noisy job: each item burns ~200us. Victim: each item is instant.
  // With isolation the victim's items complete early, interleaved; without,
  // they queue behind the noisy flood.
  auto run = [this](bool isolation) {
    FairScheduler scheduler(isolation, &clock_);
    const int noisy = scheduler.RegisterContainer({"noisy", 1.0, 1 << 20});
    const int victim = scheduler.RegisterContainer({"victim", 1.0, 1 << 20});
    std::vector<int> completion_order;  // 0 = noisy item, 1 = victim item.
    // The noisy job floods first.
    for (int i = 0; i < 50; ++i) {
      LIQUID_EXPECT_OK(scheduler.Submit(noisy, [&completion_order] {
        storage::SpinFor(200 * 1000);
        completion_order.push_back(0);
      }));
    }
    for (int i = 0; i < 5; ++i) {
      LIQUID_EXPECT_OK(scheduler.Submit(victim, [&completion_order] {
        completion_order.push_back(1);
      }));
    }
    scheduler.RunUntilIdle();
    // Position by which all victim items finished.
    int last_victim = -1;
    for (size_t i = 0; i < completion_order.size(); ++i) {
      if (completion_order[i] == 1) last_victim = static_cast<int>(i);
    }
    return last_victim;
  };

  const int isolated_pos = run(true);
  const int fifo_pos = run(false);
  // FIFO: victim waits for all 50 noisy items -> finishes at the very end.
  EXPECT_GE(fifo_pos, 50);
  // Fair: victim's cheap items complete very early.
  EXPECT_LT(isolated_pos, 15);
}

TEST_F(SchedulerTest, SharesProportionallyFavourHigherShare) {
  FairScheduler scheduler(true, &clock_);
  const int gold = scheduler.RegisterContainer({"gold", 3.0, 1 << 20});
  const int bronze = scheduler.RegisterContainer({"bronze", 1.0, 1 << 20});
  // Equal work per item for both.
  for (int i = 0; i < 100; ++i) {
    LIQUID_ASSERT_OK(scheduler.Submit(gold, [] { storage::SpinFor(50 * 1000); }));
    LIQUID_ASSERT_OK(scheduler.Submit(bronze, [] { storage::SpinFor(50 * 1000); }));
  }
  // Run a bounded number of dispatches.
  for (int i = 0; i < 40; ++i) scheduler.RunOne();
  // gold should have completed roughly 3x bronze's items.
  EXPECT_GT(scheduler.completed(gold), scheduler.completed(bronze));
  EXPECT_GE(scheduler.completed(gold), 2 * scheduler.completed(bronze) - 3);
}

TEST_F(SchedulerTest, RunOneReturnsFalseWhenEmpty) {
  FairScheduler scheduler(true, &clock_);
  scheduler.RegisterContainer({"a", 1.0, 1 << 20});
  EXPECT_FALSE(scheduler.RunOne());
}

TEST_F(SchedulerTest, BudgetedRunStopsAtDeadline) {
  FairScheduler scheduler(true, &clock_);
  const int a = scheduler.RegisterContainer({"a", 1.0, 1 << 20});
  for (int i = 0; i < 1000; ++i) {
    LIQUID_ASSERT_OK(scheduler.Submit(a, [] { storage::SpinFor(2 * 1000 * 1000); }));  // 2ms.
  }
  auto completed = scheduler.RunUntilIdle(/*budget_ms=*/20);
  EXPECT_LT(completed[a], 1000);  // Ran out of budget long before the queue.
  EXPECT_GT(completed[a], 0);
}

}  // namespace
}  // namespace liquid::isolation
