#include "workload/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>

namespace liquid::workload {
namespace {

TEST(EventCodecTest, RoundTrip) {
  std::map<std::string, std::string> fields{
      {"page", "home"}, {"load_ms", "123"}, {"cdn", "cdn2"}};
  auto parsed = ParseEvent(EncodeEvent(fields));
  EXPECT_EQ(parsed, fields);
}

TEST(EventCodecTest, EmptyAndMalformedTolerated) {
  EXPECT_TRUE(ParseEvent("").empty());
  auto parsed = ParseEvent("novalue;k=v;;also-no-value");
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.at("k"), "v");
}

TEST(RumGeneratorTest, EventsHaveAllFields) {
  RumEventGenerator generator(RumEventGenerator::Options{});
  for (int i = 0; i < 100; ++i) {
    auto record = generator.Next(1000 + i);
    EXPECT_EQ(record.timestamp_ms, 1000 + i);
    EXPECT_FALSE(record.key.empty());  // Session id.
    auto fields = ParseEvent(record.value);
    EXPECT_EQ(fields.count("page"), 1u);
    EXPECT_EQ(fields.count("load_ms"), 1u);
    EXPECT_EQ(fields.count("region"), 1u);
    EXPECT_EQ(fields.count("cdn"), 1u);
  }
  EXPECT_EQ(generator.events_generated(), 100);
}

TEST(RumGeneratorTest, AnomalyWindowMakesOneCdnSlow) {
  RumEventGenerator::Options options;
  options.anomaly_start_event = 0;
  options.anomaly_end_event = 2000;
  options.anomalous_cdn = 1;
  options.anomaly_load_ms = 9999;
  RumEventGenerator generator(options);
  int64_t slow_on_bad_cdn = 0, slow_on_other = 0;
  for (int i = 0; i < 2000; ++i) {
    auto fields = ParseEvent(generator.Next(i).value);
    const int64_t load = std::strtoll(fields["load_ms"].c_str(), nullptr, 10);
    if (load == 9999) {
      if (fields["cdn"] == "cdn1") ++slow_on_bad_cdn;
      else ++slow_on_other;
    }
  }
  EXPECT_GT(slow_on_bad_cdn, 300);  // Roughly a quarter of events.
  EXPECT_EQ(slow_on_other, 0);
}

TEST(RumGeneratorTest, NormalLoadTimesWithinJitterRange) {
  RumEventGenerator::Options options;
  options.base_load_ms = 100;
  options.load_jitter_ms = 50;
  RumEventGenerator generator(options);  // No anomaly window.
  for (int i = 0; i < 500; ++i) {
    auto fields = ParseEvent(generator.Next(i).value);
    const int64_t load = std::strtoll(fields["load_ms"].c_str(), nullptr, 10);
    EXPECT_GE(load, 100);
    EXPECT_LE(load, 150);
  }
}

TEST(CallGraphGeneratorTest, SpansShareRequestIdAndFormTree) {
  CallGraphGenerator generator(CallGraphGenerator::Options{});
  auto spans = generator.NextRequest(5000);
  ASSERT_FALSE(spans.empty());
  const std::string request_id = spans[0].key;
  std::set<int> span_ids;
  int roots = 0;
  for (const auto& record : spans) {
    EXPECT_EQ(record.key, request_id);
    auto fields = ParseEvent(record.value);
    const int span = std::atoi(fields.at("span").c_str());
    const int parent = std::atoi(fields.at("parent").c_str());
    span_ids.insert(span);
    if (parent == -1) ++roots;
    else EXPECT_NE(span, parent);
  }
  EXPECT_EQ(roots, 1);  // Exactly one root span.
  EXPECT_EQ(span_ids.size(), spans.size());  // Unique span ids.
  // Every non-root parent exists in the set.
  for (const auto& record : spans) {
    auto fields = ParseEvent(record.value);
    const int parent = std::atoi(fields.at("parent").c_str());
    if (parent >= 0) {
      EXPECT_TRUE(span_ids.count(parent));
    }
  }
}

TEST(CallGraphGeneratorTest, DistinctRequestsDistinctIds) {
  CallGraphGenerator generator(CallGraphGenerator::Options{});
  auto a = generator.NextRequest(0);
  auto b = generator.NextRequest(0);
  EXPECT_NE(a[0].key, b[0].key);
  EXPECT_EQ(generator.requests_generated(), 2);
}

TEST(CallGraphGeneratorTest, SlowServiceGetsSlowSpans) {
  CallGraphGenerator::Options options;
  options.slow_service = 0;
  options.slow_latency_us = 777777;
  options.num_services = 2;  // Make the slow one frequent.
  CallGraphGenerator generator(options);
  bool saw_slow = false;
  for (int i = 0; i < 50 && !saw_slow; ++i) {
    for (const auto& record : generator.NextRequest(0)) {
      auto fields = ParseEvent(record.value);
      if (fields.at("service") == "svc0") {
        EXPECT_EQ(fields.at("latency_us"), "777777");
        saw_slow = true;
      }
    }
  }
  EXPECT_TRUE(saw_slow);
}

TEST(ProfileGeneratorTest, KeysZipfSkewed) {
  ProfileUpdateGenerator::Options options;
  options.num_users = 1000;
  options.zipf_theta = 0.99;
  ProfileUpdateGenerator generator(options);
  std::map<std::string, int> counts;
  for (int i = 0; i < 5000; ++i) {
    auto record = generator.Next(i);
    EXPECT_EQ(record.key.substr(0, 4), "user");
    EXPECT_EQ(record.value.size(), options.value_bytes);
    counts[record.key]++;
  }
  // Skew: far fewer distinct users than events.
  EXPECT_LT(counts.size(), 2500u);
  int max_count = 0;
  for (const auto& [key, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 50);
}

}  // namespace
}  // namespace liquid::workload
