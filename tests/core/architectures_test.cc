#include "core/architectures.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"

namespace liquid::core {
namespace {

/// Lambda / Kappa / Liquid comparison (§2.2, experiment E11). These tests
/// assert the qualitative shape the paper claims; the bench measures sizes.
class ArchitecturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Liquid::Options options;
    options.cluster.num_brokers = 3;
    options.clock = &clock_;
    auto liquid = Liquid::Start(options);
    ASSERT_TRUE(liquid.ok());
    liquid_ = std::move(liquid).value();

    dfs::DfsConfig dfs_config;
    dfs_config.num_datanodes = 2;
    dfs_config.replication = 1;
    fs_ = std::make_unique<dfs::DistributedFileSystem>(dfs_config);
    engine_ = std::make_unique<mapreduce::MapReduceEngine>(fs_.get(), &clock_);
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Liquid> liquid_;
  std::unique_ptr<dfs::DistributedFileSystem> fs_;
  std::unique_ptr<mapreduce::MapReduceEngine> engine_;
};

TEST_F(ArchitecturesTest, LambdaIsCorrectButCostsTwoCodePaths) {
  ArchitectureComparison comparison(liquid_.get(), 300, 10);
  auto report = comparison.RunLambda(fs_.get(), engine_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->architecture, "lambda");
  EXPECT_EQ(report->code_paths, 2);  // The Lambda maintenance tax.
  EXPECT_EQ(report->correct_keys, report->total_keys);
  EXPECT_GT(report->bytes_materialized, 0u);  // DFS dump + MR output.
  EXPECT_GE(report->records_processed, 600);  // Stream + batch over all data.
  EXPECT_TRUE(report->serving_fresh_during_reprocess);
}

TEST_F(ArchitecturesTest, KappaSingleCodePathDoubleTransientFootprint) {
  ArchitectureComparison comparison(liquid_.get(), 300, 10);
  auto report = comparison.RunKappa();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->code_paths, 1);
  EXPECT_EQ(report->correct_keys, report->total_keys);
  EXPECT_GE(report->records_processed, 600);  // v1 full + v2 full re-read.
  EXPECT_TRUE(report->serving_fresh_during_reprocess);
  EXPECT_GT(report->bytes_materialized, 0u);  // Two live state copies.
}

TEST_F(ArchitecturesTest, LiquidSingleCodePathNoExtraMaterialization) {
  ArchitectureComparison comparison(liquid_.get(), 300, 10);
  auto report = comparison.RunLiquid();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->code_paths, 1);
  EXPECT_EQ(report->correct_keys, report->total_keys);
  EXPECT_EQ(report->bytes_materialized, 0u);  // Rewind in place.
  EXPECT_GE(report->records_processed, 600);  // v1 pass + v2 replay.
}

TEST_F(ArchitecturesTest, AllThreeProduceIdenticalResults) {
  ArchitectureComparison comparison(liquid_.get(), 120, 6);
  auto lambda = comparison.RunLambda(fs_.get(), engine_.get());
  auto kappa = comparison.RunKappa();
  auto liquid = comparison.RunLiquid();
  ASSERT_TRUE(lambda.ok());
  ASSERT_TRUE(kappa.ok());
  ASSERT_TRUE(liquid.ok());
  EXPECT_EQ(lambda->correct_keys, lambda->total_keys);
  EXPECT_EQ(kappa->correct_keys, kappa->total_keys);
  EXPECT_EQ(liquid->correct_keys, liquid->total_keys);
}

}  // namespace
}  // namespace liquid::core
