#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>

#include "common/clock.h"
#include "core/liquid.h"
#include "processing/operators.h"
#include "workload/generators.h"

#include "test_util.h"

namespace liquid::core {
namespace {

using storage::Record;

/// End-to-end scenarios from §5.1 running through the full stack: source
/// feed -> processing job(s) -> derived feed -> back-end consumer.
class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Liquid::Options options;
    options.cluster.num_brokers = 3;
    options.clock = &clock_;
    auto liquid = Liquid::Start(options);
    ASSERT_TRUE(liquid.ok());
    liquid_ = std::move(liquid).value();
  }

  std::map<std::string, std::string> Drain(const std::string& feed,
                                           const std::string& group) {
    std::map<std::string, std::string> out;
    auto consumer = liquid_->NewConsumer(group, group + "-m");
    LIQUID_EXPECT_OK(consumer->Subscribe({feed}));
    while (true) {
      auto records = consumer->Poll(256);
      if (!records.ok() || records->empty()) break;
      for (const auto& envelope : *records) {
        out[envelope.record.key] = envelope.record.value;
      }
    }
    return out;
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Liquid> liquid_;
};

TEST_F(IntegrationTest, SiteSpeedMonitoringDetectsSlowCdn) {
  // §5.1 "site speed monitoring": RUM events grouped by CDN; a job keeps
  // per-CDN aggregate load times and flags anomalies nearline.
  ASSERT_TRUE(liquid_->CreateSourceFeed("rum-events", FeedOptions{}).ok());
  ASSERT_TRUE(liquid_
                  ->CreateDerivedFeed("cdn-latency", FeedOptions{}, "rum-agg",
                                      "v1", {"rum-events"})
                  .ok());

  workload::RumEventGenerator::Options gen_options;
  gen_options.anomaly_start_event = 0;
  gen_options.anomaly_end_event = 1000;
  gen_options.anomalous_cdn = 2;
  gen_options.anomaly_load_ms = 8000;
  workload::RumEventGenerator generator(gen_options);
  auto producer = liquid_->NewProducer();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(producer->Send("rum-events", generator.Next(1000 + i)).ok());
  }
  LIQUID_ASSERT_OK(producer->Flush());

  // Aggregation job: sum(load_ms) and count per CDN.
  class CdnAggTask : public processing::StreamTask {
   public:
    Status Init(processing::TaskContext* context) override {
      store_ = context->GetStore("agg");
      return Status::OK();
    }
    Status Process(const messaging::ConsumerRecord& envelope,
                   processing::MessageCollector* collector,
                   processing::TaskCoordinator*) override {
      auto fields = workload::ParseEvent(envelope.record.value);
      const std::string cdn = fields["cdn"];
      const int64_t load = std::strtoll(fields["load_ms"].c_str(), nullptr, 10);
      auto current = store_->Get(cdn);
      int64_t sum = 0, count = 0;
      if (current.ok()) {
        auto parts = workload::ParseEvent(*current);
        sum = std::strtoll(parts["sum"].c_str(), nullptr, 10);
        count = std::strtoll(parts["count"].c_str(), nullptr, 10);
      }
      sum += load;
      ++count;
      const std::string value = workload::EncodeEvent(
          {{"sum", std::to_string(sum)}, {"count", std::to_string(count)}});
      LIQUID_RETURN_NOT_OK(store_->Put(cdn, value));
      // Publish running averages downstream.
      return collector->Send("cdn-latency",
                             Record::KeyValue(cdn, std::to_string(sum / count)));
    }
    processing::KeyValueStore* store_ = nullptr;
  };

  processing::JobConfig config;
  config.name = "rum-agg";
  config.inputs = {"rum-events"};
  config.stores = {{"agg", processing::StoreConfig::Kind::kInMemory, true}};
  auto job = liquid_->SubmitJob(config, [] {
    return std::make_unique<CdnAggTask>();
  });
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->RunUntilIdle().ok());

  // Back-end anomaly detector consumes the derived feed.
  auto averages = Drain("cdn-latency", "anomaly-detector");
  ASSERT_TRUE(averages.count("cdn2"));
  const int64_t slow = std::strtoll(averages["cdn2"].c_str(), nullptr, 10);
  for (const auto& [cdn, value] : averages) {
    if (cdn == "cdn2") continue;
    const int64_t normal = std::strtoll(value.c_str(), nullptr, 10);
    EXPECT_GT(slow, normal * 5) << cdn;  // Clear anomaly.
  }
}

TEST_F(IntegrationTest, CallGraphAssemblyGroupsSpansByRequest) {
  // §5.1 "call graph assembly": spans share a request id; the job assembles
  // per-request graphs and reports span counts + total latency.
  ASSERT_TRUE(liquid_->CreateSourceFeed("rest-calls", FeedOptions{}).ok());
  ASSERT_TRUE(liquid_
                  ->CreateDerivedFeed("call-graphs", FeedOptions{}, "assembler",
                                      "v1", {"rest-calls"})
                  .ok());
  workload::CallGraphGenerator generator(workload::CallGraphGenerator::Options{});
  auto producer = liquid_->NewProducer();
  std::map<std::string, int> expected_spans;
  for (int i = 0; i < 50; ++i) {
    for (auto& span : generator.NextRequest(1000 + i)) {
      expected_spans[span.key]++;
      ASSERT_TRUE(producer->Send("rest-calls", std::move(span)).ok());
    }
  }
  LIQUID_ASSERT_OK(producer->Flush());

  class AssembleTask : public processing::StreamTask {
   public:
    Status Init(processing::TaskContext* context) override {
      store_ = context->GetStore("graphs");
      return Status::OK();
    }
    Status Process(const messaging::ConsumerRecord& envelope,
                   processing::MessageCollector* collector,
                   processing::TaskCoordinator*) override {
      auto fields = workload::ParseEvent(envelope.record.value);
      const std::string& request = envelope.record.key;
      auto current = store_->Get(request);
      int64_t spans = 0, latency = 0;
      if (current.ok()) {
        auto parts = workload::ParseEvent(*current);
        spans = std::strtoll(parts["spans"].c_str(), nullptr, 10);
        latency = std::strtoll(parts["latency_us"].c_str(), nullptr, 10);
      }
      ++spans;
      latency += std::strtoll(fields["latency_us"].c_str(), nullptr, 10);
      const std::string value =
          workload::EncodeEvent({{"spans", std::to_string(spans)},
                                 {"latency_us", std::to_string(latency)}});
      LIQUID_RETURN_NOT_OK(store_->Put(request, value));
      return collector->Send("call-graphs", Record::KeyValue(request, value));
    }
    processing::KeyValueStore* store_ = nullptr;
  };

  processing::JobConfig config;
  config.name = "assembler";
  config.inputs = {"rest-calls"};
  config.stores = {{"graphs", processing::StoreConfig::Kind::kInMemory, true}};
  auto job = liquid_->SubmitJob(config, [] {
    return std::make_unique<AssembleTask>();
  });
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->RunUntilIdle().ok());

  auto graphs = Drain("call-graphs", "capacity-planner");
  ASSERT_EQ(graphs.size(), expected_spans.size());
  for (const auto& [request, value] : graphs) {
    auto parts = workload::ParseEvent(value);
    EXPECT_EQ(std::atoi(parts["spans"].c_str()), expected_spans.at(request))
        << request;
  }
}

TEST_F(IntegrationTest, DataCleaningPipelineWithReprocessing) {
  // §5.1 "data cleaning and normalization": clean nearline, then the
  // algorithm changes and history is re-processed with the new version.
  ASSERT_TRUE(liquid_->CreateSourceFeed("user-content", FeedOptions{}).ok());
  ASSERT_TRUE(liquid_
                  ->CreateDerivedFeed("cleaned-content", FeedOptions{},
                                      "cleaner", "v1", {"user-content"})
                  .ok());
  auto producer = liquid_->NewProducer();
  for (int i = 0; i < 10; ++i) {
    LIQUID_ASSERT_OK(producer->Send("user-content", Record::KeyValue(
                                       "doc" + std::to_string(i), "  TeXT  ")));
  }
  LIQUID_ASSERT_OK(producer->Flush());

  auto make_cleaner = [](const std::string& version) {
    return [version]() -> std::unique_ptr<processing::StreamTask> {
      return std::make_unique<processing::MapTask>(
          "cleaned-content",
          [version](const messaging::ConsumerRecord& envelope) {
            Record out = envelope.record;
            // v1 trims; v2 trims AND lowercases.
            std::string text = envelope.record.value;
            const auto begin = text.find_first_not_of(' ');
            const auto end = text.find_last_not_of(' ');
            text = text.substr(begin, end - begin + 1);
            if (version == "v2") {
              for (char& c : text) c = static_cast<char>(std::tolower(c));
            }
            out.value = version + ":" + text;
            return std::optional<Record>(std::move(out));
          });
    };
  };

  processing::JobConfig config;
  config.name = "cleaner";
  config.inputs = {"user-content"};
  config.checkpoint_annotations = {{"version", "v1"}};
  auto v1 = liquid_->SubmitJob(config, make_cleaner("v1"));
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE((*v1)->RunUntilIdle().ok());
  auto cleaned = Drain("cleaned-content", "search-indexer");
  EXPECT_EQ(cleaned.at("doc0"), "v1:TeXT");

  // Algorithm changes: stop v1, rewind via the offset manager, rerun as v2.
  ASSERT_TRUE(liquid_->StopJob("cleaner").ok());
  messaging::OffsetCommit rewind;
  rewind.offset = 0;
  rewind.annotations = {{"version", "v2"}, {"reason", "algorithm change"}};
  ASSERT_TRUE(liquid_->offsets()
                  ->Commit("job.cleaner", messaging::TopicPartition{"user-content", 0},
                           rewind)
                  .ok());
  config.checkpoint_annotations = {{"version", "v2"}};
  auto v2 = liquid_->SubmitJob(config, make_cleaner("v2"));
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE((*v2)->RunUntilIdle().ok());

  // All documents re-cleaned with v2 (latest value per key).
  auto recleaned = Drain("cleaned-content", "search-indexer-2");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(recleaned.at("doc" + std::to_string(i)), "v2:text");
  }
}

TEST_F(IntegrationTest, OperationalAnalysisAggregatesBrokerMetrics) {
  // §5.1 "operational analysis": infrastructure metrics flow through the
  // stack like any other feed and are aggregated for dashboards.
  ASSERT_TRUE(liquid_->CreateSourceFeed("metrics", FeedOptions{}).ok());
  ASSERT_TRUE(liquid_->CreateSourceFeed("ops-summary", FeedOptions{}).ok());

  // Publish per-broker produce counters as metric events.
  auto producer = liquid_->NewProducer();
  for (int id : liquid_->cluster()->AliveBrokerIds()) {
    auto counters = liquid_->cluster()->broker(id)->metrics()->CounterValues();
    for (const auto& [name, value] : counters) {
      LIQUID_ASSERT_OK(producer->Send("metrics",
                     Record::KeyValue("broker" + std::to_string(id) + "." + name,
                                      std::to_string(value))));
    }
    // Ensure there is at least one metric per broker.
    LIQUID_ASSERT_OK(producer->Send("metrics", Record::KeyValue(
                                  "broker" + std::to_string(id) + ".up", "1")));
  }
  LIQUID_ASSERT_OK(producer->Flush());

  processing::JobConfig config;
  config.name = "ops";
  config.inputs = {"metrics"};
  config.stores = {{"sums", processing::StoreConfig::Kind::kInMemory, false}};
  auto job = liquid_->SubmitJob(config, [] {
    return std::make_unique<processing::KeyedCounterTask>("sums", "ops-summary");
  });
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->RunUntilIdle().ok());
  auto* store = (*job)->GetStore(0, "sums");
  ASSERT_NE(store, nullptr);
  EXPECT_GE(*store->Count(), 3);  // At least one metric per broker.
}

}  // namespace
}  // namespace liquid::core
