#include "core/liquid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/clock.h"
#include "processing/operators.h"

#include "test_util.h"

namespace liquid::core {
namespace {

class LiquidTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Liquid::Options options;
    options.cluster.num_brokers = 3;
    options.clock = &clock_;
    auto liquid = Liquid::Start(options);
    ASSERT_TRUE(liquid.ok()) << liquid.status().ToString();
    liquid_ = std::move(liquid).value();
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Liquid> liquid_;
};

TEST_F(LiquidTest, StartsBothLayers) {
  EXPECT_EQ(liquid_->cluster()->AliveBrokerIds().size(), 3u);
  EXPECT_NE(liquid_->offsets(), nullptr);
  EXPECT_NE(liquid_->groups(), nullptr);
}

TEST_F(LiquidTest, SourceFeedMetadata) {
  FeedOptions options;
  options.partitions = 2;
  options.replication_factor = 2;
  ASSERT_TRUE(liquid_->CreateSourceFeed("user-activity", options).ok());
  auto metadata = liquid_->GetFeedMetadata("user-activity");
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(metadata->kind, FeedKind::kSourceOfTruth);
  EXPECT_TRUE(metadata->producer_job.empty());
  EXPECT_EQ(metadata->created_ms, 1000);
}

TEST_F(LiquidTest, DerivedFeedCarriesLineage) {
  ASSERT_TRUE(liquid_->CreateSourceFeed("raw", FeedOptions{}).ok());
  ASSERT_TRUE(liquid_
                  ->CreateDerivedFeed("cleaned", FeedOptions{}, "cleaner-job",
                                      "v2.1", {"raw"})
                  .ok());
  auto metadata = liquid_->GetFeedMetadata("cleaned");
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(metadata->kind, FeedKind::kDerived);
  EXPECT_EQ(metadata->producer_job, "cleaner-job");
  EXPECT_EQ(metadata->code_version, "v2.1");
  ASSERT_EQ(metadata->upstream_feeds.size(), 1u);
  EXPECT_EQ(metadata->upstream_feeds[0], "raw");
}

TEST_F(LiquidTest, LineageWalksTransitively) {
  LIQUID_ASSERT_OK(liquid_->CreateSourceFeed("raw", FeedOptions{}));
  LIQUID_ASSERT_OK(liquid_->CreateDerivedFeed("normalized", FeedOptions{}, "norm", "v1", {"raw"}));
  LIQUID_ASSERT_OK(liquid_->CreateDerivedFeed("sessions", FeedOptions{}, "sess", "v1",
                             {"normalized"}));
  auto lineage = liquid_->GetLineage("sessions");
  ASSERT_TRUE(lineage.ok());
  EXPECT_EQ(lineage->size(), 3u);
  EXPECT_TRUE(std::find(lineage->begin(), lineage->end(), "raw") !=
              lineage->end());
}

TEST_F(LiquidTest, FeedMetadataSerializationRoundTrip) {
  FeedMetadata metadata;
  metadata.kind = FeedKind::kDerived;
  metadata.producer_job = "job-x";
  metadata.code_version = "v3";
  metadata.upstream_feeds = {"a", "b"};
  metadata.created_ms = 777;
  auto parsed = FeedMetadata::Parse(metadata.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, FeedKind::kDerived);
  EXPECT_EQ(parsed->producer_job, "job-x");
  EXPECT_EQ(parsed->code_version, "v3");
  EXPECT_EQ(parsed->upstream_feeds, metadata.upstream_feeds);
  EXPECT_EQ(parsed->created_ms, 777);
}

TEST_F(LiquidTest, MissingFeedIsNotFound) {
  EXPECT_TRUE(liquid_->GetFeedMetadata("ghost").status().IsNotFound());
  EXPECT_TRUE(liquid_->GetLineage("ghost").status().IsNotFound());
}

TEST_F(LiquidTest, ProduceConsumeThroughFacade) {
  ASSERT_TRUE(liquid_->CreateSourceFeed("events", FeedOptions{}).ok());
  auto producer = liquid_->NewProducer();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        producer->Send("events", storage::Record::KeyValue("k", "v")).ok());
  }
  ASSERT_TRUE(producer->Flush().ok());
  auto consumer = liquid_->NewConsumer("readers", "r1");
  ASSERT_TRUE(consumer->Subscribe({"events"}).ok());
  auto records = consumer->Poll(100);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 10u);
}

TEST_F(LiquidTest, SubmitAndStopJob) {
  LIQUID_ASSERT_OK(liquid_->CreateSourceFeed("in", FeedOptions{}));
  processing::JobConfig config;
  config.name = "etl";
  config.inputs = {"in"};
  config.stores = {{"c", processing::StoreConfig::Kind::kInMemory, false}};
  auto job = liquid_->SubmitJob(config, [] {
    return std::make_unique<processing::KeyedCounterTask>("c");
  });
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(liquid_->GetJob("etl"), *job);

  // Duplicate submission rejected (ETL-as-a-service keeps names unique).
  auto duplicate = liquid_->SubmitJob(config, [] {
    return std::make_unique<processing::KeyedCounterTask>("c");
  });
  EXPECT_TRUE(duplicate.status().IsAlreadyExists());

  ASSERT_TRUE(liquid_->StopJob("etl").ok());
  EXPECT_EQ(liquid_->GetJob("etl"), nullptr);
  EXPECT_TRUE(liquid_->StopJob("etl").IsNotFound());
}

TEST_F(LiquidTest, SubmittedJobProcessesData) {
  LIQUID_ASSERT_OK(liquid_->CreateSourceFeed("in", FeedOptions{}));
  auto producer = liquid_->NewProducer();
  for (int i = 0; i < 20; ++i) {
    LIQUID_ASSERT_OK(producer->Send("in", storage::Record::KeyValue("user", "e")));
  }
  LIQUID_ASSERT_OK(producer->Flush());

  processing::JobConfig config;
  config.name = "count";
  config.inputs = {"in"};
  config.stores = {{"c", processing::StoreConfig::Kind::kInMemory, true}};
  auto job = liquid_->SubmitJob(config, [] {
    return std::make_unique<processing::KeyedCounterTask>("c");
  });
  ASSERT_TRUE(job.ok());
  auto processed = (*job)->RunUntilIdle();
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(*processed, 20);
  auto* store = (*job)->GetStore(0, "c");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(*store->Get("user"), "20");
}

TEST_F(LiquidTest, FacadeExposesAllCoordinators) {
  EXPECT_NE(liquid_->transactions(), nullptr);
  EXPECT_NE(liquid_->admin(), nullptr);
  auto description = liquid_->admin()->DescribeCluster();
  EXPECT_EQ(description.alive_brokers.size(), 3u);
}

TEST_F(LiquidTest, ExactlyOnceJobThroughFacade) {
  LIQUID_ASSERT_OK(liquid_->CreateSourceFeed("in", FeedOptions{}));
  LIQUID_ASSERT_OK(liquid_->CreateSourceFeed("out", FeedOptions{}));
  auto producer = liquid_->NewProducer();
  for (int i = 0; i < 5; ++i) {
    LIQUID_ASSERT_OK(producer->Send("in", storage::Record::KeyValue("k", std::to_string(i))));
  }
  LIQUID_ASSERT_OK(producer->Flush());

  processing::JobConfig config;
  config.name = "eo";
  config.inputs = {"in"};
  config.exactly_once = true;  // The facade supplies the txn coordinator.
  auto job = liquid_->SubmitJob(config, [] {
    return std::make_unique<processing::MapTask>(
        "out", [](const messaging::ConsumerRecord& envelope) {
          return std::optional<storage::Record>(envelope.record);
        });
  });
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->RunUntilIdle().ok());
  ASSERT_TRUE(liquid_->StopJob("eo").ok());

  messaging::ConsumerConfig consumer_config;
  consumer_config.group = "check";
  consumer_config.read_committed = true;
  messaging::Consumer consumer(liquid_->cluster(), liquid_->offsets(),
                               liquid_->groups(), "m", consumer_config);
  LIQUID_ASSERT_OK(consumer.Subscribe({"out"}));
  size_t seen = 0;
  for (int i = 0; i < 10; ++i) seen += consumer.Poll(64)->size();
  EXPECT_EQ(seen, 5u);
}

TEST_F(LiquidTest, RunMaintenanceCompactsAndEvicts) {
  core::FeedOptions compacted;
  compacted.log.compaction_enabled = true;
  compacted.log.segment_bytes = 2048;
  LIQUID_ASSERT_OK(liquid_->CreateSourceFeed("keyed", compacted));
  auto producer = liquid_->NewProducer();
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 20; ++k) {
      LIQUID_ASSERT_OK(producer->Send("keyed", storage::Record::KeyValue(
                                  "key" + std::to_string(k), "update")));
    }
  }
  LIQUID_ASSERT_OK(producer->Flush());
  const messaging::TopicPartition tp{"keyed", 0};
  auto leader = liquid_->cluster()->LeaderFor(tp);
  // Capture the broker's log size before and after maintenance: the compactor
  // shrinks the keyed feed.
  auto fetch_before = (*leader)->Fetch(tp, 0, 100 << 20, -1);
  ASSERT_TRUE(liquid_->RunMaintenance().ok());
  auto fetch_after = (*leader)->Fetch(tp, 0, 100 << 20, -1);
  EXPECT_LT(fetch_after->records.size(), fetch_before->records.size());
  // The materialized view is intact: 20 distinct keys with latest values.
  std::set<std::string> keys;
  int64_t cursor = 0;
  while (true) {
    auto fetch = (*leader)->Fetch(tp, cursor, 1 << 20, -1);
    if (!fetch.ok() || fetch->records.empty()) break;
    for (const auto& record : fetch->records) keys.insert(record.key);
    cursor = fetch->records.back().offset + 1;
  }
  EXPECT_EQ(keys.size(), 20u);
}

}  // namespace
}  // namespace liquid::core
