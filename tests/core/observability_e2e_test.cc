// End-to-end observability tests: trace propagation across the whole stack
// (producer -> broker -> consumer -> job -> downstream feed) and consumer-lag
// visibility for dead consumers. See OBSERVABILITY.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/liquid.h"
#include "messaging/lag_monitor.h"

#include "test_util.h"

namespace liquid::core {
namespace {

/// Every NowUs() observation advances time by 1us, so two sequential
/// observations are strictly ordered — which makes span-timestamp
/// monotonicity assertions deterministic (a plain SimulatedClock would give
/// every hop the same timestamp; a SystemClock could too, at us resolution).
class TickingClock : public Clock {
 public:
  int64_t NowMs() const override { return now_us_.load() / 1000; }
  int64_t NowUs() const override { return now_us_.fetch_add(1) + 1; }
  void SleepMs(int64_t ms) override { now_us_.fetch_add(ms * 1000); }

 private:
  mutable std::atomic<int64_t> now_us_{1'000'000};
};

/// Forwards every input record's value to a downstream feed.
class ForwardTask : public processing::StreamTask {
 public:
  explicit ForwardTask(std::string output) : output_(std::move(output)) {}

  Status Process(const messaging::ConsumerRecord& envelope,
                 processing::MessageCollector* collector,
                 processing::TaskCoordinator*) override {
    return collector->Send(output_,
                           storage::Record::KeyValue(envelope.record.key,
                                                     envelope.record.value));
  }

 private:
  std::string output_;
};

class ObservabilityE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Default()->Clear();
    TraceCollector::Default()->SetSampleRate(1.0);
    MetricsRegistry::Default()->ResetAllForTest();
    Liquid::Options options;
    options.cluster.num_brokers = 3;
    options.clock = &clock_;
    auto liquid = Liquid::Start(options);
    ASSERT_TRUE(liquid.ok()) << liquid.status().ToString();
    liquid_ = std::move(liquid).value();
  }

  void TearDown() override {
    liquid_.reset();
    // The collector and registry are process-wide; leave them quiescent for
    // whatever test runs next in this binary.
    TraceCollector::Default()->SetSampleRate(0.0);
    TraceCollector::Default()->Clear();
    MetricsRegistry::Default()->ResetAllForTest();
  }

  TickingClock clock_;
  std::unique_ptr<Liquid> liquid_;
};

TEST_F(ObservabilityE2eTest, TraceFollowsRecordThroughJobToDownstreamFeed) {
  LIQUID_ASSERT_OK(liquid_->CreateSourceFeed("events", FeedOptions{}));
  LIQUID_ASSERT_OK(liquid_->CreateDerivedFeed("events-copied", FeedOptions{},
                                              "copy", "v1", {"events"}));

  processing::JobConfig config;
  config.name = "copy";
  config.inputs = {"events"};
  config.commit_interval_ms = 0;
  auto job = liquid_->SubmitJob(
      config, [] { return std::make_unique<ForwardTask>("events-copied"); });
  LIQUID_ASSERT_OK(job.status());

  auto producer = liquid_->NewProducer();
  LIQUID_ASSERT_OK(producer->Send(
      "events", storage::Record::KeyValue("k", "hello")));
  LIQUID_ASSERT_OK(producer->Flush());
  LIQUID_ASSERT_OK((*job)->RunUntilIdle());

  // The downstream record must carry the SAME trace id the producer stamped
  // on the input record.
  auto consumer = liquid_->NewConsumer("verify", "v0");
  LIQUID_ASSERT_OK(consumer->Subscribe({"events-copied"}));
  std::vector<messaging::ConsumerRecord> got;
  for (int attempt = 0; attempt < 10 && got.empty(); ++attempt) {
    auto batch = consumer->Poll(16);
    LIQUID_ASSERT_OK(batch.status());
    got = std::move(batch).value();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].record.value, "hello");
  ASSERT_TRUE(got[0].record.traced());
  const uint64_t trace_id = got[0].record.trace_id;

  const auto spans = TraceCollector::Default()->Trace(trace_id);
  ASSERT_GE(spans.size(), 4u);
  std::set<std::string> hops;
  std::map<std::string, int64_t> first_start;
  std::vector<int64_t> starts;
  for (const Span& span : spans) {
    EXPECT_EQ(span.trace_id, trace_id);
    EXPECT_GE(span.end_us, span.start_us);
    hops.insert(span.name);
    auto it = first_start.find(span.name);
    if (it == first_start.end() || span.start_us < it->second) {
      first_start[span.name] = span.start_us;
    }
    starts.push_back(span.start_us);
  }
  // One hop of each kind at minimum: produce + append on the input feed,
  // fetch into the job, the task's process, then produce/append/fetch again
  // on the derived feed — all under one trace id.
  EXPECT_TRUE(hops.count("produce")) << "hops missing produce";
  EXPECT_TRUE(hops.count("append")) << "hops missing append";
  EXPECT_TRUE(hops.count("fetch")) << "hops missing fetch";
  EXPECT_TRUE(hops.count("process")) << "hops missing process";

  // Span start timestamps are strictly monotonic: every hop observed the
  // ticking clock after the previous one.
  std::sort(starts.begin(), starts.end());
  for (size_t i = 1; i < starts.size(); ++i) {
    EXPECT_LT(starts[i - 1], starts[i]);
  }
  // And the hop order matches the data path.
  EXPECT_LT(first_start["produce"], first_start["append"]);
  EXPECT_LT(first_start["append"], first_start["fetch"]);
  EXPECT_LT(first_start["fetch"], first_start["process"]);

  // Latency metrics derived from the trace timestamps are live.
  MetricsRegistry* metrics = MetricsRegistry::Default();
  EXPECT_GE(metrics->GetHistogram("liquid.job.copy.process_us")->count(), 1);
  EXPECT_GE(metrics->GetHistogram("liquid.job.copy.e2e_latency_us")->count(),
            1);
  EXPECT_GE(
      metrics->GetHistogram("liquid.consumer.verify.e2e_latency_us")->count(),
      1);
  const std::string text = metrics->RenderPrometheus();
  EXPECT_NE(text.find("liquid_consumer_verify_e2e_latency_us_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("liquid_job_copy_process_us_count"), std::string::npos);
}

TEST_F(ObservabilityE2eTest, DeadConsumerLagKeepsGrowing) {
  LIQUID_ASSERT_OK(liquid_->CreateSourceFeed("clicks", FeedOptions{}));
  auto producer = liquid_->NewProducer();
  auto send_batch = [&](int n) {
    for (int i = 0; i < n; ++i) {
      LIQUID_ASSERT_OK(producer->Send(
          "clicks", storage::Record::ValueOnly("c" + std::to_string(i))));
    }
    LIQUID_ASSERT_OK(producer->Flush());
  };
  send_batch(10);

  // A healthy consumer catches up and commits: zero lag.
  auto consumer = liquid_->NewConsumer("laggy", "m0");
  LIQUID_ASSERT_OK(consumer->Subscribe({"clicks"}));
  size_t seen = 0;
  while (seen < 10) {
    auto batch = consumer->Poll(64);
    LIQUID_ASSERT_OK(batch.status());
    seen += batch->size();
  }
  LIQUID_ASSERT_OK(consumer->Commit());

  auto lag = messaging::CollectConsumerLag(liquid_->cluster(),
                                           liquid_->offsets(),
                                           liquid_->clock());
  auto find_group = [&](const std::vector<messaging::GroupLag>& groups)
      -> const messaging::GroupLag* {
    for (const auto& group : groups) {
      if (group.group == "laggy") return &group;
    }
    return nullptr;
  };
  const messaging::GroupLag* laggy = find_group(lag);
  ASSERT_NE(laggy, nullptr);
  EXPECT_EQ(laggy->total_lag, 0);

  // The consumer dies; traffic continues. Lag derived from committed offsets
  // keeps growing even though nobody is polling.
  LIQUID_ASSERT_OK(consumer->Close());
  send_batch(10);
  clock_.SleepMs(5000);

  lag = messaging::CollectConsumerLag(liquid_->cluster(), liquid_->offsets(),
                                      liquid_->clock());
  laggy = find_group(lag);
  ASSERT_NE(laggy, nullptr);
  EXPECT_EQ(laggy->total_lag, 10);
  EXPECT_GE(laggy->max_checkpoint_age_ms, 5000);

  // The gauges land in the default registry and the Prometheus exposition.
  MetricsRegistry* metrics = MetricsRegistry::Default();
  EXPECT_EQ(metrics->GetGauge("liquid.consumer.laggy.lag")->value(), 10);
  EXPECT_GE(metrics->GetGauge("liquid.consumer.laggy.checkpoint_age_ms")
                ->value(),
            5000);
  const std::string text = metrics->RenderPrometheus();
  EXPECT_NE(text.find("liquid_consumer_laggy_lag 10\n"), std::string::npos);

  // Ten more records, still dead: strictly worse.
  send_batch(10);
  lag = messaging::CollectConsumerLag(liquid_->cluster(), liquid_->offsets(),
                                      liquid_->clock());
  laggy = find_group(lag);
  ASSERT_NE(laggy, nullptr);
  EXPECT_EQ(laggy->total_lag, 20);
  const std::string table = messaging::FormatLagTable(lag);
  EXPECT_NE(table.find("laggy"), std::string::npos);
  EXPECT_NE(table.find("clicks-0"), std::string::npos);
}

TEST_F(ObservabilityE2eTest, SamplingOffLeavesRecordsUntraced) {
  TraceCollector::Default()->SetSampleRate(0.0);
  LIQUID_ASSERT_OK(liquid_->CreateSourceFeed("plain", FeedOptions{}));
  auto producer = liquid_->NewProducer();
  LIQUID_ASSERT_OK(
      producer->Send("plain", storage::Record::KeyValue("k", "v")));
  LIQUID_ASSERT_OK(producer->Flush());

  auto consumer = liquid_->NewConsumer("quiet", "m0");
  LIQUID_ASSERT_OK(consumer->Subscribe({"plain"}));
  std::vector<messaging::ConsumerRecord> got;
  for (int attempt = 0; attempt < 10 && got.empty(); ++attempt) {
    auto batch = consumer->Poll(16);
    LIQUID_ASSERT_OK(batch.status());
    got = std::move(batch).value();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_FALSE(got[0].record.traced());
  EXPECT_TRUE(TraceCollector::Default()->Snapshot().empty());
  // No trace means no e2e sample either — but the record still counts.
  EXPECT_EQ(
      MetricsRegistry::Default()
          ->GetHistogram("liquid.consumer.quiet.e2e_latency_us")
          ->count(),
      0);
  EXPECT_EQ(MetricsRegistry::Default()
                ->GetCounter("liquid.consumer.quiet.records")
                ->value(),
            1);
}

}  // namespace
}  // namespace liquid::core
