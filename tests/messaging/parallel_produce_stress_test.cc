#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/metadata.h"
#include "storage/record.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

// Contention stress for the sharded broker hot path: producers hammer one
// broker's partitions from many threads — disjoint (each thread owns a
// partition, the per-replica-lock best case) and overlapping (every thread
// touches every partition, exercising replica-lock handoff) — while a fetcher
// reads concurrently and a churner reassigns replicas (StopReplica /
// BecomeLeader), forcing writer-vs-reader traffic on the broker's membership
// lock. Assertions are on final committed state; the interleavings are the
// point, and ThreadSanitizer checks them when scripts/check.sh runs the suite
// with -DLIQUID_SANITIZE=thread.
class ParallelProduceStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 1;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
  }

  Broker* CreateTopic(const std::string& name, int partitions) {
    TopicConfig topic;
    topic.partitions = partitions;
    topic.replication_factor = 1;
    EXPECT_TRUE(cluster_->CreateTopic(name, topic).ok());
    return cluster_->broker(0);
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ParallelProduceStressTest, DisjointPartitionsFullyParallel) {
  constexpr int kThreads = 8;
  constexpr int kBatches = 100;
  Broker* broker = CreateTopic("disjoint", kThreads);

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([broker, t] {
      const TopicPartition tp{"disjoint", t};
      for (int i = 0; i < kBatches; ++i) {
        std::vector<storage::Record> batch;
        batch.push_back(storage::Record::KeyValue(
            "t" + std::to_string(t), "v" + std::to_string(i)));
        LIQUID_ASSERT_OK(broker->Produce(tp, std::move(batch), AckMode::kLeader));
      }
    });
  }
  for (auto& thread : producers) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    auto end = broker->LogEndOffset(TopicPartition{"disjoint", t});
    LIQUID_ASSERT_OK(end);
    EXPECT_EQ(*end, kBatches);
  }
}

TEST_F(ParallelProduceStressTest, OverlappingPartitionsWithConcurrentFetch) {
  constexpr int kThreads = 6;
  constexpr int kPartitions = 3;
  constexpr int kBatches = 100;
  Broker* broker = CreateTopic("overlap", kPartitions);

  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([broker, t] {
      for (int i = 0; i < kBatches; ++i) {
        // Every thread cycles over every partition: replica locks hand off
        // between threads on each batch.
        const TopicPartition tp{"overlap", (t + i) % kPartitions};
        std::vector<storage::Record> batch;
        batch.push_back(storage::Record::KeyValue(
            "t" + std::to_string(t), "v" + std::to_string(i)));
        LIQUID_ASSERT_OK(broker->Produce(tp, std::move(batch), AckMode::kLeader));
      }
    });
  }

  // Committed reads (consumer path) and shared-buffer reads (replica path)
  // race the appends.
  std::thread fetcher([broker, &stop] {
    std::vector<int64_t> cursors(kPartitions, 0);
    while (!stop.load()) {
      for (int p = 0; p < kPartitions; ++p) {
        const TopicPartition tp{"overlap", p};
        auto consumer = broker->Fetch(tp, cursors[p], 1 << 16, -1);
        if (consumer.ok()) cursors[p] = consumer->next_fetch_offset;
        broker->Fetch(tp, 0, 1 << 14, /*replica_id=*/9).status();
      }
    }
  });

  for (auto& thread : producers) thread.join();
  stop.store(true);
  fetcher.join();

  int64_t total = 0;
  for (int p = 0; p < kPartitions; ++p) {
    auto end = broker->LogEndOffset(TopicPartition{"overlap", p});
    LIQUID_ASSERT_OK(end);
    total += *end;
  }
  EXPECT_EQ(total, int64_t{kThreads} * kBatches);
}

TEST_F(ParallelProduceStressTest, ReplicaReassignmentDuringProduce) {
  constexpr int kThreads = 4;
  constexpr int kBatches = 150;
  Broker* broker = CreateTopic("steady", kThreads);

  // The churn partition is repeatedly dropped and re-hosted while producers
  // target both it and the steady partitions: produce paths pin replicas with
  // a shared membership hold, reassignment takes it exclusively.
  const TopicPartition churn_tp{"churn", 0};
  TopicConfig churn_topic;
  churn_topic.partitions = 1;
  churn_topic.replication_factor = 1;
  ASSERT_TRUE(cluster_->CreateTopic("churn", churn_topic).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([broker, churn_tp, t] {
      for (int i = 0; i < kBatches; ++i) {
        const TopicPartition tp =
            i % 3 == 0 ? churn_tp : TopicPartition{"steady", t};
        std::vector<storage::Record> batch;
        batch.push_back(storage::Record::KeyValue(
            "t" + std::to_string(t), "v" + std::to_string(i)));
        // The churn partition may momentarily not be hosted (NotFound) or
        // mid-reassignment (NotLeader); both are expected here.
        broker->Produce(tp, std::move(batch), AckMode::kLeader).status();
      }
    });
  }

  std::thread churner([this, broker, churn_tp, &stop] {
    auto config = cluster_->GetTopicConfig("churn");
    ASSERT_TRUE(config.ok());
    int epoch = 100;
    while (!stop.load()) {
      broker->StopReplica(churn_tp, /*delete_data=*/false).ok();
      PartitionState state;
      state.leader = 0;
      state.leader_epoch = ++epoch;
      state.replicas = {0};
      state.isr = {0};
      LIQUID_ASSERT_OK(broker->BecomeLeader(churn_tp, state, *config));
    }
  });

  for (auto& thread : producers) thread.join();
  stop.store(true);
  churner.join();

  // Steady partitions saw no reassignment: every batch must have landed.
  for (int t = 0; t < kThreads; ++t) {
    auto end = broker->LogEndOffset(TopicPartition{"steady", t});
    LIQUID_ASSERT_OK(end);
    EXPECT_EQ(*end, kBatches - kBatches / 3);
  }
  // The churn partition still works after the dust settles.
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  LIQUID_ASSERT_OK(broker->Produce(churn_tp, std::move(batch), AckMode::kLeader));
}

// Pins the encode-once contract: a replica fetch's shared buffer must hold
// exactly the bytes the legacy deep-copy path yields when its records are
// re-encoded — including traced records, whose trace block rides in the wire
// format.
TEST_F(ParallelProduceStressTest, SharedBufferFetchMatchesDeepCopyBytes) {
  Broker* broker = CreateTopic("bytes", 1);
  const TopicPartition tp{"bytes", 0};

  std::vector<storage::Record> batch;
  batch.push_back(storage::Record::KeyValue("k0", "plain"));
  storage::Record traced = storage::Record::KeyValue("k1", "traced-value");
  traced.trace_id = 0xabcdef12345678ull;
  traced.span_id = 0x1122334455ull;
  traced.ingest_us = 987654;
  batch.push_back(traced);
  batch.push_back(storage::Record::Tombstone("k2"));
  storage::Record no_key = storage::Record::ValueOnly("anonymous");
  batch.push_back(no_key);
  LIQUID_ASSERT_OK(broker->Produce(tp, std::move(batch), AckMode::kLeader));

  // Replica path: shared immutable buffer.
  auto replica_fetch = broker->Fetch(tp, 0, 1 << 20, /*replica_id=*/7);
  LIQUID_ASSERT_OK(replica_fetch);
  ASSERT_EQ(replica_fetch->batch.record_count(), 4u);
  const Slice shared = replica_fetch->batch.bytes();

  // Legacy path: deep-copied Record structs, re-encoded.
  auto consumer_fetch = broker->Fetch(tp, 0, 1 << 20, -1);
  LIQUID_ASSERT_OK(consumer_fetch);
  ASSERT_EQ(consumer_fetch->records.size(), 4u);
  std::string reencoded;
  for (const storage::Record& record : consumer_fetch->records) {
    storage::EncodeRecord(record, &reencoded);
  }
  EXPECT_EQ(std::string(shared.data(), shared.size()), reencoded);

  // The traced record's context survives the shared-buffer round trip.
  auto decoded = replica_fetch->batch.DecodeFrame(1);
  LIQUID_ASSERT_OK(decoded);
  EXPECT_EQ(decoded->trace_id, traced.trace_id);
  EXPECT_EQ(decoded->span_id, traced.span_id);
  EXPECT_EQ(decoded->ingest_us, traced.ingest_us);
}

}  // namespace
}  // namespace liquid::messaging
