#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/producer.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// Consumer liveness: crashed members (no polls) are evicted after the
/// session timeout so their partitions are redistributed and the group keeps
/// draining its feeds.
class LivenessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    offsets_ =
        std::move(OffsetManager::Open(&offsets_disk_, "o/", &clock_)).value();
    coordinator_ = std::make_unique<GroupCoordinator>(
        cluster_.get(), /*session_timeout_ms=*/10'000);
    TopicConfig topic;
    topic.partitions = 4;
    topic.replication_factor = 1;
    ASSERT_TRUE(cluster_->CreateTopic("t", topic).ok());
  }

  std::unique_ptr<Consumer> NewConsumer(const std::string& member) {
    ConsumerConfig config;
    config.group = "g";
    return std::make_unique<Consumer>(cluster_.get(), offsets_.get(),
                                      coordinator_.get(), member, config);
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
  storage::MemDisk offsets_disk_;
  std::unique_ptr<OffsetManager> offsets_;
  std::unique_ptr<GroupCoordinator> coordinator_;
};

TEST_F(LivenessTest, ActiveMembersAreNotEvicted) {
  auto c1 = NewConsumer("m1");
  auto c2 = NewConsumer("m2");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  LIQUID_ASSERT_OK(c2->Subscribe({"t"}));
  for (int i = 0; i < 5; ++i) {
    clock_.AdvanceMs(5'000);  // Under the timeout between polls.
    LIQUID_ASSERT_OK(c1->Poll(1));
    LIQUID_ASSERT_OK(c2->Poll(1));
    EXPECT_EQ(coordinator_->EvictExpiredMembers(), 0);
  }
  EXPECT_EQ(coordinator_->MemberCount("g"), 2);
}

TEST_F(LivenessTest, SilentMemberEvictedAndPartitionsRedistributed) {
  auto c1 = NewConsumer("m1");
  auto c2 = NewConsumer("m2");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  LIQUID_ASSERT_OK(c2->Subscribe({"t"}));
  LIQUID_ASSERT_OK(c1->Poll(0));
  EXPECT_EQ(c1->Assignment().size(), 2u);

  // m2 "crashes" (never polls again); m1 keeps polling.
  clock_.AdvanceMs(15'000);
  LIQUID_ASSERT_OK(c1->Poll(0));
  EXPECT_EQ(coordinator_->EvictExpiredMembers(), 1);
  EXPECT_EQ(coordinator_->MemberCount("g"), 1);
  LIQUID_ASSERT_OK(c1->Poll(0));  // Picks up the new generation.
  EXPECT_EQ(c1->Assignment().size(), 4u);  // m1 owns everything now.
}

TEST_F(LivenessTest, EvictedMembersPartitionsKeepDraining) {
  Producer producer(cluster_.get(), ProducerConfig{});
  for (int i = 0; i < 40; ++i) {
    LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("k" + std::to_string(i), "v")));
  }
  LIQUID_ASSERT_OK(producer.Flush());

  auto c1 = NewConsumer("m1");
  auto c2 = NewConsumer("m2");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  LIQUID_ASSERT_OK(c2->Subscribe({"t"}));
  // m2 consumes a little, commits, then dies.
  LIQUID_ASSERT_OK(c2->Poll(5));
  LIQUID_ASSERT_OK(c2->Commit());
  clock_.AdvanceMs(15'000);
  LIQUID_ASSERT_OK(c1->Poll(0));
  ASSERT_EQ(coordinator_->EvictExpiredMembers(), 1);

  // m1 takes over m2's partitions from the committed offsets and drains all.
  int64_t total = 5;  // m2's share before dying.
  for (int round = 0; round < 50; ++round) {
    auto records = c1->Poll(64);
    if (records.ok()) total += static_cast<int64_t>(records->size());
  }
  EXPECT_GE(total, 40);  // At-least-once: everything delivered.
}

TEST_F(LivenessTest, DisabledTimeoutNeverEvicts) {
  GroupCoordinator no_timeout(cluster_.get(), /*session_timeout_ms=*/-1);
  ConsumerConfig config;
  config.group = "g2";
  Consumer consumer(cluster_.get(), offsets_.get(), &no_timeout, "m", config);
  LIQUID_ASSERT_OK(consumer.Subscribe({"t"}));
  clock_.AdvanceMs(1'000'000);
  EXPECT_EQ(no_timeout.EvictExpiredMembers(), 0);
  EXPECT_EQ(no_timeout.MemberCount("g2"), 1);
}

TEST_F(LivenessTest, RejoinAfterEvictionWorks) {
  auto c1 = NewConsumer("m1");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  clock_.AdvanceMs(20'000);
  ASSERT_EQ(coordinator_->EvictExpiredMembers(), 1);
  EXPECT_EQ(coordinator_->MemberCount("g"), 0);
  // The "recovered" consumer re-subscribes (new session) and gets everything.
  ASSERT_TRUE(c1->Subscribe({"t"}).ok());
  EXPECT_EQ(coordinator_->MemberCount("g"), 1);
  LIQUID_ASSERT_OK(c1->Poll(0));
  EXPECT_EQ(c1->Assignment().size(), 4u);
}

}  // namespace
}  // namespace liquid::messaging
