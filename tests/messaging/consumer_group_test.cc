#include "messaging/group_coordinator.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/producer.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// Consumer-group semantics (§3.1, Fig. 3): queue semantics within a group,
/// pub/sub across groups, rebalancing on membership change.
class ConsumerGroupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    auto offsets = OffsetManager::Open(&offsets_disk_, "offsets/", &clock_);
    offsets_ = std::move(offsets).value();
    coordinator_ = std::make_unique<GroupCoordinator>(cluster_.get());
  }

  void CreateTopic(const std::string& name, int partitions) {
    TopicConfig config;
    config.partitions = partitions;
    config.replication_factor = 1;
    ASSERT_TRUE(cluster_->CreateTopic(name, config).ok());
  }

  std::unique_ptr<Consumer> NewConsumer(const std::string& group,
                                        const std::string& member) {
    ConsumerConfig config;
    config.group = group;
    return std::make_unique<Consumer>(cluster_.get(), offsets_.get(),
                                      coordinator_.get(), member, config);
  }

  void Produce(const std::string& topic, int count) {
    ProducerConfig config;
    config.partitioner = PartitionerType::kRoundRobin;
    config.batch_max_records = 1;
    Producer producer(cluster_.get(), config);
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(producer
                      .Send(topic, storage::Record::KeyValue(
                                       "k" + std::to_string(i),
                                       "v" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(producer.Flush().ok());
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
  storage::MemDisk offsets_disk_;
  std::unique_ptr<OffsetManager> offsets_;
  std::unique_ptr<GroupCoordinator> coordinator_;
};

TEST_F(ConsumerGroupTest, PartitionsSplitAcrossMembers) {
  CreateTopic("t", 4);
  auto c1 = NewConsumer("g", "m1");
  auto c2 = NewConsumer("g", "m2");
  ASSERT_TRUE(c1->Subscribe({"t"}).ok());
  ASSERT_TRUE(c2->Subscribe({"t"}).ok());
  LIQUID_ASSERT_OK(c1->Poll(0));  // Refresh assignment after m2 joined.

  auto a1 = c1->Assignment();
  auto a2 = c2->Assignment();
  EXPECT_EQ(a1.size(), 2u);
  EXPECT_EQ(a2.size(), 2u);
  std::set<TopicPartition> all(a1.begin(), a1.end());
  all.insert(a2.begin(), a2.end());
  EXPECT_EQ(all.size(), 4u);  // Disjoint and complete.
}

TEST_F(ConsumerGroupTest, QueueSemanticsEachMessageToOneMember) {
  CreateTopic("t", 4);
  Produce("t", 40);
  auto c1 = NewConsumer("g", "m1");
  auto c2 = NewConsumer("g", "m2");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  LIQUID_ASSERT_OK(c2->Subscribe({"t"}));

  std::multiset<std::string> seen;
  for (int round = 0; round < 20; ++round) {
    for (auto* consumer : {c1.get(), c2.get()}) {
      auto records = consumer->Poll(16);
      ASSERT_TRUE(records.ok());
      for (const auto& envelope : *records) seen.insert(envelope.record.key);
    }
  }
  EXPECT_EQ(seen.size(), 40u);
  // No duplicates: every key exactly once across the whole group.
  for (const auto& key : seen) EXPECT_EQ(seen.count(key), 1u) << key;
}

TEST_F(ConsumerGroupTest, RebalanceOnMemberLeave) {
  CreateTopic("t", 4);
  auto c1 = NewConsumer("g", "m1");
  auto c2 = NewConsumer("g", "m2");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  LIQUID_ASSERT_OK(c2->Subscribe({"t"}));
  const int64_t generation_before = coordinator_->Generation("g");

  ASSERT_TRUE(c2->Close().ok());
  EXPECT_GT(coordinator_->Generation("g"), generation_before);
  LIQUID_ASSERT_OK(c1->Poll(0));  // Pick up the new assignment.
  EXPECT_EQ(c1->Assignment().size(), 4u);  // m1 owns everything now.
}

TEST_F(ConsumerGroupTest, RebalanceOnMemberJoinPreservesConsumption) {
  CreateTopic("t", 4);
  Produce("t", 20);
  auto c1 = NewConsumer("g", "m1");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  // Consume some, commit.
  auto first = c1->Poll(8);
  ASSERT_EQ(first->size(), 8u);
  ASSERT_TRUE(c1->Commit().ok());

  auto c2 = NewConsumer("g", "m2");
  LIQUID_ASSERT_OK(c2->Subscribe({"t"}));

  // Drain the rest with both members; count total unique records consumed
  // AFTER the commit.
  size_t rest = 0;
  for (int round = 0; round < 20; ++round) {
    rest += c1->Poll(16)->size();
    rest += c2->Poll(16)->size();
  }
  // c1 kept positions of partitions it retained; c2 started from committed
  // offsets of partitions it took over. Some records not covered by the
  // commit may be re-read (at-least-once), never skipped.
  EXPECT_GE(rest, 12u);
  EXPECT_LE(rest, 20u);
}

TEST_F(ConsumerGroupTest, MoreMembersThanPartitionsLeavesSomeIdle) {
  CreateTopic("t", 2);
  auto c1 = NewConsumer("g", "m1");
  auto c2 = NewConsumer("g", "m2");
  auto c3 = NewConsumer("g", "m3");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  LIQUID_ASSERT_OK(c2->Subscribe({"t"}));
  LIQUID_ASSERT_OK(c3->Subscribe({"t"}));
  LIQUID_ASSERT_OK(c1->Poll(0));
  LIQUID_ASSERT_OK(c2->Poll(0));
  LIQUID_ASSERT_OK(c3->Poll(0));
  size_t total = c1->Assignment().size() + c2->Assignment().size() +
                 c3->Assignment().size();
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(coordinator_->MemberCount("g"), 3);
}

TEST_F(ConsumerGroupTest, MixedTopicSubscriptions) {
  CreateTopic("a", 2);
  CreateTopic("b", 2);
  auto ca = NewConsumer("g", "only-a");
  auto cb = NewConsumer("g", "only-b");
  LIQUID_ASSERT_OK(ca->Subscribe({"a"}));
  LIQUID_ASSERT_OK(cb->Subscribe({"b"}));
  LIQUID_ASSERT_OK(ca->Poll(0));
  LIQUID_ASSERT_OK(cb->Poll(0));
  for (const auto& tp : ca->Assignment()) EXPECT_EQ(tp.topic, "a");
  for (const auto& tp : cb->Assignment()) EXPECT_EQ(tp.topic, "b");
  EXPECT_EQ(ca->Assignment().size(), 2u);
  EXPECT_EQ(cb->Assignment().size(), 2u);
}

TEST_F(ConsumerGroupTest, SubscribeToNotYetCreatedTopicIsEmpty) {
  auto consumer = NewConsumer("g", "m1");
  ASSERT_TRUE(consumer->Subscribe({"future-topic"}).ok());
  EXPECT_TRUE(consumer->Assignment().empty());
  auto records = consumer->Poll(10);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());

  // Once the topic appears, a re-join picks it up.
  CreateTopic("future-topic", 2);
  ASSERT_TRUE(consumer->Subscribe({"future-topic"}).ok());
  EXPECT_EQ(consumer->Assignment().size(), 2u);
}

TEST_F(ConsumerGroupTest, GenerationIncreasesMonotonically) {
  CreateTopic("t", 2);
  EXPECT_EQ(coordinator_->Generation("g"), 0);
  auto c1 = NewConsumer("g", "m1");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  const int64_t g1 = coordinator_->Generation("g");
  EXPECT_GT(g1, 0);
  auto c2 = NewConsumer("g", "m2");
  LIQUID_ASSERT_OK(c2->Subscribe({"t"}));
  const int64_t g2 = coordinator_->Generation("g");
  EXPECT_GT(g2, g1);
  LIQUID_ASSERT_OK(c2->Close());
  EXPECT_GT(coordinator_->Generation("g"), g2);
}

TEST_F(ConsumerGroupTest, LeaveUnknownGroupOrMemberFails) {
  EXPECT_TRUE(coordinator_->LeaveGroup("ghost", "m").IsNotFound());
  CreateTopic("t", 1);
  auto c1 = NewConsumer("g", "m1");
  LIQUID_ASSERT_OK(c1->Subscribe({"t"}));
  EXPECT_TRUE(coordinator_->LeaveGroup("g", "ghost-member").IsNotFound());
}

TEST_F(ConsumerGroupTest, PollDistributesFairlyAcrossPartitions) {
  CreateTopic("t", 3);
  Produce("t", 30);
  auto consumer = NewConsumer("g", "m1");
  LIQUID_ASSERT_OK(consumer->Subscribe({"t"}));
  // Small polls should still eventually cover all partitions (round-robin
  // poll cursor), not starve one.
  std::set<int> partitions_seen;
  for (int i = 0; i < 30; ++i) {
    auto records = consumer->Poll(2);
    for (const auto& envelope : *records) {
      partitions_seen.insert(envelope.tp.partition);
    }
  }
  EXPECT_EQ(partitions_seen.size(), 3u);
}

}  // namespace
}  // namespace liquid::messaging
