#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/clock.h"
#include "common/random.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// Randomized fault-injection property test: under arbitrary interleavings of
/// produces (all ack levels), broker crashes, restarts and replication ticks,
/// the replication protocol must preserve its §4.3 invariants:
///   I1. every record acknowledged with acks=all survives to the end;
///   I2. committed data (below the HW) is identical on every replica —
///       replicas never diverge on the committed prefix;
///   I3. HW <= LEO on every replica;
///   I4. offsets served to consumers are strictly increasing with no
///       duplicates.
class ReplicationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicationPropertyTest, InvariantsHoldUnderRandomFaults) {
  SimulatedClock clock(1000);
  ClusterConfig config;
  config.num_brokers = 3;
  Cluster cluster(config, &clock);
  ASSERT_TRUE(cluster.Start().ok());
  TopicConfig topic;
  topic.partitions = 1;
  topic.replication_factor = 3;
  topic.min_insync_replicas = 1;
  ASSERT_TRUE(cluster.CreateTopic("t", topic).ok());
  const TopicPartition tp{"t", 0};

  Random rng(GetParam());
  std::set<std::string> acked_all;  // Values acknowledged with acks=all.
  int sequence = 0;

  for (int step = 0; step < 400; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      // Produce with a random ack level.
      auto leader = cluster.LeaderFor(tp);
      if (!leader.ok()) continue;
      const AckMode acks = rng.Bernoulli(0.5)   ? AckMode::kAll
                           : rng.Bernoulli(0.5) ? AckMode::kLeader
                                                : AckMode::kNone;
      const std::string value = "v" + std::to_string(sequence++);
      std::vector<storage::Record> batch{storage::Record::KeyValue("k", value)};
      auto resp = (*leader)->Produce(tp, batch, acks);
      if (resp.ok() && acks == AckMode::kAll) acked_all.insert(value);
    } else if (dice < 0.70) {
      cluster.ReplicationTick();
    } else if (dice < 0.85) {
      // Crash a random alive broker — but never the last replica alive.
      auto alive = cluster.AliveBrokerIds();
      if (alive.size() <= 1) continue;
      LIQUID_ASSERT_OK(cluster.StopBroker(
          alive[rng.Uniform(static_cast<uint64_t>(alive.size()))]));
    } else {
      // Restart a random dead broker.
      std::vector<int> dead;
      for (int id : cluster.BrokerIds()) {
        if (!cluster.broker(id)->alive()) dead.push_back(id);
      }
      if (dead.empty()) continue;
      LIQUID_ASSERT_OK(cluster.RestartBroker(
          dead[rng.Uniform(static_cast<uint64_t>(dead.size()))]));
    }
  }

  // Quiesce: revive everyone and let replication converge.
  for (int id : cluster.BrokerIds()) {
    if (!cluster.broker(id)->alive()) {
      LIQUID_ASSERT_OK(cluster.RestartBroker(id));
    }
  }
  for (int i = 0; i < 6; ++i) cluster.ReplicationTick();

  auto leader = cluster.LeaderFor(tp);
  ASSERT_TRUE(leader.ok());
  const int64_t hw = *(*leader)->HighWatermark(tp);

  // I3 + I2: every replica agrees on the committed prefix.
  std::map<int, std::vector<std::string>> committed_values;
  for (int id : cluster.BrokerIds()) {
    Broker* broker = cluster.broker(id);
    if (!broker->HostsPartition(tp)) continue;
    const int64_t leo = *broker->LogEndOffset(tp);
    const int64_t replica_hw = *broker->HighWatermark(tp);
    EXPECT_LE(replica_hw, leo) << "broker " << id;
    EXPECT_EQ(leo, *(*leader)->LogEndOffset(tp))
        << "broker " << id << " did not converge";
  }

  // I4 + collect the committed stream from the leader.
  std::vector<storage::Record> all;
  int64_t cursor = 0;
  while (cursor < hw) {
    auto fetch = (*leader)->Fetch(tp, cursor, 1 << 20, -1);
    ASSERT_TRUE(fetch.ok());
    if (fetch->records.empty()) break;
    for (const auto& record : fetch->records) {
      if (!all.empty()) {
        EXPECT_GT(record.offset, all.back().offset);
      }
      all.push_back(record);
    }
    cursor = all.back().offset + 1;
  }

  // I1: nothing acked with acks=all is missing.
  std::set<std::string> present;
  for (const auto& record : all) present.insert(record.value);
  for (const std::string& value : acked_all) {
    EXPECT_TRUE(present.count(value)) << "lost acks=all record " << value;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationPropertyTest,
                         ::testing::Values(1ull, 7ull, 42ull, 1337ull, 9001ull,
                                           31415ull, 271828ull, 999983ull));

}  // namespace
}  // namespace liquid::messaging
