#include "messaging/transaction.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/producer.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// Transactions / exactly-once (§4.3 "ongoing effort"): atomic multi-
/// partition publishing, read_committed isolation, zombie fencing, and
/// offsets-in-transaction.
class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    offsets_ =
        std::move(OffsetManager::Open(&offsets_disk_, "o/", &clock_)).value();
    group_coordinator_ = std::make_unique<GroupCoordinator>(cluster_.get());
    txn_ = std::make_unique<TransactionCoordinator>(cluster_.get(),
                                                    offsets_.get());
    TopicConfig topic;
    topic.partitions = 2;
    topic.replication_factor = 2;
    ASSERT_TRUE(cluster_->CreateTopic("out", topic).ok());
  }

  std::unique_ptr<Producer> NewTxnProducer(const std::string& txn_id) {
    ProducerConfig config;
    config.transactional_id = txn_id;
    config.partitioner = PartitionerType::kRoundRobin;
    config.batch_max_records = 1;
    auto producer = std::make_unique<Producer>(cluster_.get(), config);
    EXPECT_TRUE(producer->InitTransactions(txn_.get()).ok());
    return producer;
  }

  std::vector<std::string> ReadCommitted(const std::string& group) {
    ConsumerConfig config;
    config.group = group;
    config.read_committed = true;
    Consumer consumer(cluster_.get(), offsets_.get(), group_coordinator_.get(),
                      group + "-m", config);
    LIQUID_EXPECT_OK(consumer.Subscribe({"out"}));
    std::vector<std::string> values;
    for (int i = 0; i < 20; ++i) {
      auto records = consumer.Poll(256);
      if (!records.ok()) break;
      for (const auto& envelope : *records) {
        values.push_back(envelope.record.value);
      }
    }
    return values;
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
  storage::MemDisk offsets_disk_;
  std::unique_ptr<OffsetManager> offsets_;
  std::unique_ptr<GroupCoordinator> group_coordinator_;
  std::unique_ptr<TransactionCoordinator> txn_;
};

TEST_F(TransactionTest, CommittedDataVisibleToReadCommitted) {
  auto producer = NewTxnProducer("t1");
  ASSERT_TRUE(producer->BeginTransaction().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        producer->Send("out", storage::Record::KeyValue("k", "v" + std::to_string(i)))
            .ok());
  }
  ASSERT_TRUE(producer->CommitTransaction().ok());
  EXPECT_EQ(ReadCommitted("g1").size(), 10u);
}

TEST_F(TransactionTest, OpenTransactionInvisibleUntilCommit) {
  auto producer = NewTxnProducer("t1");
  ASSERT_TRUE(producer->BeginTransaction().ok());
  LIQUID_ASSERT_OK(producer->Send("out", storage::Record::KeyValue("k", "pending")));
  LIQUID_ASSERT_OK(producer->Flush());
  // read_committed sees nothing; read_uncommitted (default) sees the record.
  EXPECT_TRUE(ReadCommitted("g1").empty());
  ConsumerConfig dirty_config;
  dirty_config.group = "dirty";
  Consumer dirty(cluster_.get(), offsets_.get(), group_coordinator_.get(), "m",
                 dirty_config);
  LIQUID_ASSERT_OK(dirty.Subscribe({"out"}));
  size_t uncommitted_seen = 0;
  for (int i = 0; i < 10; ++i) uncommitted_seen += dirty.Poll(64)->size();
  EXPECT_EQ(uncommitted_seen, 1u);

  ASSERT_TRUE(producer->CommitTransaction().ok());
  EXPECT_EQ(ReadCommitted("g2").size(), 1u);
}

TEST_F(TransactionTest, AbortedDataNeverVisible) {
  auto producer = NewTxnProducer("t1");
  ASSERT_TRUE(producer->BeginTransaction().ok());
  for (int i = 0; i < 5; ++i) {
    LIQUID_ASSERT_OK(producer->Send("out", storage::Record::KeyValue("k", "doomed")));
  }
  ASSERT_TRUE(producer->AbortTransaction().ok());

  // Next transaction commits normally: only its data shows.
  ASSERT_TRUE(producer->BeginTransaction().ok());
  LIQUID_ASSERT_OK(producer->Send("out", storage::Record::KeyValue("k", "survivor")));
  ASSERT_TRUE(producer->CommitTransaction().ok());

  auto values = ReadCommitted("g1");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "survivor");
}

TEST_F(TransactionTest, MultiPartitionAtomicity) {
  auto producer = NewTxnProducer("t1");
  // Round-robin spreads the batch over both partitions; abort removes all.
  ASSERT_TRUE(producer->BeginTransaction().ok());
  for (int i = 0; i < 8; ++i) {
    LIQUID_ASSERT_OK(producer->Send("out", storage::Record::KeyValue("k", "none")));
  }
  ASSERT_TRUE(producer->AbortTransaction().ok());
  ASSERT_TRUE(producer->BeginTransaction().ok());
  for (int i = 0; i < 8; ++i) {
    LIQUID_ASSERT_OK(producer->Send("out", storage::Record::KeyValue("k", "all")));
  }
  ASSERT_TRUE(producer->CommitTransaction().ok());

  auto values = ReadCommitted("g1");
  ASSERT_EQ(values.size(), 8u);
  for (const auto& value : values) EXPECT_EQ(value, "all");
}

TEST_F(TransactionTest, ZombieFencingAbortsPredecessor) {
  auto zombie = NewTxnProducer("shared-id");
  ASSERT_TRUE(zombie->BeginTransaction().ok());
  LIQUID_ASSERT_OK(zombie->Send("out", storage::Record::KeyValue("k", "zombie-write")));
  LIQUID_ASSERT_OK(zombie->Flush());
  // The zombie stalls; a new incarnation with the SAME transactional id
  // initializes — the coordinator aborts the zombie's open transaction.
  auto successor = NewTxnProducer("shared-id");
  ASSERT_TRUE(successor->BeginTransaction().ok());
  LIQUID_ASSERT_OK(successor->Send("out", storage::Record::KeyValue("k", "successor-write")));
  ASSERT_TRUE(successor->CommitTransaction().ok());

  auto values = ReadCommitted("g1");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "successor-write");
}

TEST_F(TransactionTest, OffsetsCommitAtomicallyWithOutputs) {
  const TopicPartition input{"in", 0};
  TopicConfig topic;
  topic.partitions = 1;
  ASSERT_TRUE(cluster_->CreateTopic("in", topic).ok());

  // Committed transaction applies the buffered offsets.
  ASSERT_TRUE(txn_->InitProducer("rw").ok());
  ASSERT_TRUE(txn_->Begin("rw").ok());
  OffsetCommit commit;
  commit.offset = 42;
  ASSERT_TRUE(txn_->AddOffsets("rw", "job", input, commit).ok());
  ASSERT_TRUE(txn_->End("rw", /*commit=*/true).ok());
  EXPECT_EQ(offsets_->Fetch("job", input)->offset, 42);

  // Aborted transaction discards them.
  ASSERT_TRUE(txn_->Begin("rw").ok());
  commit.offset = 99;
  ASSERT_TRUE(txn_->AddOffsets("rw", "job", input, commit).ok());
  ASSERT_TRUE(txn_->End("rw", /*commit=*/false).ok());
  EXPECT_EQ(offsets_->Fetch("job", input)->offset, 42);  // Unchanged.
}

TEST_F(TransactionTest, LastStableOffsetTracksOngoingTxns) {
  TopicConfig topic;
  topic.partitions = 1;
  topic.replication_factor = 1;
  ASSERT_TRUE(cluster_->CreateTopic("lso", topic).ok());
  const TopicPartition tp{"lso", 0};
  Broker* leader = *cluster_->LeaderFor(tp);

  // Plain committed record first.
  std::vector<storage::Record> plain{storage::Record::KeyValue("k", "v")};
  LIQUID_ASSERT_OK(leader->Produce(tp, plain, AckMode::kAll));
  EXPECT_EQ(*leader->LastStableOffset(tp), 1);

  // Ongoing txn pins the LSO at its first offset.
  ASSERT_TRUE(leader->BeginPartitionTxn(tp, 777).ok());
  std::vector<storage::Record> txn_rec{storage::Record::KeyValue("k", "t")};
  txn_rec[0].producer_id = 777;
  LIQUID_ASSERT_OK(leader->Produce(tp, txn_rec, AckMode::kAll));
  LIQUID_ASSERT_OK(leader->Produce(tp, plain, AckMode::kAll));  // Later plain write.
  EXPECT_EQ(*leader->LastStableOffset(tp), 1);  // Still pinned.

  ASSERT_TRUE(leader->WriteTxnMarker(tp, 777, /*committed=*/true).ok());
  EXPECT_EQ(*leader->LastStableOffset(tp), *leader->HighWatermark(tp));
}

TEST_F(TransactionTest, ControlMarkersNeverDelivered) {
  auto producer = NewTxnProducer("t1");
  LIQUID_ASSERT_OK(producer->BeginTransaction());
  LIQUID_ASSERT_OK(producer->Send("out", storage::Record::KeyValue("k", "v")));
  LIQUID_ASSERT_OK(producer->CommitTransaction());
  // Even a read_uncommitted consumer never sees control markers.
  ConsumerConfig config;
  config.group = "g";
  config.read_committed = true;
  Consumer consumer(cluster_.get(), offsets_.get(), group_coordinator_.get(),
                    "m", config);
  LIQUID_ASSERT_OK(consumer.Subscribe({"out"}));
  for (int i = 0; i < 10; ++i) {
    auto records = consumer.Poll(64);
    for (const auto& envelope : *records) {
      EXPECT_FALSE(envelope.record.is_control);
    }
  }
}

TEST_F(TransactionTest, CoordinatorStateMachineGuards) {
  EXPECT_TRUE(txn_->Begin("unknown").IsNotFound());
  ASSERT_TRUE(txn_->InitProducer("t").ok());
  EXPECT_TRUE(txn_->End("t", true).IsFailedPrecondition());  // Nothing open.
  ASSERT_TRUE(txn_->Begin("t").ok());
  EXPECT_TRUE(txn_->Begin("t").IsFailedPrecondition());  // Already open.
  EXPECT_TRUE(txn_->InFlight("t"));
  ASSERT_TRUE(txn_->End("t", false).ok());
  EXPECT_FALSE(txn_->InFlight("t"));
}

}  // namespace
}  // namespace liquid::messaging
