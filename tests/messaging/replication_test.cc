#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/producer.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// Leader/follower replication, high-watermark and ISR behaviour (§4.3).
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
  }

  void CreateTopic(const std::string& name, int rf, int min_insync = 1) {
    TopicConfig config;
    config.partitions = 1;
    config.replication_factor = rf;
    config.min_insync_replicas = min_insync;
    ASSERT_TRUE(cluster_->CreateTopic(name, config).ok());
  }

  Status ProduceOne(const TopicPartition& tp, AckMode acks,
                    const std::string& value = "v") {
    auto leader = cluster_->LeaderFor(tp);
    if (!leader.ok()) return leader.status();
    std::vector<storage::Record> batch{storage::Record::KeyValue("k", value)};
    return (*leader)->Produce(tp, batch, acks).status();
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ReplicationTest, AcksAllReplicatesSynchronously) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll).ok());
  // All replicas hold the record immediately, HW advanced.
  auto state = cluster_->GetPartitionState(tp);
  for (int replica : state->replicas) {
    EXPECT_EQ(*cluster_->broker(replica)->LogEndOffset(tp), 1) << replica;
  }
  auto leader = cluster_->LeaderFor(tp);
  EXPECT_EQ(*(*leader)->HighWatermark(tp), 1);
}

TEST_F(ReplicationTest, AcksLeaderReplicatesLazilyViaPull) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_TRUE(ProduceOne(tp, AckMode::kLeader).ok());
  auto state = cluster_->GetPartitionState(tp);
  int followers_with_data = 0;
  for (int replica : state->replicas) {
    if (replica == state->leader) continue;
    if (*cluster_->broker(replica)->LogEndOffset(tp) == 1) ++followers_with_data;
  }
  EXPECT_EQ(followers_with_data, 0);  // Not replicated yet.

  cluster_->ReplicationTick();
  for (int replica : state->replicas) {
    EXPECT_EQ(*cluster_->broker(replica)->LogEndOffset(tp), 1) << replica;
  }
}

TEST_F(ReplicationTest, HighWatermarkAdvancesWithFollowerFetches) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_TRUE(ProduceOne(tp, AckMode::kLeader).ok());
  auto leader = cluster_->LeaderFor(tp);
  EXPECT_EQ(*(*leader)->HighWatermark(tp), 0);
  cluster_->ReplicationTick();  // Followers fetch the record.
  cluster_->ReplicationTick();  // Next fetch reports their new LEO.
  EXPECT_EQ(*(*leader)->HighWatermark(tp), 1);
}

TEST_F(ReplicationTest, FollowerHighWatermarkPropagates) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll).ok());
  cluster_->ReplicationTick();  // Followers learn the leader's HW.
  auto state = cluster_->GetPartitionState(tp);
  for (int replica : state->replicas) {
    EXPECT_EQ(*cluster_->broker(replica)->HighWatermark(tp), 1) << replica;
  }
}

TEST_F(ReplicationTest, DeadFollowerShrinksIsrOnAcksAll) {
  CreateTopic("t", 3, /*min_insync=*/2);
  const TopicPartition tp{"t", 0};
  auto state_before = cluster_->GetPartitionState(tp);
  ASSERT_EQ(state_before->isr.size(), 3u);

  // Kill one follower.
  int victim = -1;
  for (int replica : state_before->replicas) {
    if (replica != state_before->leader) victim = replica;
  }
  cluster_->broker(victim)->Stop();

  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll).ok());  // min_insync=2 still met.
  auto state_after = cluster_->GetPartitionState(tp);
  EXPECT_EQ(state_after->isr.size(), 2u);
  for (int member : state_after->isr) EXPECT_NE(member, victim);
}

TEST_F(ReplicationTest, MinInsyncViolationRejectsAcksAll) {
  CreateTopic("t", 3, /*min_insync=*/3);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  int victim = -1;
  for (int replica : state->replicas) {
    if (replica != state->leader) victim = replica;
  }
  cluster_->broker(victim)->Stop();
  // First produce shrinks the ISR to 2 after the failed push...
  Status first = ProduceOne(tp, AckMode::kAll);
  EXPECT_TRUE(first.IsUnavailable());
  // ...and subsequent ones are rejected before appending.
  EXPECT_TRUE(ProduceOne(tp, AckMode::kAll).IsUnavailable());
  // acks=1 still works (availability at reduced durability).
  EXPECT_TRUE(ProduceOne(tp, AckMode::kLeader).ok());
}

TEST_F(ReplicationTest, RecoveredFollowerCatchesUpAndRejoinsIsr) {
  CreateTopic("t", 3, /*min_insync=*/2);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  int victim = -1;
  for (int replica : state->replicas) {
    if (replica != state->leader) victim = replica;
  }
  cluster_->broker(victim)->Stop();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ProduceOne(tp, AckMode::kAll).ok());
  }
  EXPECT_EQ(cluster_->GetPartitionState(tp)->isr.size(), 2u);

  ASSERT_TRUE(cluster_->RestartBroker(victim).ok());
  cluster_->ReplicationTick();  // Catch up.
  cluster_->ReplicationTick();  // Report LEO == leader LEO: rejoin ISR.
  EXPECT_EQ(*cluster_->broker(victim)->LogEndOffset(tp), 5);
  EXPECT_EQ(cluster_->GetPartitionState(tp)->isr.size(), 3u);
}

TEST_F(ReplicationTest, ToleratesNMinus1FailuresWithAcksAll) {
  CreateTopic("t", 3, /*min_insync=*/1);
  const TopicPartition tp{"t", 0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ProduceOne(tp, AckMode::kAll, "v" + std::to_string(i)).ok());
  }
  // Kill 2 of 3 brokers (N-1 failures of the ISR, §4.3).
  auto state = cluster_->GetPartitionState(tp);
  int killed = 0;
  for (int replica : state->replicas) {
    if (killed == 2) break;
    cluster_->broker(replica)->Stop();
    ++killed;
  }
  // The surviving replica leads and has all committed data.
  auto leader = cluster_->LeaderFor(tp);
  ASSERT_TRUE(leader.ok());
  auto fetch = (*leader)->Fetch(tp, 0, 1 << 20, -1);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->records.size(), 3u);
}

TEST_F(ReplicationTest, FollowerRejectsStaleEpochPush) {
  CreateTopic("t", 2);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  int follower = -1;
  for (int replica : state->replicas) {
    if (replica != state->leader) follower = replica;
  }
  std::vector<storage::Record> records{storage::Record::KeyValue("k", "v")};
  records[0].offset = 0;
  // Push with an epoch lower than current: rejected.
  Status st = cluster_->broker(follower)->AppendAsFollower(
      tp, records, state->leader_epoch - 1, 0);
  EXPECT_TRUE(st.IsFailedPrecondition());
}

TEST_F(ReplicationTest, FollowerBehindPushSignalsOutOfRange) {
  CreateTopic("t", 2);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  int follower = -1;
  for (int replica : state->replicas) {
    if (replica != state->leader) follower = replica;
  }
  std::vector<storage::Record> records{storage::Record::KeyValue("k", "v")};
  records[0].offset = 10;  // Follower log is empty: a gap.
  Status st = cluster_->broker(follower)->AppendAsFollower(
      tp, records, state->leader_epoch, 0);
  EXPECT_TRUE(st.IsOutOfRange());
}

TEST_F(ReplicationTest, DuplicatePushIsIdempotent) {
  CreateTopic("t", 2);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  int follower = -1;
  for (int replica : state->replicas) {
    if (replica != state->leader) follower = replica;
  }
  std::vector<storage::Record> records{storage::Record::KeyValue("k", "v")};
  records[0].offset = 0;
  ASSERT_TRUE(cluster_->broker(follower)
                  ->AppendAsFollower(tp, records, state->leader_epoch, 0)
                  .ok());
  // Same push again (leader retry): no duplicate append.
  ASSERT_TRUE(cluster_->broker(follower)
                  ->AppendAsFollower(tp, records, state->leader_epoch, 0)
                  .ok());
  EXPECT_EQ(*cluster_->broker(follower)->LogEndOffset(tp), 1);
}

TEST_F(ReplicationTest, Kip101TruncatesDivergentSuffixBelowLeaderLeo) {
  // Regression for the scenario the randomized test found (seed 7): broker X
  // leads epoch E and appends an UNCOMMITTED record at offset N; X dies;
  // broker Y leads epoch E+1 and commits several records at N, N+1, ...; X
  // returns as follower. X's log end (N+1) is below Y's (N+3), so a naive
  // min(LEO, LEO) truncation would keep X's divergent record at N — and if X
  // ever led again, an acknowledged record would silently vanish.
  CreateTopic("t", 3, /*min_insync=*/1);
  const TopicPartition tp{"t", 0};

  // Commit a common prefix.
  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll, "common").ok());

  auto state = cluster_->GetPartitionState(tp);
  const int first_leader = state->leader;
  // First leader appends an uncommitted record: kill a follower so the push
  // path can't reach everyone... simpler: write with acks=0 (local only).
  ASSERT_TRUE(ProduceOne(tp, AckMode::kNone, "divergent-uncommitted").ok());

  // First leader dies; a new leader (from the ISR) takes over and commits
  // DIFFERENT records at the same offsets.
  LIQUID_ASSERT_OK(cluster_->StopBroker(first_leader));
  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll, "committed-1").ok());
  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll, "committed-2").ok());

  // The deposed leader returns as follower and reconciles via epochs.
  ASSERT_TRUE(cluster_->RestartBroker(first_leader).ok());
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();

  // The old leader's log must now EXACTLY match the new leader's.
  const int new_leader = cluster_->GetPartitionState(tp)->leader;
  ASSERT_NE(new_leader, first_leader);
  EXPECT_EQ(*cluster_->broker(first_leader)->LogEndOffset(tp),
            *cluster_->broker(new_leader)->LogEndOffset(tp));

  // And if every OTHER broker dies, the restored replica serves the committed
  // records, not its divergent ghost.
  for (int id : cluster_->AliveBrokerIds()) {
    if (id != first_leader) LIQUID_ASSERT_OK(cluster_->StopBroker(id));
  }
  auto leader = cluster_->LeaderFor(tp);
  ASSERT_TRUE(leader.ok());
  std::vector<std::string> values;
  int64_t cursor = 0;
  while (true) {
    auto fetch = (*leader)->Fetch(tp, cursor, 1 << 20, -1);
    if (!fetch.ok() || fetch->records.empty()) break;
    for (const auto& record : fetch->records) values.push_back(record.value);
    cursor = fetch->records.back().offset + 1;
  }
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], "common");
  EXPECT_EQ(values[1], "committed-1");
  EXPECT_EQ(values[2], "committed-2");
}

TEST_F(ReplicationTest, EndOffsetForEpochAnswers) {
  CreateTopic("t", 1);  // rf=1: single broker, epochs change via reassignment.
  const TopicPartition tp{"t", 0};
  Broker* leader = *cluster_->LeaderFor(tp);
  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll, "e0-a").ok());
  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll, "e0-b").ok());

  // Exact epoch: end is the log end (it is the newest epoch).
  auto answer = leader->EndOffsetForEpoch(tp, 0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->first, 0);
  EXPECT_EQ(answer->second, 2);

  // Requesting a NEWER epoch than any local one returns the newest <= it.
  answer = leader->EndOffsetForEpoch(tp, 7);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->first, 0);
  EXPECT_EQ(answer->second, 2);

  // Requesting an epoch below every local one signals total divergence.
  answer = leader->EndOffsetForEpoch(tp, -1);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->first, -1);
}

TEST_F(ReplicationTest, RecordsCarryLeaderEpoch) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll, "before").ok());
  const int old_leader = cluster_->GetPartitionState(tp)->leader;
  LIQUID_ASSERT_OK(cluster_->StopBroker(old_leader));
  ASSERT_TRUE(ProduceOne(tp, AckMode::kAll, "after").ok());

  auto leader = cluster_->LeaderFor(tp);
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();
  auto fetch = (*leader)->Fetch(tp, 0, 1 << 20, -1);
  ASSERT_TRUE(fetch.ok());
  ASSERT_EQ(fetch->records.size(), 2u);
  EXPECT_LT(fetch->records[0].leader_epoch, fetch->records[1].leader_epoch);
}

}  // namespace
}  // namespace liquid::messaging
