#include "messaging/offset_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// The metadata-annotated offset manager (§3.1, §4.2).
class OffsetManagerTest : public ::testing::Test {
 protected:
  std::unique_ptr<OffsetManager> OpenManager() {
    auto manager = OffsetManager::Open(&disk_, "om/", &clock_);
    EXPECT_TRUE(manager.ok());
    return std::move(manager).value();
  }

  storage::MemDisk disk_;
  SimulatedClock clock_{5000};
};

TEST_F(OffsetManagerTest, CommitAndFetch) {
  auto manager = OpenManager();
  const TopicPartition tp{"t", 0};
  OffsetCommit commit;
  commit.offset = 42;
  ASSERT_TRUE(manager->Commit("g", tp, commit).ok());
  auto fetched = manager->Fetch("g", tp);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->offset, 42);
  EXPECT_EQ(fetched->committed_at_ms, 5000);  // Stamped with clock time.
}

TEST_F(OffsetManagerTest, FetchUnknownIsNotFound) {
  auto manager = OpenManager();
  EXPECT_TRUE(manager->Fetch("g", TopicPartition{"t", 0}).status().IsNotFound());
}

TEST_F(OffsetManagerTest, LatestCommitWins) {
  auto manager = OpenManager();
  const TopicPartition tp{"t", 0};
  for (int64_t offset : {10, 20, 30}) {
    OffsetCommit commit;
    commit.offset = offset;
    LIQUID_ASSERT_OK(manager->Commit("g", tp, commit));
  }
  EXPECT_EQ(manager->Fetch("g", tp)->offset, 30);
}

TEST_F(OffsetManagerTest, GroupsAndPartitionsAreIndependent) {
  auto manager = OpenManager();
  OffsetCommit c1, c2, c3;
  c1.offset = 1;
  c2.offset = 2;
  c3.offset = 3;
  LIQUID_ASSERT_OK(manager->Commit("g1", TopicPartition{"t", 0}, c1));
  LIQUID_ASSERT_OK(manager->Commit("g2", TopicPartition{"t", 0}, c2));
  LIQUID_ASSERT_OK(manager->Commit("g1", TopicPartition{"t", 1}, c3));
  EXPECT_EQ(manager->Fetch("g1", TopicPartition{"t", 0})->offset, 1);
  EXPECT_EQ(manager->Fetch("g2", TopicPartition{"t", 0})->offset, 2);
  EXPECT_EQ(manager->Fetch("g1", TopicPartition{"t", 1})->offset, 3);
}

TEST_F(OffsetManagerTest, AnnotationsRoundTrip) {
  auto manager = OpenManager();
  const TopicPartition tp{"t", 0};
  OffsetCommit commit;
  commit.offset = 7;
  commit.annotations = {{"version", "v2"}, {"host", "node-3"}};
  LIQUID_ASSERT_OK(manager->Commit("g", tp, commit));
  auto fetched = manager->Fetch("g", tp);
  EXPECT_EQ(fetched->annotations.at("version"), "v2");
  EXPECT_EQ(fetched->annotations.at("host"), "node-3");
}

TEST_F(OffsetManagerTest, LabeledCommitsSurviveLaterPlainCommits) {
  // The §4.2 use case: mark "where algorithm v2 started" and rewind to it
  // later even though normal checkpoints kept advancing.
  auto manager = OpenManager();
  const TopicPartition tp{"t", 0};
  OffsetCommit marker;
  marker.offset = 100;
  marker.annotations = {{"version", "v2"}};
  ASSERT_TRUE(manager->CommitLabeled("g", tp, "v2-start", marker).ok());

  for (int64_t offset : {150, 200, 250}) {
    OffsetCommit commit;
    commit.offset = offset;
    LIQUID_ASSERT_OK(manager->Commit("g", tp, commit));
  }
  EXPECT_EQ(manager->Fetch("g", tp)->offset, 250);
  auto labeled = manager->FetchLabeled("g", tp, "v2-start");
  ASSERT_TRUE(labeled.ok());
  EXPECT_EQ(labeled->offset, 100);
  EXPECT_EQ(labeled->annotations.at("version"), "v2");
}

TEST_F(OffsetManagerTest, EmptyLabelRejected) {
  auto manager = OpenManager();
  OffsetCommit commit;
  commit.offset = 1;
  EXPECT_TRUE(manager->CommitLabeled("g", TopicPartition{"t", 0}, "", commit)
                  .IsInvalidArgument());
}

TEST_F(OffsetManagerTest, RecoversFromBackingLogAfterRestart) {
  {
    auto manager = OpenManager();
    OffsetCommit commit;
    commit.offset = 64;
    commit.annotations = {{"version", "v1"}};
    LIQUID_ASSERT_OK(manager->Commit("g", TopicPartition{"t", 2}, commit));
    OffsetCommit labeled;
    labeled.offset = 10;
    LIQUID_ASSERT_OK(manager->CommitLabeled("g", TopicPartition{"t", 2}, "mark", labeled));
  }
  // "Failure": new manager instance over the same disk (§4.2: fetching from
  // the offset manager is only necessary after a failure).
  auto recovered = OpenManager();
  auto fetched = recovered->Fetch("g", TopicPartition{"t", 2});
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->offset, 64);
  EXPECT_EQ(fetched->annotations.at("version"), "v1");
  EXPECT_EQ(recovered->FetchLabeled("g", TopicPartition{"t", 2}, "mark")->offset,
            10);
}

TEST_F(OffsetManagerTest, CompactionShrinksBackingLog) {
  auto manager = OpenManager();
  const TopicPartition tp{"t", 0};
  for (int i = 0; i < 20000; ++i) {
    OffsetCommit commit;
    commit.offset = i;
    LIQUID_ASSERT_OK(manager->Commit("g", tp, commit));
  }
  const uint64_t before = manager->backing_log_bytes();
  auto stats = manager->CompactBackingLog();
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(manager->backing_log_bytes(), before / 2);
  // Latest commit still intact after compaction.
  EXPECT_EQ(manager->Fetch("g", tp)->offset, 19999);
}

TEST_F(OffsetManagerTest, RecoveryAfterCompaction) {
  {
    auto manager = OpenManager();
    const TopicPartition tp{"t", 0};
    for (int i = 0; i < 5000; ++i) {
      OffsetCommit commit;
      commit.offset = i;
      LIQUID_ASSERT_OK(manager->Commit("g", tp, commit));
    }
    LIQUID_ASSERT_OK(manager->CompactBackingLog());
  }
  auto recovered = OpenManager();
  EXPECT_EQ(recovered->Fetch("g", TopicPartition{"t", 0})->offset, 4999);
}

TEST_F(OffsetManagerTest, CommitsTotalCounts) {
  auto manager = OpenManager();
  OffsetCommit commit;
  commit.offset = 1;
  LIQUID_ASSERT_OK(manager->Commit("g", TopicPartition{"t", 0}, commit));
  LIQUID_ASSERT_OK(manager->Commit("g", TopicPartition{"t", 1}, commit));
  EXPECT_EQ(manager->commits_total(), 2);
}

}  // namespace
}  // namespace liquid::messaging
