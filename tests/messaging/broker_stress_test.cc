#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/metadata.h"
#include "storage/record.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

// Concurrent produce/fetch traffic against live brokers. The assertions are
// on the final committed state; the point of the test is the interleaving
// itself, which ThreadSanitizer checks when scripts/check.sh runs the suite
// with -DLIQUID_SANITIZE=thread.
class BrokerStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(BrokerStressTest, ConcurrentProduceAndFetch) {
  constexpr int kPartitions = 4;
  constexpr int kWriters = 4;
  constexpr int kRecordsEach = 200;

  TopicConfig topic;
  topic.partitions = kPartitions;
  topic.replication_factor = 2;
  ASSERT_TRUE(cluster_->CreateTopic("stress", topic).ok());

  std::atomic<bool> stop{false};

  // Writers spread batches over all partitions through the leaders.
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([this, w] {
      for (int i = 0; i < kRecordsEach; ++i) {
        const TopicPartition tp{"stress", i % kPartitions};
        std::vector<storage::Record> batch;
        batch.push_back(storage::Record::KeyValue(
            "w" + std::to_string(w), "v" + std::to_string(i)));
        // Leadership can move mid-test; retry on NotLeader/Unavailable.
        for (int attempt = 0; attempt < 50; ++attempt) {
          auto leader = cluster_->LeaderFor(tp);
          if (leader.ok()) {
            auto resp = (*leader)->Produce(tp, batch, AckMode::kAll);
            if (resp.ok()) break;
          }
          clock_.AdvanceMs(1);
        }
      }
    });
  }

  // Readers hammer the committed-read path while writes are in flight.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([this, &stop] {
      std::vector<int64_t> cursors(kPartitions, 0);
      while (!stop.load()) {
        for (int p = 0; p < kPartitions; ++p) {
          const TopicPartition tp{"stress", p};
          auto leader = cluster_->LeaderFor(tp);
          if (!leader.ok()) continue;
          auto resp = (*leader)->Fetch(tp, cursors[p], 1 << 16);
          if (resp.ok()) cursors[p] = resp->next_fetch_offset;
        }
      }
    });
  }

  // One thread polls broker introspection surfaces concurrently.
  std::thread inspector([this, &stop] {
    while (!stop.load()) {
      for (int id = 0; id < 3; ++id) {
        auto broker = cluster_->broker(id);
        if (broker == nullptr) continue;
        broker->alive();
        broker->HostedPartitions();
        for (int p = 0; p < kPartitions; ++p) {
          broker->HighWatermark(TopicPartition{"stress", p}).status();
        }
      }
    }
  });

  for (auto& thread : writers) thread.join();
  stop.store(true);
  for (auto& thread : readers) thread.join();
  inspector.join();

  // Every record was acked by the full ISR, so the high-watermarks must add
  // up to exactly the produced count.
  int64_t committed = 0;
  for (int p = 0; p < kPartitions; ++p) {
    const TopicPartition tp{"stress", p};
    auto leader = cluster_->LeaderFor(tp);
    ASSERT_TRUE(leader.ok());
    auto bounds = (*leader)->OffsetBounds(tp);
    ASSERT_TRUE(bounds.ok());
    committed += bounds->second - bounds->first;
  }
  EXPECT_EQ(committed, int64_t{kWriters} * kRecordsEach);
}

TEST_F(BrokerStressTest, ConcurrentReplicationAndMaintenance) {
  TopicConfig topic;
  topic.partitions = 2;
  topic.replication_factor = 3;
  ASSERT_TRUE(cluster_->CreateTopic("repl", topic).ok());

  std::atomic<bool> stop{false};

  std::thread writer([this] {
    for (int i = 0; i < 300; ++i) {
      const TopicPartition tp{"repl", i % 2};
      std::vector<storage::Record> batch;
      batch.push_back(storage::Record::KeyValue("k" + std::to_string(i % 7),
                                                "v" + std::to_string(i)));
      auto leader = cluster_->LeaderFor(tp);
      if (leader.ok()) (*leader)->Produce(tp, batch, AckMode::kLeader).status();
    }
  });

  // Pull-replication and log maintenance run concurrently on every broker.
  std::vector<std::thread> churners;
  for (int id = 0; id < 3; ++id) {
    churners.emplace_back([this, id, &stop] {
      while (!stop.load()) {
        auto broker = cluster_->broker(id);
        if (broker == nullptr) break;
        LIQUID_ASSERT_OK(broker->ReplicateFromLeaders());
        LIQUID_ASSERT_OK(broker->RunLogMaintenance());
      }
    });
  }

  writer.join();
  stop.store(true);
  for (auto& thread : churners) thread.join();

  // Catch-up replication converges once writes stop. Two rounds: the first
  // delivers the tail, the second reports the followers' new log-end offsets
  // back to the leader so the high-watermark can advance.
  for (int round = 0; round < 2; ++round) {
    for (int id = 0; id < 3; ++id) {
      ASSERT_TRUE(cluster_->broker(id)->ReplicateFromLeaders().ok());
    }
  }
  for (int p = 0; p < 2; ++p) {
    auto leader = cluster_->LeaderFor(TopicPartition{"repl", p});
    ASSERT_TRUE(leader.ok());
    auto bounds = (*leader)->OffsetBounds(TopicPartition{"repl", p});
    ASSERT_TRUE(bounds.ok());
    EXPECT_GT(bounds->second, 0);
  }
}

}  // namespace
}  // namespace liquid::messaging
