// Broker-level group commit: acks=all on a sync_mode=group topic maps the
// ack onto the fsync group (Broker::Produce awaits durability after the
// replication push), so the E7b invariant extends to single-node crashes —
// records acknowledged with acks=all survive the broker losing everything
// that was never fsynced; batches whose group sync failed are NOT
// acknowledged and may be lost.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "storage/log.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

class GroupCommitProduceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 1;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    TopicConfig topic;
    topic.partitions = 1;
    topic.replication_factor = 1;
    topic.log.sync_mode = storage::SyncMode::kGroup;
    ASSERT_TRUE(cluster_->CreateTopic("t", topic).ok());
  }

  Status ProduceOne(AckMode acks, const std::string& value) {
    auto leader = cluster_->LeaderFor(tp_);
    if (!leader.ok()) return leader.status();
    std::vector<storage::Record> batch{storage::Record::KeyValue("k", value)};
    return (*leader)->Produce(tp_, std::move(batch), acks).status();
  }

  int64_t CountFetchable() {
    auto leader = cluster_->LeaderFor(tp_);
    EXPECT_TRUE(leader.ok()) << leader.status().ToString();
    int64_t count = 0;
    int64_t cursor = 0;
    while (true) {
      auto fetch = (*leader)->Fetch(tp_, cursor, 1 << 20, -1);
      if (!fetch.ok() || fetch->records.empty()) break;
      count += static_cast<int64_t>(fetch->records.size());
      cursor = fetch->records.back().offset + 1;
    }
    return count;
  }

  const TopicPartition tp_{"t", 0};
  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(GroupCommitProduceTest, AcksAllWaitsForGroupDurability) {
  for (int i = 0; i < 10; ++i) {
    LIQUID_ASSERT_OK(ProduceOne(AckMode::kAll, "v" + std::to_string(i)));
  }
  // Every acked record is fsynced: at least one group sync ran, and the
  // backing store would survive losing all unsynced bytes.
  EXPECT_GE(cluster_->disk(0)->sync_ops(), 1);
  cluster_->disk(0)->SimulateCrash();
  ASSERT_TRUE(cluster_->StopBroker(0).ok());
  ASSERT_TRUE(cluster_->RestartBroker(0).ok());
  EXPECT_EQ(CountFetchable(), 10);
}

TEST_F(GroupCommitProduceTest, FailedGroupSyncFailsTheAck) {
  LIQUID_ASSERT_OK(ProduceOne(AckMode::kAll, "durable"));
  cluster_->disk(0)->SetSyncFaultHook(
      [](const std::string&) { return Status::IOError("injected"); });
  // acks=all cannot be honoured while fsync fails; acks=1 still succeeds
  // (it never promised durability).
  EXPECT_FALSE(ProduceOne(AckMode::kAll, "lost?").ok());
  LIQUID_ASSERT_OK(ProduceOne(AckMode::kLeader, "unsynced"));

  // Crash: only the fsynced prefix survives — exactly the acked-all data.
  cluster_->disk(0)->SimulateCrash();
  cluster_->disk(0)->SetSyncFaultHook(nullptr);
  ASSERT_TRUE(cluster_->StopBroker(0).ok());
  ASSERT_TRUE(cluster_->RestartBroker(0).ok());
  EXPECT_EQ(CountFetchable(), 1);
}

}  // namespace
}  // namespace liquid::messaging
