// Broker-level staging ring (DESIGN.md §5a): on a staging=ring topic
// Broker::Produce stages the batch with a lock-free claim (async_stage), so
// the ack path changes shape — acks=all awaits the drainer's append (and the
// group fsync when sync_mode=group) via AwaitAppended/AwaitDurable, acks<=1
// returns as soon as the batch is published, and consumers see records once
// the fetch path advances the high watermark over the drained range. These
// tests pin that the client-visible contract (fetchable records, idempotent
// dedup, crash durability of acks=all) is unchanged from staging=off.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "storage/log.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

class StagingProduceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 1;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    TopicConfig topic;
    topic.partitions = 1;
    topic.replication_factor = 1;
    topic.log.staging = storage::Staging::kRing;
    topic.log.sync_mode = storage::SyncMode::kGroup;
    ASSERT_TRUE(cluster_->CreateTopic("t", topic).ok());
  }

  Status ProduceOne(AckMode acks, const std::string& value,
                    int64_t producer_id = storage::kNoProducerId,
                    int32_t first_sequence = -1) {
    auto leader = cluster_->LeaderFor(tp_);
    if (!leader.ok()) return leader.status();
    std::vector<storage::Record> batch{storage::Record::KeyValue("k", value)};
    return (*leader)
        ->Produce(tp_, std::move(batch), acks, producer_id, first_sequence)
        .status();
  }

  int64_t CountFetchable() {
    auto leader = cluster_->LeaderFor(tp_);
    EXPECT_TRUE(leader.ok()) << leader.status().ToString();
    int64_t count = 0;
    int64_t cursor = 0;
    while (true) {
      auto fetch = (*leader)->Fetch(tp_, cursor, 1 << 20, -1);
      if (!fetch.ok() || fetch->records.empty()) break;
      count += static_cast<int64_t>(fetch->records.size());
      cursor = fetch->records.back().offset + 1;
    }
    return count;
  }

  const TopicPartition tp_{"t", 0};
  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(StagingProduceTest, StagedProduceIsFetchableUnderBothAckModes) {
  // acks=all blocks on AwaitAppended + the group sync, so its records are
  // consumer-visible on return; acks=1 records become fetchable once a
  // later fetch advances the high watermark over the drained range.
  for (int i = 0; i < 5; ++i) {
    LIQUID_ASSERT_OK(ProduceOne(AckMode::kAll, "all" + std::to_string(i)));
  }
  EXPECT_EQ(CountFetchable(), 5);
  for (int i = 0; i < 5; ++i) {
    LIQUID_ASSERT_OK(ProduceOne(AckMode::kLeader, "one" + std::to_string(i)));
  }
  // The fetch path itself advances the watermark over drained staged
  // batches (no producer is waiting to do it), so polling converges.
  for (int spin = 0; spin < 1000 && CountFetchable() < 10; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(CountFetchable(), 10);
}

TEST_F(StagingProduceTest, AcksAllSurvivesCrashUnderRingStaging) {
  for (int i = 0; i < 10; ++i) {
    LIQUID_ASSERT_OK(ProduceOne(AckMode::kAll, "v" + std::to_string(i)));
  }
  EXPECT_GE(cluster_->disk(0)->sync_ops(), 1);
  cluster_->disk(0)->SimulateCrash();
  ASSERT_TRUE(cluster_->StopBroker(0).ok());
  ASSERT_TRUE(cluster_->RestartBroker(0).ok());
  EXPECT_EQ(CountFetchable(), 10);
}

TEST_F(StagingProduceTest, FailedStagedAppendRollsBackTheSequence) {
  // A staged append that fails outright (batch larger than the ring) must
  // roll back the idempotence sequence advance, or the producer's retry
  // would be dropped as a duplicate.
  TopicConfig tiny;
  tiny.partitions = 1;
  tiny.replication_factor = 1;
  tiny.log.staging = storage::Staging::kRing;
  tiny.log.staging_capacity = 4;
  ASSERT_TRUE(cluster_->CreateTopic("tiny", tiny).ok());
  const TopicPartition tp{"tiny", 0};
  auto leader = cluster_->LeaderFor(tp);
  LIQUID_ASSERT_OK(leader.status());

  const int64_t pid = 7;
  std::vector<storage::Record> small{storage::Record::KeyValue("k", "v0")};
  LIQUID_ASSERT_OK(
      (*leader)->Produce(tp, std::move(small), AckMode::kAll, pid, 0).status());

  std::vector<storage::Record> oversized;
  for (int i = 0; i < 10; ++i) {
    oversized.push_back(storage::Record::KeyValue("k", "big"));
  }
  EXPECT_FALSE(
      (*leader)
          ->Produce(tp, std::move(oversized), AckMode::kAll, pid, 1)
          .ok());

  // The retry with the same sequence must be accepted, not deduplicated.
  std::vector<storage::Record> retry{storage::Record::KeyValue("k", "v1")};
  auto resp =
      (*leader)->Produce(tp, std::move(retry), AckMode::kAll, pid, 1);
  LIQUID_ASSERT_OK(resp.status());
  EXPECT_EQ(resp->base_offset, 1);
}

TEST_F(StagingProduceTest, DuplicateStagedBatchIsStillDeduplicated) {
  const int64_t pid = 9;
  LIQUID_ASSERT_OK(ProduceOne(AckMode::kAll, "v0", pid, 0));
  // The resend of an already-acked sequence is acked without re-appending.
  LIQUID_ASSERT_OK(ProduceOne(AckMode::kAll, "v0", pid, 0));
  LIQUID_ASSERT_OK(ProduceOne(AckMode::kAll, "v1", pid, 1));
  EXPECT_EQ(CountFetchable(), 2);
}

}  // namespace
}  // namespace liquid::messaging
