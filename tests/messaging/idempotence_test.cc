#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/producer.h"

namespace liquid::messaging {
namespace {

/// Delivery guarantees (§4.3): at-least-once by default, plus the optional
/// idempotent-producer extension (the paper's "ongoing effort to design and
/// implement support for exactly-once semantics").
class IdempotenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    TopicConfig topic;
    topic.partitions = 1;
    topic.replication_factor = 2;
    ASSERT_TRUE(cluster_->CreateTopic("t", topic).ok());
  }

  int64_t LogEnd() {
    auto leader = cluster_->LeaderFor(tp_);
    return *(*leader)->LogEndOffset(tp_);
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
  const TopicPartition tp_{"t", 0};
};

TEST_F(IdempotenceTest, PlainProducerRetryDuplicates) {
  // Without idempotence, a retried batch lands twice: at-least-once.
  auto leader = cluster_->LeaderFor(tp_);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  ASSERT_TRUE((*leader)->Produce(tp_, batch, AckMode::kLeader).ok());
  ASSERT_TRUE((*leader)->Produce(tp_, batch, AckMode::kLeader).ok());
  EXPECT_EQ(LogEnd(), 2);
}

TEST_F(IdempotenceTest, IdempotentRetryIsDeduplicated) {
  auto leader = cluster_->LeaderFor(tp_);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  const int64_t pid = 77;
  ASSERT_TRUE((*leader)->Produce(tp_, batch, AckMode::kLeader, pid, 0).ok());
  // Simulated lost ack -> client retries the same (pid, seq) batch.
  auto retry = (*leader)->Produce(tp_, batch, AckMode::kLeader, pid, 0);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->base_offset, -1);  // Marked as duplicate.
  EXPECT_EQ(LogEnd(), 1);             // Exactly one copy in the log.
}

TEST_F(IdempotenceTest, SequenceGapRejected) {
  auto leader = cluster_->LeaderFor(tp_);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  const int64_t pid = 78;
  ASSERT_TRUE((*leader)->Produce(tp_, batch, AckMode::kLeader, pid, 0).ok());
  // Sequence 2 skips 1: out of order.
  auto gap = (*leader)->Produce(tp_, batch, AckMode::kLeader, pid, 2);
  EXPECT_TRUE(gap.status().IsInvalidArgument());
}

TEST_F(IdempotenceTest, DistinctProducersDoNotInterfere) {
  auto leader = cluster_->LeaderFor(tp_);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  ASSERT_TRUE((*leader)->Produce(tp_, batch, AckMode::kLeader, 1, 0).ok());
  ASSERT_TRUE((*leader)->Produce(tp_, batch, AckMode::kLeader, 2, 0).ok());
  EXPECT_EQ(LogEnd(), 2);
}

TEST_F(IdempotenceTest, ProducerClientTracksSequencesPerPartition) {
  ProducerConfig config;
  config.idempotent = true;
  config.batch_max_records = 2;
  Producer producer(cluster_.get(), config);
  EXPECT_GT(producer.producer_id(), 0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        producer.Send("t", storage::Record::KeyValue("k", std::to_string(i)))
            .ok());
  }
  ASSERT_TRUE(producer.Flush().ok());
  EXPECT_EQ(LogEnd(), 10);
  // Records carry the producer id and dense sequences.
  auto leader = cluster_->LeaderFor(tp_);
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();
  auto fetch = (*leader)->Fetch(tp_, 0, 1 << 20, -1);
  ASSERT_EQ(fetch->records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fetch->records[i].producer_id, producer.producer_id());
    EXPECT_EQ(fetch->records[i].sequence, i);
  }
}

TEST_F(IdempotenceTest, AtLeastOnceConsumerSeesDuplicatesOnReplay) {
  // The at-least-once contract (§4.3): replaying from an old offset re-reads
  // data; keyed idempotent updates make that harmless for applications.
  auto leader = cluster_->LeaderFor(tp_);
  for (int i = 0; i < 5; ++i) {
    std::vector<storage::Record> batch{
        storage::Record::KeyValue("k", std::to_string(i))};
    ASSERT_TRUE((*leader)->Produce(tp_, batch, AckMode::kAll).ok());
  }
  auto first = (*leader)->Fetch(tp_, 0, 1 << 20, -1);
  auto replay = (*leader)->Fetch(tp_, 0, 1 << 20, -1);
  EXPECT_EQ(first->records.size(), replay->records.size());
  // Same offsets, same payloads: replay is deterministic.
  for (size_t i = 0; i < first->records.size(); ++i) {
    EXPECT_EQ(first->records[i].offset, replay->records[i].offset);
    EXPECT_EQ(first->records[i].value, replay->records[i].value);
  }
}

}  // namespace
}  // namespace liquid::messaging
