#include "messaging/cluster.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/clock.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ClusterTest, StartsAllBrokersAndElectsController) {
  EXPECT_EQ(cluster_->BrokerIds().size(), 3u);
  EXPECT_EQ(cluster_->AliveBrokerIds().size(), 3u);
  EXPECT_GE(cluster_->ControllerId(), 0);
  int controllers = 0;
  for (int id : cluster_->BrokerIds()) {
    if (cluster_->broker(id)->IsController()) ++controllers;
  }
  EXPECT_EQ(controllers, 1);  // Exactly one controller.
}

TEST_F(ClusterTest, CreateTopicAssignsLeadersAndReplicas) {
  TopicConfig config;
  config.partitions = 4;
  config.replication_factor = 2;
  ASSERT_TRUE(cluster_->CreateTopic("events", config).ok());

  for (int p = 0; p < 4; ++p) {
    const TopicPartition tp{"events", p};
    auto state = cluster_->GetPartitionState(tp);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(state->replicas.size(), 2u);
    EXPECT_EQ(state->isr.size(), 2u);
    EXPECT_EQ(state->leader, state->replicas.front());
    auto leader = cluster_->LeaderFor(tp);
    ASSERT_TRUE(leader.ok());
    EXPECT_TRUE((*leader)->IsLeaderFor(tp));
  }
}

TEST_F(ClusterTest, PartitionsSpreadAcrossBrokers) {
  TopicConfig config;
  config.partitions = 6;
  config.replication_factor = 1;
  ASSERT_TRUE(cluster_->CreateTopic("spread", config).ok());
  std::set<int> leaders;
  for (int p = 0; p < 6; ++p) {
    auto state = cluster_->GetPartitionState(TopicPartition{"spread", p});
    leaders.insert(state->leader);
  }
  EXPECT_EQ(leaders.size(), 3u);  // Round-robin uses every broker.
}

TEST_F(ClusterTest, DuplicateTopicRejected) {
  TopicConfig config;
  ASSERT_TRUE(cluster_->CreateTopic("t", config).ok());
  EXPECT_TRUE(cluster_->CreateTopic("t", config).IsAlreadyExists());
}

TEST_F(ClusterTest, ReplicationFactorBoundedByBrokers) {
  TopicConfig config;
  config.replication_factor = 5;
  EXPECT_TRUE(cluster_->CreateTopic("t", config).IsInvalidArgument());
}

TEST_F(ClusterTest, InvalidTopicConfigRejected) {
  TopicConfig config;
  config.partitions = 0;
  EXPECT_TRUE(cluster_->CreateTopic("t", config).IsInvalidArgument());
}

TEST_F(ClusterTest, UnknownTopicQueriesFail) {
  EXPECT_TRUE(cluster_->GetTopicConfig("ghost").status().IsNotFound());
  EXPECT_TRUE(cluster_->PartitionsOf("ghost").status().IsNotFound());
  EXPECT_TRUE(cluster_->GetPartitionState(TopicPartition{"ghost", 0})
                  .status()
                  .IsNotFound());
}

TEST_F(ClusterTest, BrokerStopAndRestartLifecycle) {
  TopicConfig config;
  config.partitions = 1;
  config.replication_factor = 3;
  ASSERT_TRUE(cluster_->CreateTopic("t", config).ok());

  ASSERT_TRUE(cluster_->StopBroker(2).ok());
  EXPECT_EQ(cluster_->AliveBrokerIds().size(), 2u);
  EXPECT_FALSE(cluster_->broker(2)->alive());

  ASSERT_TRUE(cluster_->RestartBroker(2).ok());
  EXPECT_EQ(cluster_->AliveBrokerIds().size(), 3u);
  EXPECT_TRUE(cluster_->broker(2)->alive());
  // Restarted broker resumed its replica.
  EXPECT_TRUE(cluster_->broker(2)->HostsPartition(TopicPartition{"t", 0}));
}

TEST_F(ClusterTest, ControllerFailoverElectsNewController) {
  const int old_controller = cluster_->ControllerId();
  ASSERT_GE(old_controller, 0);
  LIQUID_ASSERT_OK(cluster_->StopBroker(old_controller));
  const int new_controller = cluster_->ControllerId();
  EXPECT_GE(new_controller, 0);
  EXPECT_NE(new_controller, old_controller);
}

TEST_F(ClusterTest, PartitionStateSerializationRoundTrip) {
  PartitionState state;
  state.leader = 2;
  state.leader_epoch = 7;
  state.replicas = {2, 0, 1};
  state.isr = {2, 1};
  auto parsed = PartitionState::Parse(state.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->leader, 2);
  EXPECT_EQ(parsed->leader_epoch, 7);
  EXPECT_EQ(parsed->replicas, state.replicas);
  EXPECT_EQ(parsed->isr, state.isr);
}

TEST_F(ClusterTest, PartitionStateEmptyIsrParses) {
  PartitionState state;
  state.leader = -1;
  state.leader_epoch = 3;
  state.replicas = {0, 1};
  state.isr = {};
  auto parsed = PartitionState::Parse(state.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->isr.empty());
  EXPECT_EQ(parsed->leader, -1);
}

TEST_F(ClusterTest, ManyTopicsManyPartitions) {
  // Scaled-down version of the paper's 25k-topic deployment shape (§5).
  TopicConfig config;
  config.partitions = 4;
  config.replication_factor = 2;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster_->CreateTopic("topic" + std::to_string(i), config).ok());
  }
  EXPECT_EQ(cluster_->Topics().size(), 50u);
  for (int i = 0; i < 50; i += 7) {
    auto partitions = cluster_->PartitionsOf("topic" + std::to_string(i));
    for (const auto& tp : *partitions) {
      EXPECT_TRUE(cluster_->LeaderFor(tp).ok());
    }
  }
}

}  // namespace
}  // namespace liquid::messaging
