#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/offset_manager.h"
#include "messaging/producer.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// End-to-end produce/consume paths through the messaging layer (Fig. 3).
class ProduceConsumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    auto offsets = OffsetManager::Open(&offsets_disk_, "offsets/", &clock_);
    ASSERT_TRUE(offsets.ok());
    offsets_ = std::move(offsets).value();
    coordinator_ = std::make_unique<GroupCoordinator>(cluster_.get());
  }

  void CreateTopic(const std::string& name, int partitions, int rf = 2) {
    TopicConfig config;
    config.partitions = partitions;
    config.replication_factor = rf;
    ASSERT_TRUE(cluster_->CreateTopic(name, config).ok());
  }

  std::unique_ptr<Consumer> NewConsumer(const std::string& group,
                                        const std::string& member) {
    ConsumerConfig config;
    config.group = group;
    return std::make_unique<Consumer>(cluster_.get(), offsets_.get(),
                                      coordinator_.get(), member, config);
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
  storage::MemDisk offsets_disk_;
  std::unique_ptr<OffsetManager> offsets_;
  std::unique_ptr<GroupCoordinator> coordinator_;
};

TEST_F(ProduceConsumeTest, RoundTripSinglePartition) {
  CreateTopic("t", 1);
  Producer producer(cluster_.get(), ProducerConfig{});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        producer.Send("t", storage::Record::KeyValue("k" + std::to_string(i),
                                                     "v" + std::to_string(i)))
            .ok());
  }
  ASSERT_TRUE(producer.Flush().ok());
  EXPECT_EQ(producer.records_sent(), 100);

  auto consumer = NewConsumer("g", "c1");
  ASSERT_TRUE(consumer->Subscribe({"t"}).ok());
  std::vector<ConsumerRecord> all;
  while (true) {
    auto records = consumer->Poll(32);
    ASSERT_TRUE(records.ok());
    if (records->empty()) break;
    all.insert(all.end(), records->begin(), records->end());
  }
  ASSERT_EQ(all.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(all[i].record.key, "k" + std::to_string(i));
    EXPECT_EQ(all[i].record.offset, i);  // Per-partition total order (§3.1).
  }
}

TEST_F(ProduceConsumeTest, HashPartitioningIsStableByKey) {
  CreateTopic("t", 4);
  Producer producer(cluster_.get(), ProducerConfig{});
  // Same key many times: always the same partition.
  for (int i = 0; i < 20; ++i) {
    LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("stable-key", "v")));
  }
  LIQUID_ASSERT_OK(producer.Flush());
  int partitions_with_data = 0;
  for (int p = 0; p < 4; ++p) {
    auto leader = cluster_->LeaderFor(TopicPartition{"t", p});
    if (*(*leader)->LogEndOffset(TopicPartition{"t", p}) > 0) {
      ++partitions_with_data;
    }
  }
  EXPECT_EQ(partitions_with_data, 1);
}

TEST_F(ProduceConsumeTest, RoundRobinSpreadsLoad) {
  CreateTopic("t", 4);
  ProducerConfig config;
  config.partitioner = PartitionerType::kRoundRobin;
  config.batch_max_records = 1;  // Send immediately.
  Producer producer(cluster_.get(), config);
  for (int i = 0; i < 40; ++i) {
    LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("k", "v")));
  }
  LIQUID_ASSERT_OK(producer.Flush());
  for (int p = 0; p < 4; ++p) {
    auto leader = cluster_->LeaderFor(TopicPartition{"t", p});
    EXPECT_EQ(*(*leader)->LogEndOffset(TopicPartition{"t", p}), 10);
  }
}

TEST_F(ProduceConsumeTest, CustomPartitionerRoutesSemantically) {
  CreateTopic("t", 2);
  Producer producer(cluster_.get(), ProducerConfig{});
  producer.SetCustomPartitioner(
      [](const storage::Record& record, int) {
        return record.key.size() % 2 == 0 ? 0 : 1;
      });
  LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("ab", "v")));   // -> 0
  LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("abc", "v")));  // -> 1
  LIQUID_ASSERT_OK(producer.Flush());
  auto l0 = cluster_->LeaderFor(TopicPartition{"t", 0});
  auto l1 = cluster_->LeaderFor(TopicPartition{"t", 1});
  EXPECT_EQ(*(*l0)->LogEndOffset(TopicPartition{"t", 0}), 1);
  EXPECT_EQ(*(*l1)->LogEndOffset(TopicPartition{"t", 1}), 1);
}

TEST_F(ProduceConsumeTest, ProduceToNonLeaderIsRejected) {
  CreateTopic("t", 1, 3);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  // Find a follower broker.
  int follower = -1;
  for (int replica : state->replicas) {
    if (replica != state->leader) follower = replica;
  }
  ASSERT_GE(follower, 0);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  auto resp =
      cluster_->broker(follower)->Produce(tp, batch, AckMode::kLeader);
  EXPECT_TRUE(resp.status().IsNotLeader());
}

TEST_F(ProduceConsumeTest, ConsumerSeekRewindsAndRereads) {
  CreateTopic("t", 1);
  Producer producer(cluster_.get(), ProducerConfig{});
  for (int i = 0; i < 10; ++i) {
    LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("k", std::to_string(i))));
  }
  LIQUID_ASSERT_OK(producer.Flush());

  auto consumer = NewConsumer("g", "c1");
  LIQUID_ASSERT_OK(consumer->Subscribe({"t"}));
  auto first = consumer->Poll(100);
  ASSERT_EQ(first->size(), 10u);
  // Rewindability (§3.1): seek back and read the same data again.
  ASSERT_TRUE(consumer->Seek(TopicPartition{"t", 0}, 5).ok());
  auto again = consumer->Poll(100);
  ASSERT_EQ(again->size(), 5u);
  EXPECT_EQ(again->front().record.offset, 5);
}

TEST_F(ProduceConsumeTest, SeekToTimestampFindsData) {
  CreateTopic("t", 1);
  Producer producer(cluster_.get(), ProducerConfig{});
  clock_.SetMs(10000);
  LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("k", "early")));
  LIQUID_ASSERT_OK(producer.Flush());
  clock_.SetMs(20000);
  LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("k", "late")));
  LIQUID_ASSERT_OK(producer.Flush());

  auto consumer = NewConsumer("g", "c1");
  LIQUID_ASSERT_OK(consumer->Subscribe({"t"}));
  ASSERT_TRUE(consumer->SeekToTimestamp(15000).ok());
  auto records = consumer->Poll(10);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(records->front().record.value, "late");
}

TEST_F(ProduceConsumeTest, CommitAndResumeAfterConsumerRestart) {
  CreateTopic("t", 1);
  Producer producer(cluster_.get(), ProducerConfig{});
  for (int i = 0; i < 10; ++i) {
    LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("k", std::to_string(i))));
  }
  LIQUID_ASSERT_OK(producer.Flush());

  {
    auto consumer = NewConsumer("g", "c1");
    LIQUID_ASSERT_OK(consumer->Subscribe({"t"}));
    auto records = consumer->Poll(4);
    ASSERT_EQ(records->size(), 4u);
    ASSERT_TRUE(consumer->Commit().ok());
    LIQUID_ASSERT_OK(consumer->Close());
  }
  // New member of the same group resumes from the committed offset.
  auto consumer = NewConsumer("g", "c2");
  LIQUID_ASSERT_OK(consumer->Subscribe({"t"}));
  auto records = consumer->Poll(100);
  ASSERT_EQ(records->size(), 6u);
  EXPECT_EQ(records->front().record.offset, 4);
}

TEST_F(ProduceConsumeTest, TwoGroupsEachSeeAllData) {
  // Pub/sub semantics ACROSS groups (§3.1, Fig. 3).
  CreateTopic("t", 2);
  Producer producer(cluster_.get(), ProducerConfig{});
  for (int i = 0; i < 20; ++i) {
    LIQUID_ASSERT_OK(producer.Send("t", storage::Record::KeyValue("k" + std::to_string(i), "v")));
  }
  LIQUID_ASSERT_OK(producer.Flush());

  for (const char* group_name : {"g1", "g2"}) {
    const std::string group(group_name);
    auto consumer = NewConsumer(group, group + "-member");
    LIQUID_ASSERT_OK(consumer->Subscribe({"t"}));
    size_t total = 0;
    while (true) {
      auto records = consumer->Poll(64);
      if (records->empty()) break;
      total += records->size();
    }
    EXPECT_EQ(total, 20u) << group;
  }
}

TEST_F(ProduceConsumeTest, FetchSeesOnlyCommittedData) {
  // With rf=3 and lazy replication, the HW lags until followers pull.
  CreateTopic("t", 1, 3);
  const TopicPartition tp{"t", 0};
  auto leader = cluster_->LeaderFor(tp);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  ASSERT_TRUE((*leader)->Produce(tp, batch, AckMode::kLeader).ok());
  // No replication tick yet: HW is still 0, consumers see nothing.
  auto fetch = (*leader)->Fetch(tp, 0, 1 << 20, -1);
  ASSERT_TRUE(fetch.ok());
  EXPECT_TRUE(fetch->records.empty());
  EXPECT_EQ(fetch->log_end_offset, 1);

  cluster_->ReplicationTick();
  cluster_->ReplicationTick();  // Second tick advances HW from follower LEOs.
  fetch = (*leader)->Fetch(tp, 0, 1 << 20, -1);
  EXPECT_EQ(fetch->records.size(), 1u);
}

TEST_F(ProduceConsumeTest, ProducerRetriesAfterLeaderFailover) {
  CreateTopic("t", 1, 3);
  const TopicPartition tp{"t", 0};
  ProducerConfig config;
  config.acks = AckMode::kAll;
  config.batch_max_records = 1;
  Producer producer(cluster_.get(), config);
  ASSERT_TRUE(producer.Send("t", storage::Record::KeyValue("k", "v1")).ok());

  const int old_leader = cluster_->GetPartitionState(tp)->leader;
  LIQUID_ASSERT_OK(cluster_->StopBroker(old_leader));
  // The producer refreshes metadata and retries transparently.
  ASSERT_TRUE(producer.Send("t", storage::Record::KeyValue("k", "v2")).ok());
  ASSERT_TRUE(producer.Flush().ok());
  const int new_leader = cluster_->GetPartitionState(tp)->leader;
  EXPECT_NE(new_leader, old_leader);
  EXPECT_GE(*cluster_->broker(new_leader)->LogEndOffset(tp), 1);
}

}  // namespace
}  // namespace liquid::messaging
