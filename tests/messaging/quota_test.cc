#include "messaging/quota.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/producer.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// Multi-tenancy byte-rate quotas (§4.5).
TEST(QuotaManagerTest, UnquotedClientsNeverThrottled) {
  SimulatedClock clock(0);
  QuotaManager quotas(&clock);
  EXPECT_EQ(quotas.Charge("anyone", 1 << 30), 0);
  EXPECT_EQ(quotas.Charge("", 1 << 30), 0);  // Internal traffic.
  EXPECT_EQ(quotas.throttled_requests(), 0);
}

TEST(QuotaManagerTest, BurstThenThrottle) {
  SimulatedClock clock(0);
  QuotaManager quotas(&clock);
  quotas.SetQuota("tenant", 1000);  // 1000 B/s, 1000 B burst.
  EXPECT_EQ(quotas.Charge("tenant", 800), 0);   // Within the burst.
  const int64_t delay = quotas.Charge("tenant", 800);  // 600 B over.
  EXPECT_GT(delay, 0);
  EXPECT_LE(delay, 1000);  // At most ~600ms of debt (+1).
  EXPECT_EQ(quotas.throttled_requests(), 1);
}

TEST(QuotaManagerTest, BucketRefillsOverTime) {
  SimulatedClock clock(0);
  QuotaManager quotas(&clock);
  quotas.SetQuota("tenant", 1000);
  EXPECT_EQ(quotas.Charge("tenant", 1000), 0);  // Burst drained.
  EXPECT_GT(quotas.Charge("tenant", 500), 0);   // Over.
  clock.AdvanceMs(2000);                        // Fully refilled (capped).
  EXPECT_EQ(quotas.Charge("tenant", 900), 0);
}

TEST(QuotaManagerTest, RemovingQuotaStopsThrottling) {
  SimulatedClock clock(0);
  QuotaManager quotas(&clock);
  quotas.SetQuota("tenant", 10);
  EXPECT_GT(quotas.Charge("tenant", 1000), 0);
  quotas.SetQuota("tenant", 0);  // Remove.
  EXPECT_EQ(quotas.Charge("tenant", 1000), 0);
}

TEST(QuotaManagerTest, TenantsAreIndependent) {
  SimulatedClock clock(0);
  QuotaManager quotas(&clock);
  quotas.SetQuota("noisy", 100);
  quotas.SetQuota("quiet", 100);
  EXPECT_GT(quotas.Charge("noisy", 10000), 0);
  EXPECT_EQ(quotas.Charge("quiet", 50), 0);  // Unaffected by the neighbour.
}

class BrokerQuotaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 1;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    TopicConfig topic;
    topic.partitions = 1;
    topic.replication_factor = 1;
    ASSERT_TRUE(cluster_->CreateTopic("t", topic).ok());
  }

  SimulatedClock clock_{0};
  std::unique_ptr<Cluster> cluster_;
  const TopicPartition tp_{"t", 0};
};

TEST_F(BrokerQuotaTest, ProduceOverQuotaReturnsThrottle) {
  Broker* broker = *cluster_->LeaderFor(tp_);
  broker->quotas()->SetQuota("tenant-a", 1000);

  std::vector<storage::Record> batch{
      storage::Record::KeyValue("k", std::string(600, 'x'))};
  const int64_t before = clock_.NowMs();
  auto first = broker->Produce(tp_, batch, AckMode::kLeader, -1, -1, "tenant-a");
  LIQUID_ASSERT_OK(first);
  EXPECT_EQ(first->throttle_ms, 0);  // First burst: no throttle.
  auto second =
      broker->Produce(tp_, batch, AckMode::kLeader, -1, -1, "tenant-a");
  LIQUID_ASSERT_OK(second);
  // Over quota: the broker reports the throttle in the response (the producer
  // enforces it) but never sleeps on the request path itself.
  EXPECT_GT(second->throttle_ms, 0);
  EXPECT_EQ(clock_.NowMs(), before);
  EXPECT_GT(broker->metrics()->GetCounter("quota.produce_throttles")->value(),
            0);
}

TEST_F(BrokerQuotaTest, FetchOverQuotaReturnsThrottle) {
  Broker* broker = *cluster_->LeaderFor(tp_);
  broker->quotas()->SetQuota("tenant-b", 1024);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  LIQUID_ASSERT_OK(broker->Produce(tp_, batch, AckMode::kLeader));

  const int64_t before = clock_.NowMs();
  auto first = broker->Fetch(tp_, 0, 64 * 1024, -1, "tenant-b");
  LIQUID_ASSERT_OK(first);
  auto second = broker->Fetch(tp_, 0, 64 * 1024, -1, "tenant-b");
  LIQUID_ASSERT_OK(second);
  EXPECT_GT(second->throttle_ms, 0);
  EXPECT_EQ(clock_.NowMs(), before);  // Broker thread never slept.
  EXPECT_GT(broker->metrics()->GetCounter("quota.fetch_throttles")->value(), 0);
}

TEST_F(BrokerQuotaTest, ProducerEnforcesThrottleClientSide) {
  Broker* broker = *cluster_->LeaderFor(tp_);
  broker->quotas()->SetQuota("app2", 500);
  ProducerConfig config;
  config.client_id = "app2";
  config.batch_max_records = 1;
  Producer producer(cluster_.get(), config);
  const int64_t before = clock_.NowMs();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        producer.Send("t", storage::Record::KeyValue("k", std::string(300, 'x')))
            .ok());
  }
  // The producer saw throttle verdicts and slept through them itself — the
  // simulated clock only advances when a client calls SleepMs.
  EXPECT_GT(broker->metrics()->GetCounter("quota.produce_throttles")->value(),
            0);
  EXPECT_GT(clock_.NowMs(), before);
}

TEST_F(BrokerQuotaTest, ReplicationTrafficNeverThrottled) {
  Broker* broker = *cluster_->LeaderFor(tp_);
  broker->quotas()->SetQuota("tenant", 1);  // Absurdly tight.
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  LIQUID_ASSERT_OK(broker->Produce(tp_, batch, AckMode::kLeader));  // client_id="" internal.
  const int64_t before = clock_.NowMs();
  // Replica fetches carry no client id: never delayed.
  ASSERT_TRUE(broker->Fetch(tp_, 0, 1 << 20, /*replica_id=*/5).ok());
  EXPECT_EQ(clock_.NowMs(), before);
}

TEST_F(BrokerQuotaTest, ProducerClientIdFlowsThrough) {
  Broker* broker = *cluster_->LeaderFor(tp_);
  broker->quotas()->SetQuota("app1", 200);
  ProducerConfig config;
  config.client_id = "app1";
  config.batch_max_records = 1;
  Producer producer(cluster_.get(), config);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        producer.Send("t", storage::Record::KeyValue("k", std::string(100, 'x')))
            .ok());
  }
  EXPECT_GT(broker->metrics()->GetCounter("quota.produce_throttles")->value(),
            0);
}

}  // namespace
}  // namespace liquid::messaging
