#include "messaging/access_control.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/producer.h"

namespace liquid::messaging {
namespace {

/// Access control (§2.1): misconfigured back-end systems must not be able to
/// touch other applications' data.
TEST(AccessControllerTest, DisabledAllowsEverything) {
  AccessController acls;
  EXPECT_TRUE(acls.Check("anyone", "any-topic", AclOperation::kWrite).ok());
  EXPECT_EQ(acls.denials(), 0);
}

TEST(AccessControllerTest, EnforcementRequiresGrant) {
  AccessController acls;
  acls.SetEnforcing(true);
  EXPECT_TRUE(
      acls.Check("app", "t", AclOperation::kRead).IsFailedPrecondition());
  acls.Allow("app", "t", AclOperation::kRead);
  EXPECT_TRUE(acls.Check("app", "t", AclOperation::kRead).ok());
  // Read grant does not imply write.
  EXPECT_TRUE(
      acls.Check("app", "t", AclOperation::kWrite).IsFailedPrecondition());
  EXPECT_EQ(acls.denials(), 2);
}

TEST(AccessControllerTest, WildcardTopicGrant) {
  AccessController acls;
  acls.SetEnforcing(true);
  acls.Allow("ops", "*", AclOperation::kRead);
  EXPECT_TRUE(acls.Check("ops", "anything", AclOperation::kRead).ok());
  EXPECT_TRUE(
      acls.Check("ops", "anything", AclOperation::kWrite).IsFailedPrecondition());
}

TEST(AccessControllerTest, RevokeRemovesGrant) {
  AccessController acls;
  acls.SetEnforcing(true);
  acls.Allow("app", "t", AclOperation::kWrite);
  EXPECT_TRUE(acls.Check("app", "t", AclOperation::kWrite).ok());
  acls.Revoke("app", "t", AclOperation::kWrite);
  EXPECT_FALSE(acls.Check("app", "t", AclOperation::kWrite).ok());
}

TEST(AccessControllerTest, InternalTrafficAlwaysAllowed) {
  AccessController acls;
  acls.SetEnforcing(true);
  EXPECT_TRUE(acls.Check("", "t", AclOperation::kWrite).ok());
  EXPECT_TRUE(acls.Check("", "t", AclOperation::kRead).ok());
}

class BrokerAclTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 2;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    TopicConfig topic;
    topic.partitions = 1;
    topic.replication_factor = 2;
    ASSERT_TRUE(cluster_->CreateTopic("team-a-data", topic).ok());
    cluster_->acls()->SetEnforcing(true);
    cluster_->acls()->Allow("team-a", "team-a-data", AclOperation::kWrite);
    cluster_->acls()->Allow("team-a", "team-a-data", AclOperation::kRead);
  }

  SimulatedClock clock_{0};
  std::unique_ptr<Cluster> cluster_;
  const TopicPartition tp_{"team-a-data", 0};
};

TEST_F(BrokerAclTest, AuthorizedClientWorks) {
  ProducerConfig config;
  config.client_id = "team-a";
  config.batch_max_records = 1;
  Producer producer(cluster_.get(), config);
  ASSERT_TRUE(producer.Send("team-a-data", storage::Record::KeyValue("k", "v")).ok());
  Broker* leader = *cluster_->LeaderFor(tp_);
  auto fetch = leader->Fetch(tp_, 0, 4096, -1, "team-a");
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->records.size(), 1u);
}

TEST_F(BrokerAclTest, UnauthorizedWriteRejected) {
  Broker* leader = *cluster_->LeaderFor(tp_);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  auto resp = leader->Produce(tp_, batch, AckMode::kAll, -1, -1, "team-b");
  EXPECT_TRUE(resp.status().IsFailedPrecondition());
  EXPECT_EQ(*leader->LogEndOffset(tp_), 0);  // Nothing landed.
}

TEST_F(BrokerAclTest, UnauthorizedReadRejected) {
  Broker* leader = *cluster_->LeaderFor(tp_);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  ASSERT_TRUE(leader->Produce(tp_, batch, AckMode::kAll).ok());  // Internal.
  auto fetch = leader->Fetch(tp_, 0, 4096, -1, "team-b");
  EXPECT_TRUE(fetch.status().IsFailedPrecondition());
  EXPECT_GT(cluster_->acls()->denials(), 0);
}

TEST_F(BrokerAclTest, ReplicationUnaffectedByAcls) {
  // Replica pulls carry no principal: replication keeps working even with
  // enforcement on and no grants.
  Broker* leader = *cluster_->LeaderFor(tp_);
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "v")};
  ASSERT_TRUE(leader->Produce(tp_, batch, AckMode::kLeader).ok());
  cluster_->ReplicationTick();
  auto state = cluster_->GetPartitionState(tp_);
  for (int replica : state->replicas) {
    EXPECT_EQ(*cluster_->broker(replica)->LogEndOffset(tp_), 1) << replica;
  }
}

}  // namespace
}  // namespace liquid::messaging
