#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/metadata.h"
#include "storage/record.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

// Lock-order stress: drives the exact interleaving the whole-program lock
// graph (tools/lint/lock_hierarchy.txt, DESIGN.md §5a) proves cycle-free.
// StopReplica/BecomeLeader need the broker's membership lock EXCLUSIVE (erase
// and re-insert the Replica) while concurrent Produce/Fetch hold it SHARED
// plus one replica lock, down into the log locks. Running the churn against
// TWO partitions at once, with producers crossing between them in opposite
// orders, means any code path that ever held a replica lock while
// (re)acquiring the membership lock in write mode — the inversion the
// analyzer's hierarchy forbids — deadlocks here or trips ThreadSanitizer's
// lock-order detector (scripts/check.sh runs this suite with
// -DLIQUID_SANITIZE=thread).
class LockOrderStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 1;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(LockOrderStressTest, ReplicaChurnRacesProduceAcrossTwoPartitions) {
  constexpr int kProducerThreads = 4;
  constexpr int kBatchesPerThread = 200;
  constexpr int kChurnRounds = 120;

  TopicConfig topic;
  topic.partitions = 2;
  topic.replication_factor = 1;
  ASSERT_TRUE(cluster_->CreateTopic("churny", topic).ok());
  Broker* broker = cluster_->broker(0);
  const TopicPartition p0{"churny", 0};
  const TopicPartition p1{"churny", 1};

  std::atomic<bool> stop{false};
  std::atomic<int64_t> accepted{0};

  // Producers alternate between the two partitions; odd threads visit them
  // in the opposite order so replica pins interleave both ways against the
  // churners' exclusive membership holds. A partition that is momentarily
  // not hosted (NotFound) or mid-reassignment (NotLeader/Unavailable) is
  // expected; only the locking discipline is under test.
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducerThreads; ++t) {
    producers.emplace_back([broker, p0, p1, t, &accepted] {
      for (int i = 0; i < kBatchesPerThread; ++i) {
        const TopicPartition& tp = (i + t) % 2 == 0 ? p0 : p1;
        std::vector<storage::Record> batch;
        batch.push_back(storage::Record::KeyValue(
            "t" + std::to_string(t), "v" + std::to_string(i)));
        auto resp = broker->Produce(tp, std::move(batch), AckMode::kLeader);
        if (resp.ok()) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // A reader holds the membership lock SHARED and a replica lock on the
  // fetch path while both churners queue for it exclusively.
  std::thread fetcher([broker, p0, p1, &stop] {
    while (!stop.load()) {
      broker->Fetch(p0, 0, 1 << 16).status();
      broker->Fetch(p1, 0, 1 << 16).status();
    }
  });

  // One churner per partition, each repeatedly un-hosting and re-hosting its
  // replica. Both run concurrently so p0's exclusive erase races p1's
  // produce (and vice versa) — the cross-partition half of the cycle the
  // hierarchy forbids.
  auto churn = [this, broker](const TopicPartition& tp, int epoch_base) {
    auto config = cluster_->GetTopicConfig(tp.topic);
    ASSERT_TRUE(config.ok());
    for (int round = 0; round < kChurnRounds; ++round) {
      broker->StopReplica(tp, /*delete_data=*/false).ok();
      PartitionState state;
      state.leader = 0;
      state.leader_epoch = epoch_base + round;
      state.replicas = {0};
      state.isr = {0};
      LIQUID_ASSERT_OK(broker->BecomeLeader(tp, state, *config));
    }
  };
  std::thread churner0([&churn, p0] { churn(p0, 1000); });
  std::thread churner1([&churn, p1] { churn(p1, 5000); });

  for (auto& thread : producers) thread.join();
  churner0.join();
  churner1.join();
  stop.store(true);
  fetcher.join();

  // Both partitions end up hosted and writable; whatever survived the churn
  // is consistently committed.
  for (const TopicPartition& tp : {p0, p1}) {
    std::vector<storage::Record> batch;
    batch.push_back(storage::Record::KeyValue("final", tp.ToString()));
    auto resp = broker->Produce(tp, std::move(batch), AckMode::kLeader);
    LIQUID_ASSERT_OK(resp.status());
    auto end = broker->LogEndOffset(tp);
    LIQUID_ASSERT_OK(end);
    EXPECT_GE(*end, 1);
  }
  // Liveness sanity: the produce load cannot have been entirely starved.
  EXPECT_GT(accepted.load(), 0);
}

}  // namespace
}  // namespace liquid::messaging
