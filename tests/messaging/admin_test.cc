#include "messaging/admin.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/producer.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

class AdminTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 4;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
    offsets_ =
        std::move(OffsetManager::Open(&offsets_disk_, "o/", &clock_)).value();
    coordinator_ = std::make_unique<GroupCoordinator>(cluster_.get());
    admin_ = std::make_unique<Admin>(cluster_.get(), offsets_.get());
  }

  void CreateTopic(const std::string& name, int partitions, int rf) {
    TopicConfig config;
    config.partitions = partitions;
    config.replication_factor = rf;
    ASSERT_TRUE(cluster_->CreateTopic(name, config).ok());
  }

  void Produce(const std::string& topic, int count) {
    Producer producer(cluster_.get(), ProducerConfig{});
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(
          producer.Send(topic, storage::Record::KeyValue("k", "v")).ok());
    }
    ASSERT_TRUE(producer.Flush().ok());
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
  storage::MemDisk offsets_disk_;
  std::unique_ptr<OffsetManager> offsets_;
  std::unique_ptr<GroupCoordinator> coordinator_;
  std::unique_ptr<Admin> admin_;
};

TEST_F(AdminTest, DescribeHealthyCluster) {
  CreateTopic("t", 4, 2);
  auto description = admin_->DescribeCluster();
  EXPECT_EQ(description.alive_brokers.size(), 4u);
  EXPECT_TRUE(description.dead_brokers.empty());
  EXPECT_GE(description.controller_id, 0);
  EXPECT_EQ(description.topics, 1);
  EXPECT_EQ(description.partitions, 4);
  EXPECT_EQ(description.offline_partitions, 0);
  EXPECT_EQ(description.under_replicated_partitions, 0);
}

TEST_F(AdminTest, DescribeDegradedCluster) {
  CreateTopic("t", 2, 3);
  const TopicPartition tp{"t", 0};
  // Kill one broker and shrink an ISR via a produce.
  auto state = cluster_->GetPartitionState(tp);
  int victim = -1;
  for (int replica : state->replicas) {
    if (replica != state->leader) victim = replica;
  }
  LIQUID_ASSERT_OK(cluster_->StopBroker(victim));
  Produce("t", 10);  // acks=all shrinks ISRs excluding the dead broker.

  auto description = admin_->DescribeCluster();
  EXPECT_EQ(description.alive_brokers.size(), 3u);
  EXPECT_EQ(description.dead_brokers.size(), 1u);
  EXPECT_GT(description.under_replicated_partitions, 0);
}

TEST_F(AdminTest, DescribeTopicListsAllPartitions) {
  CreateTopic("t", 3, 2);
  auto states = admin_->DescribeTopic("t");
  ASSERT_TRUE(states.ok());
  ASSERT_EQ(states->size(), 3u);
  for (const auto& state : *states) {
    EXPECT_GE(state.leader, 0);
    EXPECT_EQ(state.replicas.size(), 2u);
  }
  EXPECT_TRUE(admin_->DescribeTopic("ghost").status().IsNotFound());
}

TEST_F(AdminTest, ConsumerLagTracksConsumption) {
  CreateTopic("t", 1, 1);
  Produce("t", 100);
  const TopicPartition tp{"t", 0};

  // Never-committed group: lag = full log.
  auto lag = admin_->ConsumerLag("readers", "t");
  ASSERT_TRUE(lag.ok());
  ASSERT_EQ(lag->size(), 1u);
  EXPECT_EQ((*lag)[0].committed_offset, -1);
  EXPECT_EQ((*lag)[0].lag, 100);

  // Consume 40, commit: lag = 60.
  ConsumerConfig consumer_config;
  consumer_config.group = "readers";
  Consumer consumer(cluster_.get(), offsets_.get(), coordinator_.get(), "m",
                    consumer_config);
  LIQUID_ASSERT_OK(consumer.Subscribe({"t"}));
  LIQUID_ASSERT_OK(consumer.Poll(40));
  LIQUID_ASSERT_OK(consumer.Commit());
  lag = admin_->ConsumerLag("readers", "t");
  EXPECT_EQ((*lag)[0].committed_offset, 40);
  EXPECT_EQ((*lag)[0].lag, 60);
}

TEST_F(AdminTest, ReassignPartitionMovesDataAndLeadership) {
  CreateTopic("t", 1, 2);
  Produce("t", 50);
  const TopicPartition tp{"t", 0};
  auto before = cluster_->GetPartitionState(tp);

  // Pick two brokers disjoint from the current replica set.
  std::vector<int> targets;
  for (int id : cluster_->AliveBrokerIds()) {
    if (std::find(before->replicas.begin(), before->replicas.end(), id) ==
        before->replicas.end()) {
      targets.push_back(id);
    }
  }
  ASSERT_EQ(targets.size(), 2u);

  ASSERT_TRUE(admin_->ReassignPartition(tp, targets).ok());
  auto after = cluster_->GetPartitionState(tp);
  EXPECT_EQ(after->replicas, targets);
  EXPECT_TRUE(std::find(targets.begin(), targets.end(), after->leader) !=
              targets.end());
  EXPECT_GT(after->leader_epoch, before->leader_epoch);

  // All data still readable from the new leader.
  auto leader = cluster_->LeaderFor(tp);
  auto fetch = (*leader)->Fetch(tp, 0, 1 << 20, -1);
  ASSERT_TRUE(fetch.ok());
  EXPECT_EQ(fetch->log_end_offset, 50);
  // Old replicas no longer host the partition.
  for (int id : before->replicas) {
    EXPECT_FALSE(cluster_->broker(id)->HostsPartition(tp)) << id;
  }
  // New replica set serves new produces.
  Produce("t", 10);
  EXPECT_EQ(*(*cluster_->LeaderFor(tp))->LogEndOffset(tp), 60);
}

TEST_F(AdminTest, ReassignValidatesTargets) {
  CreateTopic("t", 1, 1);
  const TopicPartition tp{"t", 0};
  EXPECT_TRUE(admin_->ReassignPartition(tp, {}).IsInvalidArgument());
  EXPECT_TRUE(admin_->ReassignPartition(tp, {99}).IsInvalidArgument());
  LIQUID_ASSERT_OK(cluster_->StopBroker(3));
  EXPECT_TRUE(admin_->ReassignPartition(tp, {3}).IsInvalidArgument());
}

TEST_F(AdminTest, ReassignKeepingLeaderIsStable) {
  CreateTopic("t", 1, 2);
  Produce("t", 20);
  const TopicPartition tp{"t", 0};
  auto before = cluster_->GetPartitionState(tp);
  // Keep the leader, swap the follower for a new broker.
  int new_follower = -1;
  for (int id : cluster_->AliveBrokerIds()) {
    if (std::find(before->replicas.begin(), before->replicas.end(), id) ==
        before->replicas.end()) {
      new_follower = id;
      break;
    }
  }
  ASSERT_TRUE(
      admin_->ReassignPartition(tp, {before->leader, new_follower}).ok());
  auto after = cluster_->GetPartitionState(tp);
  EXPECT_EQ(after->leader, before->leader);  // Leadership did not move.
  EXPECT_EQ(*cluster_->broker(new_follower)->LogEndOffset(tp), 20);
}

TEST_F(AdminTest, DrainBrokerEmptiesIt) {
  CreateTopic("a", 2, 2);
  CreateTopic("b", 2, 2);
  Produce("a", 20);
  Produce("b", 20);

  // Find a broker hosting at least one partition.
  int victim = -1;
  for (int id : cluster_->AliveBrokerIds()) {
    if (!cluster_->broker(id)->HostedPartitions().empty()) {
      victim = id;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  ASSERT_TRUE(admin_->DrainBroker(victim).ok());
  EXPECT_TRUE(cluster_->broker(victim)->HostedPartitions().empty());

  // Every partition still healthy and fully replicated elsewhere.
  auto description = admin_->DescribeCluster();
  EXPECT_EQ(description.offline_partitions, 0);
  for (const char* topic : {"a", "b"}) {
    auto states = admin_->DescribeTopic(topic);
    ASSERT_TRUE(states.ok());
    for (const auto& state : *states) {
      EXPECT_EQ(state.replicas.size(), 2u);
      for (int replica : state.replicas) EXPECT_NE(replica, victim);
    }
  }
}

}  // namespace
}  // namespace liquid::messaging
