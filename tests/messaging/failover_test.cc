#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/producer.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// Broker-failure handling: leader re-election from the ISR, durability
/// trade-offs across ack levels, unclean election (§4.3, experiment E8).
class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
  }

  void CreateTopic(const std::string& name, int rf, bool unclean = false) {
    TopicConfig config;
    config.partitions = 1;
    config.replication_factor = rf;
    config.unclean_leader_election = unclean;
    ASSERT_TRUE(cluster_->CreateTopic(name, config).ok());
  }

  int Produce(const TopicPartition& tp, int count, AckMode acks) {
    int succeeded = 0;
    for (int i = 0; i < count; ++i) {
      auto leader = cluster_->LeaderFor(tp);
      if (!leader.ok()) continue;
      std::vector<storage::Record> batch{
          storage::Record::KeyValue("k", "v" + std::to_string(i))};
      if ((*leader)->Produce(tp, batch, acks).ok()) ++succeeded;
    }
    return succeeded;
  }

  int64_t CommittedRecords(const TopicPartition& tp) {
    auto leader = cluster_->LeaderFor(tp);
    if (!leader.ok()) return -1;
    int64_t total = 0;
    int64_t cursor = 0;
    while (true) {
      auto fetch = (*leader)->Fetch(tp, cursor, 1 << 20, -1);
      if (!fetch.ok() || fetch->records.empty()) break;
      total += static_cast<int64_t>(fetch->records.size());
      cursor = fetch->records.back().offset + 1;
    }
    return total;
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(FailoverTest, LeaderDeathTriggersReElectionFromIsr) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 5, AckMode::kAll), 5);

  auto before = cluster_->GetPartitionState(tp);
  LIQUID_ASSERT_OK(cluster_->StopBroker(before->leader));
  cluster_->ReplicationTick();  // Surviving followers fetch from the new
  cluster_->ReplicationTick();  // leader, re-advancing the high-watermark.

  auto after = cluster_->GetPartitionState(tp);
  EXPECT_NE(after->leader, before->leader);
  EXPECT_GT(after->leader_epoch, before->leader_epoch);
  // The new leader came from the old ISR.
  EXPECT_TRUE(std::find(before->isr.begin(), before->isr.end(), after->leader) !=
              before->isr.end());
  // No committed data lost (acks=all).
  EXPECT_EQ(CommittedRecords(tp), 5);
}

TEST_F(FailoverTest, AcksAllLosesNothingAcrossFailover) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  const int acked = Produce(tp, 20, AckMode::kAll);
  LIQUID_ASSERT_OK(cluster_->StopBroker(cluster_->GetPartitionState(tp)->leader));
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();
  EXPECT_EQ(CommittedRecords(tp), acked);
}

TEST_F(FailoverTest, AcksLeaderMayLoseUnreplicatedRecords) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  // No replication ticks: records sit only on the leader.
  const int acked = Produce(tp, 20, AckMode::kLeader);
  ASSERT_EQ(acked, 20);
  LIQUID_ASSERT_OK(cluster_->StopBroker(cluster_->GetPartitionState(tp)->leader));
  const int64_t survived = CommittedRecords(tp);
  // The durability trade-off (§4.3): acknowledged-but-unreplicated data is
  // gone after failover.
  EXPECT_LT(survived, acked);
}

TEST_F(FailoverTest, AcksLeaderKeepsReplicatedRecords) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  Produce(tp, 20, AckMode::kLeader);
  cluster_->ReplicationTick();  // Replicate...
  cluster_->ReplicationTick();  // ...and advance the HW.
  LIQUID_ASSERT_OK(cluster_->StopBroker(cluster_->GetPartitionState(tp)->leader));
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();
  EXPECT_EQ(CommittedRecords(tp), 20);
}

TEST_F(FailoverTest, PartitionGoesOfflineWithoutIsrCandidates) {
  CreateTopic("t", 2, /*unclean=*/false);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  // Kill both replicas.
  for (int replica : state->replicas) {
    LIQUID_ASSERT_OK(cluster_->StopBroker(replica));
  }
  auto offline = cluster_->GetPartitionState(tp);
  EXPECT_EQ(offline->leader, -1);
  EXPECT_TRUE(cluster_->LeaderFor(tp).status().IsUnavailable());
}

TEST_F(FailoverTest, OfflinePartitionRecoversWhenReplicaReturns) {
  CreateTopic("t", 2);
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 3, AckMode::kAll), 3);
  auto state = cluster_->GetPartitionState(tp);
  for (int replica : state->replicas) {
    LIQUID_ASSERT_OK(cluster_->StopBroker(replica));
  }
  ASSERT_EQ(cluster_->GetPartitionState(tp)->leader, -1);

  // Sequential failures shrink the ISR: by the time the second replica dies
  // it is the sole ISR member, so recovery requires it (or both) back.
  for (int replica : state->replicas) {
    ASSERT_TRUE(cluster_->RestartBroker(replica).ok());
  }
  auto recovered = cluster_->GetPartitionState(tp);
  EXPECT_NE(recovered->leader, -1);
  EXPECT_EQ(CommittedRecords(tp), 3);  // Data survived on disk.
}

TEST_F(FailoverTest, UncleanElectionTradesDataForAvailability) {
  CreateTopic("t", 2, /*unclean=*/true);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  const int leader = state->leader;
  int follower = -1;
  for (int replica : state->replicas) {
    if (replica != leader) follower = replica;
  }

  // Isolate the follower (it falls out of the ISR), then keep writing.
  LIQUID_ASSERT_OK(cluster_->StopBroker(follower));
  ASSERT_EQ(Produce(tp, 10, AckMode::kAll), 10);
  ASSERT_EQ(cluster_->GetPartitionState(tp)->isr.size(), 1u);

  // Bring the stale follower back, then kill the leader: only a NON-ISR
  // replica is available.
  ASSERT_TRUE(cluster_->RestartBroker(follower).ok());
  LIQUID_ASSERT_OK(cluster_->StopBroker(leader));

  auto after = cluster_->GetPartitionState(tp);
  EXPECT_EQ(after->leader, follower);  // Unclean: stale replica leads.
  EXPECT_LT(CommittedRecords(tp), 10);  // Data loss is the price.
}

TEST_F(FailoverTest, CleanConfigKeepsPartitionOfflineInsteadOfLosingData) {
  CreateTopic("t", 2, /*unclean=*/false);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  const int leader = state->leader;
  int follower = -1;
  for (int replica : state->replicas) {
    if (replica != leader) follower = replica;
  }
  LIQUID_ASSERT_OK(cluster_->StopBroker(follower));
  ASSERT_EQ(Produce(tp, 10, AckMode::kAll), 10);
  ASSERT_TRUE(cluster_->RestartBroker(follower).ok());
  // The restarted follower is not yet back in the ISR; the leader dies.
  LIQUID_ASSERT_OK(cluster_->StopBroker(leader));
  EXPECT_EQ(cluster_->GetPartitionState(tp)->leader, -1);  // Offline, no loss.
}

TEST_F(FailoverTest, RestartedLeaderComesBackAsFollowerAndCatchesUp) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 5, AckMode::kAll), 5);
  const int old_leader = cluster_->GetPartitionState(tp)->leader;
  LIQUID_ASSERT_OK(cluster_->StopBroker(old_leader));
  ASSERT_EQ(Produce(tp, 5, AckMode::kAll), 5);  // New leader takes writes.

  ASSERT_TRUE(cluster_->RestartBroker(old_leader).ok());
  const int new_leader = cluster_->GetPartitionState(tp)->leader;
  EXPECT_NE(new_leader, old_leader);
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();
  EXPECT_EQ(*cluster_->broker(old_leader)->LogEndOffset(tp), 10);
  // And it rejoined the ISR.
  auto state = cluster_->GetPartitionState(tp);
  EXPECT_TRUE(std::find(state->isr.begin(), state->isr.end(), old_leader) !=
              state->isr.end());
}

TEST_F(FailoverTest, EpochFencingPreventsZombieLeader) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 2, AckMode::kAll), 2);
  auto before = cluster_->GetPartitionState(tp);
  Broker* old_leader = cluster_->broker(before->leader);
  LIQUID_ASSERT_OK(cluster_->StopBroker(before->leader));

  // The dead ("zombie") leader cannot serve anything.
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "zombie")};
  EXPECT_TRUE(old_leader->Produce(tp, batch, AckMode::kLeader)
                  .status()
                  .IsUnavailable());
  EXPECT_TRUE(old_leader->Fetch(tp, 0, 1024, -1).status().IsUnavailable());
}

}  // namespace
}  // namespace liquid::messaging
