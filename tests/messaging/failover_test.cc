#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/group_coordinator.h"
#include "messaging/offset_manager.h"
#include "messaging/producer.h"
#include "storage/disk.h"

#include "test_util.h"

namespace liquid::messaging {
namespace {

/// Broker-failure handling: leader re-election from the ISR, durability
/// trade-offs across ack levels, unclean election (§4.3, experiment E8).
class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_brokers = 3;
    cluster_ = std::make_unique<Cluster>(config, &clock_);
    ASSERT_TRUE(cluster_->Start().ok());
  }

  // Some tests arm the process-wide fault registry; always restore the
  // disarmed production state, even when an ASSERT bails out early.
  void TearDown() override { FaultRegistry::Default()->Clear(); }

  void CreateTopic(const std::string& name, int rf, bool unclean = false) {
    TopicConfig config;
    config.partitions = 1;
    config.replication_factor = rf;
    config.unclean_leader_election = unclean;
    ASSERT_TRUE(cluster_->CreateTopic(name, config).ok());
  }

  int Produce(const TopicPartition& tp, int count, AckMode acks) {
    int succeeded = 0;
    for (int i = 0; i < count; ++i) {
      auto leader = cluster_->LeaderFor(tp);
      if (!leader.ok()) continue;
      std::vector<storage::Record> batch{
          storage::Record::KeyValue("k", "v" + std::to_string(i))};
      if ((*leader)->Produce(tp, batch, acks).ok()) ++succeeded;
    }
    return succeeded;
  }

  int64_t CommittedRecords(const TopicPartition& tp) {
    auto leader = cluster_->LeaderFor(tp);
    if (!leader.ok()) return -1;
    int64_t total = 0;
    int64_t cursor = 0;
    while (true) {
      auto fetch = (*leader)->Fetch(tp, cursor, 1 << 20, -1);
      if (!fetch.ok() || fetch->records.empty()) break;
      total += static_cast<int64_t>(fetch->records.size());
      cursor = fetch->records.back().offset + 1;
    }
    return total;
  }

  SimulatedClock clock_{1000};
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(FailoverTest, LeaderDeathTriggersReElectionFromIsr) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 5, AckMode::kAll), 5);

  auto before = cluster_->GetPartitionState(tp);
  LIQUID_ASSERT_OK(cluster_->StopBroker(before->leader));
  cluster_->ReplicationTick();  // Surviving followers fetch from the new
  cluster_->ReplicationTick();  // leader, re-advancing the high-watermark.

  auto after = cluster_->GetPartitionState(tp);
  EXPECT_NE(after->leader, before->leader);
  EXPECT_GT(after->leader_epoch, before->leader_epoch);
  // The new leader came from the old ISR.
  EXPECT_TRUE(std::find(before->isr.begin(), before->isr.end(), after->leader) !=
              before->isr.end());
  // No committed data lost (acks=all).
  EXPECT_EQ(CommittedRecords(tp), 5);
}

TEST_F(FailoverTest, AcksAllLosesNothingAcrossFailover) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  const int acked = Produce(tp, 20, AckMode::kAll);
  LIQUID_ASSERT_OK(cluster_->StopBroker(cluster_->GetPartitionState(tp)->leader));
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();
  EXPECT_EQ(CommittedRecords(tp), acked);
}

TEST_F(FailoverTest, AcksLeaderMayLoseUnreplicatedRecords) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  // No replication ticks: records sit only on the leader.
  const int acked = Produce(tp, 20, AckMode::kLeader);
  ASSERT_EQ(acked, 20);
  LIQUID_ASSERT_OK(cluster_->StopBroker(cluster_->GetPartitionState(tp)->leader));
  const int64_t survived = CommittedRecords(tp);
  // The durability trade-off (§4.3): acknowledged-but-unreplicated data is
  // gone after failover.
  EXPECT_LT(survived, acked);
}

TEST_F(FailoverTest, AcksLeaderKeepsReplicatedRecords) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  Produce(tp, 20, AckMode::kLeader);
  cluster_->ReplicationTick();  // Replicate...
  cluster_->ReplicationTick();  // ...and advance the HW.
  LIQUID_ASSERT_OK(cluster_->StopBroker(cluster_->GetPartitionState(tp)->leader));
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();
  EXPECT_EQ(CommittedRecords(tp), 20);
}

TEST_F(FailoverTest, PartitionGoesOfflineWithoutIsrCandidates) {
  CreateTopic("t", 2, /*unclean=*/false);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  // Kill both replicas.
  for (int replica : state->replicas) {
    LIQUID_ASSERT_OK(cluster_->StopBroker(replica));
  }
  auto offline = cluster_->GetPartitionState(tp);
  EXPECT_EQ(offline->leader, -1);
  EXPECT_TRUE(cluster_->LeaderFor(tp).status().IsUnavailable());
}

TEST_F(FailoverTest, OfflinePartitionRecoversWhenReplicaReturns) {
  CreateTopic("t", 2);
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 3, AckMode::kAll), 3);
  auto state = cluster_->GetPartitionState(tp);
  for (int replica : state->replicas) {
    LIQUID_ASSERT_OK(cluster_->StopBroker(replica));
  }
  ASSERT_EQ(cluster_->GetPartitionState(tp)->leader, -1);

  // Sequential failures shrink the ISR: by the time the second replica dies
  // it is the sole ISR member, so recovery requires it (or both) back.
  for (int replica : state->replicas) {
    ASSERT_TRUE(cluster_->RestartBroker(replica).ok());
  }
  auto recovered = cluster_->GetPartitionState(tp);
  EXPECT_NE(recovered->leader, -1);
  EXPECT_EQ(CommittedRecords(tp), 3);  // Data survived on disk.
}

TEST_F(FailoverTest, UncleanElectionTradesDataForAvailability) {
  CreateTopic("t", 2, /*unclean=*/true);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  const int leader = state->leader;
  int follower = -1;
  for (int replica : state->replicas) {
    if (replica != leader) follower = replica;
  }

  // Isolate the follower (it falls out of the ISR), then keep writing.
  LIQUID_ASSERT_OK(cluster_->StopBroker(follower));
  ASSERT_EQ(Produce(tp, 10, AckMode::kAll), 10);
  ASSERT_EQ(cluster_->GetPartitionState(tp)->isr.size(), 1u);

  // Bring the stale follower back, then kill the leader: only a NON-ISR
  // replica is available.
  ASSERT_TRUE(cluster_->RestartBroker(follower).ok());
  LIQUID_ASSERT_OK(cluster_->StopBroker(leader));

  auto after = cluster_->GetPartitionState(tp);
  EXPECT_EQ(after->leader, follower);  // Unclean: stale replica leads.
  EXPECT_LT(CommittedRecords(tp), 10);  // Data loss is the price.
}

TEST_F(FailoverTest, CleanConfigKeepsPartitionOfflineInsteadOfLosingData) {
  CreateTopic("t", 2, /*unclean=*/false);
  const TopicPartition tp{"t", 0};
  auto state = cluster_->GetPartitionState(tp);
  const int leader = state->leader;
  int follower = -1;
  for (int replica : state->replicas) {
    if (replica != leader) follower = replica;
  }
  LIQUID_ASSERT_OK(cluster_->StopBroker(follower));
  ASSERT_EQ(Produce(tp, 10, AckMode::kAll), 10);
  ASSERT_TRUE(cluster_->RestartBroker(follower).ok());
  // The restarted follower is not yet back in the ISR; the leader dies.
  LIQUID_ASSERT_OK(cluster_->StopBroker(leader));
  EXPECT_EQ(cluster_->GetPartitionState(tp)->leader, -1);  // Offline, no loss.
}

TEST_F(FailoverTest, RestartedLeaderComesBackAsFollowerAndCatchesUp) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 5, AckMode::kAll), 5);
  const int old_leader = cluster_->GetPartitionState(tp)->leader;
  LIQUID_ASSERT_OK(cluster_->StopBroker(old_leader));
  ASSERT_EQ(Produce(tp, 5, AckMode::kAll), 5);  // New leader takes writes.

  ASSERT_TRUE(cluster_->RestartBroker(old_leader).ok());
  const int new_leader = cluster_->GetPartitionState(tp)->leader;
  EXPECT_NE(new_leader, old_leader);
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();
  EXPECT_EQ(*cluster_->broker(old_leader)->LogEndOffset(tp), 10);
  // And it rejoined the ISR.
  auto state = cluster_->GetPartitionState(tp);
  EXPECT_TRUE(std::find(state->isr.begin(), state->isr.end(), old_leader) !=
              state->isr.end());
}

TEST_F(FailoverTest, EpochFencingPreventsZombieLeader) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 2, AckMode::kAll), 2);
  auto before = cluster_->GetPartitionState(tp);
  Broker* old_leader = cluster_->broker(before->leader);
  LIQUID_ASSERT_OK(cluster_->StopBroker(before->leader));

  // The dead ("zombie") leader cannot serve anything.
  std::vector<storage::Record> batch{storage::Record::KeyValue("k", "zombie")};
  EXPECT_TRUE(old_leader->Produce(tp, batch, AckMode::kLeader)
                  .status()
                  .IsUnavailable());
  EXPECT_TRUE(old_leader->Fetch(tp, 0, 1024, -1).status().IsUnavailable());
}

TEST_F(FailoverTest, AckedPrefixSurvivesRestartUnderFsyncFault) {
  // Durable topic: every batch is fsynced before the ack (DESIGN.md §6).
  TopicConfig config;
  config.partitions = 1;
  config.replication_factor = 3;
  config.log.sync_mode = storage::SyncMode::kEveryBatch;
  ASSERT_TRUE(cluster_->CreateTopic("t", config).ok());
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 10, AckMode::kAll), 10);

  // Injected fsync fault (chaos site "log.sync.before"): while the disk
  // refuses to sync, nothing new can be acknowledged.
  FaultSiteConfig fsync_fault;
  fsync_fault.kind = FaultActionKind::kFail;
  fsync_fault.fail_code = StatusCode::kIOError;
  FaultRegistry::Default()->Arm("log.sync.before", fsync_fault);
  EXPECT_EQ(Produce(tp, 5, AckMode::kAll), 0);
  FaultRegistry::Default()->Clear();

  // Power-cycle every replica, dropping unsynced writes like a real crash.
  auto state = cluster_->GetPartitionState(tp);
  for (int replica : state->replicas) {
    LIQUID_ASSERT_OK(cluster_->StopBroker(replica));
    cluster_->disk(replica)->SimulateCrash();
  }
  for (int replica : state->replicas) {
    LIQUID_ASSERT_OK(cluster_->RestartBroker(replica));
  }
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();

  // Exactly the acked prefix survives: the ten acknowledged records were
  // fsynced before their acks; the five refused ones never became durable.
  EXPECT_EQ(CommittedRecords(tp), 10);
}

TEST_F(FailoverTest, ConsumersResumeFromCommittedOffsetsAfterRestart) {
  CreateTopic("t", 3);
  const TopicPartition tp{"t", 0};
  ASSERT_EQ(Produce(tp, 10, AckMode::kAll), 10);

  storage::MemDisk offsets_disk;
  auto offsets = OffsetManager::Open(&offsets_disk, "offsets/", &clock_);
  LIQUID_ASSERT_OK(offsets.status());
  GroupCoordinator coordinator(cluster_.get());

  // First consumer incarnation: read six records, then checkpoint while the
  // offset log's append is transiently failing — the unified retry
  // discipline (DESIGN.md §7) must absorb the injected faults.
  Counter* retries =
      MetricsRegistry::Default()->GetCounter("liquid.offsets.retries_total");
  const int64_t retries_before = retries->value();
  {
    ConsumerConfig consumer_config;
    consumer_config.group = "g";
    Consumer consumer(cluster_.get(), offsets->get(), &coordinator, "c1",
                      consumer_config);
    LIQUID_ASSERT_OK(consumer.Subscribe({"t"}));
    auto records = consumer.Poll(6);
    LIQUID_ASSERT_OK(records.status());
    ASSERT_EQ(records->size(), 6u);

    FaultSiteConfig commit_fault;
    commit_fault.kind = FaultActionKind::kFail;
    commit_fault.fail_code = StatusCode::kUnavailable;
    commit_fault.max_triggers = 2;
    FaultRegistry::Default()->Arm("offsets.commit.before_append", commit_fault);
    LIQUID_ASSERT_OK(consumer.Commit());
    FaultRegistry::Default()->Clear();
    EXPECT_GE(retries->value() - retries_before, 2);

    // Crash the consumer (no final commit) so resume depends purely on the
    // durable checkpoint.
    LIQUID_ASSERT_OK(consumer.CloseWithoutCommit());
  }

  // Restart the partition leader: offsets and data must both replay.
  const int leader = cluster_->GetPartitionState(tp)->leader;
  LIQUID_ASSERT_OK(cluster_->StopBroker(leader));
  LIQUID_ASSERT_OK(cluster_->RestartBroker(leader));
  cluster_->ReplicationTick();
  cluster_->ReplicationTick();

  // Re-open the offset manager from its backing log (checkpoint replay)...
  offsets->reset();
  auto recovered = OffsetManager::Open(&offsets_disk, "offsets/", &clock_);
  LIQUID_ASSERT_OK(recovered.status());
  auto committed = (*recovered)->Fetch("g", tp);
  LIQUID_ASSERT_OK(committed.status());
  EXPECT_EQ(committed->offset, 6);

  // ...and a fresh member of the same group resumes exactly there.
  ConsumerConfig consumer_config;
  consumer_config.group = "g";
  Consumer resumed(cluster_.get(), recovered->get(), &coordinator, "c2",
                   consumer_config);
  LIQUID_ASSERT_OK(resumed.Subscribe({"t"}));
  std::vector<ConsumerRecord> rest;
  while (true) {
    auto records = resumed.Poll(32);
    LIQUID_ASSERT_OK(records.status());
    if (records->empty()) break;
    rest.insert(rest.end(), records->begin(), records->end());
  }
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest.front().record.offset, 6);
  EXPECT_EQ(rest.front().record.value, "v6");
  EXPECT_EQ(rest.back().record.value, "v9");
}

}  // namespace
}  // namespace liquid::messaging
