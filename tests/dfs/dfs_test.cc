#include "dfs/dfs.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace liquid::dfs {
namespace {

DfsConfig SmallConfig() {
  DfsConfig config;
  config.num_datanodes = 3;
  config.replication = 2;
  config.block_size = 64;  // Tiny blocks to exercise splitting.
  return config;
}

TEST(DfsTest, WriteReadRoundTrip) {
  DistributedFileSystem fs(SmallConfig());
  const std::string data(1000, 'x');
  ASSERT_TRUE(fs.WriteFile("/a/b", data).ok());
  auto read = fs.ReadFile("/a/b");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(DfsTest, FilesSplitIntoBlocks) {
  DistributedFileSystem fs(SmallConfig());
  LIQUID_ASSERT_OK(fs.WriteFile("/f", std::string(300, 'y')));
  auto info = fs.GetFileInfo("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->blocks.size(), 5u);  // ceil(300/64).
  EXPECT_EQ(info->size_bytes, 300u);
  for (const auto& block : info->blocks) {
    EXPECT_EQ(block.datanodes.size(), 2u);  // Replication factor.
  }
}

TEST(DfsTest, WriteExistingFails) {
  DistributedFileSystem fs(SmallConfig());
  LIQUID_ASSERT_OK(fs.WriteFile("/f", "1"));
  EXPECT_TRUE(fs.WriteFile("/f", "2").IsAlreadyExists());
}

TEST(DfsTest, ReadMissingIsNotFound) {
  DistributedFileSystem fs(SmallConfig());
  EXPECT_TRUE(fs.ReadFile("/ghost").status().IsNotFound());
  EXPECT_TRUE(fs.GetFileInfo("/ghost").status().IsNotFound());
}

TEST(DfsTest, DeleteRemovesBlocksAndMetadata) {
  DistributedFileSystem fs(SmallConfig());
  LIQUID_ASSERT_OK(fs.WriteFile("/f", std::string(200, 'z')));
  const uint64_t stored = fs.total_stored_bytes();
  EXPECT_GT(stored, 0u);
  ASSERT_TRUE(fs.DeleteFile("/f").ok());
  EXPECT_FALSE(fs.Exists("/f"));
  EXPECT_EQ(fs.total_stored_bytes(), 0u);
  EXPECT_TRUE(fs.DeleteFile("/f").IsNotFound());
}

TEST(DfsTest, ListFilesByPrefix) {
  DistributedFileSystem fs(SmallConfig());
  LIQUID_ASSERT_OK(fs.WriteFile("/logs/a", "1"));
  LIQUID_ASSERT_OK(fs.WriteFile("/logs/b", "2"));
  LIQUID_ASSERT_OK(fs.WriteFile("/data/c", "3"));
  EXPECT_EQ(fs.ListFiles("/logs/").size(), 2u);
  EXPECT_EQ(fs.ListFiles("/").size(), 3u);
  EXPECT_TRUE(fs.ListFiles("/none/").empty());
}

TEST(DfsTest, SurvivesDatanodeFailureWithReplication) {
  DistributedFileSystem fs(SmallConfig());
  const std::string data(500, 'r');
  LIQUID_ASSERT_OK(fs.WriteFile("/f", data));
  ASSERT_TRUE(fs.StopDatanode(0).ok());
  auto read = fs.ReadFile("/f");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

TEST(DfsTest, UnreplicatedDataUnavailableWhenAllReplicasDown) {
  DfsConfig config = SmallConfig();
  config.replication = 1;
  DistributedFileSystem fs(config);
  LIQUID_ASSERT_OK(fs.WriteFile("/f", std::string(500, 'u')));  // Blocks spread over nodes.
  LIQUID_ASSERT_OK(fs.StopDatanode(0));
  LIQUID_ASSERT_OK(fs.StopDatanode(1));
  LIQUID_ASSERT_OK(fs.StopDatanode(2));
  EXPECT_TRUE(fs.ReadFile("/f").status().IsUnavailable());
  // Restart: data is back (disks survive).
  LIQUID_ASSERT_OK(fs.RestartDatanode(0));
  LIQUID_ASSERT_OK(fs.RestartDatanode(1));
  LIQUID_ASSERT_OK(fs.RestartDatanode(2));
  EXPECT_TRUE(fs.ReadFile("/f").ok());
}

TEST(DfsTest, WriteFailsWithNoAliveNodes) {
  DistributedFileSystem fs(SmallConfig());
  LIQUID_ASSERT_OK(fs.StopDatanode(0));
  LIQUID_ASSERT_OK(fs.StopDatanode(1));
  LIQUID_ASSERT_OK(fs.StopDatanode(2));
  EXPECT_TRUE(fs.WriteFile("/f", "data").IsUnavailable());
}

TEST(DfsTest, EmptyFileRoundTrips) {
  DistributedFileSystem fs(SmallConfig());
  ASSERT_TRUE(fs.WriteFile("/empty", "").ok());
  auto read = fs.ReadFile("/empty");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(DfsTest, ReplicationMultipliesStorageFootprint) {
  DfsConfig r1 = SmallConfig();
  r1.replication = 1;
  DfsConfig r3 = SmallConfig();
  r3.replication = 3;
  DistributedFileSystem fs1(r1), fs3(r3);
  const std::string data(640, 'd');
  LIQUID_ASSERT_OK(fs1.WriteFile("/f", data));
  LIQUID_ASSERT_OK(fs3.WriteFile("/f", data));
  EXPECT_EQ(fs1.total_stored_bytes(), 640u);
  EXPECT_EQ(fs3.total_stored_bytes(), 3 * 640u);
}

}  // namespace
}  // namespace liquid::dfs
