#ifndef LIQUID_TESTS_TEST_UTIL_H_
#define LIQUID_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

/// GTest helpers for Status/Result expressions. Status and Result<T> are
/// [[nodiscard]] (see common/nodiscard.h), so a test that exercises a
/// fallible API for its side effect must still check the outcome — these
/// macros make that one line and produce a readable failure message.

#define LIQUID_ASSERT_OK(expr)                                          \
  do {                                                                  \
    auto&& _liquid_st = (expr);                                         \
    ASSERT_TRUE(_liquid_st.ok())                                        \
        << #expr << " -> "                                              \
        << ::liquid::internal::ToStatus(_liquid_st).ToString();         \
  } while (0)

#define LIQUID_EXPECT_OK(expr)                                          \
  do {                                                                  \
    auto&& _liquid_st = (expr);                                         \
    EXPECT_TRUE(_liquid_st.ok())                                        \
        << #expr << " -> "                                              \
        << ::liquid::internal::ToStatus(_liquid_st).ToString();         \
  } while (0)

#endif  // LIQUID_TESTS_TEST_UTIL_H_
