#ifndef LIQUID_TESTS_TEST_UTIL_H_
#define LIQUID_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

/// GTest helpers for Status/Result expressions. Status and Result<T> are
/// [[nodiscard]] (see common/nodiscard.h), so a test that exercises a
/// fallible API for its side effect must still check the outcome — these
/// macros make that one line and produce a readable failure message.

// The Status is copied by value: with `auto&&`, LIQUID_ASSERT_OK(r.status())
// on a temporary Result would bind a reference into an object that dies
// before the ASSERT statement runs (stack-use-after-scope under ASan).
#define LIQUID_ASSERT_OK(expr)                                          \
  do {                                                                  \
    const ::liquid::Status _liquid_st =                                 \
        ::liquid::internal::ToStatus((expr));                           \
    ASSERT_TRUE(_liquid_st.ok())                                        \
        << #expr << " -> " << _liquid_st.ToString();                    \
  } while (0)

#define LIQUID_EXPECT_OK(expr)                                          \
  do {                                                                  \
    const ::liquid::Status _liquid_st =                                 \
        ::liquid::internal::ToStatus((expr));                           \
    EXPECT_TRUE(_liquid_st.ok())                                        \
        << #expr << " -> " << _liquid_st.ToString();                    \
  } while (0)

#endif  // LIQUID_TESTS_TEST_UTIL_H_
