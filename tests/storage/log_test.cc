#include "storage/log.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"

#include "test_util.h"

namespace liquid::storage {
namespace {

std::vector<Record> KeyedBatch(int count, const std::string& prefix = "k") {
  std::vector<Record> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(
        Record::KeyValue(prefix + std::to_string(i), "v" + std::to_string(i)));
  }
  return out;
}

class LogTest : public ::testing::Test {
 protected:
  std::unique_ptr<Log> OpenLog(const LogConfig& config,
                               const std::string& prefix = "p0/") {
    auto log = Log::Open(&disk_, nullptr, prefix, config, &clock_);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    return std::move(log).value();
  }

  MemDisk disk_;
  SimulatedClock clock_{1000};
};

TEST_F(LogTest, AppendAssignsConsecutiveOffsets) {
  auto log = OpenLog(LogConfig{});
  auto batch = KeyedBatch(5);
  ASSERT_TRUE(log->Append(&batch).ok());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batch[i].offset, i);
  EXPECT_EQ(log->end_offset(), 5);

  auto batch2 = KeyedBatch(3);
  auto base = log->Append(&batch2);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(*base, 5);
  EXPECT_EQ(log->end_offset(), 8);
}

TEST_F(LogTest, AppendStampsClockTime) {
  auto log = OpenLog(LogConfig{});
  clock_.SetMs(123456);
  auto batch = KeyedBatch(1);
  LIQUID_ASSERT_OK(log->Append(&batch));
  EXPECT_EQ(batch[0].timestamp_ms, 123456);
}

TEST_F(LogTest, ExplicitTimestampPreserved) {
  auto log = OpenLog(LogConfig{});
  std::vector<Record> batch{Record::KeyValue("k", "v", 42)};
  LIQUID_ASSERT_OK(log->Append(&batch));
  std::vector<Record> out;
  LIQUID_ASSERT_OK(log->Read(0, 1 << 20, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp_ms, 42);
}

TEST_F(LogTest, RollsSegmentsAtConfiguredSize) {
  LogConfig config;
  config.segment_bytes = 512;
  auto log = OpenLog(config);
  for (int i = 0; i < 20; ++i) {
    auto batch = KeyedBatch(5);
    ASSERT_TRUE(log->Append(&batch).ok());
  }
  EXPECT_GT(log->segment_count(), 3);
  // All data still readable across segment boundaries.
  std::vector<Record> out;
  ASSERT_TRUE(log->Read(0, 10 << 20, &out).ok());
  EXPECT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i].offset, i);
}

TEST_F(LogTest, ReadPastEndReturnsEmpty) {
  auto log = OpenLog(LogConfig{});
  auto batch = KeyedBatch(3);
  LIQUID_ASSERT_OK(log->Append(&batch));
  std::vector<Record> out;
  ASSERT_TRUE(log->Read(3, 1 << 20, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(log->Read(1000, 1 << 20, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(LogTest, ReopenRecoversAcrossSegments) {
  LogConfig config;
  config.segment_bytes = 512;
  {
    auto log = OpenLog(config);
    for (int i = 0; i < 10; ++i) {
      auto batch = KeyedBatch(5);
      LIQUID_ASSERT_OK(log->Append(&batch));
    }
    EXPECT_EQ(log->end_offset(), 50);
  }
  auto reopened = OpenLog(config);
  EXPECT_EQ(reopened->end_offset(), 50);
  EXPECT_GT(reopened->segment_count(), 1);
  std::vector<Record> out;
  LIQUID_ASSERT_OK(reopened->Read(17, 10 << 20, &out));
  ASSERT_EQ(out.size(), 33u);
  EXPECT_EQ(out.front().offset, 17);
}

TEST_F(LogTest, AppendWithOffsetsFollowsLeader) {
  auto leader = OpenLog(LogConfig{}, "leader/");
  auto follower = OpenLog(LogConfig{}, "follower/");
  auto batch = KeyedBatch(10);
  LIQUID_ASSERT_OK(leader->Append(&batch));
  ASSERT_TRUE(follower->AppendWithOffsets(batch).ok());
  EXPECT_EQ(follower->end_offset(), 10);

  // Overlapping replication is rejected.
  EXPECT_TRUE(follower->AppendWithOffsets(batch).IsInvalidArgument());
}

TEST_F(LogTest, TruncateDropsSuffix) {
  LogConfig config;
  config.segment_bytes = 512;
  auto log = OpenLog(config);
  for (int i = 0; i < 10; ++i) {
    auto batch = KeyedBatch(5);
    LIQUID_ASSERT_OK(log->Append(&batch));
  }
  ASSERT_TRUE(log->Truncate(23).ok());
  EXPECT_EQ(log->end_offset(), 23);
  std::vector<Record> out;
  LIQUID_ASSERT_OK(log->Read(0, 10 << 20, &out));
  ASSERT_EQ(out.size(), 23u);
  EXPECT_EQ(out.back().offset, 22);

  // New appends continue from the truncation point.
  auto batch = KeyedBatch(2);
  auto base = log->Append(&batch);
  EXPECT_EQ(*base, 23);
}

TEST_F(LogTest, TruncateToZeroEmptiesLog) {
  auto log = OpenLog(LogConfig{});
  auto batch = KeyedBatch(5);
  LIQUID_ASSERT_OK(log->Append(&batch));
  ASSERT_TRUE(log->Truncate(0).ok());
  EXPECT_EQ(log->end_offset(), 0);
  std::vector<Record> out;
  LIQUID_ASSERT_OK(log->Read(0, 1 << 20, &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(LogTest, TruncatePastEndIsNoOp) {
  auto log = OpenLog(LogConfig{});
  auto batch = KeyedBatch(5);
  LIQUID_ASSERT_OK(log->Append(&batch));
  ASSERT_TRUE(log->Truncate(100).ok());
  EXPECT_EQ(log->end_offset(), 5);
}

TEST_F(LogTest, OffsetForTimestampAcrossSegments) {
  LogConfig config;
  config.segment_bytes = 512;
  auto log = OpenLog(config);
  for (int i = 0; i < 10; ++i) {
    clock_.SetMs(10000 + i * 100);
    auto batch = KeyedBatch(5);
    LIQUID_ASSERT_OK(log->Append(&batch));
  }
  // Each batch of 5 shares its timestamp: 10000, 10100, ...
  EXPECT_EQ(*log->OffsetForTimestamp(10000), 0);
  EXPECT_EQ(*log->OffsetForTimestamp(10250), 15);
  EXPECT_EQ(*log->OffsetForTimestamp(10900), 45);
  EXPECT_TRUE(log->OffsetForTimestamp(99999).status().IsNotFound());
}

TEST_F(LogTest, SizeBytesGrowsWithData) {
  auto log = OpenLog(LogConfig{});
  EXPECT_EQ(log->size_bytes(), 0u);
  auto batch = KeyedBatch(10);
  LIQUID_ASSERT_OK(log->Append(&batch));
  EXPECT_GT(log->size_bytes(), 100u);
}

TEST_F(LogTest, TimeRetentionDeletesOldSegments) {
  LogConfig config;
  config.segment_bytes = 512;
  config.retention_ms = 10000;
  auto log = OpenLog(config);
  clock_.SetMs(1000);
  for (int i = 0; i < 10; ++i) {
    auto batch = KeyedBatch(5);
    LIQUID_ASSERT_OK(log->Append(&batch));
  }
  const int before = log->segment_count();
  ASSERT_GT(before, 2);

  clock_.SetMs(1000 + 20000);  // Everything is now older than retention.
  auto deleted = log->ApplyRetention();
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, before - 1);  // Active segment never deleted.
  EXPECT_EQ(log->segment_count(), 1);
  EXPECT_GT(log->start_offset(), 0);

  // Reads below the new start offset are clamped forward.
  std::vector<Record> out;
  ASSERT_TRUE(log->Read(0, 10 << 20, &out).ok());
  if (!out.empty()) {
    EXPECT_GE(out.front().offset, log->start_offset());
  }
}

TEST_F(LogTest, SizeRetentionBoundsLog) {
  LogConfig config;
  config.segment_bytes = 512;
  config.retention_bytes = 2048;
  auto log = OpenLog(config);
  for (int i = 0; i < 40; ++i) {
    auto batch = KeyedBatch(5);
    LIQUID_ASSERT_OK(log->Append(&batch));
    LIQUID_ASSERT_OK(log->ApplyRetention());
  }
  EXPECT_LE(log->size_bytes(), 3000u);  // Bounded near the target.
  EXPECT_GT(log->start_offset(), 0);
}

TEST_F(LogTest, RetentionKeepsFreshData) {
  LogConfig config;
  config.segment_bytes = 512;
  config.retention_ms = 1000000;
  auto log = OpenLog(config);
  auto batch = KeyedBatch(50);
  LIQUID_ASSERT_OK(log->Append(&batch));
  auto deleted = log->ApplyRetention();
  EXPECT_EQ(*deleted, 0);
  EXPECT_EQ(log->start_offset(), 0);
}

TEST_F(LogTest, EmptyAppendRejected) {
  auto log = OpenLog(LogConfig{});
  std::vector<Record> empty;
  EXPECT_TRUE(log->Append(&empty).status().IsInvalidArgument());
}

}  // namespace
}  // namespace liquid::storage
