#include "storage/record_batch.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/disk.h"
#include "storage/log.h"
#include "storage/record.h"

#include "test_util.h"

namespace liquid::storage {
namespace {

std::vector<Record> SampleRecords() {
  std::vector<Record> records;
  Record plain = Record::KeyValue("alpha", "value-one", /*ts_ms=*/100);
  plain.offset = 10;
  plain.leader_epoch = 3;
  records.push_back(plain);

  Record traced = Record::KeyValue("beta", "value-two", /*ts_ms=*/101);
  traced.offset = 11;
  traced.leader_epoch = 3;
  traced.trace_id = 0xfeedbeef;
  traced.span_id = 0x1234;
  traced.ingest_us = 555;
  records.push_back(traced);

  Record tombstone = Record::Tombstone("gamma", /*ts_ms=*/102);
  tombstone.offset = 12;
  records.push_back(tombstone);

  Record control = Record::ControlMarker(/*pid=*/42, /*committed=*/true);
  control.offset = 13;
  records.push_back(control);
  return records;
}

TEST(EncodedBatchTest, EncodeMatchesPerRecordEncoding) {
  const std::vector<Record> records = SampleRecords();
  EncodedBatch batch = EncodedBatch::Encode(records);

  std::string expected;
  for (const Record& record : records) EncodeRecord(record, &expected);
  const Slice bytes = batch.bytes();
  EXPECT_EQ(std::string(bytes.data(), bytes.size()), expected);
  EXPECT_EQ(batch.size_bytes(), expected.size());
  EXPECT_EQ(batch.record_count(), records.size());
  EXPECT_EQ(batch.base_offset(), 10);
  EXPECT_EQ(batch.last_offset(), 13);
}

TEST(EncodedBatchTest, FramesCarryHeaderFields) {
  EncodedBatch batch = EncodedBatch::Encode(SampleRecords());
  const auto& frames = batch.frames();
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].offset, 10);
  EXPECT_EQ(frames[0].timestamp_ms, 100);
  EXPECT_EQ(frames[0].leader_epoch, 3);
  EXPECT_FALSE(frames[0].traced);
  EXPECT_TRUE(frames[1].traced);
  EXPECT_FALSE(frames[1].is_control);
  EXPECT_TRUE(frames[3].is_control);
  // Frames tile the buffer contiguously.
  size_t pos = 0;
  for (const BatchFrame& frame : frames) {
    EXPECT_EQ(frame.pos, pos);
    pos += frame.len;
  }
  EXPECT_EQ(pos, batch.size_bytes());
}

TEST(EncodedBatchTest, DecodeRoundTrip) {
  const std::vector<Record> records = SampleRecords();
  EncodedBatch batch = EncodedBatch::Encode(records);

  std::vector<Record> decoded;
  LIQUID_ASSERT_OK(batch.DecodeAll(&decoded));
  ASSERT_EQ(decoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].offset, records[i].offset);
    EXPECT_EQ(decoded[i].key, records[i].key);
    EXPECT_EQ(decoded[i].value, records[i].value);
    EXPECT_EQ(decoded[i].trace_id, records[i].trace_id);
    EXPECT_EQ(decoded[i].is_control, records[i].is_control);
  }
  auto one = batch.DecodeFrame(1);
  LIQUID_ASSERT_OK(one);
  EXPECT_EQ(one->span_id, records[1].span_id);
  EXPECT_EQ(one->ingest_us, records[1].ingest_us);
}

TEST(EncodedBatchTest, TrimAndSliceAreMetadataOnly) {
  EncodedBatch batch = EncodedBatch::Encode(SampleRecords());
  const std::shared_ptr<const std::string> buffer = batch.buffer();

  EncodedBatch upper = batch;
  upper.SliceFrom(12);  // Drop offsets 10, 11.
  EXPECT_EQ(upper.base_offset(), 12);
  EXPECT_EQ(upper.record_count(), 2u);
  EXPECT_EQ(upper.buffer().get(), buffer.get());  // Same buffer, no copy.

  EncodedBatch lower = batch;
  lower.TrimToOffset(12);  // Drop offsets 12, 13.
  EXPECT_EQ(lower.last_offset(), 11);
  EXPECT_EQ(lower.record_count(), 2u);

  // The two halves' bytes partition the original exactly.
  const Slice all = batch.bytes();
  const Slice head = lower.bytes();
  const Slice tail = upper.bytes();
  EXPECT_EQ(std::string(head.data(), head.size()) +
                std::string(tail.data(), tail.size()),
            std::string(all.data(), all.size()));

  EncodedBatch emptied = batch;
  emptied.TrimToOffset(10);
  EXPECT_TRUE(emptied.empty());
  EXPECT_EQ(emptied.base_offset(), -1);
}

TEST(EncodedBatchTest, AppendBatchThenReadEncodedIsByteIdentical) {
  MemDisk disk;
  SimulatedClock clock(7);
  auto log = Log::Open(&disk, nullptr, "l/", LogConfig{}, &clock);
  LIQUID_ASSERT_OK(log);

  std::vector<Record> records;
  for (int i = 0; i < 20; ++i) {
    Record r = Record::KeyValue("k" + std::to_string(i % 5),
                                "v" + std::to_string(i));
    if (i % 4 == 0) {
      r.trace_id = 1000 + static_cast<uint64_t>(i);
      r.span_id = 2000 + static_cast<uint64_t>(i);
      r.ingest_us = 3000 + i;
    }
    records.push_back(std::move(r));
  }
  auto appended = (*log)->AppendBatch(&records);
  LIQUID_ASSERT_OK(appended);
  EXPECT_EQ(appended->base_offset(), 0);
  EXPECT_EQ(appended->record_count(), 20u);

  // The shared-buffer read returns exactly the bytes the append encoded...
  EncodedBatch read_back;
  LIQUID_ASSERT_OK((*log)->ReadEncoded(0, 1 << 20, &read_back));
  const Slice wrote = appended->bytes();
  const Slice read = read_back.bytes();
  EXPECT_EQ(std::string(read.data(), read.size()),
            std::string(wrote.data(), wrote.size()));

  // ...and those bytes equal the legacy deep-copy path re-encoded.
  std::vector<Record> deep;
  LIQUID_ASSERT_OK((*log)->Read(0, 1 << 20, &deep));
  ASSERT_EQ(deep.size(), 20u);
  std::string reencoded;
  for (const Record& record : deep) EncodeRecord(record, &reencoded);
  EXPECT_EQ(std::string(read.data(), read.size()), reencoded);
}

TEST(EncodedBatchTest, ReadEncodedHonoursOffsetAndMaxBytes) {
  MemDisk disk;
  SimulatedClock clock(7);
  LogConfig config;
  config.segment_bytes = 256;  // Force several segments.
  auto log = Log::Open(&disk, nullptr, "l/", config, &clock);
  LIQUID_ASSERT_OK(log);
  for (int i = 0; i < 50; ++i) {
    std::vector<Record> one{Record::KeyValue("k", "v" + std::to_string(i))};
    LIQUID_ASSERT_OK((*log)->Append(&one));
  }

  EncodedBatch from_middle;
  LIQUID_ASSERT_OK((*log)->ReadEncoded(17, 1 << 20, &from_middle));
  EXPECT_EQ(from_middle.base_offset(), 17);
  EXPECT_EQ(from_middle.last_offset(), 49);

  // max_bytes caps the span but always admits at least one record.
  EncodedBatch tiny;
  LIQUID_ASSERT_OK((*log)->ReadEncoded(0, 1, &tiny));
  EXPECT_EQ(tiny.record_count(), 1u);
  EXPECT_EQ(tiny.base_offset(), 0);

  // Past the end: empty batch, not an error (tail-follow contract).
  EncodedBatch past;
  LIQUID_ASSERT_OK((*log)->ReadEncoded(50, 1 << 20, &past));
  EXPECT_TRUE(past.empty());
}

}  // namespace
}  // namespace liquid::storage
