#include "storage/record.h"

#include <gtest/gtest.h>

#include "common/coding.h"

namespace liquid::storage {
namespace {

TEST(RecordTest, KeyValueRoundTrip) {
  Record in = Record::KeyValue("user42", "profile-data", 1234);
  in.offset = 99;
  std::string buf;
  EncodeRecord(in, &buf);
  EXPECT_EQ(buf.size(), in.EncodedSize());

  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_EQ(out.offset, 99);
  EXPECT_EQ(out.timestamp_ms, 1234);
  EXPECT_EQ(out.key, "user42");
  EXPECT_EQ(out.value, "profile-data");
  EXPECT_TRUE(out.has_key);
  EXPECT_FALSE(out.is_tombstone);
  EXPECT_EQ(out.producer_id, kNoProducerId);
  EXPECT_TRUE(input.empty());
}

TEST(RecordTest, TombstoneRoundTrip) {
  Record in = Record::Tombstone("deleted-key", 5);
  in.offset = 1;
  std::string buf;
  EncodeRecord(in, &buf);
  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_TRUE(out.is_tombstone);
  EXPECT_EQ(out.key, "deleted-key");
  EXPECT_TRUE(out.value.empty());
}

TEST(RecordTest, ValueOnlyHasNoKey) {
  Record in = Record::ValueOnly("payload");
  in.offset = 0;
  std::string buf;
  EncodeRecord(in, &buf);
  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_FALSE(out.has_key);
  EXPECT_EQ(out.value, "payload");
}

TEST(RecordTest, ProducerMetadataRoundTrip) {
  Record in = Record::KeyValue("k", "v");
  in.offset = 7;
  in.producer_id = 12345;
  in.sequence = 42;
  std::string buf;
  EncodeRecord(in, &buf);
  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_EQ(out.producer_id, 12345);
  EXPECT_EQ(out.sequence, 42);
}

TEST(RecordTest, LeaderEpochAndControlRoundTrip) {
  Record in = Record::ControlMarker(555, /*committed=*/true);
  in.offset = 3;
  in.leader_epoch = 12;
  std::string buf;
  EncodeRecord(in, &buf);
  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_TRUE(out.is_control);
  EXPECT_EQ(out.producer_id, 555);
  EXPECT_EQ(out.leader_epoch, 12);
  EXPECT_EQ(out.value, "commit");
  EXPECT_FALSE(out.has_key);
}

TEST(RecordTest, DefaultLeaderEpochIsMinusOne) {
  Record in = Record::KeyValue("k", "v");
  in.offset = 0;
  std::string buf;
  EncodeRecord(in, &buf);
  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_EQ(out.leader_epoch, -1);
  EXPECT_FALSE(out.is_control);
}

TEST(RecordTest, EmptyKeyAndValue) {
  Record in = Record::KeyValue("", "");
  in.offset = 0;
  std::string buf;
  EncodeRecord(in, &buf);
  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_TRUE(out.key.empty());
  EXPECT_TRUE(out.value.empty());
  EXPECT_TRUE(out.has_key);
}

TEST(RecordTest, TracedRecordRoundTrip) {
  Record in = Record::KeyValue("k", "v", 99);
  in.offset = 5;
  in.trace_id = 0xfeedfacecafebeefull;
  in.span_id = 77;
  in.ingest_us = 1700000000000123;
  ASSERT_TRUE(in.traced());

  std::string buf;
  EncodeRecord(in, &buf);
  EXPECT_EQ(buf.size(), in.EncodedSize());

  // The trace block adds exactly 24 bytes over the untraced encoding.
  Record plain = in;
  plain.trace_id = 0;
  std::string plain_buf;
  EncodeRecord(plain, &plain_buf);
  EXPECT_EQ(buf.size(), plain_buf.size() + 24);

  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_TRUE(out.traced());
  EXPECT_EQ(out.trace_id, 0xfeedfacecafebeefull);
  EXPECT_EQ(out.span_id, 77u);
  EXPECT_EQ(out.ingest_us, 1700000000000123);
  EXPECT_EQ(out.key, "k");
  EXPECT_EQ(out.value, "v");
  EXPECT_TRUE(input.empty());
}

TEST(RecordTest, UntracedEncodingUnchangedByTraceFields) {
  // A record that never passed the sampler encodes byte-identically to the
  // pre-tracing wire format: no traced attribute bit, no trace block.
  Record in = Record::KeyValue("k", "v", 99);
  in.offset = 5;
  ASSERT_FALSE(in.traced());
  std::string buf;
  EncodeRecord(in, &buf);
  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_FALSE(out.traced());
  EXPECT_EQ(out.trace_id, 0u);
  EXPECT_EQ(out.span_id, 0u);
  EXPECT_EQ(out.ingest_us, 0);
}

TEST(RecordTest, CorruptedByteDetectedByCrc) {
  Record in = Record::KeyValue("key", "value");
  in.offset = 3;
  std::string buf;
  EncodeRecord(in, &buf);
  // Flip one byte in the body (past length+crc framing).
  buf[buf.size() - 1] ^= 0x01;
  Slice input(buf);
  Record out;
  EXPECT_TRUE(DecodeRecord(&input, &out).IsCorruption());
}

TEST(RecordTest, TruncatedBodyDetected) {
  Record in = Record::KeyValue("key", "a longer value to truncate");
  in.offset = 3;
  std::string buf;
  EncodeRecord(in, &buf);
  buf.resize(buf.size() - 5);
  Slice input(buf);
  Record out;
  EXPECT_TRUE(DecodeRecord(&input, &out).IsCorruption());
}

TEST(RecordTest, EmptyInputIsOutOfRange) {
  Slice input("");
  Record out;
  EXPECT_TRUE(DecodeRecord(&input, &out).IsOutOfRange());
}

TEST(RecordTest, DecodeRecordsStopsAtTruncatedTail) {
  std::string buf;
  for (int i = 0; i < 3; ++i) {
    Record r = Record::KeyValue("k" + std::to_string(i), "v");
    r.offset = i;
    EncodeRecord(r, &buf);
  }
  const size_t full = buf.size();
  buf.resize(full - 7);  // Chop into the last record.
  std::vector<Record> records;
  ASSERT_TRUE(DecodeRecords(Slice(buf), &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "k0");
  EXPECT_EQ(records[1].key, "k1");
}

TEST(RecordTest, DecodeRecordsAll) {
  std::string buf;
  for (int i = 0; i < 10; ++i) {
    Record r = Record::KeyValue("k", std::string(i * 10, 'x'));
    r.offset = i;
    EncodeRecord(r, &buf);
  }
  std::vector<Record> records;
  ASSERT_TRUE(DecodeRecords(Slice(buf), &records).ok());
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[i].offset, i);
    EXPECT_EQ(records[i].value.size(), static_cast<size_t>(i * 10));
  }
}

TEST(RecordTest, BinarySafeKeyAndValue) {
  std::string key("\x00\x01\xff\x7f", 4);
  std::string value("\xde\xad\xbe\xef\x00", 5);
  Record in = Record::KeyValue(key, value);
  in.offset = 0;
  std::string buf;
  EncodeRecord(in, &buf);
  Slice input(buf);
  Record out;
  ASSERT_TRUE(DecodeRecord(&input, &out).ok());
  EXPECT_EQ(out.key, key);
  EXPECT_EQ(out.value, value);
}

}  // namespace
}  // namespace liquid::storage
