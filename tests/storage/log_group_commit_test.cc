// Group-commit durability (DESIGN.md §6c): sync_mode semantics, the
// durable-offset watermark, fsync failure handling, and the E7b-style crash
// invariant — records acknowledged durable survive a crash (simulated by
// truncating the backing store to its fsynced prefix), unacknowledged ones
// may be lost, and survivors are always an offset prefix.

#include "storage/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/disk.h"

#include "test_util.h"

namespace liquid::storage {
namespace {

std::vector<Record> KeyedBatch(int count, const std::string& prefix = "k") {
  std::vector<Record> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(
        Record::KeyValue(prefix + std::to_string(i), "v" + std::to_string(i)));
  }
  return out;
}

class LogGroupCommitTest : public ::testing::Test {
 protected:
  std::unique_ptr<Log> OpenLog(SyncMode mode,
                               const std::string& prefix = "g0/") {
    LogConfig config;
    config.sync_mode = mode;
    auto log = Log::Open(&disk_, nullptr, prefix, config, &clock_);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    return std::move(log).value();
  }

  /// Appends one batch, optionally blocking until it is durable.
  Status Append(Log* log, int records, bool await) {
    auto batch = KeyedBatch(records);
    AppendOptions options;
    options.await_durability = await;
    return log->AppendBatch(&batch, options).status();
  }

  int64_t CountRecords(Log* log) {
    std::vector<Record> out;
    EXPECT_TRUE(log->Read(0, 64 << 20, &out).ok());
    return static_cast<int64_t>(out.size());
  }

  MemDisk disk_;
  SimulatedClock clock_{1000};
};

TEST_F(LogGroupCommitTest, NoneNeverAdvancesDurableOffset) {
  auto log = OpenLog(SyncMode::kNone);
  LIQUID_ASSERT_OK(Append(log.get(), 5, /*await=*/false));
  EXPECT_EQ(log->durable_offset(), 0);
  EXPECT_EQ(disk_.sync_ops(), 0);
}

TEST_F(LogGroupCommitTest, EveryBatchSyncsInline) {
  auto log = OpenLog(SyncMode::kEveryBatch);
  for (int i = 0; i < 3; ++i) {
    LIQUID_ASSERT_OK(Append(log.get(), 5, /*await=*/false));
    EXPECT_EQ(log->durable_offset(), log->end_offset());
  }
  EXPECT_GE(disk_.sync_ops(), 3);
}

TEST_F(LogGroupCommitTest, AwaitedGroupAppendBecomesDurable) {
  auto log = OpenLog(SyncMode::kGroup);
  LIQUID_ASSERT_OK(Append(log.get(), 5, /*await=*/true));
  EXPECT_EQ(log->durable_offset(), 5);
  EXPECT_GE(disk_.sync_ops(), 1);
}

TEST_F(LogGroupCommitTest, AckIsPrefixOrdered) {
  // Awaiting one batch implies every earlier batch is durable too: the
  // committer's window always covers a prefix of the committed offsets.
  auto log = OpenLog(SyncMode::kGroup);
  for (int i = 0; i < 5; ++i) {
    LIQUID_ASSERT_OK(Append(log.get(), 10, /*await=*/false));
  }
  LIQUID_ASSERT_OK(Append(log.get(), 1, /*await=*/true));
  EXPECT_EQ(log->durable_offset(), log->end_offset());
}

TEST_F(LogGroupCommitTest, AckedRecordsSurviveCrashUnackedTailMayNot) {
  // The E7b invariant, extended to single-node durability: acknowledged
  // means fsynced, so a crash (backing store truncated to the synced
  // prefix) keeps every acked record; the un-awaited tail appended while
  // fsyncs were failing is legally lost — and what survives is a prefix.
  int64_t acked_end = 0;
  {
    auto log = OpenLog(SyncMode::kGroup);
    for (int i = 0; i < 4; ++i) {
      LIQUID_ASSERT_OK(Append(log.get(), 5, /*await=*/true));
    }
    acked_end = log->end_offset();
    ASSERT_EQ(acked_end, 20);

    // Fail all further fsyncs so the tail cannot become durable — not in a
    // committer window and not in the destructor's best-effort final sync.
    disk_.SetSyncFaultHook(
        [](const std::string&) { return Status::IOError("injected"); });
    LIQUID_ASSERT_OK(Append(log.get(), 5, /*await=*/false));
    EXPECT_FALSE(Append(log.get(), 5, /*await=*/true).ok());
    EXPECT_EQ(log->durable_offset(), acked_end);

    disk_.SimulateCrash();
  }

  disk_.SetSyncFaultHook(nullptr);
  auto log = OpenLog(SyncMode::kGroup);
  EXPECT_EQ(log->end_offset(), acked_end);
  EXPECT_EQ(CountRecords(log.get()), acked_end);
}

TEST_F(LogGroupCommitTest, FailedSyncFailsAckAndLaterAppendsRecover) {
  auto log = OpenLog(SyncMode::kGroup);
  LIQUID_ASSERT_OK(Append(log.get(), 5, /*await=*/true));

  std::atomic<bool> fail{true};
  disk_.SetSyncFaultHook([&fail](const std::string&) {
    return fail.load() ? Status::IOError("injected") : Status::OK();
  });
  Status st = Append(log.get(), 5, /*await=*/true);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(log->durable_offset(), 5);

  // The committer retries once new batches commit past the failed window;
  // the next awaited append covers the previously-failed range too.
  fail.store(false);
  LIQUID_ASSERT_OK(Append(log.get(), 5, /*await=*/true));
  EXPECT_EQ(log->durable_offset(), 15);
}

TEST_F(LogGroupCommitTest, EveryBatchSurvivesCrashCompletely) {
  {
    auto log = OpenLog(SyncMode::kEveryBatch);
    for (int i = 0; i < 3; ++i) {
      LIQUID_ASSERT_OK(Append(log.get(), 5, /*await=*/false));
    }
    disk_.SimulateCrash();
  }
  auto log = OpenLog(SyncMode::kEveryBatch);
  EXPECT_EQ(log->end_offset(), 15);
  EXPECT_EQ(CountRecords(log.get()), 15);
}

}  // namespace
}  // namespace liquid::storage
