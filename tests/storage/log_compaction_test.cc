#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/clock.h"
#include "common/random.h"
#include "storage/log.h"

#include "test_util.h"

namespace liquid::storage {
namespace {

class LogCompactionTest : public ::testing::Test {
 protected:
  std::unique_ptr<Log> OpenCompactedLog(size_t segment_bytes = 1024,
                                        bool drop_tombstones = false) {
    LogConfig config;
    config.segment_bytes = segment_bytes;
    config.compaction_enabled = true;
    config.compaction_drops_tombstones = drop_tombstones;
    auto log = Log::Open(&disk_, nullptr, "c0/", config, &clock_);
    EXPECT_TRUE(log.ok());
    return std::move(log).value();
  }

  /// Latest value per key by scanning the whole log.
  std::map<std::string, std::pair<std::string, bool>> Materialize(Log* log) {
    std::map<std::string, std::pair<std::string, bool>> view;
    std::vector<Record> out;
    LIQUID_EXPECT_OK(log->Read(log->start_offset(), 100 << 20, &out));
    for (const Record& r : out) {
      view[r.key] = {r.value, r.is_tombstone};
    }
    return view;
  }

  MemDisk disk_;
  SimulatedClock clock_{1000};
};

TEST_F(LogCompactionTest, KeepsOnlyLatestPerKey) {
  auto log = OpenCompactedLog();
  // 10 keys, 20 rounds of updates.
  for (int round = 0; round < 20; ++round) {
    std::vector<Record> batch;
    for (int k = 0; k < 10; ++k) {
      batch.push_back(Record::KeyValue(
          "key" + std::to_string(k),
          "round" + std::to_string(round)));
    }
    ASSERT_TRUE(log->Append(&batch).ok());
  }
  const auto before = Materialize(log.get());
  auto stats = log->Compact();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->records_before, stats->records_after);
  EXPECT_LT(stats->bytes_after, stats->bytes_before);

  // Compaction preserves the materialized view exactly.
  const auto after = Materialize(log.get());
  EXPECT_EQ(before, after);
  for (const auto& [key, value] : after) {
    EXPECT_EQ(value.first, "round19") << key;
  }
}

TEST_F(LogCompactionTest, OffsetsPreservedWithGaps) {
  auto log = OpenCompactedLog();
  for (int round = 0; round < 10; ++round) {
    std::vector<Record> batch;
    for (int k = 0; k < 5; ++k) {
      batch.push_back(Record::KeyValue("key" + std::to_string(k), "x"));
    }
    LIQUID_ASSERT_OK(log->Append(&batch));
  }
  const int64_t end_before = log->end_offset();
  LIQUID_ASSERT_OK(log->Compact());
  EXPECT_EQ(log->end_offset(), end_before);  // End offset untouched.
  std::vector<Record> out;
  LIQUID_ASSERT_OK(log->Read(0, 100 << 20, &out));
  // Offsets strictly increasing (gaps allowed).
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].offset, out[i].offset);
  }
}

TEST_F(LogCompactionTest, ActiveSegmentNeverRewritten) {
  auto log = OpenCompactedLog(1 << 20);  // One big segment: nothing closed.
  std::vector<Record> batch{Record::KeyValue("a", "1"),
                            Record::KeyValue("a", "2")};
  LIQUID_ASSERT_OK(log->Append(&batch));
  auto stats = log->Compact();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->segments_cleaned, 0);
  std::vector<Record> out;
  LIQUID_ASSERT_OK(log->Read(0, 1 << 20, &out));
  EXPECT_EQ(out.size(), 2u);  // Both survive: active segment untouched.
}

TEST_F(LogCompactionTest, TombstonesKeptByDefault) {
  auto log = OpenCompactedLog();
  for (int round = 0; round < 10; ++round) {
    std::vector<Record> batch;
    for (int k = 0; k < 5; ++k) {
      batch.push_back(Record::KeyValue("key" + std::to_string(k), "x"));
    }
    LIQUID_ASSERT_OK(log->Append(&batch));
  }
  std::vector<Record> del{Record::Tombstone("key0")};
  LIQUID_ASSERT_OK(log->Append(&del));
  // Push the tombstone out of the active segment.
  for (int i = 0; i < 10; ++i) {
    std::vector<Record> filler{Record::KeyValue("other", "y")};
    LIQUID_ASSERT_OK(log->Append(&filler));
  }
  LIQUID_ASSERT_OK(log->Compact());
  const auto view = Materialize(log.get());
  ASSERT_TRUE(view.count("key0"));
  EXPECT_TRUE(view.at("key0").second);  // Still a tombstone.
}

TEST_F(LogCompactionTest, TombstonesDroppedWhenConfigured) {
  auto log = OpenCompactedLog(1024, /*drop_tombstones=*/true);
  for (int round = 0; round < 10; ++round) {
    std::vector<Record> batch;
    for (int k = 0; k < 5; ++k) {
      batch.push_back(Record::KeyValue("key" + std::to_string(k), "x"));
    }
    LIQUID_ASSERT_OK(log->Append(&batch));
  }
  std::vector<Record> del{Record::Tombstone("key0")};
  LIQUID_ASSERT_OK(log->Append(&del));
  // Enough filler to roll the tombstone's segment out of the active position.
  for (int i = 0; i < 60; ++i) {
    std::vector<Record> filler{Record::KeyValue("other", "y")};
    LIQUID_ASSERT_OK(log->Append(&filler));
  }
  ASSERT_GT(log->segment_count(), 2);
  LIQUID_ASSERT_OK(log->Compact());
  const auto view = Materialize(log.get());
  EXPECT_FALSE(view.count("key0"));  // Tombstone gone entirely.
}

TEST_F(LogCompactionTest, DisabledCompactionIsNoOp) {
  LogConfig config;
  config.segment_bytes = 512;
  auto log = Log::Open(&disk_, nullptr, "nc/", config, &clock_);
  std::vector<Record> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(Record::KeyValue("samekey", "v"));
  }
  LIQUID_ASSERT_OK((*log)->Append(&batch));
  auto stats = (*log)->Compact();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->segments_cleaned, 0);
  std::vector<Record> out;
  LIQUID_ASSERT_OK((*log)->Read(0, 100 << 20, &out));
  EXPECT_EQ(out.size(), 100u);
}

TEST_F(LogCompactionTest, RepeatedCompactionIsIdempotent) {
  auto log = OpenCompactedLog();
  for (int round = 0; round < 15; ++round) {
    std::vector<Record> batch;
    for (int k = 0; k < 8; ++k) {
      batch.push_back(Record::KeyValue("key" + std::to_string(k),
                                       "r" + std::to_string(round)));
    }
    LIQUID_ASSERT_OK(log->Append(&batch));
  }
  LIQUID_ASSERT_OK(log->Compact());
  const auto first = Materialize(log.get());
  auto stats = log->Compact();
  ASSERT_TRUE(stats.ok());
  const auto second = Materialize(log.get());
  EXPECT_EQ(first, second);
}

TEST_F(LogCompactionTest, ValueOnlyRecordsSurviveCompaction) {
  auto log = OpenCompactedLog();
  for (int i = 0; i < 50; ++i) {
    std::vector<Record> batch{Record::ValueOnly("event" + std::to_string(i))};
    LIQUID_ASSERT_OK(log->Append(&batch));
  }
  auto stats = log->Compact();
  ASSERT_TRUE(stats.ok());
  // Unkeyed records are never deduplicated.
  EXPECT_EQ(stats->records_before, stats->records_after);
}

TEST_F(LogCompactionTest, ZipfWorkloadShrinksDramatically) {
  auto log = OpenCompactedLog(2048);
  ZipfGenerator zipf(100, 0.99, 7);
  for (int i = 0; i < 100; ++i) {
    std::vector<Record> batch;
    for (int j = 0; j < 20; ++j) {
      batch.push_back(Record::KeyValue("user" + std::to_string(zipf.Next()),
                                       "profile-update"));
    }
    LIQUID_ASSERT_OK(log->Append(&batch));
  }
  const uint64_t before = log->size_bytes();
  LIQUID_ASSERT_OK(log->Compact());
  const uint64_t after = log->size_bytes();
  // 2000 skewed updates over <=100 keys: compaction removes the bulk.
  EXPECT_LT(after * 2, before);
}

TEST_F(LogCompactionTest, ReadAfterCompactionAcrossReopen) {
  {
    auto log = OpenCompactedLog();
    for (int round = 0; round < 10; ++round) {
      std::vector<Record> batch;
      for (int k = 0; k < 5; ++k) {
        batch.push_back(Record::KeyValue("key" + std::to_string(k),
                                         "r" + std::to_string(round)));
      }
      LIQUID_ASSERT_OK(log->Append(&batch));
    }
    LIQUID_ASSERT_OK(log->Compact());
  }
  auto log = OpenCompactedLog();
  const auto view = Materialize(log.get());
  EXPECT_EQ(view.size(), 5u);
  for (const auto& [key, value] : view) EXPECT_EQ(value.first, "r9");
}

}  // namespace
}  // namespace liquid::storage
