// TSan stress for the group-commit + zero-copy machinery: concurrent
// appenders (some awaiting durability) race the committer thread's fsync
// window, zero-copy readers pinning cache pages, and cache eviction forced
// by a small capacity. Run under -fsanitize=thread by scripts/check.sh; the
// assertions here are secondary to the data-race detection.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "storage/disk.h"
#include "storage/log.h"
#include "storage/page_cache.h"
#include "storage/record_batch.h"

#include "test_util.h"

namespace liquid::storage {
namespace {

TEST(LogGroupCommitStressTest, AppendersRaceCommitterAndPinnedReaders) {
  MemDisk disk;
  SimulatedClock clock(1000);
  // Small pages and capacity so eviction and copy-on-extend fire constantly
  // under the readers' pins.
  PageCacheConfig cache_config;
  cache_config.page_size = 512;
  cache_config.capacity_bytes = 16 << 10;
  cache_config.flush_after_ms = 0;
  PageCache cache(cache_config, &clock);

  LogConfig config;
  config.segment_bytes = 32 << 10;  // Roll segments mid-run too.
  config.sync_mode = SyncMode::kGroup;
  auto opened = Log::Open(&disk, &cache, "stress/", config, &clock);
  LIQUID_ASSERT_OK(opened.status());
  std::unique_ptr<Log> log = std::move(opened).value();

  constexpr int kAppenders = 4;
  constexpr int kReaders = 2;
  constexpr int kBatchesPerAppender = 100;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> awaited_max_end{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kBatchesPerAppender; ++i) {
        std::vector<Record> batch;
        for (int r = 0; r < 5; ++r) {
          batch.push_back(Record::KeyValue(
              "k" + std::to_string(t) + "-" + std::to_string(i),
              std::string(64, 'v')));
        }
        AppendOptions options;
        options.await_durability = (i % 2) == 0;  // Half block on the group.
        auto result = log->AppendBatch(&batch, options);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        if (options.await_durability) {
          const int64_t end = batch.back().offset + 1;
          int64_t seen = awaited_max_end.load();
          while (end > seen &&
                 !awaited_max_end.compare_exchange_weak(seen, end)) {
          }
          // An acked append must be covered by the durable watermark.
          ASSERT_GE(log->durable_offset(), end);
        }
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      int64_t cursor = 0;
      while (!stop.load(std::memory_order_acquire)) {
        EncodedBatch out;
        Status st = log->ReadEncoded(cursor, 8 << 10, &out);
        if (st.ok() && !out.empty()) {
          // Frames must decode from whatever buffer (pinned page or copy)
          // the read returned, even as appenders extend and evict pages.
          std::vector<Record> decoded;
          ASSERT_TRUE(out.DecodeAll(&decoded).ok());
          ASSERT_EQ(decoded.front().offset, out.base_offset());
          cursor = out.last_offset() + 1;
        } else {
          cursor = 0;  // Wrap and rescan from the head.
        }
      }
    });
  }

  for (int t = 0; t < kAppenders; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kAppenders; t < threads.size(); ++t) threads[t].join();

  const int64_t total = kAppenders * kBatchesPerAppender * 5;
  EXPECT_EQ(log->end_offset(), total);
  EXPECT_GE(log->durable_offset(), awaited_max_end.load());
  EXPECT_GE(disk.sync_ops(), 1);
}

}  // namespace
}  // namespace liquid::storage
