// Zero-copy fetch (Log::ReadEncoded over cache-resident pages): the fast
// path must return byte-identical frames to the legacy copying path — same
// wire bytes, same framing metadata, traced records included — while the
// liquid.log.<name>.fetch_zero_copy_bytes / fetch_copied_bytes metric pair
// proves which path served the request.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "storage/disk.h"
#include "storage/log.h"
#include "storage/page_cache.h"
#include "storage/record_batch.h"

#include "test_util.h"

namespace liquid::storage {
namespace {

std::string BatchBytes(const EncodedBatch& batch) {
  Slice s = batch.bytes();
  return std::string(s.data(), s.size());
}

class LogZeroCopyTest : public ::testing::Test {
 protected:
  /// A batch ending in a traced record, so the fast path parses the optional
  /// trace block too.
  std::vector<Record> MixedBatch(int count) {
    std::vector<Record> out;
    for (int i = 0; i < count; ++i) {
      out.push_back(Record::KeyValue("k" + std::to_string(i),
                                     "value-" + std::to_string(i)));
    }
    out.back().trace_id = 0xabcdef;
    return out;
  }

  std::unique_ptr<Log> OpenLog(PageCache* cache, const std::string& prefix) {
    auto log = Log::Open(&disk_, cache, prefix, LogConfig{}, &clock_);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    return std::move(log).value();
  }

  Counter* MetricFor(const std::string& instance, const std::string& name) {
    return MetricsRegistry::Default()->GetCounter("liquid.log." + instance +
                                                  "." + name);
  }

  MemDisk disk_;
  SimulatedClock clock_{1000};
};

TEST_F(LogZeroCopyTest, CacheResidentFetchIsZeroCopyAndByteIdentical) {
  PageCache cache({}, &clock_);
  auto log = OpenLog(&cache, "zc0/");
  auto batch = MixedBatch(10);
  LIQUID_ASSERT_OK(log->AppendBatch(&batch).status());

  Counter* zero_copy = MetricFor("zc0", "fetch_zero_copy_bytes");
  Counter* copied = MetricFor("zc0", "fetch_copied_bytes");
  const int64_t zero_before = zero_copy->value();
  const int64_t copied_before = copied->value();

  // Freshly appended bytes are cache-resident (write-through NoteAppend),
  // so this fetch must take the pinned-page path: >0 zero-copy bytes, 0
  // copied bytes.
  EncodedBatch fast;
  LIQUID_ASSERT_OK(log->ReadEncoded(0, 1 << 20, &fast));
  ASSERT_EQ(fast.record_count(), 10u);
  EXPECT_GT(zero_copy->value() - zero_before, 0);
  EXPECT_EQ(copied->value() - copied_before, 0);
  EXPECT_EQ(static_cast<size_t>(zero_copy->value() - zero_before),
            fast.size_bytes());

  // Legacy copying path over the same files: a second Log handle with no
  // cache cannot pin pages, so it gathers into a fresh buffer.
  auto legacy = OpenLog(nullptr, "zc0/");
  EncodedBatch slow;
  LIQUID_ASSERT_OK(legacy->ReadEncoded(0, 1 << 20, &slow));
  ASSERT_EQ(slow.record_count(), 10u);
  EXPECT_GT(copied->value() - copied_before, 0);

  // Byte identity: same wire bytes, same framing.
  EXPECT_EQ(BatchBytes(fast), BatchBytes(slow));
  for (size_t i = 0; i < fast.frames().size(); ++i) {
    EXPECT_EQ(fast.frames()[i].offset, slow.frames()[i].offset) << i;
    EXPECT_EQ(fast.frames()[i].len, slow.frames()[i].len) << i;
    EXPECT_EQ(fast.frames()[i].traced, slow.frames()[i].traced) << i;
  }

  // And the decoded records round-trip, traced record included.
  std::vector<Record> decoded;
  LIQUID_ASSERT_OK(fast.DecodeAll(&decoded));
  ASSERT_EQ(decoded.size(), 10u);
  EXPECT_EQ(decoded.back().trace_id, 0xabcdefu);
  EXPECT_EQ(decoded.front().key, "k0");
  EXPECT_EQ(decoded.back().value, "value-9");
}

TEST_F(LogZeroCopyTest, MidLogFetchSkipsLeadingFramesIdentically) {
  PageCache cache({}, &clock_);
  auto log = OpenLog(&cache, "zc1/");
  for (int i = 0; i < 3; ++i) {
    auto batch = MixedBatch(4);
    LIQUID_ASSERT_OK(log->AppendBatch(&batch).status());
  }

  EncodedBatch fast;
  LIQUID_ASSERT_OK(log->ReadEncoded(5, 1 << 20, &fast));
  ASSERT_FALSE(fast.empty());
  EXPECT_EQ(fast.base_offset(), 5);
  EXPECT_EQ(fast.last_offset(), 11);

  auto legacy = OpenLog(nullptr, "zc1/");
  EncodedBatch slow;
  LIQUID_ASSERT_OK(legacy->ReadEncoded(5, 1 << 20, &slow));
  EXPECT_EQ(BatchBytes(fast), BatchBytes(slow));
}

TEST_F(LogZeroCopyTest, MaxBytesClampMatchesLegacyPath) {
  PageCache cache({}, &clock_);
  auto log = OpenLog(&cache, "zc2/");
  auto batch = MixedBatch(10);
  LIQUID_ASSERT_OK(log->AppendBatch(&batch).status());

  // A tiny budget still returns at least one record, exactly like the
  // copying path.
  EncodedBatch fast;
  LIQUID_ASSERT_OK(log->ReadEncoded(0, 1, &fast));
  auto legacy = OpenLog(nullptr, "zc2/");
  EncodedBatch slow;
  LIQUID_ASSERT_OK(legacy->ReadEncoded(0, 1, &slow));
  ASSERT_EQ(fast.record_count(), 1u);
  EXPECT_EQ(BatchBytes(fast), BatchBytes(slow));
}

TEST_F(LogZeroCopyTest, CacheMissFallsBackToCopyingPath) {
  // A one-page cache: appending past page 0 evicts it, so a fetch from
  // offset 0 misses and must fall back (counting copied bytes), yet still
  // returns the right records.
  PageCacheConfig config;
  config.page_size = 512;
  config.capacity_bytes = 512;
  config.flush_after_ms = 0;
  PageCache cache(config, &clock_);
  auto log = OpenLog(&cache, "zc3/");
  for (int i = 0; i < 20; ++i) {
    auto batch = MixedBatch(4);
    LIQUID_ASSERT_OK(log->AppendBatch(&batch).status());
  }
  ASSERT_GT(cache.evictions(), 0);

  Counter* copied = MetricFor("zc3", "fetch_copied_bytes");
  const int64_t copied_before = copied->value();
  EncodedBatch out;
  LIQUID_ASSERT_OK(log->ReadEncoded(0, 1 << 20, &out));
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.base_offset(), 0);
  EXPECT_GT(copied->value() - copied_before, 0);

  std::vector<Record> decoded;
  LIQUID_ASSERT_OK(out.DecodeAll(&decoded));
  EXPECT_EQ(decoded.front().key, "k0");
}

TEST_F(LogZeroCopyTest, PinnedFetchSurvivesLaterAppendsAndEviction) {
  // Lifetime rule: the EncodedBatch's pinned buffer stays valid and
  // immutable even after the cache extends the page (copy-on-extend) or
  // evicts it.
  PageCacheConfig config;
  config.page_size = 1024;
  config.capacity_bytes = 1024;  // One page: any growth evicts.
  config.flush_after_ms = 0;
  PageCache cache(config, &clock_);
  auto log = OpenLog(&cache, "zc4/");
  auto first = MixedBatch(4);
  LIQUID_ASSERT_OK(log->AppendBatch(&first).status());

  EncodedBatch pinned;
  LIQUID_ASSERT_OK(log->ReadEncoded(0, 1 << 20, &pinned));
  ASSERT_EQ(pinned.record_count(), 4u);
  const std::string before = BatchBytes(pinned);

  // Extend the same page (copy-on-extend clones under the hood) and then
  // blow the cache past capacity so the original page is evicted.
  for (int i = 0; i < 30; ++i) {
    auto more = MixedBatch(4);
    LIQUID_ASSERT_OK(log->AppendBatch(&more).status());
  }
  ASSERT_GT(cache.evictions(), 0);

  EXPECT_EQ(BatchBytes(pinned), before);
  std::vector<Record> decoded;
  LIQUID_ASSERT_OK(pinned.DecodeAll(&decoded));
  ASSERT_EQ(decoded.size(), 4u);
  EXPECT_EQ(decoded.front().offset, 0);
}

}  // namespace
}  // namespace liquid::storage
