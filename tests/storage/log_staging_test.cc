// Staging ring correctness (DESIGN.md §5a): with LogConfig::staging == kRing
// producers claim offsets from a lock-free MPSC ring and a single drainer
// (the committer thread) appends in offset order. These tests pin the mode's
// contract against the legacy locked pipeline:
//
//   * acked byte streams are identical to Staging::kOff — same decoded
//     records, same wire bytes, traced records included;
//   * synchronous callers (async_stage off, the default) still observe the
//     append result and end_offset() visibility on return;
//   * a full ring surfaces ResourceExhausted to async producers (backpressure
//     via the client-side throttle convention) and staging_ring_full_total
//     counts it, while every accepted record still lands;
//   * drainer-side failures reach AwaitAppended waiters (unacknowledged, not
//     necessarily absent — the failed-group-sync semantics);
//   * the crash invariant of SyncMode::kGroup holds unchanged under kRing;
//   * mutators (Truncate/ApplyRetention) close and reopen the claim gate and
//     appends continue at the post-mutation offset;
//   * the encode-once follower path (AppendEncoded) works on a ring-mode log;
//   * the producer path really left append_mu_: lock acquisitions per batch
//     drop from the locked pipeline's 3 to at most the drainer-wake path's 1.

#include "storage/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "storage/disk.h"
#include "storage/record_batch.h"

#include "test_util.h"

namespace liquid::storage {
namespace {

std::string BatchBytes(const EncodedBatch& batch) {
  Slice s = batch.bytes();
  return std::string(s.data(), s.size());
}

class LogStagingTest : public ::testing::Test {
 protected:
  /// Opens a log under `prefix`; `staging` toggles the ring against the
  /// byte-identical legacy reference.
  std::unique_ptr<Log> OpenLog(const std::string& prefix, Staging staging,
                               SyncMode sync_mode = SyncMode::kNone,
                               size_t staging_capacity = 4096) {
    LogConfig config;
    config.staging = staging;
    config.sync_mode = sync_mode;
    config.staging_capacity = staging_capacity;
    auto log = Log::Open(&disk_, nullptr, prefix, config, &clock_);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    return std::move(log).value();
  }

  /// A batch ending in a traced record, so the staged encode covers the
  /// optional trace block too.
  std::vector<Record> MixedBatch(int count, const std::string& prefix = "k") {
    std::vector<Record> out;
    for (int i = 0; i < count; ++i) {
      out.push_back(Record::KeyValue(prefix + std::to_string(i),
                                     "value-" + std::to_string(i)));
    }
    out.back().trace_id = 0xabcdef;
    return out;
  }

  int64_t CountRecords(Log* log) {
    std::vector<Record> out;
    EXPECT_TRUE(log->Read(0, 64 << 20, &out).ok());
    return static_cast<int64_t>(out.size());
  }

  Counter* MetricFor(const std::string& instance, const std::string& name) {
    return MetricsRegistry::Default()->GetCounter("liquid.log." + instance +
                                                  "." + name);
  }

  MemDisk disk_;
  SimulatedClock clock_{1000};
};

TEST_F(LogStagingTest, AckedByteStreamIdenticalToLegacyPath) {
  // Same records, same (simulated) clock: the ring-staged log must produce
  // byte-identical segments to the locked pipeline, traced record included.
  auto legacy = OpenLog("sg-ref/", Staging::kOff);
  auto ring = OpenLog("sg-ring/", Staging::kRing);

  for (int b = 0; b < 8; ++b) {
    auto for_legacy = MixedBatch(5, "b" + std::to_string(b) + "-");
    auto for_ring = for_legacy;
    auto legacy_batch = legacy->AppendBatch(&for_legacy);
    auto ring_batch = ring->AppendBatch(&for_ring);
    LIQUID_ASSERT_OK(legacy_batch.status());
    LIQUID_ASSERT_OK(ring_batch.status());
    // The returned one-time encodings match frame for frame.
    EXPECT_EQ(BatchBytes(*legacy_batch), BatchBytes(*ring_batch));
  }
  EXPECT_EQ(legacy->end_offset(), ring->end_offset());

  // And so do the bytes that actually landed in the log.
  EncodedBatch legacy_read, ring_read;
  LIQUID_ASSERT_OK(legacy->ReadEncoded(0, 64 << 20, &legacy_read));
  LIQUID_ASSERT_OK(ring->ReadEncoded(0, 64 << 20, &ring_read));
  EXPECT_EQ(BatchBytes(legacy_read), BatchBytes(ring_read));

  std::vector<Record> legacy_records, ring_records;
  LIQUID_ASSERT_OK(legacy->Read(0, 64 << 20, &legacy_records));
  LIQUID_ASSERT_OK(ring->Read(0, 64 << 20, &ring_records));
  ASSERT_EQ(legacy_records.size(), ring_records.size());
  for (size_t i = 0; i < legacy_records.size(); ++i) {
    EXPECT_EQ(legacy_records[i].offset, ring_records[i].offset);
    EXPECT_EQ(legacy_records[i].key, ring_records[i].key);
    EXPECT_EQ(legacy_records[i].value, ring_records[i].value);
    EXPECT_EQ(legacy_records[i].timestamp_ms, ring_records[i].timestamp_ms);
    EXPECT_EQ(legacy_records[i].trace_id, ring_records[i].trace_id);
  }
}

TEST_F(LogStagingTest, SynchronousCallersSeeTheAppendOnReturn) {
  // Default AppendOptions keep the Staging::kOff contract: when AppendBatch
  // returns, the records are committed and visible.
  auto log = OpenLog("sg-sync/", Staging::kRing);
  for (int b = 0; b < 4; ++b) {
    auto batch = MixedBatch(3);
    auto result = log->AppendBatch(&batch);
    LIQUID_ASSERT_OK(result.status());
    EXPECT_EQ(log->end_offset(), (b + 1) * 3);
    EXPECT_EQ(CountRecords(log.get()), (b + 1) * 3);
  }
}

TEST_F(LogStagingTest, OversizedBatchIsRejectedOutright) {
  auto log = OpenLog("sg-big/", Staging::kRing, SyncMode::kNone,
                     /*staging_capacity=*/4);
  auto batch = MixedBatch(10);
  Status st = log->AppendBatch(&batch).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_EQ(log->end_offset(), 0);
}

TEST_F(LogStagingTest, FullRingSurfacesResourceExhaustedToAsyncProducers) {
  // Stall the drainer inside its per-batch fsync (kEveryBatch) so published
  // runs pile up in a 4-slot ring; the async produce path must get
  // ResourceExhausted — never a broker-side sleep — and every accepted
  // record must still land once the drainer resumes.
  auto log = OpenLog("sg-full/", Staging::kRing, SyncMode::kEveryBatch,
                     /*staging_capacity=*/4);
  Counter* ring_full = MetricFor("sg-full", "staging_ring_full_total");
  const int64_t ring_full_before = ring_full->value();

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  disk_.SetSyncFaultHook([&](const std::string&) {
    if (release.load()) return Status::OK();
    entered.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  });

  AppendOptions async;
  async.async_stage = true;

  // First record: consumed by the drainer (freeing its slot), which then
  // blocks in the fsync hook.
  auto first = MixedBatch(1, "a");
  LIQUID_ASSERT_OK(log->AppendBatch(&first, async).status());
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The drainer is stalled: exactly `capacity` more records fit, then the
  // claim fails without blocking.
  int accepted = 1;
  Status backpressure = Status::OK();
  for (int i = 0; i < 8 && backpressure.ok(); ++i) {
    auto batch = MixedBatch(1, "b" + std::to_string(i) + "-");
    backpressure = log->AppendBatch(&batch, async).status();
    if (backpressure.ok()) ++accepted;
  }
  EXPECT_TRUE(backpressure.IsResourceExhausted()) << backpressure.ToString();
  EXPECT_EQ(accepted, 5);  // 1 consumed + 4 ring slots.
  EXPECT_GT(ring_full->value() - ring_full_before, 0);

  // Resume the drainer; everything accepted becomes appended and durable.
  release.store(true);
  LIQUID_ASSERT_OK(log->AwaitAppended(0, accepted));
  EXPECT_EQ(log->end_offset(), accepted);
  EXPECT_EQ(CountRecords(log.get()), accepted);
  EXPECT_EQ(log->durable_offset(), accepted);

  // And the rejected producer's retry (the client-side convention) succeeds.
  auto retry = MixedBatch(1, "retry");
  LIQUID_ASSERT_OK(log->AppendBatch(&retry, async).status());
  LIQUID_ASSERT_OK(log->AwaitAppended(accepted, accepted + 1));
  EXPECT_EQ(log->end_offset(), accepted + 1);
  disk_.SetSyncFaultHook(nullptr);
}

TEST_F(LogStagingTest, DrainerSyncFailureReachesTheAwaiter) {
  // kEveryBatch promises per-batch durability; when the drainer's fsync for
  // a staged batch fails, AwaitAppended over that range must return the
  // error — the batch is unacknowledged, not necessarily absent.
  auto log = OpenLog("sg-fail/", Staging::kRing, SyncMode::kEveryBatch);
  auto ok_batch = MixedBatch(2);
  LIQUID_ASSERT_OK(log->AppendBatch(&ok_batch).status());

  std::atomic<bool> fail{true};
  disk_.SetSyncFaultHook([&fail](const std::string&) {
    return fail.load() ? Status::IOError("injected") : Status::OK();
  });
  AppendOptions async;
  async.async_stage = true;
  auto bad_batch = MixedBatch(2);
  LIQUID_ASSERT_OK(log->AppendBatch(&bad_batch, async).status());
  Status st = log->AwaitAppended(2, 4);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected"), std::string::npos) << st.ToString();

  // Later batches recover once fsync heals.
  fail.store(false);
  auto next = MixedBatch(2);
  LIQUID_ASSERT_OK(log->AppendBatch(&next).status());
  disk_.SetSyncFaultHook(nullptr);
}

TEST_F(LogStagingTest, AckedRecordsSurviveCrashUnderRingGroupCommit) {
  // The group-commit crash invariant, unchanged by the staging ring: acked
  // (awaited) records survive SimulateCrash, the un-awaited tail appended
  // while fsyncs were failing may not, and what survives is a prefix.
  int64_t acked_end = 0;
  {
    auto log = OpenLog("sg-crash/", Staging::kRing, SyncMode::kGroup);
    AppendOptions awaited;
    awaited.await_durability = true;
    for (int i = 0; i < 4; ++i) {
      auto batch = MixedBatch(5, "w" + std::to_string(i) + "-");
      LIQUID_ASSERT_OK(log->AppendBatch(&batch, awaited).status());
    }
    acked_end = log->end_offset();
    ASSERT_EQ(acked_end, 20);

    disk_.SetSyncFaultHook(
        [](const std::string&) { return Status::IOError("injected"); });
    auto tail = MixedBatch(5, "t");
    LIQUID_ASSERT_OK(log->AppendBatch(&tail).status());
    auto lost = MixedBatch(5, "l");
    EXPECT_FALSE(log->AppendBatch(&lost, awaited).status().ok());
    EXPECT_EQ(log->durable_offset(), acked_end);

    disk_.SimulateCrash();
  }

  disk_.SetSyncFaultHook(nullptr);
  auto log = OpenLog("sg-crash/", Staging::kRing, SyncMode::kGroup);
  EXPECT_EQ(log->end_offset(), acked_end);
  EXPECT_EQ(CountRecords(log.get()), acked_end);

  // The reopened ring restarts claiming at the recovered end offset.
  auto batch = MixedBatch(3, "post");
  auto result = log->AppendBatch(&batch);
  LIQUID_ASSERT_OK(result.status());
  EXPECT_EQ(log->end_offset(), acked_end + 3);
}

TEST_F(LogStagingTest, MutatorsGateAndReopenTheRing) {
  // Truncate and retention drain the pipeline behind a closed claim gate;
  // afterwards the ring must claim from the post-mutation offset.
  auto log = OpenLog("sg-gate/", Staging::kRing);
  auto batch = MixedBatch(10);
  LIQUID_ASSERT_OK(log->AppendBatch(&batch).status());
  ASSERT_EQ(log->end_offset(), 10);

  LIQUID_ASSERT_OK(log->Truncate(6));
  EXPECT_EQ(log->end_offset(), 6);
  auto after_truncate = MixedBatch(2, "at");
  auto result = log->AppendBatch(&after_truncate);
  LIQUID_ASSERT_OK(result.status());
  EXPECT_EQ((*result).base_offset(), 6);
  EXPECT_EQ(log->end_offset(), 8);

  // retention_ms stays -1: ApplyRetention deletes nothing but still runs
  // the full gate-close/drain/reopen cycle.
  auto deleted = log->ApplyRetention();
  LIQUID_ASSERT_OK(deleted.status());
  EXPECT_EQ(*deleted, 0);
  auto after_retention = MixedBatch(2, "ar");
  LIQUID_ASSERT_OK(log->AppendBatch(&after_retention).status());
  EXPECT_EQ(log->end_offset(), 10);
  EXPECT_EQ(CountRecords(log.get()), 10);
}

TEST_F(LogStagingTest, EncodeOnceReplicationLandsOnRingModeFollower) {
  // The follower path (AppendEncoded) mutates through the gate, not the
  // ring; leader bytes land verbatim on a ring-mode follower.
  auto leader = OpenLog("sg-lead/", Staging::kRing);
  auto follower = OpenLog("sg-follow/", Staging::kRing);

  auto batch = MixedBatch(8);
  LIQUID_ASSERT_OK(leader->AppendBatch(&batch).status());

  EncodedBatch wire;
  LIQUID_ASSERT_OK(leader->ReadEncoded(0, 64 << 20, &wire));
  LIQUID_ASSERT_OK(follower->AppendEncoded(wire));
  EXPECT_EQ(follower->end_offset(), leader->end_offset());

  EncodedBatch follower_read;
  LIQUID_ASSERT_OK(follower->ReadEncoded(0, 64 << 20, &follower_read));
  EXPECT_EQ(BatchBytes(follower_read), BatchBytes(wire));

  // The follower's ring reopened past the replicated range: local appends
  // (e.g. after promotion to leader) claim the next offset.
  auto local = MixedBatch(2, "local");
  auto result = follower->AppendBatch(&local);
  LIQUID_ASSERT_OK(result.status());
  EXPECT_EQ((*result).base_offset(), 8);
}

TEST_F(LogStagingTest, ProducerPathLeavesAppendMu) {
  // The acceptance evidence for DESIGN.md §5a: the locked pipeline takes
  // append_mu_ three times per batch (reserve, commit, pipeline-drain
  // check); the ring path's producers touch it at most once per batch (the
  // drainer-wake transition) on the common path.
  const int kBatches = 50;

  auto legacy = OpenLog("sg-locks-off/", Staging::kOff);
  Counter* legacy_locks =
      MetricFor("sg-locks-off", "producer_append_mu_acquisitions");
  const int64_t legacy_before = legacy_locks->value();
  for (int b = 0; b < kBatches; ++b) {
    auto batch = MixedBatch(4);
    LIQUID_ASSERT_OK(legacy->AppendBatch(&batch).status());
  }
  EXPECT_EQ(legacy_locks->value() - legacy_before, 3 * kBatches);

  auto ring = OpenLog("sg-locks-ring/", Staging::kRing);
  Counter* ring_locks =
      MetricFor("sg-locks-ring", "producer_append_mu_acquisitions");
  const int64_t ring_before = ring_locks->value();
  for (int b = 0; b < kBatches; ++b) {
    auto batch = MixedBatch(4);
    LIQUID_ASSERT_OK(ring->AppendBatch(&batch).status());
  }
  EXPECT_LE(ring_locks->value() - ring_before, kBatches);
}

TEST_F(LogStagingTest, StagingMetricsAccountForDrainedBatches) {
  auto log = OpenLog("sg-metrics/", Staging::kRing);
  Counter* drained = MetricFor("sg-metrics", "staging_drained_batches");
  const int64_t drained_before = drained->value();
  for (int b = 0; b < 6; ++b) {
    auto batch = MixedBatch(2);
    LIQUID_ASSERT_OK(log->AppendBatch(&batch).status());
  }
  EXPECT_EQ(drained->value() - drained_before, 6);
  // Synchronous appends drain one-by-one, so the depth gauge is back to 0
  // between calls.
  Gauge* depth =
      MetricsRegistry::Default()->GetGauge("liquid.log.sg-metrics.staging_depth");
  EXPECT_EQ(depth->value(), 0);
}

}  // namespace
}  // namespace liquid::storage
