#include "storage/disk.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>

#include "test_util.h"

namespace liquid::storage {
namespace {

/// Both Disk implementations must satisfy the same contract.
enum class DiskKind { kMem, kFs };

class DiskContractTest : public ::testing::TestWithParam<DiskKind> {
 protected:
  void SetUp() override {
    if (GetParam() == DiskKind::kMem) {
      disk_ = std::make_unique<MemDisk>();
    } else {
      root_ = std::filesystem::temp_directory_path() /
              ("liquid_disk_test_" + std::to_string(::getpid()));
      std::filesystem::remove_all(root_);
      disk_ = std::make_unique<FsDisk>(root_.string());
    }
  }

  void TearDown() override {
    disk_.reset();
    if (GetParam() == DiskKind::kFs) std::filesystem::remove_all(root_);
  }

  std::unique_ptr<Disk> disk_;
  std::filesystem::path root_;
};

TEST_P(DiskContractTest, AppendAndReadBack) {
  auto file = disk_->OpenOrCreate("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  EXPECT_EQ((*file)->Size(), 11u);
  std::string out;
  ASSERT_TRUE((*file)->ReadAt(0, 11, &out).ok());
  EXPECT_EQ(out, "hello world");
}

TEST_P(DiskContractTest, ReadAtOffsetAndShortRead) {
  auto file = disk_->OpenOrCreate("f");
  LIQUID_ASSERT_OK((*file)->Append("abcdefgh"));
  std::string out;
  ASSERT_TRUE((*file)->ReadAt(4, 100, &out).ok());
  EXPECT_EQ(out, "efgh");  // Short read at EOF is not an error.
  ASSERT_TRUE((*file)->ReadAt(100, 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(DiskContractTest, TruncateDiscardsTail) {
  auto file = disk_->OpenOrCreate("f");
  LIQUID_ASSERT_OK((*file)->Append("0123456789"));
  ASSERT_TRUE((*file)->Truncate(4).ok());
  EXPECT_EQ((*file)->Size(), 4u);
  std::string out;
  LIQUID_ASSERT_OK((*file)->ReadAt(0, 10, &out));
  EXPECT_EQ(out, "0123");
}

TEST_P(DiskContractTest, ExistsRemoveList) {
  EXPECT_FALSE(disk_->Exists("a"));
  LIQUID_ASSERT_OK(disk_->OpenOrCreate("a"));
  LIQUID_ASSERT_OK(disk_->OpenOrCreate("ab"));
  LIQUID_ASSERT_OK(disk_->OpenOrCreate("b"));
  EXPECT_TRUE(disk_->Exists("a"));
  auto listed = disk_->List("a");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);
  ASSERT_TRUE(disk_->Remove("a").ok());
  EXPECT_FALSE(disk_->Exists("a"));
  EXPECT_TRUE(disk_->Remove("a").IsNotFound());
}

TEST_P(DiskContractTest, RenameMovesContent) {
  auto file = disk_->OpenOrCreate("old");
  LIQUID_ASSERT_OK((*file)->Append("payload"));
  file->reset();
  ASSERT_TRUE(disk_->Rename("old", "new").ok());
  EXPECT_FALSE(disk_->Exists("old"));
  auto renamed = disk_->OpenOrCreate("new");
  std::string out;
  LIQUID_ASSERT_OK((*renamed)->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "payload");
}

TEST_P(DiskContractTest, ReopenSeesSameBytes) {
  {
    auto file = disk_->OpenOrCreate("persist");
    LIQUID_ASSERT_OK((*file)->Append("durable"));
  }
  auto again = disk_->OpenOrCreate("persist");
  std::string out;
  LIQUID_ASSERT_OK((*again)->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "durable");
}

INSTANTIATE_TEST_SUITE_P(AllDisks, DiskContractTest,
                         ::testing::Values(DiskKind::kMem, DiskKind::kFs),
                         [](const auto& info) {
                           return info.param == DiskKind::kMem ? "Mem" : "Fs";
                         });

TEST(MemDiskTest, TracksIoCounters) {
  MemDisk disk;
  auto file = disk.OpenOrCreate("f");
  LIQUID_ASSERT_OK((*file)->Append("12345"));
  std::string out;
  LIQUID_ASSERT_OK((*file)->ReadAt(0, 5, &out));
  EXPECT_EQ(disk.bytes_written(), 5);
  EXPECT_EQ(disk.bytes_read(), 5);
  EXPECT_EQ(disk.read_ops(), 1);
}

TEST(MemDiskTest, LatencyModelChargesReads) {
  DiskLatencyModel model;
  model.read_seek_us = 200;
  MemDisk slow(model);
  MemDisk fast;
  auto sf = slow.OpenOrCreate("f");
  auto ff = fast.OpenOrCreate("f");
  LIQUID_ASSERT_OK((*sf)->Append(std::string(4096, 'x')));
  LIQUID_ASSERT_OK((*ff)->Append(std::string(4096, 'x')));

  auto time_reads = [](File* file) {
    const auto start = std::chrono::steady_clock::now();
    std::string out;
    for (int i = 0; i < 20; ++i) {
      LIQUID_EXPECT_OK(file->ReadAt(0, 4096, &out));
    }
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  const auto slow_us = time_reads(sf->get());
  const auto fast_us = time_reads(ff->get());
  EXPECT_GT(slow_us, fast_us);
  EXPECT_GE(slow_us, 20 * 200 / 2);  // At least half the nominal charge.
}

TEST(MemDiskTest, TotalBytesSumsPrefix) {
  MemDisk disk;
  LIQUID_ASSERT_OK((*disk.OpenOrCreate("logs/a"))->Append("12345"));
  LIQUID_ASSERT_OK((*disk.OpenOrCreate("logs/b"))->Append("123"));
  LIQUID_ASSERT_OK((*disk.OpenOrCreate("other"))->Append("1234567"));
  EXPECT_EQ(*disk.TotalBytes("logs/"), 8u);
  EXPECT_EQ(*disk.TotalBytes(""), 15u);
}

}  // namespace
}  // namespace liquid::storage
