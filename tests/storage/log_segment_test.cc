#include "storage/log_segment.h"

#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"

namespace liquid::storage {
namespace {

std::vector<Record> MakeRecords(int64_t base_offset, int count,
                                int64_t base_ts = 1000) {
  std::vector<Record> out;
  for (int i = 0; i < count; ++i) {
    Record r = Record::KeyValue("k" + std::to_string(base_offset + i),
                                "value-" + std::to_string(i), base_ts + i);
    r.offset = base_offset + i;
    out.push_back(std::move(r));
  }
  return out;
}

class LogSegmentTest : public ::testing::Test {
 protected:
  MemDisk disk_;
  LogSegment::Config config_{256};  // Small index interval to exercise it.
};

TEST_F(LogSegmentTest, AppendAndReadAll) {
  auto segment = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  ASSERT_TRUE(segment.ok());
  ASSERT_TRUE((*segment)->Append(MakeRecords(0, 50)).ok());
  EXPECT_EQ((*segment)->next_offset(), 50);

  std::vector<Record> out;
  ASSERT_TRUE((*segment)->Read(0, 1 << 20, &out).ok());
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[i].offset, i);
}

TEST_F(LogSegmentTest, ReadFromMiddle) {
  auto segment = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  LIQUID_ASSERT_OK((*segment)->Append(MakeRecords(0, 100)));
  std::vector<Record> out;
  ASSERT_TRUE((*segment)->Read(73, 1 << 20, &out).ok());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().offset, 73);
  EXPECT_EQ(out.back().offset, 99);
}

TEST_F(LogSegmentTest, MaxBytesLimitsBatchButReturnsAtLeastOne) {
  auto segment = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  LIQUID_ASSERT_OK((*segment)->Append(MakeRecords(0, 100)));
  std::vector<Record> out;
  ASSERT_TRUE((*segment)->Read(0, 1, &out).ok());
  EXPECT_EQ(out.size(), 1u);  // At least one even when max_bytes tiny.

  out.clear();
  ASSERT_TRUE((*segment)->Read(0, 200, &out).ok());
  EXPECT_LT(out.size(), 100u);  // Capped well below everything.
  EXPECT_GE(out.size(), 1u);
}

TEST_F(LogSegmentTest, NonZeroBaseOffset) {
  auto segment = LogSegment::Open(&disk_, nullptr, "t/", 1000, config_);
  ASSERT_TRUE((*segment)->Append(MakeRecords(1000, 10)).ok());
  EXPECT_EQ((*segment)->base_offset(), 1000);
  EXPECT_EQ((*segment)->next_offset(), 1010);
  std::vector<Record> out;
  LIQUID_ASSERT_OK((*segment)->Read(1005, 1 << 20, &out));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.front().offset, 1005);
}

TEST_F(LogSegmentTest, RejectsNonMonotonicAppend) {
  auto segment = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  LIQUID_ASSERT_OK((*segment)->Append(MakeRecords(0, 10)));
  EXPECT_TRUE((*segment)->Append(MakeRecords(5, 3)).IsInvalidArgument());
}

TEST_F(LogSegmentTest, OffsetGapsAreLegal) {
  // Compaction produces gaps: offsets 0, 5, 9.
  auto segment = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  std::vector<Record> sparse;
  for (int64_t offset : {0, 5, 9}) {
    Record r = Record::KeyValue("k", "v", 100 + offset);
    r.offset = offset;
    sparse.push_back(r);
  }
  ASSERT_TRUE((*segment)->Append(sparse).ok());
  EXPECT_EQ((*segment)->next_offset(), 10);

  // A read from inside a gap returns the next real record.
  std::vector<Record> out;
  ASSERT_TRUE((*segment)->Read(3, 1 << 20, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].offset, 5);
  EXPECT_EQ(out[1].offset, 9);
}

TEST_F(LogSegmentTest, RecoverRebuildsStateFromDisk) {
  LIQUID_ASSERT_OK((*LogSegment::Open(&disk_, nullptr, "t/", 0, config_))
      ->Append(MakeRecords(0, 40)));
  // Reopen: Recover() scans the file.
  auto reopened = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->next_offset(), 40);
  std::vector<Record> out;
  LIQUID_ASSERT_OK((*reopened)->Read(20, 1 << 20, &out));
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(out.front().offset, 20);
}

TEST_F(LogSegmentTest, RecoverTruncatesCorruptTail) {
  {
    auto segment = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
    LIQUID_ASSERT_OK((*segment)->Append(MakeRecords(0, 10)));
  }
  // Simulate a torn write: append garbage to the raw file.
  {
    auto file = disk_.OpenOrCreate("t/00000000000000000000.log");
    LIQUID_ASSERT_OK((*file)->Append("garbage-that-is-not-a-record"));
  }
  auto reopened = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->next_offset(), 10);  // Garbage dropped.
  std::vector<Record> out;
  LIQUID_ASSERT_OK((*reopened)->Read(0, 1 << 20, &out));
  EXPECT_EQ(out.size(), 10u);

  // The file itself was truncated back to the last intact record.
  auto file = disk_.OpenOrCreate("t/00000000000000000000.log");
  EXPECT_EQ((*file)->Size(), (*reopened)->size_bytes());
}

TEST_F(LogSegmentTest, BitFlippedRecordSurfacesAsCorruptionOnRead) {
  auto segment = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  LIQUID_ASSERT_OK((*segment)->Append(MakeRecords(0, 10)));

  // Flip one bit inside the first record's body (past the 4-byte length and
  // 4-byte CRC header) on the shared in-memory file. The already-open segment
  // sees it on the next read and must report Corruption, not return bad data.
  auto file = disk_.OpenOrCreate((*segment)->file_name());
  std::string bytes;
  LIQUID_ASSERT_OK((*file)->ReadAt(0, (*file)->Size(), &bytes));
  bytes[10] ^= 0x01;
  LIQUID_ASSERT_OK((*file)->Truncate(0));
  LIQUID_ASSERT_OK((*file)->Append(bytes));

  std::vector<Record> out;
  const Status read = (*segment)->Read(0, 1 << 20, &out);
  EXPECT_TRUE(read.IsCorruption()) << read.ToString();
}

TEST_F(LogSegmentTest, OffsetForTimestampFindsFirstAtOrAfter) {
  auto segment = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  LIQUID_ASSERT_OK((*segment)->Append(MakeRecords(0, 100, 5000)));  // ts 5000..5099.
  EXPECT_EQ(*(*segment)->OffsetForTimestamp(5000), 0);
  EXPECT_EQ(*(*segment)->OffsetForTimestamp(5050), 50);
  EXPECT_EQ(*(*segment)->OffsetForTimestamp(4000), 0);
  EXPECT_TRUE((*segment)->OffsetForTimestamp(6000).status().IsNotFound());
}

TEST_F(LogSegmentTest, DropRemovesFile) {
  auto segment = LogSegment::Open(&disk_, nullptr, "t/", 0, config_);
  LIQUID_ASSERT_OK((*segment)->Append(MakeRecords(0, 5)));
  const std::string name = (*segment)->file_name();
  EXPECT_TRUE(disk_.Exists(name));
  ASSERT_TRUE((*segment)->Drop().ok());
  EXPECT_FALSE(disk_.Exists(name));
}

class IndexIntervalTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IndexIntervalTest, ReadsCorrectAtAnyIndexGranularity) {
  MemDisk disk;
  LogSegment::Config config{GetParam()};
  auto segment = LogSegment::Open(&disk, nullptr, "t/", 0, config);
  LIQUID_ASSERT_OK((*segment)->Append(MakeRecords(0, 200)));
  for (int64_t from : {0, 1, 50, 123, 199}) {
    std::vector<Record> out;
    ASSERT_TRUE((*segment)->Read(from, 1 << 20, &out).ok());
    ASSERT_EQ(out.size(), static_cast<size_t>(200 - from)) << "from=" << from;
    EXPECT_EQ(out.front().offset, from);
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, IndexIntervalTest,
                         ::testing::Values(size_t{0}, size_t{64}, size_t{4096},
                                           size_t{1} << 30));

}  // namespace
}  // namespace liquid::storage
