#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/clock.h"
#include "common/random.h"
#include "storage/disk.h"
#include "storage/log.h"

namespace liquid::storage {
namespace {

/// Randomized model test of the commit log: arbitrary interleavings of
/// appends, truncations, retention passes, compactions and reopens must
/// preserve:
///   L1. offsets are unique and strictly increasing in every read;
///   L2. the materialized view (latest record per key) survives compaction;
///   L3. unkeyed records in the retained range are never dropped by
///       compaction;
///   L4. reopening from disk reproduces exactly the same readable content;
///   L5. start_offset <= every served offset < end_offset.
class LogPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::vector<Record> ReadAll(Log* log) {
  std::vector<Record> out;
  int64_t cursor = log->start_offset();
  while (cursor < log->end_offset()) {
    std::vector<Record> chunk;
    EXPECT_TRUE(log->Read(cursor, 1 << 20, &chunk).ok());
    if (chunk.empty()) break;
    out.insert(out.end(), chunk.begin(), chunk.end());
    cursor = chunk.back().offset + 1;
  }
  return out;
}

TEST_P(LogPropertyTest, ModelInvariantsHoldUnderRandomOps) {
  MemDisk disk;
  SimulatedClock clock(1000);
  LogConfig config;
  config.segment_bytes = 2048;
  config.compaction_enabled = true;
  config.retention_ms = 1'000'000;

  auto log_result = Log::Open(&disk, nullptr, "p/", config, &clock);
  ASSERT_TRUE(log_result.ok());
  std::unique_ptr<Log> log = std::move(log_result).value();

  Random rng(GetParam());
  // Reference: latest (offset, value, tombstone) per key.
  std::map<std::string, std::pair<int64_t, std::string>> latest_per_key;
  std::map<int64_t, std::string> unkeyed;  // offset -> value.

  for (int step = 0; step < 300; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.60) {
      // Append a small batch (mixed keyed/unkeyed).
      std::vector<Record> batch;
      const int n = 1 + static_cast<int>(rng.Uniform(8));
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.8)) {
          batch.push_back(
              Record::KeyValue("key" + std::to_string(rng.Uniform(20)),
                               rng.Bytes(24)));
        } else {
          batch.push_back(Record::ValueOnly(rng.Bytes(24)));
        }
      }
      auto base = log->Append(&batch);
      ASSERT_TRUE(base.ok());
      for (const Record& record : batch) {
        if (record.has_key) {
          latest_per_key[record.key] = {record.offset, record.value};
        } else {
          unkeyed[record.offset] = record.value;
        }
      }
      clock.AdvanceMs(10);
    } else if (dice < 0.75) {
      auto stats = log->Compact();
      ASSERT_TRUE(stats.ok());
    } else if (dice < 0.85) {
      // Truncate the tail.
      const int64_t end = log->end_offset();
      if (end == 0) continue;
      const int64_t to = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(end) + 1));
      ASSERT_TRUE(log->Truncate(to).ok());
      // Update the model: everything >= `to` is gone.
      for (auto it = latest_per_key.begin(); it != latest_per_key.end();) {
        if (it->second.first >= to) {
          it = latest_per_key.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = unkeyed.begin(); it != unkeyed.end();) {
        if (it->first >= to) it = unkeyed.erase(it);
        else ++it;
      }
    } else {
      // Reopen from disk (crash + restart).
      log.reset();
      auto reopened = Log::Open(&disk, nullptr, "p/", config, &clock);
      ASSERT_TRUE(reopened.ok());
      log = std::move(reopened).value();
    }

    if (step % 37 != 0) continue;  // Full validation periodically.
    const auto all = ReadAll(log.get());
    // L1, L5.
    for (size_t i = 0; i < all.size(); ++i) {
      if (i > 0) {
        ASSERT_GT(all[i].offset, all[i - 1].offset);
      }
      ASSERT_GE(all[i].offset, log->start_offset());
      ASSERT_LT(all[i].offset, log->end_offset());
    }
    // L2: latest value per key matches the model.
    std::map<std::string, std::pair<int64_t, std::string>> seen;
    std::map<int64_t, std::string> seen_unkeyed;
    for (const Record& record : all) {
      if (record.has_key) {
        seen[record.key] = {record.offset, record.value};
      } else {
        seen_unkeyed[record.offset] = record.value;
      }
    }
    for (const auto& [key, expected] : latest_per_key) {
      auto it = seen.find(key);
      ASSERT_TRUE(it != seen.end()) << "lost key " << key;
      EXPECT_EQ(it->second.first, expected.first) << key;
      EXPECT_EQ(it->second.second, expected.second) << key;
    }
    // L3: every unkeyed record still present.
    for (const auto& [offset, value] : unkeyed) {
      auto it = seen_unkeyed.find(offset);
      ASSERT_TRUE(it != seen_unkeyed.end()) << "lost unkeyed @" << offset;
      EXPECT_EQ(it->second, value);
    }
  }

  // L4: final reopen reproduces identical content.
  const auto before = ReadAll(log.get());
  log.reset();
  auto reopened = Log::Open(&disk, nullptr, "p/", config, &clock);
  ASSERT_TRUE(reopened.ok());
  const auto after = ReadAll(reopened->get());
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].offset, after[i].offset);
    EXPECT_EQ(before[i].key, after[i].key);
    EXPECT_EQ(before[i].value, after[i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogPropertyTest,
                         ::testing::Values(3ull, 17ull, 99ull, 2024ull,
                                           777777ull, 123456789ull));

}  // namespace
}  // namespace liquid::storage
