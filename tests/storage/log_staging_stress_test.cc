// TSan stress for the lock-free staging ring (DESIGN.md §5a): N producers
// (async with client-side retry, and synchronous awaiting durability) race
// the drainer thread, zero-copy readers pinning cache pages, retention-churn
// gate close/reopen cycles, AwaitDurable waiters, and Stop/restart churn
// (each phase destroys the log and reopens it over the same disk). Run under
// -fsanitize=thread by scripts/check.sh; the assertions are secondary to the
// data-race detection.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "storage/disk.h"
#include "storage/log.h"
#include "storage/page_cache.h"
#include "storage/record_batch.h"

#include "test_util.h"

namespace liquid::storage {
namespace {

TEST(LogStagingStressTest, ProducersRaceDrainerMutatorsAndRestarts) {
  MemDisk disk;
  SimulatedClock clock(1000);
  // Small pages and capacity so eviction and copy-on-extend fire constantly
  // under the readers' pins.
  PageCacheConfig cache_config;
  cache_config.page_size = 512;
  cache_config.capacity_bytes = 16 << 10;
  cache_config.flush_after_ms = 0;
  PageCache cache(cache_config, &clock);

  LogConfig config;
  config.segment_bytes = 32 << 10;  // Roll segments mid-run too.
  config.sync_mode = SyncMode::kGroup;
  config.staging = Staging::kRing;
  config.staging_capacity = 64;  // Small: backpressure fires under load.

  constexpr int kPhases = 3;  // Stop/restart churn: reopen over the same disk.
  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 60;
  constexpr int kRecordsPerBatch = 5;
  int64_t produced_total = 0;

  for (int phase = 0; phase < kPhases; ++phase) {
    auto opened = Log::Open(&disk, &cache, "sgstress/", config, &clock);
    LIQUID_ASSERT_OK(opened.status());
    std::unique_ptr<Log> log = std::move(opened).value();
    const int64_t phase_base = log->end_offset();
    ASSERT_EQ(phase_base, produced_total);

    std::atomic<bool> stop{false};
    std::atomic<int64_t> accepted_records{0};
    std::vector<std::thread> threads;

    // Producers: even ids drive the async broker-produce path (publish,
    // retry on ResourceExhausted backpressure, AwaitAppended); odd ids stay
    // synchronous and await group durability — both flavors race the same
    // ring.
    for (int t = 0; t < kProducers; ++t) {
      threads.emplace_back([&, t] {
        const bool async = (t % 2) == 0;
        for (int i = 0; i < kBatchesPerProducer; ++i) {
          std::vector<Record> batch;
          for (int r = 0; r < kRecordsPerBatch; ++r) {
            batch.push_back(Record::KeyValue(
                "k" + std::to_string(t) + "-" + std::to_string(i),
                std::string(64, 'v')));
          }
          AppendOptions options;
          options.async_stage = async;
          options.await_durability = !async;
          for (;;) {
            auto copy = batch;
            auto result = log->AppendBatch(&copy, options);
            if (result.ok()) {
              if (async) {
                const int64_t base = result->base_offset();
                Status appended =
                    log->AwaitAppended(base, base + kRecordsPerBatch);
                ASSERT_TRUE(appended.ok()) << appended.ToString();
              }
              accepted_records.fetch_add(kRecordsPerBatch);
              break;
            }
            // The client-side throttle convention: back off and retry.
            ASSERT_TRUE(result.status().IsResourceExhausted())
                << result.status().ToString();
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          }
        }
      });
    }

    // Zero-copy reader: decodes whatever frames the pinned/copied read
    // returns while the drainer extends segments and eviction churns.
    threads.emplace_back([&] {
      int64_t cursor = 0;
      while (!stop.load(std::memory_order_acquire)) {
        EncodedBatch out;
        Status st = log->ReadEncoded(cursor, 8 << 10, &out);
        if (st.ok() && !out.empty()) {
          std::vector<Record> decoded;
          ASSERT_TRUE(out.DecodeAll(&decoded).ok());
          ASSERT_EQ(decoded.front().offset, out.base_offset());
          cursor = out.last_offset() + 1;
        } else {
          cursor = 0;  // Wrap and rescan from the head.
        }
      }
    });

    // Retention churn: retention_ms stays -1 so nothing is deleted, but
    // every call closes the claim gate, drains the ring, and reopens it —
    // the mutator handshake under full producer fire.
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto deleted = log->ApplyRetention();
        ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    // AwaitDurable waiter: chases the moving end offset, exercising the
    // durable_cv_ wait/signal path concurrently with the drainer's group
    // windows.
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const int64_t end = log->end_offset();
        if (end > 0) {
          Status st = log->AwaitDurable(end);
          ASSERT_TRUE(st.ok()) << st.ToString();
          ASSERT_GE(log->durable_offset(), end);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    for (int t = 0; t < kProducers; ++t) threads[t].join();
    stop.store(true, std::memory_order_release);
    for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

    produced_total += kProducers * kBatchesPerProducer * kRecordsPerBatch;
    EXPECT_EQ(accepted_records.load(),
              kProducers * kBatchesPerProducer * kRecordsPerBatch);

    // A final synchronous awaited append proves the pipeline is quiescent
    // and durable before the phase's destructor (Stop) runs.
    std::vector<Record> fin{Record::KeyValue("phase", std::to_string(phase))};
    AppendOptions awaited;
    awaited.await_durability = true;
    LIQUID_ASSERT_OK(log->AppendBatch(&fin, awaited).status());
    ++produced_total;
    EXPECT_EQ(log->end_offset(), produced_total);
    EXPECT_EQ(log->durable_offset(), produced_total);
  }

  EXPECT_GE(disk.sync_ops(), kPhases);
}

}  // namespace
}  // namespace liquid::storage
