#include "storage/page_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"

#include "test_util.h"

namespace liquid::storage {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheConfig SmallConfig() {
    PageCacheConfig config;
    config.page_size = 128;
    config.capacity_bytes = 1024;  // 8 pages.
    config.flush_after_ms = 100;
    config.readahead_pages = 2;
    return config;
  }

  MemDisk disk_;
  SimulatedClock clock_{0};
};

TEST_F(PageCacheTest, AppendPopulatesCacheSoTailReadsAreHits) {
  PageCache cache(SmallConfig(), &clock_);
  auto base = disk_.OpenOrCreate("f");
  CachedFile file(std::move(base).value(), &cache);
  LIQUID_ASSERT_OK(file.Append(std::string(256, 'a')));

  std::string out;
  ASSERT_TRUE(file.ReadAt(0, 256, &out).ok());
  EXPECT_EQ(out, std::string(256, 'a'));
  EXPECT_EQ(cache.misses(), 0);  // Served entirely from the write path.
  EXPECT_GT(cache.hits(), 0);
  EXPECT_EQ(disk_.read_ops(), 0);  // Never touched the disk for reads.
}

TEST_F(PageCacheTest, ColdReadMissesThenHits) {
  PageCache cache(SmallConfig(), &clock_);
  // Write the file directly (bypassing the cache): a pre-existing cold log.
  {
    auto raw = disk_.OpenOrCreate("f");
    LIQUID_ASSERT_OK((*raw)->Append(std::string(512, 'b')));
  }
  auto base = disk_.OpenOrCreate("f");
  CachedFile file(std::move(base).value(), &cache);

  std::string out;
  ASSERT_TRUE(file.ReadAt(0, 128, &out).ok());
  EXPECT_EQ(cache.misses(), 1);
  const int64_t disk_reads_after_first = disk_.read_ops();
  EXPECT_GT(disk_reads_after_first, 0);

  // Same page again: hit, no disk.
  ASSERT_TRUE(file.ReadAt(0, 128, &out).ok());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(disk_.read_ops(), disk_reads_after_first);
}

TEST_F(PageCacheTest, ReadAheadWarmsFollowingPages) {
  auto config = SmallConfig();
  config.readahead_pages = 4;
  PageCache cache(config, &clock_);
  {
    auto raw = disk_.OpenOrCreate("f");
    LIQUID_ASSERT_OK((*raw)->Append(std::string(1024, 'c')));
  }
  auto base = disk_.OpenOrCreate("f");
  CachedFile file(std::move(base).value(), &cache);

  std::string out;
  LIQUID_ASSERT_OK(file.ReadAt(0, 128, &out));  // Miss; prefetches pages 0..3.
  EXPECT_EQ(cache.misses(), 1);
  LIQUID_ASSERT_OK(file.ReadAt(128, 128, &out));  // Prefetched: hit.
  LIQUID_ASSERT_OK(file.ReadAt(256, 128, &out));
  LIQUID_ASSERT_OK(file.ReadAt(384, 128, &out));
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_GE(cache.hits(), 3);
}

TEST_F(PageCacheTest, EvictionKeepsCapacityBounded) {
  PageCache cache(SmallConfig(), &clock_);
  auto base = disk_.OpenOrCreate("f");
  CachedFile file(std::move(base).value(), &cache);
  clock_.SetMs(0);
  LIQUID_ASSERT_OK(file.Append(std::string(4096, 'd')));  // 32 pages >> 8-page capacity.
  clock_.AdvanceMs(1000);               // Everything flushed (evictable).
  LIQUID_ASSERT_OK(file.Append(std::string(512, 'e')));   // Forces eviction passes.
  EXPECT_LE(cache.bytes_cached(), 1024u + 128u);
  EXPECT_GT(cache.evictions(), 0);
}

TEST_F(PageCacheTest, DirtyHeadProtectedUntilFlushTimeout) {
  auto config = SmallConfig();
  config.capacity_bytes = 512;  // 4 pages.
  PageCache cache(config, &clock_);
  {
    auto raw = disk_.OpenOrCreate("f");
    LIQUID_ASSERT_OK((*raw)->Append(std::string(2048, 'x')));  // Cold data on disk.
  }
  auto base = disk_.OpenOrCreate("f");
  CachedFile file(std::move(base).value(), &cache);

  // Freshly appended pages (dirty, within flush window).
  clock_.SetMs(10);
  LIQUID_ASSERT_OK(file.Append(std::string(256, 'h')));  // Pages 16,17 dirty.

  // Reading cold pages evicts clean pages first, not the dirty head.
  std::string out;
  for (int p = 0; p < 8; ++p) {
    LIQUID_ASSERT_OK(file.ReadAt(p * 128, 128, &out));
  }

  // The fresh head must still be a hit (was not evicted).
  const int64_t misses_before = cache.misses();
  LIQUID_ASSERT_OK(file.ReadAt(2048, 128, &out));
  EXPECT_EQ(out, std::string(128, 'h'));
  EXPECT_EQ(cache.misses(), misses_before);
}

TEST_F(PageCacheTest, ForcedEvictionWhenAllDirty) {
  auto config = SmallConfig();
  config.capacity_bytes = 256;  // 2 pages.
  config.flush_after_ms = 1000000;  // Nothing ever flushes on its own.
  PageCache cache(config, &clock_);
  auto base = disk_.OpenOrCreate("f");
  CachedFile file(std::move(base).value(), &cache);
  LIQUID_ASSERT_OK(file.Append(std::string(1024, 'z')));  // 8 dirty pages, capacity 2.
  EXPECT_GT(cache.forced_evictions(), 0);
  EXPECT_LE(cache.bytes_cached(), 256u + 128u);
}

TEST_F(PageCacheTest, TruncateInvalidatesCachedPages) {
  PageCache cache(SmallConfig(), &clock_);
  auto base = disk_.OpenOrCreate("f");
  CachedFile file(std::move(base).value(), &cache);
  LIQUID_ASSERT_OK(file.Append(std::string(256, 'a')));
  ASSERT_TRUE(file.Truncate(0).ok());
  LIQUID_ASSERT_OK(file.Append(std::string(256, 'b')));
  std::string out;
  LIQUID_ASSERT_OK(file.ReadAt(0, 256, &out));
  EXPECT_EQ(out, std::string(256, 'b'));  // No stale 'a' pages.
}

TEST_F(PageCacheTest, ReadAcrossPageBoundary) {
  PageCache cache(SmallConfig(), &clock_);
  auto base = disk_.OpenOrCreate("f");
  CachedFile file(std::move(base).value(), &cache);
  std::string data;
  for (int i = 0; i < 512; ++i) data.push_back(static_cast<char>('a' + i % 26));
  LIQUID_ASSERT_OK(file.Append(data));
  std::string out;
  ASSERT_TRUE(file.ReadAt(100, 200, &out).ok());
  EXPECT_EQ(out, data.substr(100, 200));
}

TEST_F(PageCacheTest, PartialTailPageReadable) {
  PageCache cache(SmallConfig(), &clock_);
  auto base = disk_.OpenOrCreate("f");
  CachedFile file(std::move(base).value(), &cache);
  LIQUID_ASSERT_OK(file.Append("short"));  // 5 bytes, far below one page.
  std::string out;
  ASSERT_TRUE(file.ReadAt(0, 128, &out).ok());
  EXPECT_EQ(out, "short");
}

TEST_F(PageCacheTest, MultipleFilesDoNotCollide) {
  PageCache cache(SmallConfig(), &clock_);
  auto f1 = disk_.OpenOrCreate("f1");
  auto f2 = disk_.OpenOrCreate("f2");
  CachedFile a(std::move(f1).value(), &cache);
  CachedFile b(std::move(f2).value(), &cache);
  LIQUID_ASSERT_OK(a.Append(std::string(128, 'A')));
  LIQUID_ASSERT_OK(b.Append(std::string(128, 'B')));
  std::string out;
  LIQUID_ASSERT_OK(a.ReadAt(0, 128, &out));
  EXPECT_EQ(out, std::string(128, 'A'));
  LIQUID_ASSERT_OK(b.ReadAt(0, 128, &out));
  EXPECT_EQ(out, std::string(128, 'B'));
}

}  // namespace
}  // namespace liquid::storage
