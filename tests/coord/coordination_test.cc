#include "coord/coordination_service.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"

namespace liquid::coord {
namespace {

class CoordinationTest : public ::testing::Test {
 protected:
  CoordinationService coord_;
};

TEST_F(CoordinationTest, CreateGetSetDelete) {
  const int64_t session = coord_.CreateSession();
  ASSERT_TRUE(coord_.Create(session, "/a", "v1", NodeKind::kPersistent).ok());
  EXPECT_EQ(*coord_.Get("/a"), "v1");
  ASSERT_TRUE(coord_.Set("/a", "v2").ok());
  EXPECT_EQ(*coord_.Get("/a"), "v2");
  ASSERT_TRUE(coord_.Delete("/a").ok());
  EXPECT_TRUE(coord_.Get("/a").status().IsNotFound());
}

TEST_F(CoordinationTest, CreateRequiresParent) {
  const int64_t session = coord_.CreateSession();
  EXPECT_TRUE(
      coord_.Create(session, "/a/b", "", NodeKind::kPersistent).status().IsNotFound());
  ASSERT_TRUE(coord_.Create(session, "/a", "", NodeKind::kPersistent).ok());
  EXPECT_TRUE(coord_.Create(session, "/a/b", "", NodeKind::kPersistent).ok());
}

TEST_F(CoordinationTest, CreateDuplicateFails) {
  const int64_t session = coord_.CreateSession();
  ASSERT_TRUE(coord_.Create(session, "/a", "", NodeKind::kPersistent).ok());
  EXPECT_TRUE(coord_.Create(session, "/a", "", NodeKind::kPersistent)
                  .status()
                  .IsAlreadyExists());
}

TEST_F(CoordinationTest, InvalidPathsRejected) {
  const int64_t session = coord_.CreateSession();
  EXPECT_TRUE(coord_.Create(session, "no-slash", "", NodeKind::kPersistent)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(coord_.Create(session, "/trailing/", "", NodeKind::kPersistent)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(coord_.Create(session, "//double", "", NodeKind::kPersistent)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CoordinationTest, VersionedSetAndDelete) {
  const int64_t session = coord_.CreateSession();
  ASSERT_TRUE(coord_.Create(session, "/a", "v0", NodeKind::kPersistent).ok());
  EXPECT_EQ(coord_.Stat("/a")->version, 0);
  ASSERT_TRUE(coord_.Set("/a", "v1", 0).ok());
  EXPECT_EQ(coord_.Stat("/a")->version, 1);
  // Stale expected version fails.
  EXPECT_TRUE(coord_.Set("/a", "v2", 0).IsFailedPrecondition());
  EXPECT_TRUE(coord_.Delete("/a", 0).IsFailedPrecondition());
  EXPECT_TRUE(coord_.Delete("/a", 1).ok());
}

TEST_F(CoordinationTest, DeleteWithChildrenFails) {
  const int64_t session = coord_.CreateSession();
  LIQUID_ASSERT_OK(coord_.Create(session, "/a", "", NodeKind::kPersistent));
  LIQUID_ASSERT_OK(coord_.Create(session, "/a/b", "", NodeKind::kPersistent));
  EXPECT_TRUE(coord_.Delete("/a").IsFailedPrecondition());
  ASSERT_TRUE(coord_.Delete("/a/b").ok());
  EXPECT_TRUE(coord_.Delete("/a").ok());
}

TEST_F(CoordinationTest, GetChildrenSorted) {
  const int64_t session = coord_.CreateSession();
  LIQUID_ASSERT_OK(coord_.Create(session, "/parent", "", NodeKind::kPersistent));
  LIQUID_ASSERT_OK(coord_.Create(session, "/parent/c", "", NodeKind::kPersistent));
  LIQUID_ASSERT_OK(coord_.Create(session, "/parent/a", "", NodeKind::kPersistent));
  LIQUID_ASSERT_OK(coord_.Create(session, "/parent/b", "", NodeKind::kPersistent));
  auto children = coord_.GetChildren("/parent");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(CoordinationTest, EphemeralNodesDieWithSession) {
  const int64_t s1 = coord_.CreateSession();
  const int64_t s2 = coord_.CreateSession();
  LIQUID_ASSERT_OK(coord_.Create(s1, "/e1", "", NodeKind::kEphemeral));
  LIQUID_ASSERT_OK(coord_.Create(s2, "/e2", "", NodeKind::kEphemeral));
  LIQUID_ASSERT_OK(coord_.Create(s1, "/p", "", NodeKind::kPersistent));
  coord_.CloseSession(s1);
  EXPECT_FALSE(coord_.Exists("/e1"));
  EXPECT_TRUE(coord_.Exists("/e2"));
  EXPECT_TRUE(coord_.Exists("/p"));  // Persistent nodes survive.
}

TEST_F(CoordinationTest, EphemeralCannotHaveChildren) {
  const int64_t session = coord_.CreateSession();
  LIQUID_ASSERT_OK(coord_.Create(session, "/e", "", NodeKind::kEphemeral));
  EXPECT_TRUE(coord_.Create(session, "/e/child", "", NodeKind::kPersistent)
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(CoordinationTest, ExpiredSessionCannotCreate) {
  const int64_t session = coord_.CreateSession();
  coord_.ExpireSession(session);
  EXPECT_FALSE(coord_.SessionAlive(session));
  EXPECT_TRUE(coord_.Create(session, "/x", "", NodeKind::kPersistent)
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(CoordinationTest, SequentialNodesGetIncreasingSuffixes) {
  const int64_t session = coord_.CreateSession();
  LIQUID_ASSERT_OK(coord_.Create(session, "/q", "", NodeKind::kPersistent));
  auto a = coord_.Create(session, "/q/n", "", NodeKind::kPersistentSequential);
  auto b = coord_.Create(session, "/q/n", "", NodeKind::kPersistentSequential);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_LT(*a, *b);  // Zero-padded suffixes sort in creation order.
  EXPECT_EQ(*a, "/q/n0000000000");
}

TEST_F(CoordinationTest, DataWatchFiresOnceOnChange) {
  const int64_t session = coord_.CreateSession();
  LIQUID_ASSERT_OK(coord_.Create(session, "/w", "v0", NodeKind::kPersistent));
  int fires = 0;
  ASSERT_TRUE(coord_
                  .Get("/w",
                       [&fires](const WatchEvent& event) {
                         EXPECT_EQ(event.type, EventType::kDataChanged);
                         EXPECT_EQ(event.path, "/w");
                         ++fires;
                       })
                  .ok());
  LIQUID_ASSERT_OK(coord_.Set("/w", "v1"));
  LIQUID_ASSERT_OK(coord_.Set("/w", "v2"));  // One-shot: second change does not fire.
  EXPECT_EQ(fires, 1);
}

TEST_F(CoordinationTest, DataWatchFiresOnDelete) {
  const int64_t session = coord_.CreateSession();
  LIQUID_ASSERT_OK(coord_.Create(session, "/w", "", NodeKind::kPersistent));
  EventType seen = EventType::kCreated;
  LIQUID_ASSERT_OK(coord_.Get("/w", [&seen](const WatchEvent& event) { seen = event.type; }));
  LIQUID_ASSERT_OK(coord_.Delete("/w"));
  EXPECT_EQ(seen, EventType::kDeleted);
}

TEST_F(CoordinationTest, ChildWatchFiresOnCreateAndDelete) {
  const int64_t session = coord_.CreateSession();
  LIQUID_ASSERT_OK(coord_.Create(session, "/parent", "", NodeKind::kPersistent));
  int fires = 0;
  LIQUID_ASSERT_OK(coord_.GetChildren("/parent", [&fires](const WatchEvent&) { ++fires; }));
  LIQUID_ASSERT_OK(coord_.Create(session, "/parent/a", "", NodeKind::kPersistent));
  EXPECT_EQ(fires, 1);
  LIQUID_ASSERT_OK(coord_.GetChildren("/parent", [&fires](const WatchEvent&) { ++fires; }));
  LIQUID_ASSERT_OK(coord_.Delete("/parent/a"));
  EXPECT_EQ(fires, 2);
}

TEST_F(CoordinationTest, ExistsWatchOnAbsentNodeFiresOnCreation) {
  const int64_t session = coord_.CreateSession();
  bool fired = false;
  EXPECT_FALSE(coord_.Exists("/future", [&fired](const WatchEvent& event) {
    EXPECT_EQ(event.type, EventType::kCreated);
    fired = true;
  }));
  LIQUID_ASSERT_OK(coord_.Create(session, "/future", "", NodeKind::kPersistent));
  EXPECT_TRUE(fired);
}

TEST_F(CoordinationTest, SessionExpiryFiresWatches) {
  const int64_t owner = coord_.CreateSession();
  LIQUID_ASSERT_OK(coord_.Create(owner, "/lock", "", NodeKind::kEphemeral));
  bool fired = false;
  LIQUID_ASSERT_OK(coord_.Get("/lock", [&fired](const WatchEvent& event) {
    fired = event.type == EventType::kDeleted;
  }));
  coord_.ExpireSession(owner);
  EXPECT_TRUE(fired);
}

TEST_F(CoordinationTest, NodeCountTracksTree) {
  const int64_t session = coord_.CreateSession();
  EXPECT_EQ(coord_.NodeCount(), 0u);
  LIQUID_ASSERT_OK(coord_.Create(session, "/a", "", NodeKind::kPersistent));
  LIQUID_ASSERT_OK(coord_.Create(session, "/a/b", "", NodeKind::kPersistent));
  EXPECT_EQ(coord_.NodeCount(), 2u);
  LIQUID_ASSERT_OK(coord_.Delete("/a/b"));
  EXPECT_EQ(coord_.NodeCount(), 1u);
}

}  // namespace
}  // namespace liquid::coord
