#include "coord/leader_election.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace liquid::coord {
namespace {

TEST(LeaderElectionTest, FirstContenderWins) {
  CoordinationService coord;
  const int64_t session = coord.CreateSession();
  LeaderElection election(&coord, "/controller", "node-1", session);
  EXPECT_TRUE(election.Contend(nullptr));
  EXPECT_TRUE(election.IsLeader());
  EXPECT_EQ(*election.CurrentLeader(), "node-1");
}

TEST(LeaderElectionTest, SecondContenderWaits) {
  CoordinationService coord;
  const int64_t s1 = coord.CreateSession();
  const int64_t s2 = coord.CreateSession();
  LeaderElection first(&coord, "/controller", "node-1", s1);
  LeaderElection second(&coord, "/controller", "node-2", s2);
  ASSERT_TRUE(first.Contend(nullptr));
  EXPECT_FALSE(second.Contend(nullptr));
  EXPECT_FALSE(second.IsLeader());
  EXPECT_EQ(*second.CurrentLeader(), "node-1");
}

TEST(LeaderElectionTest, FailoverOnSessionExpiry) {
  CoordinationService coord;
  const int64_t s1 = coord.CreateSession();
  const int64_t s2 = coord.CreateSession();
  LeaderElection first(&coord, "/controller", "node-1", s1);
  LeaderElection second(&coord, "/controller", "node-2", s2);
  ASSERT_TRUE(first.Contend(nullptr));
  bool elected = false;
  second.Contend([&elected] { elected = true; });
  coord.ExpireSession(s1);  // Leader crashes.
  EXPECT_TRUE(elected);
  EXPECT_TRUE(second.IsLeader());
  EXPECT_EQ(*second.CurrentLeader(), "node-2");
}

TEST(LeaderElectionTest, ResignHandsOver) {
  CoordinationService coord;
  const int64_t s1 = coord.CreateSession();
  const int64_t s2 = coord.CreateSession();
  LeaderElection first(&coord, "/controller", "node-1", s1);
  LeaderElection second(&coord, "/controller", "node-2", s2);
  ASSERT_TRUE(first.Contend(nullptr));
  second.Contend(nullptr);
  first.Resign();
  EXPECT_FALSE(first.IsLeader());
  EXPECT_TRUE(second.IsLeader());
}

TEST(LeaderElectionTest, ResignedCandidateDoesNotRecontend) {
  CoordinationService coord;
  const int64_t s1 = coord.CreateSession();
  const int64_t s2 = coord.CreateSession();
  LeaderElection first(&coord, "/controller", "node-1", s1);
  LeaderElection second(&coord, "/controller", "node-2", s2);
  ASSERT_TRUE(first.Contend(nullptr));
  second.Contend(nullptr);
  second.Resign();  // Gives up while waiting.
  first.Resign();
  EXPECT_FALSE(second.IsLeader());
  EXPECT_TRUE(first.CurrentLeader().status().IsNotFound());
}

TEST(LeaderElectionTest, ThreeWayChain) {
  CoordinationService coord;
  std::vector<int64_t> sessions;
  std::vector<std::unique_ptr<LeaderElection>> elections;
  for (int i = 0; i < 3; ++i) {
    sessions.push_back(coord.CreateSession());
    elections.push_back(std::make_unique<LeaderElection>(
        &coord, "/controller", "node-" + std::to_string(i), sessions[i]));
    elections[i]->Contend(nullptr);
  }
  EXPECT_TRUE(elections[0]->IsLeader());
  coord.ExpireSession(sessions[0]);
  EXPECT_TRUE(elections[1]->IsLeader() || elections[2]->IsLeader());
  const int next = elections[1]->IsLeader() ? 1 : 2;
  coord.ExpireSession(sessions[next]);
  EXPECT_TRUE(elections[3 - next]->IsLeader());
}

}  // namespace
}  // namespace liquid::coord
