#include "mapreduce/mapreduce.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>

#include "common/clock.h"

namespace liquid::mapreduce {
namespace {

class MapReduceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs::DfsConfig config;
    config.num_datanodes = 3;
    config.replication = 1;
    fs_ = std::make_unique<dfs::DistributedFileSystem>(config);
    engine_ = std::make_unique<MapReduceEngine>(fs_.get(), &clock_);
  }

  void WriteInput(const std::string& path, const std::vector<KeyValue>& records) {
    ASSERT_TRUE(
        fs_->WriteFile(path, MapReduceEngine::EncodeRecords(records)).ok());
  }

  std::map<std::string, std::string> ReadOutput(const std::string& dir) {
    std::map<std::string, std::string> out;
    for (const std::string& part : fs_->ListFiles(dir)) {
      auto data = fs_->ReadFile(part);
      for (const auto& kv : MapReduceEngine::DecodeRecords(*data)) {
        out[kv.key] = kv.value;
      }
    }
    return out;
  }

  SimulatedClock clock_{0};
  std::unique_ptr<dfs::DistributedFileSystem> fs_;
  std::unique_ptr<MapReduceEngine> engine_;
};

TEST_F(MapReduceTest, RecordCodecRoundTrip) {
  std::vector<KeyValue> records{{"a", "1"}, {"b", "two"}, {"", "empty-key"}};
  const std::string encoded = MapReduceEngine::EncodeRecords(records);
  auto decoded = MapReduceEngine::DecodeRecords(encoded);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].key, "a");
  EXPECT_EQ(decoded[1].value, "two");
  EXPECT_EQ(decoded[2].key, "");
}

TEST_F(MapReduceTest, WordCount) {
  WriteInput("/in/part0", {{"1", "the quick fox"}, {"2", "the lazy dog"}});
  WriteInput("/in/part1", {{"3", "the fox"}});

  MrJobConfig config;
  config.name = "wordcount";
  config.startup_overhead_ms = 0;
  auto stats = engine_->RunJob(
      config, "/in", "/out",
      [](const KeyValue& kv) {
        std::vector<KeyValue> out;
        size_t pos = 0;
        while (pos < kv.value.size()) {
          size_t space = kv.value.find(' ', pos);
          if (space == std::string::npos) space = kv.value.size();
          if (space > pos) out.push_back({kv.value.substr(pos, space - pos), "1"});
          pos = space + 1;
        }
        return out;
      },
      [](const std::string&, const std::vector<std::string>& values) {
        return std::to_string(values.size());
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->input_records, 3);
  EXPECT_EQ(stats->intermediate_records, 8);

  auto out = ReadOutput("/out");
  EXPECT_EQ(out.at("the"), "3");
  EXPECT_EQ(out.at("fox"), "2");
  EXPECT_EQ(out.at("lazy"), "1");
}

TEST_F(MapReduceTest, ManyReducersPartitionByKey) {
  std::vector<KeyValue> input;
  for (int i = 0; i < 100; ++i) {
    input.push_back({"key" + std::to_string(i % 10), "1"});
  }
  WriteInput("/in/part0", input);
  MrJobConfig config;
  config.name = "sum";
  config.num_reducers = 4;
  config.startup_overhead_ms = 0;
  auto stats = engine_->RunJob(
      config, "/in", "/out",
      [](const KeyValue& kv) { return std::vector<KeyValue>{kv}; },
      [](const std::string&, const std::vector<std::string>& values) {
        int64_t sum = 0;
        for (const auto& v : values) sum += std::strtoll(v.c_str(), nullptr, 10);
        return std::to_string(sum);
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_records, 10);
  auto out = ReadOutput("/out");
  ASSERT_EQ(out.size(), 10u);
  for (const auto& [key, value] : out) EXPECT_EQ(value, "10") << key;
}

TEST_F(MapReduceTest, IntermediatesMaterializedToDfsAndCleaned) {
  WriteInput("/in/part0", {{"k", "v"}});
  MrJobConfig config;
  config.name = "mat";
  config.startup_overhead_ms = 0;
  auto stats = engine_->RunJob(
      config, "/in", "/out",
      [](const KeyValue& kv) { return std::vector<KeyValue>{kv}; },
      [](const std::string&, const std::vector<std::string>& values) {
        return values.back();
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->dfs_bytes_written, 0u);  // The per-stage DFS tax (§1).
  EXPECT_TRUE(fs_->ListFiles("/tmp/").empty());  // Intermediates cleaned.
}

TEST_F(MapReduceTest, StartupOverheadChargedPerJob) {
  WriteInput("/in/part0", {{"k", "v"}});
  MrJobConfig config;
  config.name = "slow";
  config.startup_overhead_ms = 250;
  const int64_t before = clock_.NowMs();
  auto stats = engine_->RunJob(
      config, "/in", "/out",
      [](const KeyValue& kv) { return std::vector<KeyValue>{kv}; },
      [](const std::string&, const std::vector<std::string>& values) {
        return values.back();
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(clock_.NowMs() - before, 250);
  EXPECT_GE(stats->wall_ms, 250);
}

TEST_F(MapReduceTest, ChainLatencyGrowsWithStageCount) {
  // The paper's core complaint about MR/DFS pipelines (§1 limitation 1).
  WriteInput("/in/part0", {{"k", "v"}});
  const MapFn identity = [](const KeyValue& kv) {
    return std::vector<KeyValue>{kv};
  };

  MrJobConfig config;
  config.name = "chain";
  config.startup_overhead_ms = 100;

  auto two = engine_->RunChain(config, "/in", "/out2", {identity, identity});
  ASSERT_TRUE(two.ok());
  config.name = "chain4";
  auto four = engine_->RunChain(config, "/in", "/out4",
                                {identity, identity, identity, identity});
  ASSERT_TRUE(four.ok());
  EXPECT_GE(two->wall_ms, 200);
  EXPECT_GE(four->wall_ms, 400);
  EXPECT_GT(four->wall_ms, two->wall_ms);
  EXPECT_GT(four->dfs_bytes_written, two->dfs_bytes_written);
}

TEST_F(MapReduceTest, ChainPreservesData) {
  std::vector<KeyValue> input;
  for (int i = 0; i < 20; ++i) input.push_back({"k" + std::to_string(i), "0"});
  WriteInput("/in/part0", input);
  const MapFn increment = [](const KeyValue& kv) {
    return std::vector<KeyValue>{
        {kv.key, std::to_string(std::strtoll(kv.value.c_str(), nullptr, 10) + 1)}};
  };
  MrJobConfig config;
  config.name = "inc";
  config.startup_overhead_ms = 0;
  auto stats = engine_->RunChain(config, "/in", "/out",
                                 {increment, increment, increment});
  ASSERT_TRUE(stats.ok());
  auto out = ReadOutput("/out");
  ASSERT_EQ(out.size(), 20u);
  for (const auto& [key, value] : out) EXPECT_EQ(value, "3") << key;
}

}  // namespace
}  // namespace liquid::mapreduce
