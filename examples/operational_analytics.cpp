// Operational analysis (§5.1): metrics, alerts and logs from the
// infrastructure itself are just another feed. Here the brokers' own counters
// are published to a metrics feed every "minute"; a windowed job aggregates
// them per metric; a dashboard back-end reads the summaries. "Integrating new
// data ... is straightforward: all data is transported by the messaging
// layer, which only needs to produce a new metric."

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "common/clock.h"
#include "core/liquid.h"
#include "messaging/broker.h"
#include "processing/operators.h"
#include "workload/generators.h"

using liquid::core::FeedOptions;
using liquid::core::Liquid;
using liquid::storage::Record;

int main() {
  liquid::SimulatedClock clock(0);
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  options.clock = &clock;
  auto liquid = Liquid::Start(options);
  if (!liquid.ok()) return 1;

  FeedOptions feed;
  feed.partitions = 1;
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("infra-metrics", feed));
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("app-traffic", feed));  // Generates broker load.
  LIQUID_CHECK_OK((*liquid)->CreateDerivedFeed("metric-summaries", feed, "metric-agg", "v1",
                               {"infra-metrics"}));

  // Windowed aggregation job: tumbling 60s windows summing each metric.
  liquid::processing::JobConfig config;
  config.name = "metric-agg";
  config.inputs = {"infra-metrics"};
  config.stores = {{"windows",
                    liquid::processing::StoreConfig::Kind::kInMemory, true}};
  config.window_interval_ms = 1000;
  auto job = (*liquid)->SubmitJob(config, [] {
    return std::make_unique<liquid::processing::WindowedAggregateTask>(
        "windows", "metric-summaries", /*window_ms=*/60'000);
  });

  auto traffic_producer = (*liquid)->NewProducer();
  auto metric_producer = (*liquid)->NewProducer();

  // Simulate 5 "minutes" of operation: traffic + a metrics scrape per minute.
  for (int minute = 0; minute < 5; ++minute) {
    for (int i = 0; i < 200 * (minute + 1); ++i) {  // Rising load.
      LIQUID_CHECK_OK(traffic_producer->Send("app-traffic", Record::KeyValue("k", "payload")));
    }
    LIQUID_CHECK_OK(traffic_producer->Flush());
    clock.AdvanceMs(60'000);

    // Scrape every broker's counters into the metrics feed (delta encoding
    // left out for brevity: we publish absolute counters).
    for (int id : (*liquid)->cluster()->AliveBrokerIds()) {
      auto counters =
          (*liquid)->cluster()->broker(id)->metrics()->CounterValues();
      for (const auto& [name, value] : counters) {
        LIQUID_CHECK_OK(metric_producer->Send(
            "infra-metrics",
            Record::KeyValue(name, std::to_string(value), clock.NowMs())));
      }
    }
    LIQUID_CHECK_OK(metric_producer->Flush());
    LIQUID_CHECK_OK((*job)->RunOnce());
    LIQUID_CHECK_OK((*job)->Commit());
  }
  // Close the final windows.
  clock.AdvanceMs(120'000);
  LIQUID_CHECK_OK(metric_producer->Send("infra-metrics", Record::KeyValue("heartbeat", "0",
                                                          clock.NowMs())));
  LIQUID_CHECK_OK(metric_producer->Flush());
  LIQUID_CHECK_OK((*job)->RunUntilIdle());

  // The dashboard consumes per-window summaries.
  auto dashboard = (*liquid)->NewConsumer("dashboard", "ui-1");
  LIQUID_CHECK_OK(dashboard->Subscribe({"metric-summaries"}));
  std::map<std::string, std::string> summaries;
  while (true) {
    auto records = dashboard->Poll(512);
    if (!records.ok() || records->empty()) break;
    for (const auto& envelope : *records) {
      summaries[envelope.record.key] = envelope.record.value;
    }
  }

  std::printf("dashboard received %zu window/metric summaries, e.g.:\n",
              summaries.size());
  int shown = 0;
  for (const auto& [window_key, value] : summaries) {
    if (window_key.find("produce.records") == std::string::npos) continue;
    std::printf("  %s = %s\n", window_key.c_str(), value.c_str());
    if (++shown == 5) break;
  }
  LIQUID_CHECK_OK((*liquid)->StopJob("metric-agg"));
  std::printf(summaries.empty() ? "FAILED\n" : "operational analytics OK\n");
  return summaries.empty() ? 1 : 0;
}
