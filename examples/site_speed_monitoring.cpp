// Site-speed monitoring (§5.1): real-user-monitoring (RUM) events flow
// through Liquid; a stateful job groups them by CDN and keeps running load
// averages; a back-end "ops" consumer reads the pre-aggregated derived feed
// and raises an alert within seconds of a CDN degrading — "permitting a rapid
// response to incidents" such as re-routing traffic away from the slow CDN.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "core/liquid.h"
#include "workload/generators.h"

using liquid::core::FeedOptions;
using liquid::core::Liquid;
using liquid::storage::Record;

namespace {

/// Per-CDN running average with anomaly flagging.
class CdnMonitorTask : public liquid::processing::StreamTask {
 public:
  liquid::Status Init(liquid::processing::TaskContext* context) override {
    store_ = context->GetStore("cdn-stats");
    return liquid::Status::OK();
  }

  liquid::Status Process(const liquid::messaging::ConsumerRecord& envelope,
                         liquid::processing::MessageCollector* collector,
                         liquid::processing::TaskCoordinator*) override {
    auto fields = liquid::workload::ParseEvent(envelope.record.value);
    const std::string cdn = fields["cdn"];
    const int64_t load = std::strtoll(fields["load_ms"].c_str(), nullptr, 10);

    int64_t sum = 0, count = 0;
    auto current = store_->Get(cdn);
    if (current.ok()) {
      auto parts = liquid::workload::ParseEvent(*current);
      sum = std::strtoll(parts["sum"].c_str(), nullptr, 10);
      count = std::strtoll(parts["count"].c_str(), nullptr, 10);
    }
    sum += load;
    ++count;
    LIQUID_RETURN_NOT_OK(store_->Put(
        cdn, liquid::workload::EncodeEvent({{"sum", std::to_string(sum)},
                                            {"count", std::to_string(count)}})));
    // Publish the running average for dashboards and alerting back-ends.
    return collector->Send("cdn-latency",
                           Record::KeyValue(cdn, std::to_string(sum / count)));
  }

 private:
  liquid::processing::KeyValueStore* store_ = nullptr;
};

}  // namespace

int main() {
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  auto liquid = Liquid::Start(options);
  if (!liquid.ok()) return 1;

  FeedOptions feed;
  feed.partitions = 1;
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("rum-events", feed));
  LIQUID_CHECK_OK((*liquid)->CreateDerivedFeed("cdn-latency", feed, "cdn-monitor", "v1",
                               {"rum-events"}));

  // RUM traffic: cdn3 degrades badly from event 2000 on.
  liquid::workload::RumEventGenerator::Options gen;
  gen.num_cdns = 4;
  gen.anomaly_start_event = 2000;
  gen.anomaly_end_event = 4000;
  gen.anomalous_cdn = 3;
  gen.anomaly_load_ms = 7500;
  liquid::workload::RumEventGenerator generator(gen);

  liquid::processing::JobConfig config;
  config.name = "cdn-monitor";
  config.inputs = {"rum-events"};
  config.stores = {{"cdn-stats",
                    liquid::processing::StoreConfig::Kind::kInMemory, true}};
  auto job = (*liquid)->SubmitJob(config, [] {
    return std::make_unique<CdnMonitorTask>();
  });

  // Ops back-end: watches the derived feed and alerts on threshold crossing.
  auto ops = (*liquid)->NewConsumer("ops-alerting", "ops-1");
  LIQUID_CHECK_OK(ops->Subscribe({"cdn-latency"}));
  std::map<std::string, int64_t> latest_avg;
  bool alerted = false;

  auto producer = (*liquid)->NewProducer();
  for (int batch = 0; batch < 40; ++batch) {
    for (int i = 0; i < 100; ++i) {
      LIQUID_CHECK_OK(producer->Send("rum-events", generator.Next(batch * 100 + i)));
    }
    LIQUID_CHECK_OK(producer->Flush());
    LIQUID_CHECK_OK((*job)->RunOnce());

    auto updates = ops->Poll(1024);
    for (const auto& envelope : *updates) {
      latest_avg[envelope.record.key] =
          std::strtoll(envelope.record.value.c_str(), nullptr, 10);
    }
    for (const auto& [cdn, avg] : latest_avg) {
      if (avg > 2000 && !alerted) {
        alerted = true;
        std::printf(
            "[ALERT after %d events] %s avg load %lldms — re-route traffic!\n",
            (batch + 1) * 100, cdn.c_str(), static_cast<long long>(avg));
      }
    }
  }

  std::printf("\nfinal per-CDN average load times:\n");
  for (const auto& [cdn, avg] : latest_avg) {
    std::printf("  %-6s %6lld ms%s\n", cdn.c_str(), static_cast<long long>(avg),
                avg > 2000 ? "  <-- degraded" : "");
  }
  LIQUID_CHECK_OK((*liquid)->StopJob("cdn-monitor"));
  return alerted ? 0 : 1;
}
