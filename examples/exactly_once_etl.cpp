// Exactly-once ETL (§4.3): the paper notes at-least-once delivery "is not
// [sufficient] for all applications ... there is an ongoing effort to design
// and implement support for exactly-once semantics". This example runs a
// payment-deduplication pipeline in exactly_once mode, crashes it mid-cycle
// (SIGKILL semantics), restarts it, and shows that a read_committed consumer
// of the output feed sees every payment exactly once — while the identical
// at-least-once pipeline shows duplicates under the same crash.

#include <cstdio>
#include <map>
#include <memory>
#include <optional>

#include "core/liquid.h"
#include "messaging/transaction.h"
#include "processing/operators.h"

using liquid::core::FeedOptions;
using liquid::core::Liquid;
using liquid::storage::Record;

namespace {

liquid::processing::TaskFactory Enricher(const std::string& output) {
  return [output]() -> std::unique_ptr<liquid::processing::StreamTask> {
    return std::make_unique<liquid::processing::MapTask>(
        output, [](const liquid::messaging::ConsumerRecord& envelope) {
          Record out = envelope.record;
          out.value = "processed:" + out.value;
          return std::optional<Record>(std::move(out));
        });
  };
}

/// Runs the crash/restart scenario; returns per-payment delivery counts seen
/// by a read_committed consumer of `output`.
std::map<std::string, int> RunScenario(Liquid* liquid,
                                       liquid::messaging::TransactionCoordinator* txn,
                                       const std::string& input,
                                       const std::string& output,
                                       bool exactly_once) {
  FeedOptions feed;
  feed.partitions = 1;
  LIQUID_CHECK_OK(liquid->CreateSourceFeed(input, feed));
  LIQUID_CHECK_OK(liquid->CreateDerivedFeed(output, feed, "payments-etl", "v1", {input}));

  auto producer = liquid->NewProducer();
  for (int i = 0; i < 8; ++i) {
    LIQUID_CHECK_OK(producer->Send(input, Record::KeyValue("payment" + std::to_string(i),
                                           "$" + std::to_string(100 + i))));
  }
  LIQUID_CHECK_OK(producer->Flush());

  liquid::processing::JobConfig config;
  config.name = "etl-" + output;
  config.inputs = {input};
  config.exactly_once = exactly_once;

  // First incarnation: processes everything, then CRASHES before committing.
  {
    auto job = liquid::processing::Job::Create(
        liquid->cluster(), liquid->offsets(), liquid->groups(),
        liquid->state_disk(), config, Enricher(output), "0", txn);
    LIQUID_CHECK_OK((*job)->RunOnce());  // Outputs produced (at-least-once flushes them now).
    LIQUID_CHECK_OK((*job)->Kill());     // SIGKILL: no checkpoint, open txn left dangling.
  }
  // Second incarnation: fences the zombie (exactly-once) and replays.
  {
    auto job = liquid::processing::Job::Create(
        liquid->cluster(), liquid->offsets(), liquid->groups(),
        liquid->state_disk(), config, Enricher(output), "0", txn);
    LIQUID_CHECK_OK((*job)->RunUntilIdle());
    LIQUID_CHECK_OK((*job)->Stop());
  }

  // What does the downstream settlement system actually see?
  auto consumer = liquid->NewConsumer("settlement-" + output, "s1");
  // (read_committed through the facade: build a raw consumer instead.)
  liquid::messaging::ConsumerConfig consumer_config;
  consumer_config.group = "settlement-" + output;
  consumer_config.read_committed = true;
  liquid::messaging::Consumer committed_reader(
      liquid->cluster(), liquid->offsets(), liquid->groups(), "s1",
      consumer_config);
  LIQUID_CHECK_OK(committed_reader.Subscribe({output}));
  std::map<std::string, int> seen;
  for (int i = 0; i < 20; ++i) {
    auto records = committed_reader.Poll(256);
    if (!records.ok()) break;
    for (const auto& envelope : *records) seen[envelope.record.key]++;
  }
  return seen;
}

}  // namespace

int main() {
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  auto liquid = Liquid::Start(options);
  if (!liquid.ok()) return 1;
  liquid::messaging::TransactionCoordinator txn((*liquid)->cluster(),
                                                (*liquid)->offsets());

  const auto at_least_once =
      RunScenario(liquid->get(), &txn, "payments-alo", "settled-alo", false);
  const auto exactly_once =
      RunScenario(liquid->get(), &txn, "payments-eo", "settled-eo", true);

  std::printf("%-12s %-22s %-22s\n", "payment", "at-least-once copies",
              "exactly-once copies");
  bool alo_dups = false, eo_dups = false, eo_missing = false;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "payment" + std::to_string(i);
    const int alo = at_least_once.count(key) ? at_least_once.at(key) : 0;
    const int eo = exactly_once.count(key) ? exactly_once.at(key) : 0;
    std::printf("%-12s %-22d %-22d\n", key.c_str(), alo, eo);
    if (alo > 1) alo_dups = true;
    if (eo > 1) eo_dups = true;
    if (eo == 0) eo_missing = true;
  }
  std::printf(
      "\ncrash between output flush and checkpoint: at-least-once %s "
      "duplicates; exactly-once delivered each payment %s.\n",
      alo_dups ? "produced" : "did NOT produce (unexpected!)",
      (!eo_dups && !eo_missing) ? "exactly once" : "INCORRECTLY");
  return (!eo_dups && !eo_missing && alo_dups) ? 0 : 1;
}
