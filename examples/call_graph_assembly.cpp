// Call-graph assembly (§5.1): LinkedIn pages are built from thousands of
// distributed REST calls sharing a request id. Spans arrive out of order on a
// source feed; a stateful job assembles per-request call graphs nearline,
// flags slow services "within seconds rather than hours", and publishes
// assembled graphs for capacity planning.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>

#include "core/liquid.h"
#include "workload/generators.h"

using liquid::core::FeedOptions;
using liquid::core::Liquid;
using liquid::storage::Record;

namespace {

constexpr int64_t kSlowSpanUs = 20000;

/// Groups spans by request id, tracks per-service latency, and emits the
/// assembled graph summary once per processed span (idempotent upsert).
class AssemblerTask : public liquid::processing::StreamTask {
 public:
  liquid::Status Init(liquid::processing::TaskContext* context) override {
    graphs_ = context->GetStore("graphs");
    services_ = context->GetStore("service-latency");
    return liquid::Status::OK();
  }

  liquid::Status Process(const liquid::messaging::ConsumerRecord& envelope,
                         liquid::processing::MessageCollector* collector,
                         liquid::processing::TaskCoordinator*) override {
    auto fields = liquid::workload::ParseEvent(envelope.record.value);
    const std::string& request = envelope.record.key;
    const int64_t latency_us =
        std::strtoll(fields["latency_us"].c_str(), nullptr, 10);
    const std::string& service = fields["service"];

    // Per-request graph summary.
    int64_t spans = 0, total_us = 0;
    auto current = graphs_->Get(request);
    if (current.ok()) {
      auto parts = liquid::workload::ParseEvent(*current);
      spans = std::strtoll(parts["spans"].c_str(), nullptr, 10);
      total_us = std::strtoll(parts["total_us"].c_str(), nullptr, 10);
    }
    ++spans;
    total_us += latency_us;
    const std::string summary = liquid::workload::EncodeEvent(
        {{"spans", std::to_string(spans)},
         {"total_us", std::to_string(total_us)}});
    LIQUID_RETURN_NOT_OK(graphs_->Put(request, summary));
    LIQUID_RETURN_NOT_OK(
        collector->Send("call-graphs", Record::KeyValue(request, summary)));

    // Per-service slow-call detection (monitoring view).
    if (latency_us > kSlowSpanUs) {
      const int64_t slow =
          1 + std::strtoll(services_->Get(service).ValueOr("0").c_str(),
                           nullptr, 10);
      LIQUID_RETURN_NOT_OK(services_->Put(service, std::to_string(slow)));
    }
    return liquid::Status::OK();
  }

 private:
  liquid::processing::KeyValueStore* graphs_ = nullptr;
  liquid::processing::KeyValueStore* services_ = nullptr;
};

}  // namespace

int main() {
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  auto liquid = Liquid::Start(options);
  if (!liquid.ok()) return 1;

  FeedOptions feed;
  feed.partitions = 2;
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("rest-calls", feed));
  LIQUID_CHECK_OK((*liquid)->CreateDerivedFeed("call-graphs", feed, "assembler", "v1",
                               {"rest-calls"}));

  // Front-end traffic: 200 requests, service svc5 is pathologically slow.
  liquid::workload::CallGraphGenerator::Options gen;
  gen.num_services = 12;
  gen.slow_service = 5;
  gen.slow_latency_us = 80000;
  liquid::workload::CallGraphGenerator generator(gen);

  auto producer = (*liquid)->NewProducer();
  int64_t spans_published = 0;
  for (int request = 0; request < 200; ++request) {
    for (auto& span : generator.NextRequest(1000 + request)) {
      ++spans_published;
      LIQUID_CHECK_OK(producer->Send("rest-calls", std::move(span)));
    }
  }
  LIQUID_CHECK_OK(producer->Flush());
  std::printf("published %lld spans for 200 requests\n",
              static_cast<long long>(spans_published));

  liquid::processing::JobConfig config;
  config.name = "assembler";
  config.inputs = {"rest-calls"};
  config.stores = {
      {"graphs", liquid::processing::StoreConfig::Kind::kInMemory, true},
      {"service-latency", liquid::processing::StoreConfig::Kind::kInMemory,
       true}};
  auto job = (*liquid)->SubmitJob(config, [] {
    return std::make_unique<AssemblerTask>();
  });
  auto processed = (*job)->RunUntilIdle();
  std::printf("assembler processed %lld spans\n",
              static_cast<long long>(*processed));

  // Capacity-planning back-end reads assembled graphs.
  auto planner = (*liquid)->NewConsumer("capacity-planning", "planner-1");
  LIQUID_CHECK_OK(planner->Subscribe({"call-graphs"}));
  std::map<std::string, std::string> graphs;
  while (true) {
    auto records = planner->Poll(1024);
    if (!records.ok() || records->empty()) break;
    for (const auto& envelope : *records) {
      graphs[envelope.record.key] = envelope.record.value;
    }
  }
  std::printf("assembled %zu distinct call graphs\n", graphs.size());

  // Slow-service report from the job's monitoring store.
  std::printf("slow-call counts by service (spans > %lldus):\n",
              static_cast<long long>(kSlowSpanUs));
  for (int p = 0; p < 2; ++p) {
    auto* store = (*job)->GetStore(p, "service-latency");
    if (store == nullptr) continue;
    LIQUID_CHECK_OK(store->ForEach(
        [](const liquid::Slice& service, const liquid::Slice& count) {
          std::printf("  %-8s %s\n", service.ToString().c_str(),
                      count.ToString().c_str());
        }));
  }
  LIQUID_CHECK_OK((*liquid)->StopJob("assembler"));
  return graphs.size() == 200 ? 0 : 1;
}
