// Quickstart: stand up a Liquid stack, create feeds, publish events, run an
// ETL job in the processing layer, and consume the derived feed — the
// complete Fig. 2 flow in ~100 lines.
//
//   data in -> [source feed] -> stateful job -> [derived feed] -> data out

#include <cstdio>
#include <memory>
#include <optional>

#include "core/liquid.h"
#include "processing/operators.h"

using liquid::core::FeedOptions;
using liquid::core::Liquid;
using liquid::storage::Record;

int main() {
  // 1. Start the stack: a 3-broker messaging layer plus the processing layer.
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  auto liquid = Liquid::Start(options);
  if (!liquid.ok()) {
    std::fprintf(stderr, "start failed: %s\n", liquid.status().ToString().c_str());
    return 1;
  }

  // 2. Create a source-of-truth feed for raw events and a derived feed for
  //    the cleaned output (with lineage annotations).
  FeedOptions feed;
  feed.partitions = 2;
  feed.replication_factor = 2;
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("page-views", feed));
  LIQUID_CHECK_OK((*liquid)->CreateDerivedFeed("page-views-clean", feed,
                               /*producer_job=*/"cleaner",
                               /*code_version=*/"v1",
                               /*upstream_feeds=*/{"page-views"}));

  // 3. Publish some raw events.
  auto producer = (*liquid)->NewProducer();
  for (int i = 0; i < 1000; ++i) {
    LIQUID_CHECK_OK(producer->Send("page-views",
                   Record::KeyValue("user" + std::to_string(i % 50),
                                    "  /jobs?q=c%2B%2B  ")));
  }
  LIQUID_CHECK_OK(producer->Flush());
  std::printf("published 1000 raw events to 'page-views'\n");

  // 4. Submit an ETL job (ETL-as-a-service): trim whitespace, drop empties.
  liquid::processing::JobConfig job_config;
  job_config.name = "cleaner";
  job_config.inputs = {"page-views"};
  job_config.checkpoint_annotations = {{"version", "v1"}};
  auto job = (*liquid)->SubmitJob(job_config, [] {
    return std::make_unique<liquid::processing::MapTask>(
        "page-views-clean",
        [](const liquid::messaging::ConsumerRecord& envelope)
            -> std::optional<Record> {
          std::string text = envelope.record.value;
          const auto begin = text.find_first_not_of(' ');
          if (begin == std::string::npos) return std::nullopt;
          const auto end = text.find_last_not_of(' ');
          Record out = envelope.record;
          out.value = text.substr(begin, end - begin + 1);
          return out;
        });
  });
  auto processed = (*job)->RunUntilIdle();
  std::printf("cleaner job processed %lld records\n",
              static_cast<long long>(*processed));

  // 5. A back-end system consumes the derived feed.
  auto consumer = (*liquid)->NewConsumer("search-indexer", "indexer-1");
  LIQUID_CHECK_OK(consumer->Subscribe({"page-views-clean"}));
  int64_t consumed = 0;
  while (true) {
    auto records = consumer->Poll(256);
    if (!records.ok() || records->empty()) break;
    consumed += static_cast<int64_t>(records->size());
  }
  LIQUID_CHECK_OK(consumer->Commit());
  std::printf("back-end consumed %lld cleaned records\n",
              static_cast<long long>(consumed));

  // 6. Lineage: where did 'page-views-clean' come from?
  auto metadata = (*liquid)->GetFeedMetadata("page-views-clean");
  std::printf("lineage: '%s' produced by job '%s' (%s) from '%s'\n",
              "page-views-clean", metadata->producer_job.c_str(),
              metadata->code_version.c_str(),
              metadata->upstream_feeds.front().c_str());

  LIQUID_CHECK_OK((*liquid)->StopJob("cleaner"));
  std::printf("quickstart OK\n");
  return 0;
}
