// Data cleaning & normalization with re-processing (§5.1): the flagship
// Liquid use case. User content is cleaned nearline; when the cleaning
// algorithm changes, the SAME job (one code path, unlike Lambda's two) is
// rewound through the offset manager and history is re-cleaned with the new
// version — "it is now easier to integrate the latest user-generated data
// with current results, or to clean past data with new algorithms".

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>

#include "core/liquid.h"
#include "processing/operators.h"

using liquid::core::FeedOptions;
using liquid::core::Liquid;
using liquid::messaging::TopicPartition;
using liquid::storage::Record;

namespace {

/// The cleaning "algorithm", versioned. v1 trims whitespace; v2 additionally
/// lowercases and collapses runs of spaces (engineers improved it).
std::string Clean(const std::string& version, const std::string& text) {
  const auto begin = text.find_first_not_of(' ');
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(' ');
  std::string out = text.substr(begin, end - begin + 1);
  if (version == "v2") {
    std::string collapsed;
    bool last_space = false;
    for (char c : out) {
      const char lower = static_cast<char>(std::tolower(c));
      if (lower == ' ') {
        if (!last_space) collapsed.push_back(' ');
        last_space = true;
      } else {
        collapsed.push_back(lower);
        last_space = false;
      }
    }
    out = collapsed;
  }
  return version + ":" + out;
}

liquid::processing::TaskFactory CleanerFactory(const std::string& version) {
  return [version]() -> std::unique_ptr<liquid::processing::StreamTask> {
    return std::make_unique<liquid::processing::MapTask>(
        "cleaned-content",
        [version](const liquid::messaging::ConsumerRecord& envelope)
            -> std::optional<Record> {
          const std::string cleaned = Clean(version, envelope.record.value);
          if (cleaned.empty()) return std::nullopt;
          Record out = envelope.record;
          out.value = cleaned;
          return out;
        });
  };
}

std::map<std::string, std::string> LatestCleaned(Liquid* liquid,
                                                 const std::string& group) {
  std::map<std::string, std::string> out;
  auto consumer = liquid->NewConsumer(group, group + "-m");
  LIQUID_CHECK_OK(consumer->Subscribe({"cleaned-content"}));
  while (true) {
    auto records = consumer->Poll(512);
    if (!records.ok() || records->empty()) break;
    for (const auto& envelope : *records) {
      out[envelope.record.key] = envelope.record.value;
    }
  }
  return out;
}

}  // namespace

int main() {
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  auto liquid = Liquid::Start(options);
  if (!liquid.ok()) return 1;

  FeedOptions feed;
  feed.partitions = 1;
  // The cleaned feed is keyed by document and compacted: back-end systems
  // always see exactly one (latest) cleaned version per document.
  FeedOptions cleaned_feed = feed;
  cleaned_feed.log.compaction_enabled = true;
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("user-content", feed));
  LIQUID_CHECK_OK((*liquid)->CreateDerivedFeed("cleaned-content", cleaned_feed, "cleaner", "v1",
                               {"user-content"}));

  // Users generate content continuously.
  auto producer = (*liquid)->NewProducer();
  for (int i = 0; i < 500; ++i) {
    LIQUID_CHECK_OK(producer->Send("user-content",
                   Record::KeyValue("doc" + std::to_string(i),
                                    "  Senior  C++   Engineer  ")));
  }
  LIQUID_CHECK_OK(producer->Flush());

  // --- Phase 1: nearline cleaning with algorithm v1. ---
  liquid::processing::JobConfig config;
  config.name = "cleaner";
  config.inputs = {"user-content"};
  config.checkpoint_annotations = {{"version", "v1"}};
  auto v1 = (*liquid)->SubmitJob(config, CleanerFactory("v1"));
  LIQUID_CHECK_OK((*v1)->RunUntilIdle());
  auto after_v1 = LatestCleaned(liquid->get(), "check-v1");
  std::printf("v1 cleaned %zu docs; doc0 = \"%s\"\n", after_v1.size(),
              after_v1["doc0"].c_str());

  // New content keeps flowing and is cleaned with low latency.
  LIQUID_CHECK_OK(producer->Send("user-content", Record::KeyValue("doc500", "  NEW Post ")));
  LIQUID_CHECK_OK(producer->Flush());
  LIQUID_CHECK_OK((*v1)->RunUntilIdle());

  // --- Phase 2: engineers ship algorithm v2 -> re-process history. ---
  // Mark the rewind point in the offset manager with annotations (§4.2),
  // stop v1, reset the job's checkpoint to offset 0, start the same job with
  // the v2 logic.
  LIQUID_CHECK_OK((*liquid)->StopJob("cleaner"));
  const TopicPartition tp{"user-content", 0};
  liquid::messaging::OffsetCommit rewind;
  rewind.offset = 0;
  rewind.annotations = {{"version", "v2"}, {"reason", "algorithm upgrade"}};
  LIQUID_CHECK_OK((*liquid)->offsets()->CommitLabeled("job.cleaner", tp, "v2-start", rewind));
  LIQUID_CHECK_OK((*liquid)->offsets()->Commit("job.cleaner", tp, rewind));

  config.checkpoint_annotations = {{"version", "v2"}};
  auto v2 = (*liquid)->SubmitJob(config, CleanerFactory("v2"));
  auto reprocessed = (*v2)->RunUntilIdle();
  std::printf("v2 re-processed %lld records from the rewind point\n",
              static_cast<long long>(*reprocessed));

  auto after_v2 = LatestCleaned(liquid->get(), "check-v2");
  std::printf("after reprocessing: doc0 = \"%s\", doc500 = \"%s\"\n",
              after_v2["doc0"].c_str(), after_v2["doc500"].c_str());

  // The labeled checkpoint documents WHERE v2 started, forever queryable.
  auto marker = (*liquid)->offsets()->FetchLabeled("job.cleaner", tp, "v2-start");
  std::printf("offset-manager marker 'v2-start': offset=%lld reason=%s\n",
              static_cast<long long>(marker->offset),
              marker->annotations.at("reason").c_str());

  LIQUID_CHECK_OK((*liquid)->StopJob("cleaner"));
  const bool ok = after_v2["doc0"] == "v2:senior c++ engineer" &&
                  after_v2["doc500"] == "v2:new post";
  std::printf(ok ? "reprocessing example OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}
