file(REMOVE_RECURSE
  "libliquid_common.a"
)
