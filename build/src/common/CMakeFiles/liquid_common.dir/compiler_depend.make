# Empty compiler generated dependencies file for liquid_common.
# This may be replaced when dependencies are built.
