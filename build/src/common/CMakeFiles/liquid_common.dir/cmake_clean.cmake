file(REMOVE_RECURSE
  "CMakeFiles/liquid_common.dir/clock.cc.o"
  "CMakeFiles/liquid_common.dir/clock.cc.o.d"
  "CMakeFiles/liquid_common.dir/coding.cc.o"
  "CMakeFiles/liquid_common.dir/coding.cc.o.d"
  "CMakeFiles/liquid_common.dir/crc32c.cc.o"
  "CMakeFiles/liquid_common.dir/crc32c.cc.o.d"
  "CMakeFiles/liquid_common.dir/logging.cc.o"
  "CMakeFiles/liquid_common.dir/logging.cc.o.d"
  "CMakeFiles/liquid_common.dir/metrics.cc.o"
  "CMakeFiles/liquid_common.dir/metrics.cc.o.d"
  "CMakeFiles/liquid_common.dir/properties.cc.o"
  "CMakeFiles/liquid_common.dir/properties.cc.o.d"
  "CMakeFiles/liquid_common.dir/random.cc.o"
  "CMakeFiles/liquid_common.dir/random.cc.o.d"
  "CMakeFiles/liquid_common.dir/status.cc.o"
  "CMakeFiles/liquid_common.dir/status.cc.o.d"
  "CMakeFiles/liquid_common.dir/thread_pool.cc.o"
  "CMakeFiles/liquid_common.dir/thread_pool.cc.o.d"
  "libliquid_common.a"
  "libliquid_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
