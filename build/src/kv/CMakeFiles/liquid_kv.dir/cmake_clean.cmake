file(REMOVE_RECURSE
  "CMakeFiles/liquid_kv.dir/bloom.cc.o"
  "CMakeFiles/liquid_kv.dir/bloom.cc.o.d"
  "CMakeFiles/liquid_kv.dir/kv_store.cc.o"
  "CMakeFiles/liquid_kv.dir/kv_store.cc.o.d"
  "CMakeFiles/liquid_kv.dir/sstable.cc.o"
  "CMakeFiles/liquid_kv.dir/sstable.cc.o.d"
  "CMakeFiles/liquid_kv.dir/wal.cc.o"
  "CMakeFiles/liquid_kv.dir/wal.cc.o.d"
  "libliquid_kv.a"
  "libliquid_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
