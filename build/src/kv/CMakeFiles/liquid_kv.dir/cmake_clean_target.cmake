file(REMOVE_RECURSE
  "libliquid_kv.a"
)
