# Empty dependencies file for liquid_kv.
# This may be replaced when dependencies are built.
