
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/bloom.cc" "src/kv/CMakeFiles/liquid_kv.dir/bloom.cc.o" "gcc" "src/kv/CMakeFiles/liquid_kv.dir/bloom.cc.o.d"
  "/root/repo/src/kv/kv_store.cc" "src/kv/CMakeFiles/liquid_kv.dir/kv_store.cc.o" "gcc" "src/kv/CMakeFiles/liquid_kv.dir/kv_store.cc.o.d"
  "/root/repo/src/kv/sstable.cc" "src/kv/CMakeFiles/liquid_kv.dir/sstable.cc.o" "gcc" "src/kv/CMakeFiles/liquid_kv.dir/sstable.cc.o.d"
  "/root/repo/src/kv/wal.cc" "src/kv/CMakeFiles/liquid_kv.dir/wal.cc.o" "gcc" "src/kv/CMakeFiles/liquid_kv.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/liquid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/liquid_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
