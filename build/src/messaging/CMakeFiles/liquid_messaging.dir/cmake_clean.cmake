file(REMOVE_RECURSE
  "CMakeFiles/liquid_messaging.dir/access_control.cc.o"
  "CMakeFiles/liquid_messaging.dir/access_control.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/admin.cc.o"
  "CMakeFiles/liquid_messaging.dir/admin.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/broker.cc.o"
  "CMakeFiles/liquid_messaging.dir/broker.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/cluster.cc.o"
  "CMakeFiles/liquid_messaging.dir/cluster.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/consumer.cc.o"
  "CMakeFiles/liquid_messaging.dir/consumer.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/controller.cc.o"
  "CMakeFiles/liquid_messaging.dir/controller.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/group_coordinator.cc.o"
  "CMakeFiles/liquid_messaging.dir/group_coordinator.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/metadata.cc.o"
  "CMakeFiles/liquid_messaging.dir/metadata.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/offset_manager.cc.o"
  "CMakeFiles/liquid_messaging.dir/offset_manager.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/producer.cc.o"
  "CMakeFiles/liquid_messaging.dir/producer.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/quota.cc.o"
  "CMakeFiles/liquid_messaging.dir/quota.cc.o.d"
  "CMakeFiles/liquid_messaging.dir/transaction.cc.o"
  "CMakeFiles/liquid_messaging.dir/transaction.cc.o.d"
  "libliquid_messaging.a"
  "libliquid_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
