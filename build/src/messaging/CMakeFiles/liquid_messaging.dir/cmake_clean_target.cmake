file(REMOVE_RECURSE
  "libliquid_messaging.a"
)
