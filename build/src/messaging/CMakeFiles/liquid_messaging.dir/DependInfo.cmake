
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/messaging/access_control.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/access_control.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/access_control.cc.o.d"
  "/root/repo/src/messaging/admin.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/admin.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/admin.cc.o.d"
  "/root/repo/src/messaging/broker.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/broker.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/broker.cc.o.d"
  "/root/repo/src/messaging/cluster.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/cluster.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/cluster.cc.o.d"
  "/root/repo/src/messaging/consumer.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/consumer.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/consumer.cc.o.d"
  "/root/repo/src/messaging/controller.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/controller.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/controller.cc.o.d"
  "/root/repo/src/messaging/group_coordinator.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/group_coordinator.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/group_coordinator.cc.o.d"
  "/root/repo/src/messaging/metadata.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/metadata.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/metadata.cc.o.d"
  "/root/repo/src/messaging/offset_manager.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/offset_manager.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/offset_manager.cc.o.d"
  "/root/repo/src/messaging/producer.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/producer.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/producer.cc.o.d"
  "/root/repo/src/messaging/quota.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/quota.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/quota.cc.o.d"
  "/root/repo/src/messaging/transaction.cc" "src/messaging/CMakeFiles/liquid_messaging.dir/transaction.cc.o" "gcc" "src/messaging/CMakeFiles/liquid_messaging.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/liquid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/liquid_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/liquid_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
