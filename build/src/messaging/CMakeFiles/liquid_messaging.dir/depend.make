# Empty dependencies file for liquid_messaging.
# This may be replaced when dependencies are built.
