# Empty dependencies file for liquid_core.
# This may be replaced when dependencies are built.
