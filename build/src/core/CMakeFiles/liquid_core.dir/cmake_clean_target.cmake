file(REMOVE_RECURSE
  "libliquid_core.a"
)
