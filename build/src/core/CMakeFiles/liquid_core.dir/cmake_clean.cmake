file(REMOVE_RECURSE
  "CMakeFiles/liquid_core.dir/architectures.cc.o"
  "CMakeFiles/liquid_core.dir/architectures.cc.o.d"
  "CMakeFiles/liquid_core.dir/liquid.cc.o"
  "CMakeFiles/liquid_core.dir/liquid.cc.o.d"
  "libliquid_core.a"
  "libliquid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
