file(REMOVE_RECURSE
  "CMakeFiles/liquid_mapreduce.dir/mapreduce.cc.o"
  "CMakeFiles/liquid_mapreduce.dir/mapreduce.cc.o.d"
  "libliquid_mapreduce.a"
  "libliquid_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
