file(REMOVE_RECURSE
  "libliquid_mapreduce.a"
)
