# Empty dependencies file for liquid_mapreduce.
# This may be replaced when dependencies are built.
