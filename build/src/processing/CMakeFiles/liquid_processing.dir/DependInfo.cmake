
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/processing/job.cc" "src/processing/CMakeFiles/liquid_processing.dir/job.cc.o" "gcc" "src/processing/CMakeFiles/liquid_processing.dir/job.cc.o.d"
  "/root/repo/src/processing/operators.cc" "src/processing/CMakeFiles/liquid_processing.dir/operators.cc.o" "gcc" "src/processing/CMakeFiles/liquid_processing.dir/operators.cc.o.d"
  "/root/repo/src/processing/pipeline.cc" "src/processing/CMakeFiles/liquid_processing.dir/pipeline.cc.o" "gcc" "src/processing/CMakeFiles/liquid_processing.dir/pipeline.cc.o.d"
  "/root/repo/src/processing/state_store.cc" "src/processing/CMakeFiles/liquid_processing.dir/state_store.cc.o" "gcc" "src/processing/CMakeFiles/liquid_processing.dir/state_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/liquid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/liquid_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/messaging/CMakeFiles/liquid_messaging.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/liquid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/liquid_coord.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
