# Empty dependencies file for liquid_processing.
# This may be replaced when dependencies are built.
