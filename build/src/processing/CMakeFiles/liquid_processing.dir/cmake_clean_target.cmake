file(REMOVE_RECURSE
  "libliquid_processing.a"
)
