file(REMOVE_RECURSE
  "CMakeFiles/liquid_processing.dir/job.cc.o"
  "CMakeFiles/liquid_processing.dir/job.cc.o.d"
  "CMakeFiles/liquid_processing.dir/operators.cc.o"
  "CMakeFiles/liquid_processing.dir/operators.cc.o.d"
  "CMakeFiles/liquid_processing.dir/pipeline.cc.o"
  "CMakeFiles/liquid_processing.dir/pipeline.cc.o.d"
  "CMakeFiles/liquid_processing.dir/state_store.cc.o"
  "CMakeFiles/liquid_processing.dir/state_store.cc.o.d"
  "libliquid_processing.a"
  "libliquid_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
