# CMake generated Testfile for 
# Source directory: /root/repo/src/isolation
# Build directory: /root/repo/build/src/isolation
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
