
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isolation/container.cc" "src/isolation/CMakeFiles/liquid_isolation.dir/container.cc.o" "gcc" "src/isolation/CMakeFiles/liquid_isolation.dir/container.cc.o.d"
  "/root/repo/src/isolation/scheduler.cc" "src/isolation/CMakeFiles/liquid_isolation.dir/scheduler.cc.o" "gcc" "src/isolation/CMakeFiles/liquid_isolation.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/liquid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
