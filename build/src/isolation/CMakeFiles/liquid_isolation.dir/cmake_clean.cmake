file(REMOVE_RECURSE
  "CMakeFiles/liquid_isolation.dir/container.cc.o"
  "CMakeFiles/liquid_isolation.dir/container.cc.o.d"
  "CMakeFiles/liquid_isolation.dir/scheduler.cc.o"
  "CMakeFiles/liquid_isolation.dir/scheduler.cc.o.d"
  "libliquid_isolation.a"
  "libliquid_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
