file(REMOVE_RECURSE
  "libliquid_isolation.a"
)
