# Empty dependencies file for liquid_isolation.
# This may be replaced when dependencies are built.
