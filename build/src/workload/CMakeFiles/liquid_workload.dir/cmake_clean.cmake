file(REMOVE_RECURSE
  "CMakeFiles/liquid_workload.dir/generators.cc.o"
  "CMakeFiles/liquid_workload.dir/generators.cc.o.d"
  "libliquid_workload.a"
  "libliquid_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
