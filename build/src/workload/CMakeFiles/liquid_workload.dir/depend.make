# Empty dependencies file for liquid_workload.
# This may be replaced when dependencies are built.
