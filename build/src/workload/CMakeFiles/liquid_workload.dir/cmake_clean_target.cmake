file(REMOVE_RECURSE
  "libliquid_workload.a"
)
