
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk.cc" "src/storage/CMakeFiles/liquid_storage.dir/disk.cc.o" "gcc" "src/storage/CMakeFiles/liquid_storage.dir/disk.cc.o.d"
  "/root/repo/src/storage/log.cc" "src/storage/CMakeFiles/liquid_storage.dir/log.cc.o" "gcc" "src/storage/CMakeFiles/liquid_storage.dir/log.cc.o.d"
  "/root/repo/src/storage/log_segment.cc" "src/storage/CMakeFiles/liquid_storage.dir/log_segment.cc.o" "gcc" "src/storage/CMakeFiles/liquid_storage.dir/log_segment.cc.o.d"
  "/root/repo/src/storage/page_cache.cc" "src/storage/CMakeFiles/liquid_storage.dir/page_cache.cc.o" "gcc" "src/storage/CMakeFiles/liquid_storage.dir/page_cache.cc.o.d"
  "/root/repo/src/storage/record.cc" "src/storage/CMakeFiles/liquid_storage.dir/record.cc.o" "gcc" "src/storage/CMakeFiles/liquid_storage.dir/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/liquid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
