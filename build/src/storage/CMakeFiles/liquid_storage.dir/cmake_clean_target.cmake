file(REMOVE_RECURSE
  "libliquid_storage.a"
)
