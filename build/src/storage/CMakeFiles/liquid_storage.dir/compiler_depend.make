# Empty compiler generated dependencies file for liquid_storage.
# This may be replaced when dependencies are built.
