file(REMOVE_RECURSE
  "CMakeFiles/liquid_storage.dir/disk.cc.o"
  "CMakeFiles/liquid_storage.dir/disk.cc.o.d"
  "CMakeFiles/liquid_storage.dir/log.cc.o"
  "CMakeFiles/liquid_storage.dir/log.cc.o.d"
  "CMakeFiles/liquid_storage.dir/log_segment.cc.o"
  "CMakeFiles/liquid_storage.dir/log_segment.cc.o.d"
  "CMakeFiles/liquid_storage.dir/page_cache.cc.o"
  "CMakeFiles/liquid_storage.dir/page_cache.cc.o.d"
  "CMakeFiles/liquid_storage.dir/record.cc.o"
  "CMakeFiles/liquid_storage.dir/record.cc.o.d"
  "libliquid_storage.a"
  "libliquid_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
