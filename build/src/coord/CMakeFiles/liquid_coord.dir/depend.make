# Empty dependencies file for liquid_coord.
# This may be replaced when dependencies are built.
