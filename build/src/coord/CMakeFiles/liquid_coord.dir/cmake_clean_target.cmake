file(REMOVE_RECURSE
  "libliquid_coord.a"
)
