file(REMOVE_RECURSE
  "CMakeFiles/liquid_coord.dir/coordination_service.cc.o"
  "CMakeFiles/liquid_coord.dir/coordination_service.cc.o.d"
  "CMakeFiles/liquid_coord.dir/leader_election.cc.o"
  "CMakeFiles/liquid_coord.dir/leader_election.cc.o.d"
  "libliquid_coord.a"
  "libliquid_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
