# Empty dependencies file for liquid_dfs.
# This may be replaced when dependencies are built.
