file(REMOVE_RECURSE
  "CMakeFiles/liquid_dfs.dir/dfs.cc.o"
  "CMakeFiles/liquid_dfs.dir/dfs.cc.o.d"
  "libliquid_dfs.a"
  "libliquid_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
