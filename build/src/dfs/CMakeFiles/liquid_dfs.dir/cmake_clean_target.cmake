file(REMOVE_RECURSE
  "libliquid_dfs.a"
)
