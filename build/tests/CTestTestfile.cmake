# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/coord_tests[1]_include.cmake")
include("/root/repo/build/tests/storage_tests[1]_include.cmake")
include("/root/repo/build/tests/kv_tests[1]_include.cmake")
include("/root/repo/build/tests/messaging_tests[1]_include.cmake")
include("/root/repo/build/tests/processing_tests[1]_include.cmake")
include("/root/repo/build/tests/isolation_tests[1]_include.cmake")
include("/root/repo/build/tests/baseline_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
