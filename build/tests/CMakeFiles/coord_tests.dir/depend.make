# Empty dependencies file for coord_tests.
# This may be replaced when dependencies are built.
