file(REMOVE_RECURSE
  "CMakeFiles/coord_tests.dir/coord/coordination_test.cc.o"
  "CMakeFiles/coord_tests.dir/coord/coordination_test.cc.o.d"
  "CMakeFiles/coord_tests.dir/coord/leader_election_test.cc.o"
  "CMakeFiles/coord_tests.dir/coord/leader_election_test.cc.o.d"
  "coord_tests"
  "coord_tests.pdb"
  "coord_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coord_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
