# Empty compiler generated dependencies file for isolation_tests.
# This may be replaced when dependencies are built.
