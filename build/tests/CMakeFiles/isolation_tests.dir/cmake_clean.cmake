file(REMOVE_RECURSE
  "CMakeFiles/isolation_tests.dir/isolation/scheduler_test.cc.o"
  "CMakeFiles/isolation_tests.dir/isolation/scheduler_test.cc.o.d"
  "isolation_tests"
  "isolation_tests.pdb"
  "isolation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
