# Empty dependencies file for processing_tests.
# This may be replaced when dependencies are built.
