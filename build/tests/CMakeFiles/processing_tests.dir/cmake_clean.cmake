file(REMOVE_RECURSE
  "CMakeFiles/processing_tests.dir/processing/exactly_once_test.cc.o"
  "CMakeFiles/processing_tests.dir/processing/exactly_once_test.cc.o.d"
  "CMakeFiles/processing_tests.dir/processing/incremental_test.cc.o"
  "CMakeFiles/processing_tests.dir/processing/incremental_test.cc.o.d"
  "CMakeFiles/processing_tests.dir/processing/job_test.cc.o"
  "CMakeFiles/processing_tests.dir/processing/job_test.cc.o.d"
  "CMakeFiles/processing_tests.dir/processing/operators_test.cc.o"
  "CMakeFiles/processing_tests.dir/processing/operators_test.cc.o.d"
  "CMakeFiles/processing_tests.dir/processing/pipeline_test.cc.o"
  "CMakeFiles/processing_tests.dir/processing/pipeline_test.cc.o.d"
  "CMakeFiles/processing_tests.dir/processing/recovery_test.cc.o"
  "CMakeFiles/processing_tests.dir/processing/recovery_test.cc.o.d"
  "CMakeFiles/processing_tests.dir/processing/state_store_test.cc.o"
  "CMakeFiles/processing_tests.dir/processing/state_store_test.cc.o.d"
  "processing_tests"
  "processing_tests.pdb"
  "processing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
