
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/messaging/access_control_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/access_control_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/access_control_test.cc.o.d"
  "/root/repo/tests/messaging/admin_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/admin_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/admin_test.cc.o.d"
  "/root/repo/tests/messaging/cluster_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/cluster_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/cluster_test.cc.o.d"
  "/root/repo/tests/messaging/consumer_group_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/consumer_group_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/consumer_group_test.cc.o.d"
  "/root/repo/tests/messaging/failover_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/failover_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/failover_test.cc.o.d"
  "/root/repo/tests/messaging/idempotence_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/idempotence_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/idempotence_test.cc.o.d"
  "/root/repo/tests/messaging/liveness_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/liveness_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/liveness_test.cc.o.d"
  "/root/repo/tests/messaging/offset_manager_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/offset_manager_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/offset_manager_test.cc.o.d"
  "/root/repo/tests/messaging/produce_consume_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/produce_consume_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/produce_consume_test.cc.o.d"
  "/root/repo/tests/messaging/quota_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/quota_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/quota_test.cc.o.d"
  "/root/repo/tests/messaging/replication_property_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/replication_property_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/replication_property_test.cc.o.d"
  "/root/repo/tests/messaging/replication_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/replication_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/replication_test.cc.o.d"
  "/root/repo/tests/messaging/transaction_test.cc" "tests/CMakeFiles/messaging_tests.dir/messaging/transaction_test.cc.o" "gcc" "tests/CMakeFiles/messaging_tests.dir/messaging/transaction_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/liquid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/processing/CMakeFiles/liquid_processing.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/liquid_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/messaging/CMakeFiles/liquid_messaging.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/liquid_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/isolation/CMakeFiles/liquid_isolation.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/liquid_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/liquid_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/liquid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/liquid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/liquid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
