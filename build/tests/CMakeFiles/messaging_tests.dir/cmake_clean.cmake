file(REMOVE_RECURSE
  "CMakeFiles/messaging_tests.dir/messaging/access_control_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/access_control_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/admin_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/admin_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/cluster_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/cluster_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/consumer_group_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/consumer_group_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/failover_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/failover_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/idempotence_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/idempotence_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/liveness_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/liveness_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/offset_manager_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/offset_manager_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/produce_consume_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/produce_consume_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/quota_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/quota_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/replication_property_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/replication_property_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/replication_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/replication_test.cc.o.d"
  "CMakeFiles/messaging_tests.dir/messaging/transaction_test.cc.o"
  "CMakeFiles/messaging_tests.dir/messaging/transaction_test.cc.o.d"
  "messaging_tests"
  "messaging_tests.pdb"
  "messaging_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/messaging_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
