# Empty compiler generated dependencies file for messaging_tests.
# This may be replaced when dependencies are built.
