# Empty compiler generated dependencies file for kv_tests.
# This may be replaced when dependencies are built.
