file(REMOVE_RECURSE
  "CMakeFiles/kv_tests.dir/kv/bloom_test.cc.o"
  "CMakeFiles/kv_tests.dir/kv/bloom_test.cc.o.d"
  "CMakeFiles/kv_tests.dir/kv/kv_store_test.cc.o"
  "CMakeFiles/kv_tests.dir/kv/kv_store_test.cc.o.d"
  "CMakeFiles/kv_tests.dir/kv/sstable_test.cc.o"
  "CMakeFiles/kv_tests.dir/kv/sstable_test.cc.o.d"
  "CMakeFiles/kv_tests.dir/kv/wal_test.cc.o"
  "CMakeFiles/kv_tests.dir/kv/wal_test.cc.o.d"
  "kv_tests"
  "kv_tests.pdb"
  "kv_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
