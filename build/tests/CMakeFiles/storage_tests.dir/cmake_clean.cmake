file(REMOVE_RECURSE
  "CMakeFiles/storage_tests.dir/storage/disk_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/disk_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/log_compaction_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/log_compaction_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/log_property_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/log_property_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/log_segment_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/log_segment_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/log_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/log_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/page_cache_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/page_cache_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/record_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/record_test.cc.o.d"
  "storage_tests"
  "storage_tests.pdb"
  "storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
