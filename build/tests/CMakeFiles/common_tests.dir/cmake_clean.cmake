file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/coding_test.cc.o"
  "CMakeFiles/common_tests.dir/common/coding_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/crc32c_test.cc.o"
  "CMakeFiles/common_tests.dir/common/crc32c_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/metrics_test.cc.o"
  "CMakeFiles/common_tests.dir/common/metrics_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/properties_test.cc.o"
  "CMakeFiles/common_tests.dir/common/properties_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/random_test.cc.o"
  "CMakeFiles/common_tests.dir/common/random_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o"
  "CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
