file(REMOVE_RECURSE
  "../bench/bench_anticaching"
  "../bench/bench_anticaching.pdb"
  "CMakeFiles/bench_anticaching.dir/bench_anticaching.cc.o"
  "CMakeFiles/bench_anticaching.dir/bench_anticaching.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anticaching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
