# Empty compiler generated dependencies file for bench_anticaching.
# This may be replaced when dependencies are built.
