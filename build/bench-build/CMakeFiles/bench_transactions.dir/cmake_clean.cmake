file(REMOVE_RECURSE
  "../bench/bench_transactions"
  "../bench/bench_transactions.pdb"
  "CMakeFiles/bench_transactions.dir/bench_transactions.cc.o"
  "CMakeFiles/bench_transactions.dir/bench_transactions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
