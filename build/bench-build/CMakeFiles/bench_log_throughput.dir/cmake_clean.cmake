file(REMOVE_RECURSE
  "../bench/bench_log_throughput"
  "../bench/bench_log_throughput.pdb"
  "CMakeFiles/bench_log_throughput.dir/bench_log_throughput.cc.o"
  "CMakeFiles/bench_log_throughput.dir/bench_log_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_log_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
