file(REMOVE_RECURSE
  "../bench/bench_pipeline_latency"
  "../bench/bench_pipeline_latency.pdb"
  "CMakeFiles/bench_pipeline_latency.dir/bench_pipeline_latency.cc.o"
  "CMakeFiles/bench_pipeline_latency.dir/bench_pipeline_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
