file(REMOVE_RECURSE
  "../bench/bench_durability"
  "../bench/bench_durability.pdb"
  "CMakeFiles/bench_durability.dir/bench_durability.cc.o"
  "CMakeFiles/bench_durability.dir/bench_durability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
