file(REMOVE_RECURSE
  "../bench/bench_architectures"
  "../bench/bench_architectures.pdb"
  "CMakeFiles/bench_architectures.dir/bench_architectures.cc.o"
  "CMakeFiles/bench_architectures.dir/bench_architectures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
