# Empty dependencies file for bench_state_recovery.
# This may be replaced when dependencies are built.
