file(REMOVE_RECURSE
  "../bench/bench_state_recovery"
  "../bench/bench_state_recovery.pdb"
  "CMakeFiles/bench_state_recovery.dir/bench_state_recovery.cc.o"
  "CMakeFiles/bench_state_recovery.dir/bench_state_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
