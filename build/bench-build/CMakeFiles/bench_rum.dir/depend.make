# Empty dependencies file for bench_rum.
# This may be replaced when dependencies are built.
