file(REMOVE_RECURSE
  "../bench/bench_rum"
  "../bench/bench_rum.pdb"
  "CMakeFiles/bench_rum.dir/bench_rum.cc.o"
  "CMakeFiles/bench_rum.dir/bench_rum.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
