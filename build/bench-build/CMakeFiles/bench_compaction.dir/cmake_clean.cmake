file(REMOVE_RECURSE
  "../bench/bench_compaction"
  "../bench/bench_compaction.pdb"
  "CMakeFiles/bench_compaction.dir/bench_compaction.cc.o"
  "CMakeFiles/bench_compaction.dir/bench_compaction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
