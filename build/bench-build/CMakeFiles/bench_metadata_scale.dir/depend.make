# Empty dependencies file for bench_metadata_scale.
# This may be replaced when dependencies are built.
