file(REMOVE_RECURSE
  "../bench/bench_metadata_scale"
  "../bench/bench_metadata_scale.pdb"
  "CMakeFiles/bench_metadata_scale.dir/bench_metadata_scale.cc.o"
  "CMakeFiles/bench_metadata_scale.dir/bench_metadata_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metadata_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
