file(REMOVE_RECURSE
  "../bench/bench_consumer_groups"
  "../bench/bench_consumer_groups.pdb"
  "CMakeFiles/bench_consumer_groups.dir/bench_consumer_groups.cc.o"
  "CMakeFiles/bench_consumer_groups.dir/bench_consumer_groups.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consumer_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
