# Empty compiler generated dependencies file for bench_consumer_groups.
# This may be replaced when dependencies are built.
