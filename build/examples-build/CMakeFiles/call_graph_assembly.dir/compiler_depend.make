# Empty compiler generated dependencies file for call_graph_assembly.
# This may be replaced when dependencies are built.
