file(REMOVE_RECURSE
  "../examples/call_graph_assembly"
  "../examples/call_graph_assembly.pdb"
  "CMakeFiles/call_graph_assembly.dir/call_graph_assembly.cpp.o"
  "CMakeFiles/call_graph_assembly.dir/call_graph_assembly.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_graph_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
