
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/exactly_once_etl.cpp" "examples-build/CMakeFiles/exactly_once_etl.dir/exactly_once_etl.cpp.o" "gcc" "examples-build/CMakeFiles/exactly_once_etl.dir/exactly_once_etl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/liquid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/processing/CMakeFiles/liquid_processing.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/liquid_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/messaging/CMakeFiles/liquid_messaging.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/liquid_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/isolation/CMakeFiles/liquid_isolation.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/liquid_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/liquid_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/liquid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/liquid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/liquid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
