# Empty compiler generated dependencies file for exactly_once_etl.
# This may be replaced when dependencies are built.
