file(REMOVE_RECURSE
  "../examples/exactly_once_etl"
  "../examples/exactly_once_etl.pdb"
  "CMakeFiles/exactly_once_etl.dir/exactly_once_etl.cpp.o"
  "CMakeFiles/exactly_once_etl.dir/exactly_once_etl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exactly_once_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
