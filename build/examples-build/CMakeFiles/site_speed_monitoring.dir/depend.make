# Empty dependencies file for site_speed_monitoring.
# This may be replaced when dependencies are built.
