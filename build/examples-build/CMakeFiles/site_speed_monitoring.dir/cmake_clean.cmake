file(REMOVE_RECURSE
  "../examples/site_speed_monitoring"
  "../examples/site_speed_monitoring.pdb"
  "CMakeFiles/site_speed_monitoring.dir/site_speed_monitoring.cpp.o"
  "CMakeFiles/site_speed_monitoring.dir/site_speed_monitoring.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_speed_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
