file(REMOVE_RECURSE
  "../examples/operational_analytics"
  "../examples/operational_analytics.pdb"
  "CMakeFiles/operational_analytics.dir/operational_analytics.cpp.o"
  "CMakeFiles/operational_analytics.dir/operational_analytics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operational_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
