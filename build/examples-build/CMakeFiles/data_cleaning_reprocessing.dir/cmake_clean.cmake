file(REMOVE_RECURSE
  "../examples/data_cleaning_reprocessing"
  "../examples/data_cleaning_reprocessing.pdb"
  "CMakeFiles/data_cleaning_reprocessing.dir/data_cleaning_reprocessing.cpp.o"
  "CMakeFiles/data_cleaning_reprocessing.dir/data_cleaning_reprocessing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_cleaning_reprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
