# Empty compiler generated dependencies file for data_cleaning_reprocessing.
# This may be replaced when dependencies are built.
