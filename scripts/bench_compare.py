#!/usr/bin/env python3
"""Diff two benchmark JSON files and flag regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold PCT] [--strict]
                     [--markdown]

Understands both JSON shapes the repo's benches emit:

  * the hand-rolled emitters (bench_parallel_produce, bench_pipeline_latency):
      {"results": [{"name": ..., "records_per_sec": ...}, ...]}
    Any numeric field ending in `_per_sec` is treated as higher-is-better;
    fields ending in `_us` or `_ms` as lower-is-better latencies. A few
    suffix-less staging-ring fields (bench_insert_sweep's E17 axis) have an
    explicit direction in DIRECTION_OVERRIDES: lower staging_depth /
    staging_ring_full / append_locks_per_krec is better (less backlog,
    backpressure and lock traffic), higher ring_occupancy is better (the
    producers actually run ahead of the drainer).

  * google-benchmark's --benchmark_out report (bench_log_throughput):
      {"benchmarks": [{"name": ..., "real_time": ..., "items_per_second": ...}]}
    `items_per_second`/`bytes_per_second` are higher-is-better when present,
    otherwise `real_time` (lower-is-better) is compared.

Exit status: 0 when no comparable metric regressed by more than the threshold
(default 10%), 1 when at least one did, 2 on usage/parse errors. Benchmarks
or metrics present in the baseline but missing from the current report are
warned about on stderr (coverage silently shrinking is how regressions hide);
with --strict those warnings fail the gate too. Entries new in the current
report are informational only (sweeps grow).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"bench_compare: cannot read {path}: {exc}")


# Suffix-less metrics whose improvement direction is semantic, not lexical
# (the staging-ring axis of bench_insert_sweep, see EXPERIMENTS.md E17; the
# chaos-soak invariant counters, see EXPERIMENTS.md E18). True: higher is
# better.
DIRECTION_OVERRIDES = {
    "staging_depth": False,
    "staging_ring_full": False,
    "append_locks_per_krec": False,
    "ring_occupancy": True,
    "acked_records": True,
    "acked_recovered": True,
    "lost_acked": False,
    "duplicate_records": False,
    "order_violations": False,
    "consumer_redeliveries": False,
    "acked_not_consumed": False,
    "kills": True,
}


def extract_metrics(doc):
    """Returns {bench_name: {metric_name: (value, higher_is_better)}}."""
    out = {}
    if "benchmarks" in doc:  # google-benchmark report.
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            metrics = {}
            for key, better in (("items_per_second", True),
                                ("bytes_per_second", True)):
                if isinstance(entry.get(key), (int, float)):
                    metrics[key] = (float(entry[key]), better)
            if not metrics and isinstance(entry.get("real_time"), (int, float)):
                metrics["real_time"] = (float(entry["real_time"]), False)
            if metrics:
                out[entry["name"]] = metrics
        return out
    for entry in doc.get("results", []):  # Hand-rolled emitters.
        metrics = {}
        identity = []
        for key, value in entry.items():
            is_number = (isinstance(value, (int, float))
                         and not isinstance(value, bool))
            if is_number and key in DIRECTION_OVERRIDES:
                metrics[key] = (float(value), DIRECTION_OVERRIDES[key])
            elif is_number and key.endswith("_per_sec"):
                metrics[key] = (float(value), True)
            elif is_number and (key.endswith("_us") or key.endswith("_ms")):
                metrics[key] = (float(value), False)
            elif key != "name" and (isinstance(value, str)
                                    or (isinstance(value, int)
                                        and not isinstance(value, bool))):
                # Non-metric string/int fields (stages, threads, mode, ...)
                # identify the sweep point when the emitter has no "name".
                # Floats are excluded: they are derived measurements (e.g.
                # "speedup") that vary run to run and would break matching.
                identity.append(f"{key}={value}")
        name = entry.get("name") or "/".join(identity)
        if name and metrics:
            out[name] = metrics
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--strict", action="store_true",
                        help="fail when a baseline benchmark or metric is "
                             "missing from the current report")
    parser.add_argument("--markdown", action="store_true",
                        help="print the comparison as a GitHub-flavored "
                             "markdown table (for PR comments / job "
                             "summaries) instead of aligned plain text")
    args = parser.parse_args()

    base = extract_metrics(load(args.baseline))
    curr = extract_metrics(load(args.current))
    if not base or not curr:
        sys.exit("bench_compare: no comparable benchmark entries found")

    regressions = []
    missing = []
    rows = []
    for name in sorted(set(base) | set(curr)):
        if name not in base:
            rows.append((name, "-", "(new benchmark)"))
            continue
        if name not in curr:
            rows.append((name, "-", "(dropped from current)"))
            missing.append(f"benchmark {name} missing from current report")
            continue
        for metric in sorted(set(base[name]) - set(curr[name])):
            missing.append(f"metric {name}:{metric} missing from current "
                           f"report")
        for metric in sorted(set(base[name]) & set(curr[name])):
            old, higher_better = base[name][metric]
            new, _ = curr[name][metric]
            if old == 0:
                continue
            delta_pct = (new - old) / old * 100.0
            regressed = (delta_pct < -args.threshold if higher_better
                         else delta_pct > args.threshold)
            marker = "REGRESSION" if regressed else ""
            rows.append((f"{name}:{metric}", f"{delta_pct:+.1f}%",
                         f"{old:.6g} -> {new:.6g} {marker}".rstrip()))
            if regressed:
                regressions.append((name, metric, delta_pct))

    if args.markdown:
        print("| benchmark:metric | delta | detail |")
        print("| --- | ---: | --- |")
        for name, delta, detail in rows:
            detail = detail.replace(" REGRESSION", " **REGRESSION**")
            print(f"| {name} | {delta} | {detail} |")
    else:
        width = max(len(r[0]) for r in rows) if rows else 0
        for name, delta, detail in rows:
            print(f"{name:<{width}}  {delta:>8}  {detail}")

    for warning in missing:
        print(f"bench_compare: warning: {warning}", file=sys.stderr)
    if missing and args.strict:
        print(f"\n--strict: {len(missing)} baseline entr"
              f"{'y' if len(missing) == 1 else 'ies'} missing from the "
              f"current report", file=sys.stderr)
        return 1
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, metric, delta_pct in regressions:
            print(f"  {name}:{metric} {delta_pct:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
