#!/usr/bin/env bash
# Documentation gate, called from check.sh (also runnable standalone).
#
# Two checks, both plain POSIX tooling so they run everywhere:
#   1. Intra-repo markdown links: every relative link target in a checked-in
#      .md file must exist on disk (external http(s)/mailto links and pure
#      #anchors are not checked).
#   2. Public API doc comments: every top-level `class`/`struct` declared at
#      column 0 of a public header under src/common, src/messaging,
#      src/processing, src/storage, and src/coord must be immediately
#      preceded by a `///` doc comment
#      (or carry one inline). Forward declarations and test/detail headers
#      are exempt.
#
# Exit status is the number of failing checks (0 = clean).
set -u -o pipefail

cd "$(dirname "$0")/.."

FAILURES=0

# ---- 1. Broken intra-repo markdown links -----------------------------------
echo "-- markdown link check"
broken=0
while IFS= read -r -d '' md; do
  dir="$(dirname "${md}")"
  # Pull out ](target) link targets, one per line.
  while IFS= read -r target; do
    case "${target}" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
      *' '*|*'	'*) continue ;;  # C++ lambdas in code blocks look like ](...).
    esac
    # Strip a trailing #anchor before checking the path.
    path="${target%%#*}"
    [ -z "${path}" ] && continue
    if [ ! -e "${dir}/${path}" ] && [ ! -e "${path}" ]; then
      echo "BROKEN LINK: ${md}: (${target})"
      broken=$((broken + 1))
    fi
  done < <(grep -o ']([^)]*)' "${md}" 2>/dev/null | sed 's/^](//; s/)$//')
done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*' -print0)
if [ "${broken}" -eq 0 ]; then
  echo "OK: all intra-repo markdown links resolve"
else
  echo "FAIL: ${broken} broken markdown link(s)"
  FAILURES=$((FAILURES + 1))
fi

# ---- 2. Public classes without /// doc comments ----------------------------
echo "-- public API doc-comment check"
undocumented=0
for dir in src/common src/messaging src/processing src/storage src/coord; do
  [ -d "${dir}" ] || continue
  while IFS= read -r -d '' header; do
    # awk state machine: remember whether the previous non-blank line was a
    # /// comment; flag column-0 class/struct declarations that are neither
    # preceded by one nor forward declarations (ending in ';') nor carrying
    # an inline /// on the same line.
    while IFS= read -r hit; do
      echo "UNDOCUMENTED: ${header}:${hit}"
      undocumented=$((undocumented + 1))
    done < <(awk '
      /^\/\/\// { prev_doc = 1; next }
      /^template[ \t<]/ { next }  # doc comment may precede the template line
      /^(class|struct) [A-Za-z]/ {
        if ($0 !~ /;[ \t]*$/ && $0 !~ /\/\/\// && !prev_doc) {
          print NR ": " $0
        }
      }
      /[^ \t]/ { prev_doc = 0 }
    ' "${header}")
  done < <(find "${dir}" -name '*.h' -print0)
done
if [ "${undocumented}" -eq 0 ]; then
  echo "OK: every public class/struct in src/{common,messaging,processing,storage,coord} has a /// doc comment"
else
  echo "FAIL: ${undocumented} undocumented public class(es)"
  FAILURES=$((FAILURES + 1))
fi

exit "${FAILURES}"
