#!/usr/bin/env bash
# Pre-merge concurrency gate (see ROADMAP.md "Open items").
#
# Runs, in order:
#   1. Clang thread-safety annotation build (-Wthread-safety as errors).
#   2. clang-tidy over src/ with the checks pinned in .clang-tidy.
#   3. ThreadSanitizer build + the full ctest suite.
#
# Any thread-safety warning, clang-tidy error, or TSan report fails the
# script (non-zero exit). Steps that need Clang tooling are skipped with a
# notice when the tools are not installed — the TSan step works with GCC and
# always runs.
set -u -o pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=0

note() { printf '\n== %s ==\n' "$*"; }
skip() { printf 'SKIP: %s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; FAILURES=$((FAILURES + 1)); }

# ---- 1. Clang thread-safety annotation build -------------------------------
note "thread-safety annotation build (clang)"
if command -v clang++ >/dev/null 2>&1; then
  if cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_BUILD_TYPE=Release >/dev/null \
     && cmake --build build-tsa -j "${JOBS}"; then
    echo "OK: annotation build clean"
  else
    fail "thread-safety annotation build reported warnings/errors"
  fi
else
  skip "clang++ not installed; annotations are no-ops under this compiler"
fi

# ---- 2. clang-tidy ---------------------------------------------------------
note "clang-tidy (.clang-tidy: bugprone/concurrency/performance/modernize)"
if command -v clang-tidy >/dev/null 2>&1; then
  # A plain compilation database (no sanitizers) for the tidy run.
  if ! cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null; then
    fail "cmake configure for clang-tidy failed"
  elif find src -name '*.cc' -print0 \
       | xargs -0 -P "${JOBS}" -n 8 clang-tidy -p build-tidy --quiet \
         --warnings-as-errors='*'; then
    echo "OK: clang-tidy clean"
  else
    fail "clang-tidy reported errors"
  fi
else
  skip "clang-tidy not installed"
fi

# ---- 3. ThreadSanitizer build + full test suite ----------------------------
note "ThreadSanitizer build + ctest"
# halt_on_error: make any race a test failure, not just a log line.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
if cmake -B build-tsan -S . -DLIQUID_SANITIZE=thread >/dev/null \
   && cmake --build build-tsan -j "${JOBS}" \
   && ctest --test-dir build-tsan --output-on-failure -j "${JOBS}"; then
  echo "OK: TSan suite clean"
else
  fail "ThreadSanitizer build/test reported failures"
fi

# ----------------------------------------------------------------------------
if [ "${FAILURES}" -ne 0 ]; then
  note "check.sh: ${FAILURES} gate(s) failed"
  exit 1
fi
note "check.sh: all gates passed"
