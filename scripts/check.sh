#!/usr/bin/env bash
# Pre-merge correctness gate (see ROADMAP.md "Open items").
#
# Runs, in order:
#   1. Clang thread-safety annotation build (-Wthread-safety as errors).
#   2. clang-tidy over src/, tools/, bench/ and fuzz/ with the checks pinned
#      in .clang-tidy (per-directory overrides relax printf-heavy tool code).
#   3. liquid-lint: project-semantic rules (snapshot-then-call, lock order,
#      whole-program lock-graph vs. the declared hierarchy, hot-path
#      allocation/blocking/atomic-ordering discipline, GUARDED_BY coverage,
#      metric naming, hot-path metric lookups, suppression hygiene incl.
#      stale suppressions) via tools/lint/liquid_lint.py. Emits the observed
#      lock-order graph to build/lint/lock_graph.dot. Runs everywhere:
#      libclang when available, a built-in structural parser otherwise.
#   4. ThreadSanitizer build + the full ctest suite.
#   5. AddressSanitizer build + the full ctest suite.
#   6. UndefinedBehaviorSanitizer build + the full ctest suite.
#   7. Deterministic fuzz smoke: every fuzz/ harness replays its checked-in
#      corpus, then runs a bounded batch of deterministic mutations.
#   8. Docs gate: broken intra-repo markdown links and public headers whose
#      classes lack /// doc comments (scripts/check_docs.sh).
#   9. Bench emission: Release builds of bench_pipeline_latency,
#      bench_log_throughput, bench_parallel_produce and bench_insert_sweep
#      run with --json and must produce their BENCH_*.json artifacts (diff
#      two runs with scripts/bench_compare.py).
#  10. Chaos smoke: bench_chaos_soak --quick must pass (zero acked-record
#      loss/duplicates/reordering under the seeded fault schedule) and the
#      same soak with --broken-acks must FAIL, proving the invariant checks
#      detect an ack-before-durable build.
#
# Any thread-safety warning, clang-tidy error, sanitizer report, or fuzzer
# crash fails the script (non-zero exit). Steps that need Clang tooling are
# skipped with a notice when the tools are not installed — the sanitizer and
# fuzz-smoke steps work with GCC and always run.
set -u -o pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=0

note() { printf '\n== %s ==\n' "$*"; }
skip() { printf 'SKIP: %s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; FAILURES=$((FAILURES + 1)); }

# ---- 1. Clang thread-safety annotation build -------------------------------
note "thread-safety annotation build (clang)"
if command -v clang++ >/dev/null 2>&1; then
  if cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_BUILD_TYPE=Release >/dev/null \
     && cmake --build build-tsa -j "${JOBS}"; then
    echo "OK: annotation build clean"
  else
    fail "thread-safety annotation build reported warnings/errors"
  fi
else
  skip "clang++ not installed; annotations are no-ops under this compiler"
fi

# ---- 2. clang-tidy ---------------------------------------------------------
note "clang-tidy (.clang-tidy: bugprone/concurrency/performance/modernize)"
if command -v clang-tidy >/dev/null 2>&1; then
  # A plain compilation database (no sanitizers) for the tidy run.
  if ! cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null; then
    fail "cmake configure for clang-tidy failed"
  elif find src tools bench fuzz -name '*.cc' \
         -not -path 'tools/lint/testdata/*' -print0 \
       | xargs -0 -P "${JOBS}" -n 8 clang-tidy -p build-tidy --quiet \
         --warnings-as-errors='*'; then
    echo "OK: clang-tidy clean"
  else
    fail "clang-tidy reported errors"
  fi
else
  skip "clang-tidy not installed"
fi

# ---- 3. liquid-lint --------------------------------------------------------
# Needs only python3: the analyzer prefers the libclang bindings (fed by leg
# 2's compilation database when present) and falls back to its built-in
# structural parser, so this gate never silently goes dark on GCC-only boxes.
note "liquid-lint (project-semantic concurrency/observability rules)"
if command -v python3 >/dev/null 2>&1; then
  LINT_COMPDB=""
  if [ -f build-tidy/compile_commands.json ]; then
    LINT_COMPDB="--compdb=build-tidy/compile_commands.json"
  fi
  if python3 tools/lint/liquid_lint.py ${LINT_COMPDB} \
       --dot build/lint/lock_graph.dot src tools bench; then
    echo "OK: liquid-lint clean"
  else
    fail "liquid-lint reported unsuppressed findings (suppress with '// liquid-lint: allow(<rule>): <reason>' only when the invariant genuinely holds)"
  fi
else
  skip "python3 not installed"
fi

# ---- 4. ThreadSanitizer build + full test suite ----------------------------
note "ThreadSanitizer build + ctest"
# halt_on_error: make any race a test failure, not just a log line.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
if cmake -B build-tsan -S . -DLIQUID_SANITIZE=thread >/dev/null \
   && cmake --build build-tsan -j "${JOBS}" \
   && ctest --test-dir build-tsan --output-on-failure -j "${JOBS}"; then
  echo "OK: TSan suite clean"
else
  fail "ThreadSanitizer build/test reported failures"
fi

# ---- 5. AddressSanitizer build + full test suite ---------------------------
note "AddressSanitizer build + ctest"
# Fail loudly on any leak or heap error; abort so ctest sees a bad exit.
export ASAN_OPTIONS="halt_on_error=1 abort_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
if cmake -B build-asan -S . -DLIQUID_SANITIZE=address >/dev/null \
   && cmake --build build-asan -j "${JOBS}" \
   && ctest --test-dir build-asan --output-on-failure -j "${JOBS}"; then
  echo "OK: ASan suite clean"
else
  fail "AddressSanitizer build/test reported failures"
fi

# ---- 6. UndefinedBehaviorSanitizer build + full test suite -----------------
note "UndefinedBehaviorSanitizer build + ctest"
# Default UBSan only logs; halt_on_error turns any report into a test failure.
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
if cmake -B build-ubsan -S . -DLIQUID_SANITIZE=undefined >/dev/null \
   && cmake --build build-ubsan -j "${JOBS}" \
   && ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}"; then
  echo "OK: UBSan suite clean"
else
  fail "UndefinedBehaviorSanitizer build/test reported failures"
fi

# ---- 7. Deterministic fuzz smoke -------------------------------------------
# The fuzz targets build with the standalone driver by default (no libFuzzer
# needed), so this leg runs under GCC too. The ASan build from leg 5 is
# reused so any fuzz-triggered memory error is caught, not just crashes.
# Runs are deterministic (fixed mutation seed) — a failure is reproducible.
note "fuzz smoke (corpus replay + bounded deterministic mutations)"
FUZZ_RUNS="${FUZZ_RUNS:-20000}"
FUZZ_BUILD="build-asan/fuzz-build"
fuzz_smoke_ok=1
for target in fuzz_record_decode fuzz_coding fuzz_sstable fuzz_properties \
              fuzz_fault_schedule; do
  corpus="fuzz/corpus/${target#fuzz_}"
  if [ ! -x "${FUZZ_BUILD}/${target}" ]; then
    fail "fuzz target ${target} missing (did leg 5's build fail?)"
    fuzz_smoke_ok=0
    continue
  fi
  if "${FUZZ_BUILD}/${target}" "-runs=${FUZZ_RUNS}" "${corpus}"; then
    echo "OK: ${target}"
  else
    fail "${target} reported a crash or sanitizer error"
    fuzz_smoke_ok=0
  fi
done
[ "${fuzz_smoke_ok}" -eq 1 ] && echo "OK: fuzz smoke clean"

# ---- 8. Docs gate ----------------------------------------------------------
note "docs gate (markdown links + public API doc comments)"
if scripts/check_docs.sh; then
  echo "OK: docs gate clean"
else
  fail "docs gate reported problems (see lines above)"
fi

# ---- 9. Bench emission -----------------------------------------------------
# A Release build keeps the numbers meaningful; the gate only asserts the
# JSON artifacts appear — trend analysis happens outside this script
# (scripts/bench_compare.py diffs two emission runs and fails on >10%
# regressions). bench_log_throughput is filtered to one cheap leg;
# bench_parallel_produce and bench_insert_sweep run --quick (the latter's
# 5 points include the staging off/ring pair): the gate checks emission,
# not trends.
note "bench emission (pipeline_latency, log_throughput, parallel_produce, insert_sweep)"
if cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null \
   && cmake --build build-bench -j "${JOBS}" --target bench_pipeline_latency \
        bench_log_throughput bench_parallel_produce bench_insert_sweep \
   && (cd build-bench && bench/bench_pipeline_latency --json) \
   && [ -s build-bench/BENCH_pipeline_latency.json ] \
   && (cd build-bench && bench/bench_log_throughput --json \
         --benchmark_filter='BM_AppendRecordSize/100$' \
         --benchmark_min_time=0.05) \
   && [ -s build-bench/BENCH_log_throughput.json ] \
   && (cd build-bench && bench/bench_parallel_produce --quick --json) \
   && [ -s build-bench/BENCH_parallel_produce.json ] \
   && (cd build-bench && bench/bench_insert_sweep --quick --json) \
   && [ -s build-bench/BENCH_insert_sweep.json ]; then
  echo "OK: build-bench/BENCH_{pipeline_latency,log_throughput,parallel_produce,insert_sweep}.json written"
else
  fail "bench --json emission did not produce all JSON artifacts"
fi

# ---- 10. Chaos smoke --------------------------------------------------------
# Two runs of the chaos soak (DESIGN.md §7), both on the fixed default seed:
#   a) the real build must survive the fault schedule + leader power-cycles
#      with zero acked-record loss, duplicates, or reordering (exit 0);
#   b) --broken-acks (acknowledge before durable) must make the harness FAIL
#      (nonzero exit) — proving the invariant checks can actually detect an
#      acks/durability bug, not just that nothing happened.
note "chaos smoke (bench_chaos_soak --quick; --broken-acks must fail)"
if cmake --build build-bench -j "${JOBS}" --target bench_chaos_soak \
   && (cd build-bench && bench/bench_chaos_soak --quick --json) \
   && [ -s build-bench/BENCH_chaos_soak.json ]; then
  echo "OK: chaos soak invariants held (build-bench/BENCH_chaos_soak.json)"
else
  fail "chaos soak reported an invariant violation or did not emit JSON"
fi
if (cd build-bench && bench/bench_chaos_soak --quick --broken-acks \
      >/dev/null 2>&1); then
  fail "chaos soak PASSED with --broken-acks — the harness cannot detect ack-before-durable"
else
  echo "OK: --broken-acks run failed as it must"
fi

# ----------------------------------------------------------------------------
if [ "${FAILURES}" -ne 0 ]; then
  note "check.sh: ${FAILURES} gate(s) failed"
  exit 1
fi
note "check.sh: all gates passed"
