#!/usr/bin/env python3
"""Self-test for bench_compare.py: pytest-style test functions (assert-based,
no pytest dependency) replayed against small in-memory reports.

Run directly (the ctest wiring does this):
  bench_compare_test.py
or under pytest, which discovers the test_* functions as usual.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
COMPARE = os.path.join(HERE, "bench_compare.py")

BASELINE = {
    "results": [
        {"name": "produce", "records_per_sec": 1000.0, "p99_us": 50.0},
        {"name": "fetch", "records_per_sec": 2000.0},
    ]
}


def run_compare(baseline, current, *flags):
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        curr_path = os.path.join(tmp, "curr.json")
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh)
        with open(curr_path, "w", encoding="utf-8") as fh:
            json.dump(current, fh)
        return subprocess.run(
            [sys.executable, COMPARE, base_path, curr_path, *flags],
            capture_output=True, text=True)


def test_clean_comparison_passes():
    proc = run_compare(BASELINE, BASELINE)
    assert proc.returncode == 0, proc.stderr
    assert "no regressions" in proc.stdout
    assert "warning" not in proc.stderr


def test_regression_fails():
    current = {"results": [
        {"name": "produce", "records_per_sec": 500.0, "p99_us": 50.0},
        {"name": "fetch", "records_per_sec": 2000.0},
    ]}
    proc = run_compare(BASELINE, current)
    assert proc.returncode == 1, proc.stdout
    assert "REGRESSION" in proc.stdout
    assert "produce:records_per_sec" in proc.stderr


def test_missing_metric_warns_but_passes():
    current = {"results": [
        {"name": "produce", "records_per_sec": 1100.0},  # p99_us vanished
        {"name": "fetch", "records_per_sec": 2100.0},
    ]}
    proc = run_compare(BASELINE, current)
    assert proc.returncode == 0, proc.stderr
    assert "warning: metric produce:p99_us missing" in proc.stderr


def test_missing_benchmark_warns_but_passes():
    current = {"results": [
        {"name": "produce", "records_per_sec": 1100.0, "p99_us": 40.0},
    ]}
    proc = run_compare(BASELINE, current)
    assert proc.returncode == 0, proc.stderr
    assert "warning: benchmark fetch missing" in proc.stderr


def test_strict_fails_on_missing_metric():
    current = {"results": [
        {"name": "produce", "records_per_sec": 1100.0},
        {"name": "fetch", "records_per_sec": 2100.0},
    ]}
    proc = run_compare(BASELINE, current, "--strict")
    assert proc.returncode == 1, proc.stdout
    assert "--strict" in proc.stderr


def test_strict_fails_on_missing_benchmark():
    current = {"results": [
        {"name": "produce", "records_per_sec": 1100.0, "p99_us": 40.0},
    ]}
    proc = run_compare(BASELINE, current, "--strict")
    assert proc.returncode == 1, proc.stdout


def test_markdown_table_output():
    current = {"results": [
        {"name": "produce", "records_per_sec": 500.0, "p99_us": 50.0},
        {"name": "fetch", "records_per_sec": 2000.0},
    ]}
    proc = run_compare(BASELINE, current, "--markdown")
    assert proc.returncode == 1, proc.stdout  # still gates on regressions
    lines = proc.stdout.splitlines()
    assert lines[0] == "| benchmark:metric | delta | detail |"
    assert lines[1] == "| --- | ---: | --- |"
    assert any(line.startswith("| produce:records_per_sec | -50.0% |")
               and "**REGRESSION**" in line for line in lines), proc.stdout
    # Every comparison row is a table row (the trailing summary is not).
    assert all(line.startswith("|") for line in lines
               if ":" in line and "regression" not in line), proc.stdout


def test_staging_direction_overrides():
    # The E17 staging fields carry no unit suffix; their direction comes from
    # DIRECTION_OVERRIDES. More backpressure / lock traffic regresses, higher
    # ring occupancy improves (and must NOT be flagged).
    baseline = {"results": [
        {"name": "staging/t8", "append_locks_per_krec": 8.0,
         "staging_ring_full": 10, "ring_occupancy": 1800.0},
    ]}
    worse = {"results": [
        {"name": "staging/t8", "append_locks_per_krec": 30.0,
         "staging_ring_full": 10, "ring_occupancy": 1800.0},
    ]}
    proc = run_compare(baseline, worse)
    assert proc.returncode == 1, proc.stdout
    assert "staging/t8:append_locks_per_krec" in proc.stderr

    better = {"results": [
        {"name": "staging/t8", "append_locks_per_krec": 2.0,
         "staging_ring_full": 0, "ring_occupancy": 3000.0},
    ]}
    proc = run_compare(baseline, better)
    assert proc.returncode == 0, proc.stdout
    assert "no regressions" in proc.stdout

    stalled = {"results": [
        {"name": "staging/t8", "append_locks_per_krec": 8.0,
         "staging_ring_full": 10, "ring_occupancy": 100.0},
    ]}
    proc = run_compare(baseline, stalled)
    assert proc.returncode == 1, proc.stdout
    assert "staging/t8:ring_occupancy" in proc.stderr


def test_strict_allows_new_benchmarks():
    current = {"results": [
        {"name": "produce", "records_per_sec": 1100.0, "p99_us": 40.0},
        {"name": "fetch", "records_per_sec": 2100.0},
        {"name": "compact", "records_per_sec": 300.0},  # growth is fine
    ]}
    proc = run_compare(BASELINE, current, "--strict")
    assert proc.returncode == 0, proc.stderr


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"OK: {name}")
        except AssertionError as exc:
            failures += 1
            print(f"FAIL: {name}: {exc}")
    print(f"{len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
