#ifndef LIQUID_DFS_DFS_H_
#define LIQUID_DFS_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk.h"

namespace liquid::dfs {

/// Configuration of the baseline distributed file system (the GFS/HDFS stand-
/// in the legacy MR/DFS integration stack is built on — Fig. 1 left side).
struct DfsConfig {
  int num_datanodes = 3;
  int replication = 2;
  size_t block_size = 1 << 20;
  /// Latency model of each datanode's disk.
  storage::DiskLatencyModel disk_latency;
};

/// Identifies one stored block replica.
struct BlockLocation {
  int64_t block_id;
  std::vector<int> datanodes;
};

/// Metadata of one DFS file.
struct DfsFileInfo {
  std::string path;
  uint64_t size_bytes = 0;
  std::vector<BlockLocation> blocks;
};

/// A write-once, coarse-grained distributed file system: files are split into
/// blocks replicated over datanodes; the namenode keeps all metadata. Reads
/// and writes move whole blocks — the design property that makes the MR/DFS
/// stack unsuitable for low-latency access (§1, §2.1: "they are designed for
/// coarse-grained data reads and writes").
class DistributedFileSystem {
 public:
  explicit DistributedFileSystem(DfsConfig config);

  DistributedFileSystem(const DistributedFileSystem&) = delete;
  DistributedFileSystem& operator=(const DistributedFileSystem&) = delete;

  /// Writes a complete file (AlreadyExists if present).
  Status WriteFile(const std::string& path, const std::string& data);

  /// Reads a complete file.
  Result<std::string> ReadFile(const std::string& path) const;

  Status DeleteFile(const std::string& path);
  bool Exists(const std::string& path) const;

  /// Paths under `prefix`, sorted.
  std::vector<std::string> ListFiles(const std::string& prefix) const;

  Result<DfsFileInfo> GetFileInfo(const std::string& path) const;

  /// Kills a datanode; blocks with surviving replicas stay readable.
  Status StopDatanode(int id);
  Status RestartDatanode(int id);

  uint64_t total_stored_bytes() const;
  int64_t blocks_written() const;

 private:
  struct DataNode {
    std::unique_ptr<storage::MemDisk> disk;
    bool alive = true;
  };

  Result<std::string> ReadBlock(const BlockLocation& location) const;

  DfsConfig config_;
  mutable std::mutex mu_;
  std::vector<DataNode> datanodes_;
  std::map<std::string, DfsFileInfo> files_;  // The "namenode".
  int64_t next_block_id_ = 1;
  int64_t blocks_written_ = 0;
  int next_node_ = 0;  // Round-robin placement cursor.
};

}  // namespace liquid::dfs

#endif  // LIQUID_DFS_DFS_H_
