#include "dfs/dfs.h"

#include <algorithm>

namespace liquid::dfs {

namespace {
std::string BlockFileName(int64_t block_id) {
  return "blk_" + std::to_string(block_id);
}
}  // namespace

DistributedFileSystem::DistributedFileSystem(DfsConfig config)
    : config_(config) {
  for (int i = 0; i < config_.num_datanodes; ++i) {
    DataNode node;
    node.disk = std::make_unique<storage::MemDisk>(config_.disk_latency);
    datanodes_.push_back(std::move(node));
  }
}

Status DistributedFileSystem::WriteFile(const std::string& path,
                                        const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(path)) return Status::AlreadyExists("file exists: " + path);

  DfsFileInfo info;
  info.path = path;
  info.size_bytes = data.size();

  size_t offset = 0;
  do {
    const size_t len = std::min(config_.block_size, data.size() - offset);
    BlockLocation location;
    location.block_id = next_block_id_++;
    // Round-robin replica placement over alive datanodes.
    int placed = 0;
    for (int tried = 0;
         tried < config_.num_datanodes && placed < config_.replication;
         ++tried) {
      const int node_id = (next_node_ + tried) % config_.num_datanodes;
      if (!datanodes_[node_id].alive) continue;
      auto file =
          datanodes_[node_id].disk->OpenOrCreate(BlockFileName(location.block_id));
      if (!file.ok()) return file.status();
      LIQUID_RETURN_NOT_OK((*file)->Append(Slice(data.data() + offset, len)));
      location.datanodes.push_back(node_id);
      ++placed;
    }
    next_node_ = (next_node_ + 1) % config_.num_datanodes;
    if (placed == 0) {
      return Status::Unavailable("no alive datanodes");
    }
    ++blocks_written_;
    info.blocks.push_back(std::move(location));
    offset += len;
  } while (offset < data.size());

  files_[path] = std::move(info);
  return Status::OK();
}

Result<std::string> DistributedFileSystem::ReadBlock(
    const BlockLocation& location) const {
  for (int node_id : location.datanodes) {
    if (!datanodes_[node_id].alive) continue;
    auto file = const_cast<storage::MemDisk*>(datanodes_[node_id].disk.get())
                    ->OpenOrCreate(BlockFileName(location.block_id));
    if (!file.ok()) continue;
    std::string data;
    if ((*file)->ReadAt(0, (*file)->Size(), &data).ok()) return data;
  }
  return Status::Unavailable("all replicas of block " +
                             std::to_string(location.block_id) + " down");
}

Result<std::string> DistributedFileSystem::ReadFile(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  std::string out;
  out.reserve(it->second.size_bytes);
  for (const BlockLocation& location : it->second.blocks) {
    LIQUID_ASSIGN_OR_RETURN(std::string block, ReadBlock(location));
    out.append(block);
  }
  return out;
}

Status DistributedFileSystem::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  for (const BlockLocation& location : it->second.blocks) {
    for (int node_id : location.datanodes) {
      // Best-effort replica GC: the namespace entry below is the source of
      // truth; a replica missing on one datanode (already re-replicated or
      // lost) must not block deleting the file.
      LIQUID_IGNORE_ERROR(
          datanodes_[node_id].disk->Remove(BlockFileName(location.block_id)));
    }
  }
  files_.erase(it);
  return Status::OK();
}

bool DistributedFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

std::vector<std::string> DistributedFileSystem::ListFiles(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, info] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;
}

Result<DfsFileInfo> DistributedFileSystem::GetFileInfo(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second;
}

Status DistributedFileSystem::StopDatanode(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(datanodes_.size())) {
    return Status::NotFound("no such datanode");
  }
  datanodes_[id].alive = false;
  return Status::OK();
}

Status DistributedFileSystem::RestartDatanode(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(datanodes_.size())) {
    return Status::NotFound("no such datanode");
  }
  datanodes_[id].alive = true;
  return Status::OK();
}

uint64_t DistributedFileSystem::total_stored_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& node : datanodes_) {
    auto bytes = node.disk->TotalBytes("");
    if (bytes.ok()) total += *bytes;
  }
  return total;
}

int64_t DistributedFileSystem::blocks_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_written_;
}

}  // namespace liquid::dfs
