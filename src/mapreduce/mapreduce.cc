#include "mapreduce/mapreduce.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace liquid::mapreduce {

namespace {

uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

MapReduceEngine::MapReduceEngine(dfs::DistributedFileSystem* fs, Clock* clock)
    : fs_(fs), clock_(clock) {}

std::string MapReduceEngine::EncodeRecords(const std::vector<KeyValue>& records) {
  std::string out;
  for (const KeyValue& kv : records) {
    out += kv.key;
    out += '\t';
    out += kv.value;
    out += '\n';
  }
  return out;
}

std::vector<KeyValue> MapReduceEngine::DecodeRecords(const std::string& data) {
  std::vector<KeyValue> out;
  size_t pos = 0;
  while (pos < data.size()) {
    const size_t eol = data.find('\n', pos);
    const size_t end = eol == std::string::npos ? data.size() : eol;
    const size_t tab = data.find('\t', pos);
    if (tab != std::string::npos && tab < end) {
      out.push_back(KeyValue{data.substr(pos, tab - pos),
                             data.substr(tab + 1, end - tab - 1)});
    }
    pos = end + 1;
  }
  return out;
}

Result<MrJobStats> MapReduceEngine::RunJob(const MrJobConfig& config,
                                           const std::string& input_dir,
                                           const std::string& output_dir,
                                           const MapFn& map,
                                           const ReduceFn& reduce) {
  MrJobStats stats;
  const int64_t start_ms = clock_->NowMs();
  // Cluster scheduling / container startup overhead.
  clock_->SleepMs(config.startup_overhead_ms);

  const std::string job_id =
      config.name + "-" + std::to_string(job_counter_++);
  const std::string intermediate_dir = "/tmp/" + job_id + "/";

  // ---- Map phase: one map task per input file (split). ----
  const std::vector<std::string> inputs = fs_->ListFiles(input_dir);
  int map_task = 0;
  for (const std::string& input : inputs) {
    LIQUID_ASSIGN_OR_RETURN(std::string data, fs_->ReadFile(input));
    std::vector<std::vector<KeyValue>> partitions(config.num_reducers);
    for (const KeyValue& kv : DecodeRecords(data)) {
      ++stats.input_records;
      for (KeyValue& out : map(kv)) {
        const int r = static_cast<int>(
            HashKey(out.key) % static_cast<uint64_t>(config.num_reducers));
        partitions[r].push_back(std::move(out));
        ++stats.intermediate_records;
      }
    }
    // Materialize intermediates to the DFS (the costly part).
    for (int r = 0; r < config.num_reducers; ++r) {
      if (partitions[r].empty()) continue;
      const std::string name = intermediate_dir + "m" +
                               std::to_string(map_task) + "-r" +
                               std::to_string(r);
      const std::string encoded = EncodeRecords(partitions[r]);
      stats.dfs_bytes_written += encoded.size();
      LIQUID_RETURN_NOT_OK(fs_->WriteFile(name, encoded));
    }
    ++map_task;
  }

  // ---- Reduce phase: sort/group per reducer, fold, write output. ----
  for (int r = 0; r < config.num_reducers; ++r) {
    std::map<std::string, std::vector<std::string>> groups;
    for (const std::string& name : fs_->ListFiles(intermediate_dir)) {
      const std::string suffix = "-r" + std::to_string(r);
      if (name.size() < suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
        continue;
      }
      LIQUID_ASSIGN_OR_RETURN(std::string data, fs_->ReadFile(name));
      for (KeyValue& kv : DecodeRecords(data)) {
        groups[kv.key].push_back(std::move(kv.value));
      }
    }
    std::vector<KeyValue> output;
    for (auto& [key, values] : groups) {
      output.push_back(KeyValue{key, reduce(key, values)});
      ++stats.output_records;
    }
    const std::string encoded = EncodeRecords(output);
    stats.dfs_bytes_written += encoded.size();
    LIQUID_RETURN_NOT_OK(
        fs_->WriteFile(output_dir + "/part-" + std::to_string(r), encoded));
  }

  // Clean intermediates (best effort, as the real engines do): leaked
  // intermediate files waste space but never corrupt job output.
  for (const std::string& name : fs_->ListFiles(intermediate_dir)) {
    LIQUID_IGNORE_ERROR(fs_->DeleteFile(name));
  }
  stats.wall_ms = clock_->NowMs() - start_ms;
  return stats;
}

Result<MrJobStats> MapReduceEngine::RunChain(const MrJobConfig& config,
                                             const std::string& input_dir,
                                             const std::string& output_dir,
                                             const std::vector<MapFn>& stages) {
  MrJobStats total;
  const ReduceFn identity_reduce =
      [](const std::string&, const std::vector<std::string>& values) {
        return values.empty() ? std::string() : values.back();
      };
  std::string current_input = input_dir;
  for (size_t i = 0; i < stages.size(); ++i) {
    const bool last = i + 1 == stages.size();
    const std::string stage_output =
        last ? output_dir
             : "/chain/" + config.name + "/stage" + std::to_string(i);
    MrJobConfig stage_config = config;
    stage_config.name = config.name + "-s" + std::to_string(i);
    LIQUID_ASSIGN_OR_RETURN(
        MrJobStats stats,
        RunJob(stage_config, current_input, stage_output, stages[i],
               identity_reduce));
    total.input_records += stats.input_records;
    total.intermediate_records += stats.intermediate_records;
    total.output_records += stats.output_records;
    total.wall_ms += stats.wall_ms;
    total.dfs_bytes_written += stats.dfs_bytes_written;
    current_input = stage_output;
  }
  return total;
}

}  // namespace liquid::mapreduce
