#ifndef LIQUID_MAPREDUCE_MAPREDUCE_H_
#define LIQUID_MAPREDUCE_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "dfs/dfs.h"

namespace liquid::mapreduce {

/// One key-value pair flowing through a MapReduce job. Records are stored in
/// DFS files as lines of "key\tvalue".
struct KeyValue {
  std::string key;
  std::string value;
};

/// Emits zero or more intermediate pairs per input pair.
using MapFn = std::function<std::vector<KeyValue>(const KeyValue& input)>;

/// Folds all values of one key into one output value.
using ReduceFn = std::function<std::string(const std::string& key,
                                           const std::vector<std::string>& values)>;

struct MrJobConfig {
  std::string name;
  int num_reducers = 2;
  /// Fixed per-job cluster-scheduling overhead (container allocation, JVM
  /// startup, ...). This is the per-stage cost that makes DFS-based pipeline
  /// latency grow with the number of stages (§1 limitation 1).
  int64_t startup_overhead_ms = 20;
};

struct MrJobStats {
  int64_t input_records = 0;
  int64_t intermediate_records = 0;
  int64_t output_records = 0;
  int64_t wall_ms = 0;
  uint64_t dfs_bytes_written = 0;  // Includes intermediate materialization.
};

/// A batch MapReduce engine over the baseline DFS: the processing half of the
/// legacy MR/DFS data integration stack (Fig. 1, left). Every job reads its
/// input from DFS files, materializes intermediates to the DFS, and writes
/// output files to the DFS — which is exactly why "intermediate results of MR
/// jobs ... result[] in higher latencies as job pipelines grow in length".
class MapReduceEngine {
 public:
  MapReduceEngine(dfs::DistributedFileSystem* fs, Clock* clock);

  MapReduceEngine(const MapReduceEngine&) = delete;
  MapReduceEngine& operator=(const MapReduceEngine&) = delete;

  /// Runs one job over all files under `input_dir`, writing
  /// `<output_dir>/part-<r>` files.
  Result<MrJobStats> RunJob(const MrJobConfig& config,
                            const std::string& input_dir,
                            const std::string& output_dir, const MapFn& map,
                            const ReduceFn& reduce);

  /// Runs `stages` map-only jobs chained through the DFS (stage i reads the
  /// output of stage i-1) and then a final identity reduce. Returns summed
  /// stats; used by the pipeline-latency experiment (E6).
  Result<MrJobStats> RunChain(const MrJobConfig& config,
                              const std::string& input_dir,
                              const std::string& output_dir,
                              const std::vector<MapFn>& stages);

  /// Serializes records as DFS file content ("key\tvalue" lines).
  static std::string EncodeRecords(const std::vector<KeyValue>& records);
  static std::vector<KeyValue> DecodeRecords(const std::string& data);

 private:
  dfs::DistributedFileSystem* fs_;
  Clock* clock_;
  int64_t job_counter_ = 0;
};

}  // namespace liquid::mapreduce

#endif  // LIQUID_MAPREDUCE_MAPREDUCE_H_
