#ifndef LIQUID_COMMON_CODING_H_
#define LIQUID_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace liquid {

/// Little-endian fixed-width and varint encoders/decoders used by the record
/// formats of the commit log, the KV store and the DFS.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

/// Appends `value` as a base-128 varint (1..5 bytes).
void PutVarint32(std::string* dst, uint32_t value);
/// Appends `value` as a base-128 varint (1..10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a varint32 length prefix followed by the bytes of `value`.
void PutLengthPrefixed(std::string* dst, const Slice& value);

/// Parses a varint32 from the front of `input`, advancing it past the varint.
/// Returns Corruption if the input is truncated or malformed.
Status GetVarint32(Slice* input, uint32_t* value);
Status GetVarint64(Slice* input, uint64_t* value);

/// Parses a length-prefixed byte string from the front of `input`.
Status GetLengthPrefixed(Slice* input, Slice* result);

/// Reads a fixed32/fixed64 from the front of `input`.
Status GetFixed32(Slice* input, uint32_t* value);
Status GetFixed64(Slice* input, uint64_t* value);

/// Number of bytes PutVarint64 would emit for `value`.
int VarintLength(uint64_t value);

}  // namespace liquid

#endif  // LIQUID_COMMON_CODING_H_
