#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <utility>

namespace liquid {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < (1 << kSubBucketBits)) return static_cast<int>(value);
  // Index of the highest set bit.
  int msb = 63 - __builtin_clzll(static_cast<unsigned long long>(value));
  int shift = msb - kSubBucketBits;
  int sub = static_cast<int>(value >> shift) & ((1 << kSubBucketBits) - 1);
  int bucket = ((msb - kSubBucketBits + 1) << kSubBucketBits) + sub;
  return std::min(bucket, kNumBuckets - 1);
}

int64_t Histogram::BucketMidpoint(int bucket) {
  if (bucket < (1 << kSubBucketBits)) return bucket;
  int exp = (bucket >> kSubBucketBits) + kSubBucketBits - 1;
  int sub = bucket & ((1 << kSubBucketBits) - 1);
  int64_t base = (1ll << exp) + (static_cast<int64_t>(sub) << (exp - kSubBucketBits));
  int64_t width = 1ll << (exp - kSubBucketBits);
  return base + width / 2;
}

void Histogram::Record(int64_t value) {
  MutexLock lock(&mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::MergeFromLocked(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

// Address-ordered two-lock acquisition is beyond the analysis; the invariant
// (both locks held before MergeFromLocked) is upheld manually here.
void Histogram::Merge(const Histogram& other) NO_THREAD_SAFETY_ANALYSIS {
  if (&other == this) {
    // Self-merge: double every sample. The two-lock path below would
    // self-deadlock (and std::mutex double-lock is UB).
    MutexLock lock(&mu_);
    count_ *= 2;
    sum_ *= 2;
    for (int i = 0; i < kNumBuckets; ++i) buckets_[i] *= 2;
    return;
  }
  // Lock in address order so concurrent a.Merge(b) / b.Merge(a) cannot
  // deadlock on the AB/BA cycle.
  Mutex* first = &mu_;
  Mutex* second = &other.mu_;
  if (std::less<Mutex*>()(second, first)) std::swap(first, second);
  MutexLock lock_first(first);
  MutexLock lock_second(second);
  MergeFromLocked(other);
}

void Histogram::Reset() {
  MutexLock lock(&mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

int64_t Histogram::count() const {
  MutexLock lock(&mu_);
  return count_;
}

int64_t Histogram::min() const {
  MutexLock lock(&mu_);
  return min_;
}

int64_t Histogram::max() const {
  MutexLock lock(&mu_);
  return max_;
}

double Histogram::mean() const {
  MutexLock lock(&mu_);
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::ValueAtQuantileLocked(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t target = static_cast<int64_t>(std::ceil(q * static_cast<double>(count_)));
  target = std::max<int64_t>(target, 1);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

int64_t Histogram::ValueAtQuantile(double q) const {
  MutexLock lock(&mu_);
  return ValueAtQuantileLocked(q);
}

HistogramStats Histogram::Stats() const {
  MutexLock lock(&mu_);
  HistogramStats stats;
  stats.count = count_;
  stats.sum = sum_;
  stats.min = min_;
  stats.max = max_;
  stats.mean =
      count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  stats.p50 = ValueAtQuantileLocked(0.5);
  stats.p90 = ValueAtQuantileLocked(0.9);
  stats.p95 = ValueAtQuantileLocked(0.95);
  stats.p99 = ValueAtQuantileLocked(0.99);
  return stats;
}

// Rendered from one Stats() snapshot: composing the individual accessors
// (each taking the lock separately) produced torn summaries under concurrent
// Record()/Reset()/Merge() — e.g. a count from before a Reset next to
// quantiles from after it (see HistogramStressTest).
std::string Histogram::Summary() const {
  const HistogramStats stats = Stats();
  std::ostringstream out;
  out << "count=" << stats.count << " mean=" << stats.mean
      << " p50=" << stats.p50 << " p95=" << stats.p95 << " p99=" << stats.p99
      << " max=" << stats.max;
  return out.str();
}

MetricsRegistry* MetricsRegistry::Default() {
  // liquid-lint: allow(hot-alloc): process-lifetime singleton; allocates exactly once, then every call is a plain pointer return.
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, int64_t> MetricsRegistry::CounterValues() const {
  MutexLock lock(&mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->value();
  }
  return out;
}

std::map<std::string, int64_t> MetricsRegistry::GaugeValues() const {
  MutexLock lock(&mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, gauge] : gauges_) {
    out[name] = gauge->value();
  }
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; Liquid's dotted hierarchy
/// maps onto it by rewriting every other character to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  // Histogram pointers are copied out so their (per-histogram) locks are
  // taken after mu_ is released; entries are never erased, so the pointers
  // stay valid.
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram*> histograms;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, counter] : counters_) counters[name] = counter->value();
    for (const auto& [name, gauge] : gauges_) gauges[name] = gauge->value();
    for (const auto& [name, histogram] : histograms_) {
      histograms[name] = histogram.get();
    }
  }

  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, histogram] : histograms) {
    const std::string prom = PrometheusName(name);
    const HistogramStats stats = histogram->Stats();
    out << "# TYPE " << prom << " summary\n";
    out << prom << "{quantile=\"0.5\"} " << stats.p50 << "\n";
    out << prom << "{quantile=\"0.9\"} " << stats.p90 << "\n";
    out << prom << "{quantile=\"0.95\"} " << stats.p95 << "\n";
    out << prom << "{quantile=\"0.99\"} " << stats.p99 << "\n";
    out << prom << "_sum " << stats.sum << "\n";
    out << prom << "_count " << stats.count << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram*> histograms;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, counter] : counters_) counters[name] = counter->value();
    for (const auto& [name, gauge] : gauges_) gauges[name] = gauge->value();
    for (const auto& [name, histogram] : histograms_) {
      histograms[name] = histogram.get();
    }
  }

  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    if (!first) out << ",";
    first = false;
    const HistogramStats stats = histogram->Stats();
    out << "\"" << JsonEscape(name) << "\":{"
        << "\"count\":" << stats.count << ",\"sum\":" << stats.sum
        << ",\"min\":" << stats.min << ",\"max\":" << stats.max
        << ",\"mean\":" << FormatDouble(stats.mean) << ",\"p50\":" << stats.p50
        << ",\"p90\":" << stats.p90 << ",\"p95\":" << stats.p95
        << ",\"p99\":" << stats.p99 << "}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::ResetAllForTest() {
  // Pointer copies, same validity argument as RenderPrometheus; histogram
  // locks nest inside mu_ (never the reverse), so ordering is safe.
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<Histogram*> histograms;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, counter] : counters_) counters.push_back(counter.get());
    for (const auto& [name, gauge] : gauges_) gauges.push_back(gauge.get());
    for (const auto& [name, histogram] : histograms_) {
      histograms.push_back(histogram.get());
    }
  }
  for (Counter* counter : counters) counter->Reset();
  for (Gauge* gauge : gauges) gauge->Reset();
  for (Histogram* histogram : histograms) histogram->Reset();
}

}  // namespace liquid
