#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>
#include <utility>

namespace liquid {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < (1 << kSubBucketBits)) return static_cast<int>(value);
  // Index of the highest set bit.
  int msb = 63 - __builtin_clzll(static_cast<unsigned long long>(value));
  int shift = msb - kSubBucketBits;
  int sub = static_cast<int>(value >> shift) & ((1 << kSubBucketBits) - 1);
  int bucket = ((msb - kSubBucketBits + 1) << kSubBucketBits) + sub;
  return std::min(bucket, kNumBuckets - 1);
}

int64_t Histogram::BucketMidpoint(int bucket) {
  if (bucket < (1 << kSubBucketBits)) return bucket;
  int exp = (bucket >> kSubBucketBits) + kSubBucketBits - 1;
  int sub = bucket & ((1 << kSubBucketBits) - 1);
  int64_t base = (1ll << exp) + (static_cast<int64_t>(sub) << (exp - kSubBucketBits));
  int64_t width = 1ll << (exp - kSubBucketBits);
  return base + width / 2;
}

void Histogram::Record(int64_t value) {
  MutexLock lock(&mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::MergeFromLocked(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

// Address-ordered two-lock acquisition is beyond the analysis; the invariant
// (both locks held before MergeFromLocked) is upheld manually here.
void Histogram::Merge(const Histogram& other) NO_THREAD_SAFETY_ANALYSIS {
  if (&other == this) {
    // Self-merge: double every sample. The two-lock path below would
    // self-deadlock (and std::mutex double-lock is UB).
    MutexLock lock(&mu_);
    count_ *= 2;
    sum_ *= 2;
    for (int i = 0; i < kNumBuckets; ++i) buckets_[i] *= 2;
    return;
  }
  // Lock in address order so concurrent a.Merge(b) / b.Merge(a) cannot
  // deadlock on the AB/BA cycle.
  Mutex* first = &mu_;
  Mutex* second = &other.mu_;
  if (std::less<Mutex*>()(second, first)) std::swap(first, second);
  MutexLock lock_first(first);
  MutexLock lock_second(second);
  MergeFromLocked(other);
}

void Histogram::Reset() {
  MutexLock lock(&mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

int64_t Histogram::count() const {
  MutexLock lock(&mu_);
  return count_;
}

int64_t Histogram::min() const {
  MutexLock lock(&mu_);
  return min_;
}

int64_t Histogram::max() const {
  MutexLock lock(&mu_);
  return max_;
}

double Histogram::mean() const {
  MutexLock lock(&mu_);
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::ValueAtQuantile(double q) const {
  MutexLock lock(&mu_);
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t target = static_cast<int64_t>(std::ceil(q * static_cast<double>(count_)));
  target = std::max<int64_t>(target, 1);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  std::ostringstream out;
  out << "count=" << count() << " mean=" << mean() << " p50=" << ValueAtQuantile(0.5)
      << " p95=" << ValueAtQuantile(0.95) << " p99=" << ValueAtQuantile(0.99)
      << " max=" << max();
  return out.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, int64_t> MetricsRegistry::CounterValues() const {
  MutexLock lock(&mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->value();
  }
  return out;
}

}  // namespace liquid
