#include "common/thread_pool.h"

namespace liquid {

ThreadPool::ThreadPool(int num_threads)
    : work_cv_(&mu_), idle_cv_(&mu_) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.Signal();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  idle_cv_.Wait([this]() REQUIRES(mu_) { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      work_cv_.Wait([this]() REQUIRES(mu_) { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.SignalAll();
    }
  }
}

}  // namespace liquid
