#ifndef LIQUID_COMMON_RESULT_H_
#define LIQUID_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/nodiscard.h"
#include "common/status.h"

namespace liquid {

/// Value-or-Status, in the style of arrow::Result.
///
/// A Result<T> holds either a T (status is OK) or a non-OK Status. Callers
/// must check ok() before dereferencing.
///
/// Like Status, the class is [[nodiscard]]: dropping a returned Result<T> on
/// the floor is a compile error under -Werror=unused-result.
template <typename T>
class LIQUID_NODISCARD Result {
 public:
  /// Implicit from value: enables `return value;` in functions returning Result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status; aborts in debug builds if the status is OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return *value_;
    return fallback;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
#define LIQUID_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define LIQUID_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define LIQUID_ASSIGN_OR_RETURN_NAME(a, b) LIQUID_ASSIGN_OR_RETURN_CONCAT(a, b)

#define LIQUID_ASSIGN_OR_RETURN(lhs, expr)                                      \
  LIQUID_ASSIGN_OR_RETURN_IMPL(                                                 \
      LIQUID_ASSIGN_OR_RETURN_NAME(_liquid_result_, __LINE__), lhs, expr)

}  // namespace liquid

#endif  // LIQUID_COMMON_RESULT_H_
