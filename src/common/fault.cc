#include "common/fault.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace liquid {

namespace {

struct CodeName {
  StatusCode code;
  const char* name;
};

// Codes an operator may inject. Deliberately excludes kOk.
constexpr CodeName kCodeNames[] = {
    {StatusCode::kNotFound, "NotFound"},
    {StatusCode::kAlreadyExists, "AlreadyExists"},
    {StatusCode::kInvalidArgument, "InvalidArgument"},
    {StatusCode::kIOError, "IOError"},
    {StatusCode::kCorruption, "Corruption"},
    {StatusCode::kOutOfRange, "OutOfRange"},
    {StatusCode::kNotLeader, "NotLeader"},
    {StatusCode::kUnavailable, "Unavailable"},
    {StatusCode::kTimedOut, "TimedOut"},
    {StatusCode::kResourceExhausted, "ResourceExhausted"},
    {StatusCode::kFailedPrecondition, "FailedPrecondition"},
    {StatusCode::kAborted, "Aborted"},
    {StatusCode::kUnsupported, "Unsupported"},
    {StatusCode::kInternal, "Internal"},
};

const char* CodeToName(StatusCode code) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return nullptr;
}

bool NameToCode(const std::string& name, StatusCode* code) {
  for (const CodeName& entry : kCodeNames) {
    if (name == entry.name) {
      *code = entry.code;
      return true;
    }
  }
  return false;
}

Status MakeInjectedStatus(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kIOError:
      return Status::IOError(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kNotLeader:
      return Status::NotLeader(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kTimedOut:
      return Status::TimedOut(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kAborted:
      return Status::Aborted(std::move(message));
    case StatusCode::kUnsupported:
      return Status::Unsupported(std::move(message));
    case StatusCode::kInternal:
    default:
      return Status::Internal(std::move(message));
  }
}

// Strict non-negative integer parse (no sign, no trailing junk).
bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

// Parses "fail(<Code>)", "delay(<N>us|<N>ms)" or "crash" into `config`.
Status ParseAction(const std::string& site, const std::string& text,
                   FaultSiteConfig* config) {
  if (text == "crash") {
    config->kind = FaultActionKind::kCrash;
    return Status::OK();
  }
  const auto open = text.find('(');
  if (open == std::string::npos || text.back() != ')') {
    return Status::InvalidArgument("fault site '" + site +
                                   "': malformed action '" + text + "'");
  }
  const std::string verb = text.substr(0, open);
  const std::string arg = text.substr(open + 1, text.size() - open - 2);
  if (verb == "fail") {
    StatusCode code;
    if (!NameToCode(arg, &code)) {
      return Status::InvalidArgument("fault site '" + site +
                                     "': unknown status code '" + arg + "'");
    }
    config->kind = FaultActionKind::kFail;
    config->fail_code = code;
    return Status::OK();
  }
  if (verb == "delay") {
    int64_t scale = 0;
    std::string number;
    if (arg.size() > 2 && arg.compare(arg.size() - 2, 2, "us") == 0) {
      scale = 1;
      number = arg.substr(0, arg.size() - 2);
    } else if (arg.size() > 2 && arg.compare(arg.size() - 2, 2, "ms") == 0) {
      scale = 1000;
      number = arg.substr(0, arg.size() - 2);
    } else {
      return Status::InvalidArgument("fault site '" + site +
                                     "': delay needs a us/ms unit, got '" +
                                     arg + "'");
    }
    int64_t value = 0;
    if (!ParseInt64(number, &value) || value <= 0 ||
        value > (1ll << 40) / scale) {
      return Status::InvalidArgument("fault site '" + site +
                                     "': bad delay '" + arg + "'");
    }
    config->kind = FaultActionKind::kDelay;
    config->delay_us = value * scale;
    return Status::OK();
  }
  return Status::InvalidArgument("fault site '" + site +
                                 "': unknown action verb '" + verb + "'");
}

std::string SerializeAction(const FaultSiteConfig& config) {
  switch (config.kind) {
    case FaultActionKind::kCrash:
      return "crash";
    case FaultActionKind::kDelay:
      if (config.delay_us % 1000 == 0) {
        return "delay(" + std::to_string(config.delay_us / 1000) + "ms)";
      }
      return "delay(" + std::to_string(config.delay_us) + "us)";
    case FaultActionKind::kFail:
    default: {
      const char* name = CodeToName(config.fail_code);
      return std::string("fail(") + (name != nullptr ? name : "Internal") +
             ")";
    }
  }
}

bool ValidSiteName(const std::string& site) {
  if (site.empty() || site.front() == '.' || site.back() == '.') return false;
  for (char c : site) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_';
    if (!ok) return false;
  }
  return site.find("..") == std::string::npos;
}

}  // namespace

Result<FaultSchedule> FaultSchedule::Parse(const std::string& text) {
  LIQUID_ASSIGN_OR_RETURN(Properties props, Properties::Parse(text));
  return FromProperties(props);
}

Result<FaultSchedule> FaultSchedule::FromProperties(const Properties& props) {
  FaultSchedule schedule;
  // Sites with clauses but (maybe) no action yet; validated at the end.
  std::map<std::string, bool> has_action;
  for (const auto& [key, value] : props.values()) {
    if (key == "seed") {
      int64_t seed = 0;
      if (!ParseInt64(value, &seed)) {
        return Status::InvalidArgument("bad seed '" + value + "'");
      }
      schedule.seed = static_cast<uint64_t>(seed);
      continue;
    }
    if (key.rfind("fault.", 0) != 0) {
      return Status::InvalidArgument("unknown key '" + key +
                                     "' (expected seed or fault.<site>.<param>)");
    }
    const size_t last_dot = key.rfind('.');
    // "fault." is 6 chars; the site sits between it and the final param.
    if (last_dot <= 6) {
      return Status::InvalidArgument("clause key '" + key +
                                     "' missing a site or param segment");
    }
    const std::string site = key.substr(6, last_dot - 6);
    const std::string param = key.substr(last_dot + 1);
    if (!ValidSiteName(site)) {
      return Status::InvalidArgument("bad fault site name '" + site + "'");
    }
    FaultSiteConfig& config = schedule.sites[site];
    if (param == "action") {
      LIQUID_RETURN_NOT_OK(ParseAction(site, value, &config));
      has_action[site] = true;
    } else if (param == "after") {
      if (!ParseInt64(value, &config.after)) {
        return Status::InvalidArgument("fault site '" + site +
                                       "': bad after '" + value + "'");
      }
    } else if (param == "every") {
      if (!ParseInt64(value, &config.every) || config.every < 1) {
        return Status::InvalidArgument("fault site '" + site +
                                       "': bad every '" + value + "'");
      }
    } else if (param == "count") {
      if (!ParseInt64(value, &config.max_triggers)) {
        return Status::InvalidArgument("fault site '" + site +
                                       "': bad count '" + value + "'");
      }
    } else if (param == "probability") {
      // The negated range check also rejects NaN (every comparison with NaN
      // is false), which would otherwise break Serialize/Parse round-trips.
      if (!ParseDouble(value, &config.probability) ||
          !(config.probability >= 0.0 && config.probability <= 1.0)) {
        return Status::InvalidArgument("fault site '" + site +
                                       "': bad probability '" + value + "'");
      }
    } else {
      return Status::InvalidArgument("fault site '" + site +
                                     "': unknown param '" + param + "'");
    }
  }
  for (const auto& [site, config] : schedule.sites) {
    if (!has_action.count(site)) {
      return Status::InvalidArgument("fault site '" + site +
                                     "' has clauses but no action");
    }
  }
  return schedule;
}

std::string FaultSchedule::Serialize() const {
  std::string out;
  if (seed != 0) out += "seed = " + std::to_string(seed) + "\n";
  for (const auto& [site, config] : sites) {
    const std::string prefix = "fault." + site + ".";
    out += prefix + "action = " + SerializeAction(config) + "\n";
    if (config.after != 0) {
      out += prefix + "after = " + std::to_string(config.after) + "\n";
    }
    if (config.every != 1) {
      out += prefix + "every = " + std::to_string(config.every) + "\n";
    }
    if (config.max_triggers != -1) {
      out += prefix + "count = " + std::to_string(config.max_triggers) + "\n";
    }
    if (config.probability != 1.0) {
      // %.17g: enough digits that Parse(Serialize()) reproduces the exact
      // double (std::to_string's fixed 6 decimals truncates tiny values).
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", config.probability);
      out += prefix + "probability = " + buf + "\n";
    }
  }
  return out;
}

FaultRegistry::FaultRegistry() : rng_(1) {}

FaultRegistry* FaultRegistry::Default() {
  static FaultRegistry* instance = new FaultRegistry();
  return instance;
}

Status FaultRegistry::Hit(std::string_view site) {
  // Phase 1: decide under mu_ (counters, scripting gates, RNG); no sleeping
  // and no status-string building while the registry lock is held.
  FaultActionKind kind = FaultActionKind::kDelay;
  StatusCode fail_code = StatusCode::kUnavailable;
  int64_t delay_us = 0;
  Clock* clock = nullptr;
  bool fired = false;
  {
    MutexLock lock(&mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::OK();
    SiteState& state = it->second;
    ++state.hits;
    const FaultSiteConfig& config = state.config;
    if (state.hits <= config.after) return Status::OK();
    if (config.max_triggers >= 0 && state.triggers >= config.max_triggers) {
      return Status::OK();
    }
    const int64_t eligible = state.hits - config.after;
    if (config.every > 1 && (eligible - 1) % config.every != 0) {
      return Status::OK();
    }
    if (config.probability < 1.0 && !rng_.Bernoulli(config.probability)) {
      return Status::OK();
    }
    ++state.triggers;
    ++triggers_total_;
    fired = true;
    kind = config.kind;
    fail_code = config.fail_code;
    delay_us = config.delay_us;
    clock = clock_;
    if (kind == FaultActionKind::kCrash) {
      if (crash_requests_.size() < kMaxPendingCrashRequests) {
        crash_requests_.emplace_back(site);
      } else {
        ++crash_requests_dropped_;
      }
    }
  }
  if (!fired) return Status::OK();
  switch (kind) {
    case FaultActionKind::kDelay:
      if (clock == nullptr) clock = SystemClock::Default();
      clock->SleepMs((delay_us + 999) / 1000);
      return Status::OK();
    case FaultActionKind::kCrash:
      return Status::Unavailable("fault injection: crash requested at " +
                                 std::string(site));
    case FaultActionKind::kFail:
    default:
      return MakeInjectedStatus(fail_code, "fault injection: triggered at " +
                                               std::string(site));
  }
}

void FaultRegistry::Load(const FaultSchedule& schedule) {
  MutexLock lock(&mu_);
  sites_.clear();
  for (const auto& [site, config] : schedule.sites) {
    sites_[site] = SiteState{config, 0, 0};
  }
  rng_ = Random(schedule.seed == 0 ? 1 : schedule.seed);
  triggers_total_ = 0;
  crash_requests_.clear();
  crash_requests_dropped_ = 0;
  armed_sites_.store(static_cast<int64_t>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultRegistry::Arm(const std::string& site, FaultSiteConfig config) {
  MutexLock lock(&mu_);
  sites_[site] = SiteState{config, 0, 0};
  armed_sites_.store(static_cast<int64_t>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultRegistry::Disarm(const std::string& site) {
  MutexLock lock(&mu_);
  sites_.erase(site);
  armed_sites_.store(static_cast<int64_t>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultRegistry::Clear() {
  MutexLock lock(&mu_);
  sites_.clear();
  triggers_total_ = 0;
  crash_requests_.clear();
  crash_requests_dropped_ = 0;
  armed_sites_.store(0, std::memory_order_relaxed);
}

int64_t FaultRegistry::hits(const std::string& site) const {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

int64_t FaultRegistry::triggers(const std::string& site) const {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.triggers;
}

int64_t FaultRegistry::triggers_total() const {
  MutexLock lock(&mu_);
  return triggers_total_;
}

std::vector<std::string> FaultRegistry::DrainCrashRequests() {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.swap(crash_requests_);
  return out;
}

int64_t FaultRegistry::crash_requests_dropped() const {
  MutexLock lock(&mu_);
  return crash_requests_dropped_;
}

void FaultRegistry::SetClock(Clock* clock) {
  MutexLock lock(&mu_);
  clock_ = clock;
}

}  // namespace liquid
