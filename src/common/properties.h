#ifndef LIQUID_COMMON_PROPERTIES_H_
#define LIQUID_COMMON_PROPERTIES_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace liquid {

/// String-keyed configuration bag with typed accessors, in the style of the
/// java.util.Properties objects Kafka and Samza are configured with.
class Properties {
 public:
  Properties() = default;

  void Set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }
  void SetInt(const std::string& key, int64_t value) {
    values_[key] = std::to_string(value);
  }
  void SetDouble(const std::string& key, double value) {
    values_[key] = std::to_string(value);
  }
  void SetBool(const std::string& key, bool value) {
    values_[key] = value ? "true" : "false";
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Parses `key=value` lines (java.util.Properties subset): surrounding
  /// whitespace is trimmed, blank lines and lines starting with '#' or '!'
  /// are skipped. A line without '=' or with an empty key is Corruption —
  /// config files come from operators, and a silently dropped line is a
  /// misconfigured broker.
  static Result<Properties> Parse(const std::string& text);

  /// Inverse of Parse: one sorted "key=value" line per entry.
  std::string Serialize() const;

  std::string Get(const std::string& key, const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace liquid

#endif  // LIQUID_COMMON_PROPERTIES_H_
