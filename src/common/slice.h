#ifndef LIQUID_COMMON_SLICE_H_
#define LIQUID_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace liquid {

/// A non-owning view over a byte range, in the style of rocksdb::Slice.
///
/// Unlike std::string_view, Slice is explicitly about *bytes* (message keys,
/// values, encoded records) rather than text, and offers the comparison
/// helpers the storage layer needs.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  /// Implicit from string-likes: Slices are pervasive as function arguments.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  void Clear() {
    data_ = "";
    size_ = 0;
  }

  /// Drops the first `n` bytes. Precondition: n <= size().
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const { return {data_, size_}; }

  /// Three-way comparison: <0, 0, >0 like memcmp.
  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = +1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && std::memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) { return a.Compare(b) < 0; }

}  // namespace liquid

#endif  // LIQUID_COMMON_SLICE_H_
