#ifndef LIQUID_COMMON_CRC32C_H_
#define LIQUID_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace liquid::crc32c {

/// Extends `init_crc` with the CRC32C (Castagnoli) of data[0, n).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC32C of data[0, n).
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masked CRC, per the LevelDB/Kafka convention: storing the CRC of data that
/// itself contains CRCs can produce pathological collisions, so stored CRCs
/// are rotated and offset.
inline uint32_t Mask(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace liquid::crc32c

#endif  // LIQUID_COMMON_CRC32C_H_
