#ifndef LIQUID_COMMON_RANDOM_H_
#define LIQUID_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace liquid {

/// Fast deterministic PRNG (xorshift64*), sufficient for workload generation
/// and randomized property tests; NOT for cryptography.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random printable-ish byte string of exactly `len` bytes.
  std::string Bytes(size_t len) {
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return out;
  }

 private:
  uint64_t state_;
};

/// Zipf-distributed generator over [0, n) with skew `theta` in (0, 1),
/// using the Gray et al. rejection-free method (as in YCSB). Used to model
/// skewed key popularity in compaction and consumer-group workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace liquid

#endif  // LIQUID_COMMON_RANDOM_H_
