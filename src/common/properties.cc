#include "common/properties.h"

#include <cstdlib>
#include <string_view>

namespace liquid {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<Properties> Properties::Parse(const std::string& text) {
  Properties props;
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    const size_t end = eol == std::string::npos ? text.size() : eol;
    ++line_no;
    const std::string_view line = Trim(std::string_view(text).substr(pos, end - pos));
    pos = end + 1;
    if (eol == std::string::npos && line.empty()) break;
    if (line.empty() || line.front() == '#' || line.front() == '!') continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption("properties line " + std::to_string(line_no) +
                                ": missing '='");
    }
    const std::string_view key = Trim(line.substr(0, eq));
    if (key.empty()) {
      return Status::Corruption("properties line " + std::to_string(line_no) +
                                ": empty key");
    }
    props.Set(std::string(key), std::string(Trim(line.substr(eq + 1))));
    if (eol == std::string::npos) break;
  }
  return props;
}

std::string Properties::Serialize() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    out.append(key);
    out.push_back('=');
    out.append(value);
    out.push_back('\n');
  }
  return out;
}

std::string Properties::Get(const std::string& key,
                            const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Properties::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Properties::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Properties::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1";
}

}  // namespace liquid
