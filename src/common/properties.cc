#include "common/properties.h"

#include <cstdlib>

namespace liquid {

std::string Properties::Get(const std::string& key,
                            const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Properties::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Properties::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Properties::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1";
}

}  // namespace liquid
