#ifndef LIQUID_COMMON_LOGGING_H_
#define LIQUID_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace liquid {

/// Severity levels for the process-wide logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal leveled logger writing to stderr. Benchmarks raise the level to
/// kWarn so log noise does not perturb measurements.
class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();
  static void Write(LogLevel level, const std::string& message);
};

namespace internal {

/// Stream collector that emits on destruction; used by the LIQUID_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define LIQUID_LOG(level)                                              \
  if (::liquid::LogLevel::level >= ::liquid::Logger::GetLevel())       \
  ::liquid::internal::LogMessage(::liquid::LogLevel::level).stream()

#define LIQUID_LOG_DEBUG LIQUID_LOG(kDebug)
#define LIQUID_LOG_INFO LIQUID_LOG(kInfo)
#define LIQUID_LOG_WARN LIQUID_LOG(kWarn)
#define LIQUID_LOG_ERROR LIQUID_LOG(kError)

}  // namespace liquid

#endif  // LIQUID_COMMON_LOGGING_H_
