#ifndef LIQUID_COMMON_NODISCARD_H_
#define LIQUID_COMMON_NODISCARD_H_

/// Error-path enforcement macros, the error-propagation counterpart to
/// thread_annotations.h.
///
/// Liquid does not use exceptions: every fallible operation returns a
/// liquid::Status or liquid::Result<T>. A silently dropped Status from a WAL
/// append, a log-segment flush or an offset commit quietly voids the
/// durability guarantees the system is built around, so discarding one is a
/// build error, not a code-review nit.
///
/// Two layers enforce this:
///   - `Status` and `Result<T>` are declared with LIQUID_NODISCARD at the
///     class level, so ANY function returning them by value warns when the
///     return value is ignored — including future functions nobody remembered
///     to annotate.
///   - Individual fallible APIs additionally carry LIQUID_NODISCARD for
///     documentation value and for tooling (clang-tidy
///     bugprone-unused-return-value / cert-err33-c) that keys off per-function
///     attributes.
///
/// The warning is promoted to an error with -Werror=unused-result (see the
/// top-level CMakeLists.txt), under both GCC and Clang.
///
/// The rare call site that genuinely may drop an error must say so:
///
///   LIQUID_IGNORE_ERROR(file->Truncate(0));  // best-effort cleanup
///
/// which keeps the discard grep-able and forces a comment-sized justification
/// to survive review.

#if defined(__has_cpp_attribute)
#if __has_cpp_attribute(nodiscard)
#define LIQUID_NODISCARD [[nodiscard]]
#endif
#endif
#ifndef LIQUID_NODISCARD
#define LIQUID_NODISCARD
#endif

/// Explicitly discards a Status/Result, documenting that the error is
/// intentionally ignored. Prefer propagating; use this only where failure is
/// acceptable by design (best-effort cleanup, metrics, shutdown paths) and
/// say why in a trailing comment.
#define LIQUID_IGNORE_ERROR(expr) \
  do {                            \
    (void)(expr);                 \
  } while (0)

#endif  // LIQUID_COMMON_NODISCARD_H_
