#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.h"

namespace liquid {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_write_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(level); }

LogLevel Logger::GetLevel() { return g_level.load(); }

void Logger::Write(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  MutexLock lock(&g_write_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace liquid
