#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace liquid {

namespace internal {

void DieBecauseCheckOkFailed(const char* expr, const char* file, int line,
                             const Status& status) {
  std::fprintf(stderr, "%s:%d: LIQUID_CHECK_OK failed: %s: %s\n", file, line,
               expr, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotLeader:
      return "NotLeader";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out.append(": ");
  out.append(message_);
  return out;
}

}  // namespace liquid
