#ifndef LIQUID_COMMON_THREAD_ANNOTATIONS_H_
#define LIQUID_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis support (Abseil/LevelDB style).
//
// Locking discipline in Liquid is a compile-time contract: every
// mutex-protected member is tagged GUARDED_BY(mu_), every helper that assumes
// the lock is tagged REQUIRES(mu_), and the analysis
// (`-Wthread-safety -Werror=thread-safety`, enabled automatically for Clang
// builds, see the top-level CMakeLists.txt) rejects code that touches guarded
// state without holding the right lock.
//
// The attributes only exist under Clang; under GCC/MSVC they expand to
// nothing, so annotated code stays portable. `scripts/check.sh` runs the
// Clang annotation build as the pre-merge gate.

#if defined(__clang__) && defined(__has_attribute)
#define LIQUID_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define LIQUID_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define CAPABILITY(x) LIQUID_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY LIQUID_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Member is protected by the given capability (usually a Mutex member).
#define GUARDED_BY(x) LIQUID_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointee is protected by the given capability.
#define PT_GUARDED_BY(x) LIQUID_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function may only be called while holding the given capabilities.
#define REQUIRES(...) \
  LIQUID_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  LIQUID_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  LIQUID_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  LIQUID_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define RELEASE(...) \
  LIQUID_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  LIQUID_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability only when it returns the given value.
#define TRY_ACQUIRE(...) \
  LIQUID_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function may only be called while NOT holding the given capabilities
/// (deadlock prevention for self-calls).
#define EXCLUDES(...) LIQUID_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares that the function asserts (at runtime) that the capability is
/// held, teaching the analysis without acquiring anything.
#define ASSERT_CAPABILITY(x) \
  LIQUID_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Returns a reference to the given capability (lock accessors).
#define RETURN_CAPABILITY(x) LIQUID_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch for patterns beyond the analysis (e.g. address-ordered
/// two-lock acquisition). Use sparingly and document why.
#define NO_THREAD_SAFETY_ANALYSIS \
  LIQUID_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Marks a nearline hot-path root (DESIGN.md section 5a "hot-path
/// discipline"): Broker::Produce/Fetch, Log::AppendBatch/ReadEncoded,
/// Producer::Send, Consumer::Poll, Task::Process. liquid-lint propagates
/// three rules transitively from these roots through everything they can
/// call: hot-alloc (no allocation without a reasoned allow()), hot-block
/// (no fsync/sleep/condvar wait), and atomic-order (every non-relaxed
/// atomic needs an `// order: <why>` comment; bare seq_cst defaults are
/// findings). Place the macro at the very start of the declaration.
#if defined(__clang__)
#define LIQUID_HOT_PATH __attribute__((annotate("liquid::hot_path")))
#else
#define LIQUID_HOT_PATH  // no-op outside Clang; liquid-lint reads the text
#endif

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace liquid {

/// std::mutex with capability annotations, so members can be GUARDED_BY it.
/// (libstdc++'s std::mutex carries no annotations; Clang's analysis only
/// tracks capability-attributed types.)
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to readers and the analysis) that the lock is held here.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated std::recursive_mutex. The analysis is intraprocedural, so
/// re-entrant acquisitions across call frames (e.g. a coordination-service
/// watch calling back into the broker that fired it) are invisible to it;
/// within one function body, acquire it once like a plain Mutex.
class CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;

  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  std::recursive_mutex mu_;
};

/// Annotated std::shared_mutex: one writer or many readers. Used where a
/// structure is read on hot paths and mutated rarely (e.g. the broker's
/// replica-map membership: every produce/fetch takes it shared, only
/// partition reassignment takes it exclusive).
class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// RAII lock for Mutex (std::lock_guard replacement the analysis understands).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII lock for RecursiveMutex.
class SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~RecursiveMutexLock() RELEASE() { mu_->Unlock(); }

  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  RecursiveMutex* const mu_;
};

/// RAII exclusive (writer) lock for SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock for SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to a Mutex. Wait() must be called with the Mutex
/// held; it releases and reacquires it like std::condition_variable, but the
/// capability stays held from the analysis's point of view across the wait
/// (which matches the caller-visible contract). Wait() carries no REQUIRES
/// attribute because the analysis cannot alias the caller's mutex expression
/// with the stored pointer (same reason LevelDB's port::CondVar is bare) —
/// the held-lock contract is enforced at runtime by std::adopt_lock misuse
/// being UB under TSan.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Pre: the bound Mutex is held by the calling thread.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    // liquid-lint: allow(hot-block): CondVar is the blocking primitive itself; hot-path callers must justify their waits at the call site.
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until `pred()` is true; `pred` runs with the Mutex held.
  /// Pre: the bound Mutex is held by the calling thread. The analysis cannot
  /// see that the caller's lock satisfies a REQUIRES-annotated predicate, so
  /// checking is disabled inside this forwarding shim only.
  template <typename Pred>
  void Wait(Pred pred) NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) Wait();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  Mutex* const mu_;
  std::condition_variable cv_;
};

}  // namespace liquid

#endif  // LIQUID_COMMON_THREAD_ANNOTATIONS_H_
