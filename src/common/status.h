#ifndef LIQUID_COMMON_STATUS_H_
#define LIQUID_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

#include "common/nodiscard.h"

namespace liquid {

/// Canonical error codes used across every Liquid module.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kIOError = 4,
  kCorruption = 5,
  kOutOfRange = 6,
  kNotLeader = 7,
  kUnavailable = 8,
  kTimedOut = 9,
  kResourceExhausted = 10,
  kFailedPrecondition = 11,
  kAborted = 12,
  kUnsupported = 13,
  kInternal = 14,
};

/// Returns a stable, human-readable name such as "NotFound".
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail, in the style of Arrow/RocksDB.
///
/// Liquid does not use exceptions (per the project style rules); every fallible
/// operation returns a Status or a Result<T>. The OK status carries no
/// allocation; error statuses carry a code and a message.
///
/// The class is [[nodiscard]]: ignoring the return value of any function that
/// returns a Status by value is a compile error (-Werror=unused-result). Use
/// LIQUID_IGNORE_ERROR (common/nodiscard.h) for the rare deliberate discard.
class LIQUID_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotLeader(std::string msg) {
    return Status(StatusCode::kNotLeader, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotLeader() const { return code_ == StatusCode::kNotLeader; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK Status from the current function.
#define LIQUID_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::liquid::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

namespace internal {

/// Prints "<file>:<line>: CHECK_OK failed: <expr>: <status>" and aborts.
[[noreturn]] void DieBecauseCheckOkFailed(const char* expr, const char* file,
                                          int line, const Status& status);

inline const Status& ToStatus(const Status& status) { return status; }

/// Matches Result<T> (anything exposing status()) without needing result.h.
template <typename R>
auto ToStatus(const R& result) -> decltype(result.status()) {
  return result.status();
}

}  // namespace internal

/// Aborts the process when a Status or Result<T> expression is not OK.
/// For main()-adjacent code (benchmarks, examples, fuzz drivers) where
/// failure means the run is meaningless; library code must propagate instead.
#define LIQUID_CHECK_OK(expr)                                                \
  do {                                                                       \
    auto&& _liquid_ck = (expr);                                              \
    if (!_liquid_ck.ok()) {                                                  \
      ::liquid::internal::DieBecauseCheckOkFailed(                           \
          #expr, __FILE__, __LINE__, ::liquid::internal::ToStatus(_liquid_ck)); \
    }                                                                        \
  } while (0)

}  // namespace liquid

#endif  // LIQUID_COMMON_STATUS_H_
