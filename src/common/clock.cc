#include "common/clock.h"

#include <thread>

namespace liquid {

int64_t SystemClock::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SystemClock::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

SystemClock* SystemClock::Default() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

}  // namespace liquid
