#ifndef LIQUID_COMMON_FAULT_H_
#define LIQUID_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/properties.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace liquid {

/// What an armed fault site does when its scripting gates fire.
enum class FaultActionKind {
  /// Return an injected error Status from the fault point.
  kFail,
  /// Sleep on the calling thread (simulates a disk/network latency spike),
  /// then continue normally.
  kDelay,
  /// Request a process "crash": the fault point returns Unavailable and the
  /// site is queued for the chaos driver, which enacts the crash out-of-band
  /// (e.g. Cluster::StopBroker + MemDisk::SimulateCrash). Enacting it inline
  /// would run broker-lifecycle code under whatever locks the fault point is
  /// reached with, so the registry only ever records the request.
  kCrash,
};

/// Configuration of one named fault site: an action plus scripting gates.
/// Gates compose in order: the first `after` hits are skipped, then every
/// `every`-th eligible hit fires, capped at `max_triggers` total, and each
/// candidate firing is finally subjected to `probability`.
struct FaultSiteConfig {
  FaultActionKind kind = FaultActionKind::kFail;
  /// Status code injected by kFail (the message is composed per trigger).
  StatusCode fail_code = StatusCode::kUnavailable;
  /// Sleep duration for kDelay.
  int64_t delay_us = 0;
  /// Skip the first `after` hits of the site.
  int64_t after = 0;
  /// Fire on every Nth eligible hit (1 = every eligible hit).
  int64_t every = 1;
  /// Stop firing after this many triggers; -1 = unlimited.
  int64_t max_triggers = -1;
  /// Probability that an otherwise-eligible hit actually fires, in [0, 1].
  double probability = 1.0;

  bool operator==(const FaultSiteConfig&) const = default;
};

/// A parsed fault schedule: a deterministic seed plus per-site clauses.
///
/// The text format is `Properties`-based (key=value lines, `#` comments):
///
///   seed = 42
///   fault.log.sync.before.action = fail(IOError)
///   fault.log.sync.before.after = 100
///   fault.log.sync.before.count = 3
///   fault.broker.produce.before_append.action = delay(2ms)
///   fault.broker.produce.before_append.probability = 0.05
///   fault.broker.replicate.before_append.action = crash
///
/// Clause keys are `fault.<site>.<param>` with param one of `action`
/// (required; `fail(<StatusCode>)`, `delay(<N>us|<N>ms)`, or `crash`),
/// `after`, `every`, `count` (max triggers) and `probability`. Operators
/// hand-write these files, so parsing is strict: unknown params, malformed
/// actions, out-of-range numbers and clause-less sites are all errors.
struct FaultSchedule {
  uint64_t seed = 0;
  std::map<std::string, FaultSiteConfig> sites;

  /// Parses the text format above. All errors are InvalidArgument (or the
  /// underlying Properties Corruption for malformed key=value lines).
  static Result<FaultSchedule> Parse(const std::string& text);

  /// Parse() for an already-parsed Properties bag.
  static Result<FaultSchedule> FromProperties(const Properties& props);

  /// Canonical text form; Parse(Serialize()) reproduces the schedule.
  std::string Serialize() const;

  bool operator==(const FaultSchedule&) const = default;
};

/// Process-wide registry of named fault-injection sites.
///
/// Data-path code declares sites with LIQUID_FAULT_POINT("component.op");
/// tests, the chaos soak bench, and operators arm them by loading a
/// FaultSchedule. Disarmed (the default, and the production state) a fault
/// point costs exactly one relaxed atomic load — the same discipline as
/// TraceCollector::enabled() — so sites can live on the hottest paths.
///
/// Thread-safe. Crash actions are deferred: Hit() never runs lifecycle code
/// itself (it may be called under broker/log locks); the chaos driver drains
/// requests with DrainCrashRequests() and enacts them from its own thread.
class FaultRegistry {
 public:
  FaultRegistry();

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// The process-wide registry every LIQUID_FAULT_POINT consults.
  static FaultRegistry* Default();

  /// True when any site is armed (single relaxed atomic load).
  bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

  /// Full evaluation of one site hit; called by LIQUID_FAULT_POINT only when
  /// armed(). Returns the injected error for kFail/kCrash triggers and OK
  /// otherwise (after sleeping, for kDelay triggers). The sleep runs with no
  /// registry lock held.
  Status Hit(std::string_view site) EXCLUDES(mu_);

  /// Replaces all armed sites with the schedule's and reseeds the
  /// probability RNG; hit/trigger counters restart from zero.
  void Load(const FaultSchedule& schedule) EXCLUDES(mu_);

  /// Arms (or reconfigures) one site, keeping the others.
  void Arm(const std::string& site, FaultSiteConfig config) EXCLUDES(mu_);

  /// Disarms one site; unknown sites are a no-op.
  void Disarm(const std::string& site) EXCLUDES(mu_);

  /// Disarms everything and drops pending crash requests.
  void Clear() EXCLUDES(mu_);

  /// Evaluations / firings of one armed site (0 for unknown sites).
  int64_t hits(const std::string& site) const EXCLUDES(mu_);
  int64_t triggers(const std::string& site) const EXCLUDES(mu_);

  /// Firings across all sites since the last Load/Clear.
  int64_t triggers_total() const EXCLUDES(mu_);

  /// Takes the queued crash-request site names, oldest first. The queue is
  /// bounded; crash_requests_dropped() counts overflow drops.
  std::vector<std::string> DrainCrashRequests() EXCLUDES(mu_);
  int64_t crash_requests_dropped() const EXCLUDES(mu_);

  /// Clock used by kDelay sleeps; nullptr restores SystemClock::Default().
  void SetClock(Clock* clock) EXCLUDES(mu_);

 private:
  struct SiteState {
    FaultSiteConfig config;
    int64_t hits = 0;
    int64_t triggers = 0;
  };

  /// Crash requests queued beyond this are dropped (and counted): a stalled
  /// driver must not turn a crash loop into unbounded memory growth.
  static constexpr size_t kMaxPendingCrashRequests = 64;

  // Arm/Disarm/Load/Clear keep this equal to sites_.size(); relaxed is
  // enough because armed() is only a gate — Hit() re-checks under mu_.
  std::atomic<int64_t> armed_sites_{0};

  mutable Mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_ GUARDED_BY(mu_);
  Random rng_ GUARDED_BY(mu_);
  Clock* clock_ GUARDED_BY(mu_) = nullptr;
  int64_t triggers_total_ GUARDED_BY(mu_) = 0;
  std::vector<std::string> crash_requests_ GUARDED_BY(mu_);
  int64_t crash_requests_dropped_ GUARDED_BY(mu_) = 0;
};

/// Declares a named fault site in a Status- or Result-returning function.
/// Disarmed cost: one relaxed atomic load and a predicted-false branch.
#define LIQUID_FAULT_POINT(site)                                      \
  do {                                                                \
    if (::liquid::FaultRegistry::Default()->armed()) {                \
      ::liquid::Status liquid_fault_point_status =                    \
          ::liquid::FaultRegistry::Default()->Hit(site);              \
      if (!liquid_fault_point_status.ok()) {                          \
        return liquid_fault_point_status;                             \
      }                                                               \
    }                                                                 \
  } while (0)

}  // namespace liquid

#endif  // LIQUID_COMMON_FAULT_H_
