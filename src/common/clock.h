#ifndef LIQUID_COMMON_CLOCK_H_
#define LIQUID_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace liquid {

/// Time source abstraction.
///
/// Production paths use SystemClock; deterministic tests and the failure /
/// retention / cache-eviction logic use SimulatedClock so that "after 7 days
/// the segment expires" can be tested in microseconds.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Milliseconds since the epoch of this clock.
  virtual int64_t NowMs() const = 0;

  /// Microseconds since the epoch of this clock.
  virtual int64_t NowUs() const = 0;

  /// Blocks (or advances simulated time) for `ms` milliseconds.
  virtual void SleepMs(int64_t ms) = 0;
};

/// Wall-clock time via std::chrono::steady_clock (monotonic).
class SystemClock : public Clock {
 public:
  int64_t NowMs() const override;
  int64_t NowUs() const override;
  void SleepMs(int64_t ms) override;

  /// Process-wide instance.
  static SystemClock* Default();
};

/// Manually advanced clock for deterministic tests.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(int64_t start_ms = 0) : now_us_(start_ms * 1000) {}

  int64_t NowMs() const override { return now_us_.load() / 1000; }
  int64_t NowUs() const override { return now_us_.load(); }

  /// Advancing is the only way time passes; SleepMs advances immediately.
  void SleepMs(int64_t ms) override { AdvanceMs(ms); }

  void AdvanceMs(int64_t ms) { now_us_.fetch_add(ms * 1000); }
  void AdvanceUs(int64_t us) { now_us_.fetch_add(us); }
  void SetMs(int64_t ms) { now_us_.store(ms * 1000); }

 private:
  std::atomic<int64_t> now_us_;
};

}  // namespace liquid

#endif  // LIQUID_COMMON_CLOCK_H_
