#include "common/trace.h"

#include <algorithm>
#include <cmath>

namespace liquid {

TraceCollector::TraceCollector(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

TraceCollector* TraceCollector::Default() {
  // liquid-lint: allow(hot-alloc): process-lifetime singleton; allocates exactly once.
  static TraceCollector* collector = new TraceCollector();
  return collector;
}

void TraceCollector::SetSampleRate(double rate) {
  uint64_t stride = 0;
  if (rate > 0.0) {
    const double clamped = std::min(rate, 1.0);
    stride = static_cast<uint64_t>(std::llround(1.0 / clamped));
    stride = std::max<uint64_t>(stride, 1);
  }
  sample_stride_.store(stride, std::memory_order_relaxed);
}

double TraceCollector::sample_rate() const {
  const uint64_t stride = sample_stride_.load(std::memory_order_relaxed);
  return stride == 0 ? 0.0 : 1.0 / static_cast<double>(stride);
}

bool TraceCollector::ShouldSample() {
  const uint64_t stride = sample_stride_.load(std::memory_order_relaxed);
  if (stride == 0) return false;
  if (stride == 1) return true;
  return decision_counter_.fetch_add(1, std::memory_order_relaxed) % stride == 0;
}

void TraceCollector::Record(Span span) {
  MutexLock lock(&mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    // liquid-lint: allow(hot-alloc): the ring grows only until capacity_, then overwrites slots in place; steady state allocates nothing.
    ring_.push_back(std::move(span));
    return;
  }
  // Full: overwrite the oldest slot (next_slot_ walks the ring).
  ring_[next_slot_] = std::move(span);
  next_slot_ = (next_slot_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Span> TraceCollector::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Oldest first: the ring wraps at next_slot_ once it has filled up.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Span> TraceCollector::Trace(uint64_t trace_id) const {
  std::vector<Span> out;
  for (Span& span : Snapshot()) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

void TraceCollector::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_slot_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

int64_t TraceCollector::recorded() const {
  MutexLock lock(&mu_);
  return recorded_;
}

int64_t TraceCollector::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

void TraceCollector::SetCapacity(size_t capacity) {
  MutexLock lock(&mu_);
  capacity_ = std::max<size_t>(capacity, 1);
  if (ring_.size() <= capacity_) return;
  // Shrink: keep the newest spans, restored to oldest-first order.
  std::vector<Span> kept;
  kept.reserve(capacity_);
  const size_t drop = ring_.size() - capacity_;
  for (size_t i = drop; i < ring_.size(); ++i) {
    kept.push_back(std::move(ring_[(next_slot_ + i) % ring_.size()]));
  }
  ring_ = std::move(kept);
  next_slot_ = 0;
}

}  // namespace liquid
