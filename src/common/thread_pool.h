#ifndef LIQUID_COMMON_THREAD_POOL_H_
#define LIQUID_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace liquid {

/// Fixed-size worker pool used by broker replication fetchers and job task
/// runners. Tasks are plain std::function<void()>; submission after Shutdown
/// is a no-op returning false.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace liquid

#endif  // LIQUID_COMMON_THREAD_POOL_H_
