#ifndef LIQUID_COMMON_THREAD_POOL_H_
#define LIQUID_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace liquid {

/// Fixed-size worker pool used by broker replication fetchers and job task
/// runners. Tasks are plain std::function<void()>; submission after Shutdown
/// is a no-op returning false.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait() EXCLUDES(mu_);

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  // liquid-lint: allow(guarded-by): populated only in the constructor before any worker runs; joined by Shutdown without mu_.
  std::vector<std::thread> workers_;
  int active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace liquid

#endif  // LIQUID_COMMON_THREAD_POOL_H_
