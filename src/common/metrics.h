#ifndef LIQUID_COMMON_METRICS_H_
#define LIQUID_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace liquid {

/// Monotonic counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta); }
  int64_t value() const { return value_.load(); }
  void Reset() { value_.store(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v); }
  int64_t value() const { return value_.load(); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed latency/size histogram (HdrHistogram-style precision/cost
/// trade-off: ~4% relative error, constant memory). Values are arbitrary
/// non-negative integers; Liquid records latencies in microseconds.
class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const;
  int64_t min() const;
  int64_t max() const;
  double mean() const;
  /// q in [0, 1]; e.g. ValueAtQuantile(0.99) is p99.
  int64_t ValueAtQuantile(double q) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two.
  static constexpr int kNumBuckets = 64 * (1 << kSubBucketBits);

  static int BucketFor(int64_t value);
  static int64_t BucketMidpoint(int bucket);

  mutable std::mutex mu_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Named registry so subsystems (brokers, jobs, caches) can expose metrics to
/// tests/benches without plumbing every object through.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of all counter values, for operational-analysis examples.
  std::map<std::string, int64_t> CounterValues() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace liquid

#endif  // LIQUID_COMMON_METRICS_H_
