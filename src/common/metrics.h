#ifndef LIQUID_COMMON_METRICS_H_
#define LIQUID_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace liquid {

/// Monotonic counter (atomic; safe to share across threads). All accesses
/// are relaxed: each counter is an independent statistic with no ordering
/// contract against other memory — readers tolerate arbitrarily stale values.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge (atomic; safe to share across threads). Relaxed for the
/// same reason as Counter: a gauge publishes an isolated scalar, not a
/// happens-before edge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Consistent point-in-time view of a Histogram, taken under one lock
/// acquisition so count/mean/quantiles describe the same sample set even
/// while writers keep recording (reading each stat separately can tear).
struct HistogramStats {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
};

/// Log-bucketed latency/size histogram (HdrHistogram-style precision/cost
/// trade-off: ~4% relative error, constant memory). Values are arbitrary
/// non-negative integers; Liquid records latencies in microseconds.
class Histogram {
 public:
  Histogram();

  void Record(int64_t value) EXCLUDES(mu_);
  /// Adds `other`'s samples to this histogram. Safe against concurrent
  /// cross-merges (locks are taken in address order) and self-merge.
  void Merge(const Histogram& other);
  void Reset() EXCLUDES(mu_);

  int64_t count() const EXCLUDES(mu_);
  int64_t min() const EXCLUDES(mu_);
  int64_t max() const EXCLUDES(mu_);
  double mean() const EXCLUDES(mu_);
  /// q in [0, 1]; e.g. ValueAtQuantile(0.99) is p99.
  int64_t ValueAtQuantile(double q) const EXCLUDES(mu_);

  /// All stats from one consistent snapshot. Prefer this over calling the
  /// individual accessors when writers may be concurrent: each accessor
  /// locks separately, so e.g. count() and mean() can disagree about which
  /// samples they describe.
  HistogramStats Stats() const EXCLUDES(mu_);

  /// "count=... mean=... p50=... p95=... p99=... max=..." — rendered from
  /// one consistent snapshot.
  std::string Summary() const EXCLUDES(mu_);

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two.
  static constexpr int kNumBuckets = 64 * (1 << kSubBucketBits);

  static int BucketFor(int64_t value);
  static int64_t BucketMidpoint(int bucket);

  void MergeFromLocked(const Histogram& other) REQUIRES(mu_, other.mu_);
  int64_t ValueAtQuantileLocked(double q) const REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<int64_t> buckets_ GUARDED_BY(mu_);
  int64_t count_ GUARDED_BY(mu_) = 0;
  int64_t sum_ GUARDED_BY(mu_) = 0;
  int64_t min_ GUARDED_BY(mu_) = 0;
  int64_t max_ GUARDED_BY(mu_) = 0;
};

/// Named registry so subsystems (brokers, jobs, caches) can expose metrics to
/// tests/benches/operators without plumbing every object through.
///
/// Metric names are hierarchical dotted paths (see OBSERVABILITY.md for the
/// full naming scheme), e.g. "liquid.broker.0.produce_records" or
/// "liquid.consumer.job.wordcount.lag". Returned pointers stay valid for the
/// registry's lifetime: entries are never erased, so callers may cache them
/// and skip the name lookup on hot paths.
class MetricsRegistry {
 public:
  /// The process-wide registry that Liquid's own instrumentation (brokers,
  /// producers, consumers, jobs, the offset manager) records into; scrape it
  /// with RenderPrometheus()/RenderJson() or the liquid-top CLI.
  static MetricsRegistry* Default();

  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  /// Snapshot of all counter values, for operational-analysis examples.
  std::map<std::string, int64_t> CounterValues() const EXCLUDES(mu_);

  /// Snapshot of all gauge values.
  std::map<std::string, int64_t> GaugeValues() const EXCLUDES(mu_);

  /// Prometheus text exposition (version 0.0.4): counters and gauges as
  /// single samples, histograms as summaries (quantile-labelled samples plus
  /// _sum and _count). Dots and other non-metric characters in names are
  /// rewritten to underscores.
  std::string RenderPrometheus() const EXCLUDES(mu_);

  /// The same snapshot as a single JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name: {stats}}}.
  std::string RenderJson() const EXCLUDES(mu_);

  /// Zeroes every metric IN PLACE (pointers handed out stay valid — this is
  /// what makes it test-safe where swapping the registry would not be).
  /// Intended for test isolation against the process-wide Default() registry.
  void ResetAllForTest() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

}  // namespace liquid

#endif  // LIQUID_COMMON_METRICS_H_
