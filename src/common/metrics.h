#ifndef LIQUID_COMMON_METRICS_H_
#define LIQUID_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace liquid {

/// Monotonic counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta); }
  int64_t value() const { return value_.load(); }
  void Reset() { value_.store(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v); }
  int64_t value() const { return value_.load(); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed latency/size histogram (HdrHistogram-style precision/cost
/// trade-off: ~4% relative error, constant memory). Values are arbitrary
/// non-negative integers; Liquid records latencies in microseconds.
class Histogram {
 public:
  Histogram();

  void Record(int64_t value) EXCLUDES(mu_);
  /// Adds `other`'s samples to this histogram. Safe against concurrent
  /// cross-merges (locks are taken in address order) and self-merge.
  void Merge(const Histogram& other);
  void Reset() EXCLUDES(mu_);

  int64_t count() const EXCLUDES(mu_);
  int64_t min() const EXCLUDES(mu_);
  int64_t max() const EXCLUDES(mu_);
  double mean() const EXCLUDES(mu_);
  /// q in [0, 1]; e.g. ValueAtQuantile(0.99) is p99.
  int64_t ValueAtQuantile(double q) const EXCLUDES(mu_);

  /// "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const EXCLUDES(mu_);

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two.
  static constexpr int kNumBuckets = 64 * (1 << kSubBucketBits);

  static int BucketFor(int64_t value);
  static int64_t BucketMidpoint(int bucket);

  void MergeFromLocked(const Histogram& other) REQUIRES(mu_, other.mu_);

  mutable Mutex mu_;
  std::vector<int64_t> buckets_ GUARDED_BY(mu_);
  int64_t count_ GUARDED_BY(mu_) = 0;
  int64_t sum_ GUARDED_BY(mu_) = 0;
  int64_t min_ GUARDED_BY(mu_) = 0;
  int64_t max_ GUARDED_BY(mu_) = 0;
};

/// Named registry so subsystems (brokers, jobs, caches) can expose metrics to
/// tests/benches without plumbing every object through.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  /// Snapshot of all counter values, for operational-analysis examples.
  std::map<std::string, int64_t> CounterValues() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

}  // namespace liquid

#endif  // LIQUID_COMMON_METRICS_H_
