#ifndef LIQUID_COMMON_RETRY_H_
#define LIQUID_COMMON_RETRY_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/status.h"

namespace liquid {

/// Absolute time budget for one logical operation (e.g. "this produce must
/// complete within 5 s, retries included"). Deadlines are checked by
/// RetryState before every backoff, so an operation never sleeps past its
/// budget. Copyable value type.
class Deadline {
 public:
  /// No budget: expired() is always false.
  static Deadline Infinite() { return Deadline(nullptr, 0); }

  /// Expires `ms` from now on `clock` (which must outlive the deadline).
  static Deadline AfterMs(const Clock* clock, int64_t ms) {
    return Deadline(clock, clock->NowMs() + ms);
  }

  bool expired() const {
    return clock_ != nullptr && clock_->NowMs() >= deadline_ms_;
  }

  /// Milliseconds left (0 when expired); INT64_MAX for Infinite().
  int64_t remaining_ms() const;

  bool infinite() const { return clock_ == nullptr; }

 private:
  Deadline(const Clock* clock, int64_t deadline_ms)
      : clock_(clock), deadline_ms_(deadline_ms) {}

  const Clock* clock_;
  int64_t deadline_ms_;
};

/// The unified client-side retry discipline: capped exponential backoff with
/// jitter plus the retriable-status classification every client shares.
///
/// Classification: Unavailable (leader election in flight, ISR below
/// min.insync), NotLeader (stale leadership metadata) and ResourceExhausted
/// (staging-ring / quota backpressure) are transient — retry, refreshing
/// metadata first for the leadership-related ones. Everything else
/// (InvalidArgument, Corruption, IOError, ...) fails fast: retrying cannot
/// fix it and only hides the bug.
struct RetryPolicy {
  /// Total tries including the first attempt; 1 disables retries.
  int max_attempts = 6;
  /// First backoff; successive backoffs multiply by `multiplier` up to
  /// `max_backoff_ms`.
  int64_t initial_backoff_ms = 1;
  int64_t max_backoff_ms = 64;
  double multiplier = 2.0;
  /// Fraction of the backoff randomized away (0.25 = sleep in
  /// [0.75x, 1.0x]). Decorrelates clients that fail in lockstep.
  double jitter = 0.25;

  /// True for the transient statuses worth retrying.
  static bool IsRetriable(const Status& status) {
    return status.IsUnavailable() || status.IsNotLeader() ||
           status.IsResourceExhausted();
  }

  /// True when the status implies cached leadership/cluster metadata may be
  /// stale and must be refreshed before the next attempt (re-sending to a
  /// dead or demoted leader cannot succeed).
  static bool NeedsMetadataRefresh(const Status& status) {
    return status.IsNotLeader() || status.IsUnavailable();
  }
};

/// Cached metric handles for one component instance's retry loops, resolved
/// once at construction time so retry paths never take the registry lock.
/// `prefix` is the instance's metric prefix incl. trailing dot, e.g.
/// "liquid.producer." or "liquid.consumer.<group>.".
struct RetryMetrics {
  Counter* retries_total = nullptr;
  Counter* giveups_total = nullptr;
  Histogram* retry_backoff_us = nullptr;

  static RetryMetrics Create(const std::string& prefix);
};

/// Per-operation retry state machine. Construct one per logical operation;
/// it is single-threaded by design (each operation retries on its own
/// calling thread), so it carries no lock — shared retry surfaces are the
/// caller's cached RetryMetrics counters, which are internally synchronized.
///
/// Usage:
///   RetryState retry(policy, clock, deadline, seed, &metrics);
///   for (;;) {
///     Status st = TryOnce();
///     if (st.ok() || !retry.ShouldRetry(st)) return st;
///     if (retry.needs_metadata_refresh()) RefreshMetadata();
///   }
///
/// ShouldRetry() sleeps the backoff on the calling thread — clients back
/// off client-side, brokers never sleep on a request thread (§4.5
/// convention).
class RetryState {
 public:
  RetryState(const RetryPolicy& policy, Clock* clock, Deadline deadline,
             uint64_t jitter_seed, const RetryMetrics* metrics = nullptr);

  /// Classifies `status`: returns false for OK, non-retriable statuses, and
  /// retriable ones with no attempts or deadline budget left (counting a
  /// giveup). Otherwise sleeps the capped jittered backoff and returns true.
  bool ShouldRetry(const Status& status);

  /// Retries performed so far (0 after construction).
  int retries() const { return retries_; }

  /// Total time slept in backoffs.
  int64_t total_backoff_us() const { return total_backoff_us_; }

  /// True when the last retriable status calls for a metadata refresh
  /// before the next attempt (see RetryPolicy::NeedsMetadataRefresh).
  bool needs_metadata_refresh() const { return needs_refresh_; }

  /// True when ShouldRetry returned false for a retriable status (budget
  /// exhausted) rather than a non-retriable one.
  bool gave_up() const { return gave_up_; }

 private:
  const RetryPolicy policy_;
  Clock* const clock_;
  const Deadline deadline_;
  Random rng_;
  const RetryMetrics* metrics_;
  int retries_ = 0;
  int64_t total_backoff_us_ = 0;
  bool needs_refresh_ = false;
  bool gave_up_ = false;
};

}  // namespace liquid

#endif  // LIQUID_COMMON_RETRY_H_
