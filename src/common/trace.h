#ifndef LIQUID_COMMON_TRACE_H_
#define LIQUID_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace liquid {

/// Trace identity carried by a record across the stack (producer -> broker ->
/// consumer -> job -> downstream publishes and changelogs). A record with
/// trace_id == 0 is untraced and pays no tracing cost anywhere.
///
/// The context rides in the record header (see storage/record.h): the wire
/// encoding appends {trace_id, span_id, ingest_us} only when the trace bit in
/// the attributes byte is set, so untraced records are byte-identical to the
/// pre-tracing format.
struct TraceContext {
  /// Identifies one record's end-to-end journey; 0 = untraced.
  uint64_t trace_id = 0;
  /// The span that last touched the record; downstream hops use it as their
  /// parent, which links hops into one tree per trace.
  uint64_t span_id = 0;
  /// Microsecond timestamp of the record's first entry into the system
  /// (stamped by the producer). End-to-end latency = now - ingest_us.
  int64_t ingest_us = 0;

  bool active() const { return trace_id != 0; }
};

/// One hop of a traced record's journey, recorded by the component that
/// performed it. Well-known names: "produce" (producer -> leader), "append"
/// (leader log append), "replicate" (follower append), "fetch" (leader ->
/// consumer), "process" (job task), "changelog" (store mutation publish).
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  /// Span id of the previous hop (the record's span_id at arrival); 0 for
  /// root spans.
  uint64_t parent_span_id = 0;
  int64_t start_us = 0;
  int64_t end_us = 0;
  std::string name;    // Hop kind, e.g. "produce", "append", "fetch".
  std::string detail;  // Usually the topic-partition or job name.
};

/// Process-wide, bounded, sampled span sink.
///
/// Sampling is decided once per record at the producer (every Nth record for
/// a configured rate); everything downstream keys off the record's trace_id,
/// so the rate knob is a single atomic read on the hot path and a disabled
/// collector (the default) costs one predicted-false branch per record.
///
/// Storage is a fixed-capacity ring: recording never blocks on memory growth
/// and old spans are overwritten (dropped() counts overwrites). All methods
/// are thread-safe.
class TraceCollector {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  explicit TraceCollector(size_t capacity = kDefaultCapacity);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The process-wide collector every component records into.
  static TraceCollector* Default();

  /// Fraction of produced records to trace, in [0, 1]. 0 (the default)
  /// disables tracing entirely; 1 traces every record. Rates in between are
  /// applied as "every Nth record" with N = round(1/rate), so sampling is
  /// deterministic and spreads evenly under steady load.
  void SetSampleRate(double rate);
  double sample_rate() const;

  /// True when any sampling is configured (single relaxed atomic load).
  bool enabled() const {
    return sample_stride_.load(std::memory_order_relaxed) != 0;
  }

  /// Consumes one sampling decision: true when the caller should start a
  /// trace for the record at hand.
  bool ShouldSample();

  /// Fresh process-unique ids (monotonic; never 0). Uniqueness needs only
  /// the atomic increment itself, so relaxed ordering suffices.
  uint64_t NewTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NewSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends one hop to the ring (overwrites the oldest span when full).
  void Record(Span span) EXCLUDES(mu_);

  /// All retained spans, oldest first.
  std::vector<Span> Snapshot() const EXCLUDES(mu_);

  /// Retained spans of one trace, oldest first.
  std::vector<Span> Trace(uint64_t trace_id) const EXCLUDES(mu_);

  /// Drops all retained spans (test isolation); ids keep increasing so
  /// cleared traces can never collide with later ones.
  void Clear() EXCLUDES(mu_);

  /// Total spans ever recorded / overwritten because the ring was full.
  int64_t recorded() const EXCLUDES(mu_);
  int64_t dropped() const EXCLUDES(mu_);

  /// Resizes the ring, keeping the newest spans that fit.
  void SetCapacity(size_t capacity) EXCLUDES(mu_);

 private:
  // Sampling: stride 0 = disabled, stride N = trace every Nth record.
  std::atomic<uint64_t> sample_stride_{0};
  std::atomic<uint64_t> decision_counter_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};

  mutable Mutex mu_;
  std::vector<Span> ring_ GUARDED_BY(mu_);
  size_t capacity_ GUARDED_BY(mu_);
  size_t next_slot_ GUARDED_BY(mu_) = 0;  // Ring cursor once full.
  int64_t recorded_ GUARDED_BY(mu_) = 0;
  int64_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace liquid

#endif  // LIQUID_COMMON_TRACE_H_
