#include "common/retry.h"

#include <algorithm>
#include <limits>

#include "common/metrics.h"

namespace liquid {

int64_t Deadline::remaining_ms() const {
  if (clock_ == nullptr) return std::numeric_limits<int64_t>::max();
  return std::max<int64_t>(0, deadline_ms_ - clock_->NowMs());
}

RetryMetrics RetryMetrics::Create(const std::string& prefix) {
  MetricsRegistry* global = MetricsRegistry::Default();
  RetryMetrics metrics;
  metrics.retries_total = global->GetCounter(prefix + "retries_total");
  metrics.giveups_total = global->GetCounter(prefix + "giveups_total");
  metrics.retry_backoff_us = global->GetHistogram(prefix + "retry_backoff_us");
  return metrics;
}

RetryState::RetryState(const RetryPolicy& policy, Clock* clock,
                       Deadline deadline, uint64_t jitter_seed,
                       const RetryMetrics* metrics)
    : policy_(policy),
      clock_(clock),
      deadline_(deadline),
      rng_(jitter_seed == 0 ? 1 : jitter_seed),
      metrics_(metrics) {}

bool RetryState::ShouldRetry(const Status& status) {
  if (status.ok()) return false;
  if (!RetryPolicy::IsRetriable(status)) return false;  // Fail fast.
  needs_refresh_ = RetryPolicy::NeedsMetadataRefresh(status);
  if (retries_ + 1 >= policy_.max_attempts || deadline_.expired()) {
    gave_up_ = true;
    if (metrics_ != nullptr && metrics_->giveups_total != nullptr) {
      metrics_->giveups_total->Increment();
    }
    return false;
  }

  // Capped exponential backoff: initial * multiplier^retries, clamped.
  double backoff_ms = static_cast<double>(policy_.initial_backoff_ms);
  for (int i = 0; i < retries_ && backoff_ms < static_cast<double>(
                                                   policy_.max_backoff_ms);
       ++i) {
    backoff_ms *= policy_.multiplier;
  }
  backoff_ms =
      std::min(backoff_ms, static_cast<double>(policy_.max_backoff_ms));
  // Jitter shaves a random fraction of the window off, so clients that
  // failed together spread back out instead of thundering in lockstep.
  if (policy_.jitter > 0.0) {
    backoff_ms *= 1.0 - policy_.jitter * rng_.NextDouble();
  }
  int64_t sleep_ms = std::max<int64_t>(0, static_cast<int64_t>(backoff_ms));
  // Never sleep past the deadline: the next attempt deserves whatever
  // budget is left.
  if (!deadline_.infinite()) {
    sleep_ms = std::min(sleep_ms, deadline_.remaining_ms());
  }

  ++retries_;
  total_backoff_us_ += sleep_ms * 1000;
  if (metrics_ != nullptr) {
    if (metrics_->retries_total != nullptr) {
      metrics_->retries_total->Increment();
    }
    if (metrics_->retry_backoff_us != nullptr) {
      metrics_->retry_backoff_us->Record(sleep_ms * 1000);
    }
  }
  if (sleep_ms > 0) {
    clock_->SleepMs(sleep_ms);
  }
  return true;
}

}  // namespace liquid
