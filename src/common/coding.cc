#include "common/coding.h"

#include <cstring>

namespace liquid {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  // liquid-lint: allow(hot-alloc): appends into a buffer the caller pre-reserves (EncodedBatch::Encode reserves the exact encoded size; EncodeRecord reserves its body).
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  // liquid-lint: allow(hot-alloc): appends into a buffer the caller pre-reserves (see PutFixed32).
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t DecodeFixed64(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  // liquid-lint: allow(hot-alloc): appends into a buffer the caller pre-reserves (see PutFixed32).
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  // liquid-lint: allow(hot-alloc): appends into a buffer the caller pre-reserves (see PutFixed32).
  dst->append(value.data(), value.size());
}

Status GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  const char* p = input->data();
  const char* limit = p + input->size();
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    // The 10th byte (shift 63) contributes a single bit; any higher payload
    // bit would be shifted out of the uint64 silently — reject it instead.
    if (shift == 63 && (byte & 0x7e) != 0) {
      return Status::Corruption("varint64 overflow");
    }
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      input->RemovePrefix(static_cast<size_t>(p - input->data()));
      return Status::OK();
    }
  }
  return Status::Corruption("truncated or malformed varint64");
}

Status GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64 = 0;
  LIQUID_RETURN_NOT_OK(GetVarint64(input, &v64));
  if (v64 > UINT32_MAX) {
    return Status::Corruption("varint32 overflow");
  }
  *value = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status GetLengthPrefixed(Slice* input, Slice* result) {
  uint32_t len = 0;
  LIQUID_RETURN_NOT_OK(GetVarint32(input, &len));
  if (input->size() < len) {
    return Status::Corruption("length-prefixed slice truncated");
  }
  *result = Slice(input->data(), len);
  input->RemovePrefix(len);
  return Status::OK();
}

Status GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return Status::Corruption("fixed32 truncated");
  *value = DecodeFixed32(input->data());
  input->RemovePrefix(4);
  return Status::OK();
}

Status GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return Status::Corruption("fixed64 truncated");
  *value = DecodeFixed64(input->data());
  input->RemovePrefix(8);
  return Status::OK();
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace liquid
