#ifndef LIQUID_COMMON_MPSC_RING_H_
#define LIQUID_COMMON_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace liquid {

/// A bounded lock-free multi-producer / single-consumer staging ring keyed by
/// a monotonically increasing sequence number (the log offset, in the append
/// path). Producers claim a contiguous run of sequence slots with a single
/// CAS, fill the payload, and publish it with one release store; the single
/// drainer consumes runs strictly in sequence order. The ring allocates all
/// of its storage at construction time and never allocates afterwards, so it
/// is safe on `LIQUID_HOT_PATH` code.
///
/// Design notes (mirrored in DESIGN.md §5a "Staging ring"):
///  - One slot per sequence number. A claim of `n` sequences [base, base+n)
///    stores its payload only in the slot of `base`; the other claimed slots
///    stay empty and are skipped by the drainer when it jumps the cursor by
///    the run's `count`. Making the sequence number *be* the slot index
///    (modulo capacity) guarantees drain order == sequence order with one
///    atomic claim, and lets producers encode their payload with final
///    sequence numbers assigned, concurrently, outside any lock.
///  - The claim word packs `(next_unclaimed_sequence << 1) | closed` so a
///    gate transition (Close/Reset by an external quiescer) cannot race a
///    concurrent claim: a claimer's CAS fails if the gate bit flipped, and a
///    CAS that reads the value written by `Reset` acquire-synchronizes with
///    the reset's slot clears.
///  - A full ring rejects the claim with **no side effects**, so callers can
///    surface backpressure (client-side throttle/retry) without broker-side
///    blocking; `kClosed` likewise means "retry later" while a mutator holds
///    the gate.
///  - The drainer advances `consumed_` as soon as it has moved a payload out
///    of its slot — before the payload is persisted — because slot reuse only
///    requires the *memory* to be free. Persistence watermarks are the
///    caller's business (`Log::committed_offset_`/`durable_offset_`).
///
/// Thread-safety: `Claim`/`Publish` may race freely from any number of
/// producers. `TryConsume`/`PeekReady` must be called by one consumer at a
/// time. `Close`/`Reset`/`reserved` are gate operations: callers serialize
/// them externally (the log uses `append_mu_`) and `Reset` additionally
/// requires the ring to be closed and fully drained.
template <typename T>
class MpscRing {
 public:
  /// Outcome of a `Claim` attempt. Only `kOk` has side effects.
  enum class ClaimResult {
    kOk,      ///< Slots [*base, *base+n) are claimed; caller must Publish().
    kFull,    ///< No room: `n` sequences would overrun unconsumed slots.
    kClosed,  ///< Gate closed by a mutator; retry after it reopens.
  };

  /// Creates a ring with at least `min_capacity` slots (rounded up to a
  /// power of two, minimum 2). Allocation happens only here.
  explicit MpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(kEmptySeq, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Claims `n` consecutive sequence numbers. On `kOk`, `*base` is the first
  /// claimed sequence and the caller owns slots [*base, *base+n) until it
  /// publishes them. On `kFull`/`kClosed` nothing was claimed. Callers must
  /// ensure `0 < n <= capacity()`.
  ClaimResult Claim(int64_t n, int64_t* base) {
    // order: acquire pairs with Reset's release store so a claimer entering
    // a freshly reopened ring observes the cleared slot sequence numbers
    // before writing into its slots.
    uint64_t cur = reserve_.load(std::memory_order_acquire);
    for (;;) {
      if ((cur & kClosedBit) != 0) return ClaimResult::kClosed;
      const int64_t first = static_cast<int64_t>(cur >> 1);
      // order: acquire pairs with the consumer's release store in
      // TryConsume, so our writes into reclaimed slots happen after the
      // consumer finished moving the previous tenant's payload out.
      const int64_t freed = consumed_.load(std::memory_order_acquire);
      if (first + n - freed > static_cast<int64_t>(capacity_)) {
        return ClaimResult::kFull;
      }
      const uint64_t next = static_cast<uint64_t>(first + n) << 1;
      // order: success acquire pairs with Reset's release store in case the
      // gate cycled to the same numeric value since our first load; failure
      // acquire re-synchronizes the reloaded word for the next iteration.
      // The claim itself publishes nothing (Publish's release store on the
      // slot sequence is the publication edge).
      if (reserve_.compare_exchange_weak(cur, next, std::memory_order_acquire,
                                         std::memory_order_acquire)) {
        *base = first;
        return ClaimResult::kOk;
      }
    }
  }

  /// Publishes the payload for a claimed run [base, base+n). After this
  /// returns the consumer may pick the run up at any moment; the producer
  /// must not touch the slots again.
  void Publish(int64_t base, int64_t n, T value) {
    Slot& slot = slots_[Index(base)];
    slot.value = std::move(value);
    slot.count = n;
    // order: release publishes the slot payload (value, count) to the
    // consumer's acquire load of `seq` in TryConsume/PeekReady.
    slot.seq.store(base, std::memory_order_release);
  }

  /// Returns true when the run starting at `cursor` has been published.
  bool PeekReady(int64_t cursor) const {
    // order: acquire pairs with Publish's release store so callers that act
    // on readiness (the drainer's wait predicate) see the payload.
    return slots_[Index(cursor)].seq.load(std::memory_order_acquire) == cursor;
  }

  /// Consumes the run starting at `cursor` if it has been published: moves
  /// the payload into `*out`, stores the run length in `*count`, frees the
  /// slots for reuse, and returns true. Returns false when the producer of
  /// `cursor` has not published yet. Single consumer only.
  bool TryConsume(int64_t cursor, int64_t* count, T* out) {
    Slot& slot = slots_[Index(cursor)];
    // order: acquire pairs with Publish's release store; the payload reads
    // below happen after the producer's writes.
    if (slot.seq.load(std::memory_order_acquire) != cursor) return false;
    *out = std::move(slot.value);
    slot.value = T();
    *count = slot.count;
    // order: release frees the run's slots to producers' acquire load of
    // `consumed_` in Claim — their writes into the reclaimed slots must
    // happen after our move-out above.
    consumed_.store(cursor + slot.count, std::memory_order_release);
    return true;
  }

  /// Closes the claim gate: subsequent `Claim` calls fail with `kClosed`
  /// until `Reset` reopens the ring. Runs already claimed may still be
  /// published and consumed. Callers serialize gate operations externally.
  void Close() {
    // relaxed: atomicity of the RMW on the packed word is all that is
    // needed; the gate publishes no payload.
    reserve_.fetch_or(kClosedBit, std::memory_order_relaxed);
  }

  /// True when the claim gate is closed.
  bool closed() const {
    // relaxed: advisory read; gate transitions are externally serialized.
    return (reserve_.load(std::memory_order_relaxed) & kClosedBit) != 0;
  }

  /// Reopens an empty, closed ring at sequence `next`. Requires external
  /// quiescence: the gate is closed, every claimed run has been consumed,
  /// and no producer can observe the ring between the slot clears below and
  /// the reopening store (claims keep failing with `kClosed` until then).
  void Reset(int64_t next) {
    for (size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(kEmptySeq, std::memory_order_relaxed);
      slots_[i].value = T();
      slots_[i].count = 0;
    }
    // relaxed: no consumer runs during a reset (quiescence contract).
    consumed_.store(next, std::memory_order_relaxed);
    // order: release publishes the cleared slots and consumed watermark to
    // the first claimer's acquire load/CAS in Claim.
    reserve_.store(static_cast<uint64_t>(next) << 1,
                   std::memory_order_release);
  }

  /// The next unclaimed sequence number. Stable while the gate is closed;
  /// otherwise a racy snapshot (suitable for metrics and drain predicates).
  int64_t reserved() const {
    // relaxed: same-thread gate callers read their own fetch_or coherently;
    // metric readers tolerate staleness.
    return static_cast<int64_t>(reserve_.load(std::memory_order_relaxed) >> 1);
  }

  /// The lowest sequence number whose slot has not been freed yet.
  int64_t consumed() const {
    // relaxed: metric/diagnostic snapshot.
    return consumed_.load(std::memory_order_relaxed);
  }

  /// Claimed-but-not-yet-freed sequence count — the staging depth gauge.
  int64_t depth() const { return reserved() - consumed(); }

  /// Slot count (power of two). The largest claimable run.
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    /// Sequence number this slot's payload belongs to, or kEmptySeq.
    std::atomic<int64_t> seq{kEmptySeq};
    /// Run length; meaningful only in the base slot of a published run.
    int64_t count = 0;
    T value{};
  };

  static constexpr uint64_t kClosedBit = 1;
  static constexpr int64_t kEmptySeq = -1;

  size_t Index(int64_t seq) const {
    return static_cast<size_t>(seq) & mask_;
  }

  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  /// Packed claim word: (next unclaimed sequence << 1) | closed bit.
  std::atomic<uint64_t> reserve_{0};
  /// Sequences below this are fully consumed and their slots reusable.
  std::atomic<int64_t> consumed_{0};
};

}  // namespace liquid

#endif  // LIQUID_COMMON_MPSC_RING_H_
