#ifndef LIQUID_PROCESSING_PIPELINE_H_
#define LIQUID_PROCESSING_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "processing/job.h"
#include "processing/operators.h"

namespace liquid::processing {

/// A dataflow graph of jobs chained through feeds (§3.2: "jobs can communicate
/// with other jobs, forming a dataflow processing graph. All jobs are
/// decoupled by writing to and reading from the messaging layer").
///
/// Stages are independent jobs; RunUntilAllIdle drives them round-robin until
/// no stage makes progress, which is how the deterministic benches execute
/// multi-stage ETL pipelines.
class Pipeline {
 public:
  Pipeline(messaging::Cluster* cluster, messaging::OffsetManager* offsets,
           messaging::GroupCoordinator* coordinator, storage::Disk* state_disk);

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Appends a stateless map stage reading `input` and writing `output`.
  Status AddMapStage(const std::string& name, const std::string& input,
                     const std::string& output, MapTask::MapFn fn);

  /// Appends an arbitrary stage.
  Status AddStage(JobConfig config, TaskFactory factory);

  /// Round-robin RunOnce over all stages until `idle_rounds` full passes make
  /// no progress. Returns total records processed across stages.
  Result<int64_t> RunUntilAllIdle(int idle_rounds = 2);

  /// Commits every stage.
  Status CommitAll();

  Job* stage(size_t index) { return jobs_.at(index).get(); }
  size_t stage_count() const { return jobs_.size(); }

 private:
  messaging::Cluster* cluster_;
  messaging::OffsetManager* offsets_;
  messaging::GroupCoordinator* coordinator_;
  storage::Disk* state_disk_;
  std::vector<std::unique_ptr<Job>> jobs_;
};

}  // namespace liquid::processing

#endif  // LIQUID_PROCESSING_PIPELINE_H_
