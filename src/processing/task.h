#ifndef LIQUID_PROCESSING_TASK_H_
#define LIQUID_PROCESSING_TASK_H_

#include <functional>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "messaging/consumer.h"
#include "storage/record.h"

namespace liquid::processing {

/// Emits records to output feeds (derived feeds in the messaging layer).
class MessageCollector {
 public:
  virtual ~MessageCollector() = default;
  virtual Status Send(const std::string& topic, storage::Record record) = 0;
};

/// Lets a task ask the runtime for a checkpoint or a shutdown.
class TaskCoordinator {
 public:
  virtual ~TaskCoordinator() = default;
  virtual void RequestCommit() = 0;
  virtual void RequestShutdown() = 0;
};

/// State store interface handed to tasks (§3.2: "state can be represented as
/// arbitrary data structures, e.g. a window of the most recent stream data, a
/// dictionary of statistics or an inverted index").
class KeyValueStore {
 public:
  virtual ~KeyValueStore() = default;
  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const Slice& key) = 0;
  /// NotFound when absent.
  virtual Result<std::string> Get(const Slice& key) = 0;
  virtual Status ForEach(
      const std::function<void(const Slice&, const Slice&)>& fn) = 0;
  /// Visits live keys in [begin, end) in key order; an empty `end` means
  /// "to the last key". Windowed state keys sort by window start, so range
  /// scans let Window() touch only closed windows.
  virtual Status ForEachInRange(
      const Slice& begin, const Slice& end,
      const std::function<void(const Slice&, const Slice&)>& fn) = 0;
  virtual Result<int64_t> Count() = 0;
};

/// Per-task environment provided by the runtime at Init time.
class TaskContext {
 public:
  virtual ~TaskContext() = default;
  /// The named store declared in the job config; null if not declared.
  virtual KeyValueStore* GetStore(const std::string& name) = 0;
  /// The partition id this task owns. Samza semantics: one task per partition
  /// id, consuming that partition of EVERY input topic (co-partitioned inputs
  /// — e.g. a table feed and a stream feed — share the task and its state).
  virtual int partition() const = 0;
  virtual MetricsRegistry* metrics() = 0;
};

/// User processing logic (§3.2): one instance per input partition, processing
/// messages one at a time with optional explicit state.
class StreamTask {
 public:
  virtual ~StreamTask() = default;

  /// Called once before any Process call.
  virtual Status Init(TaskContext* context) {
    (void)context;
    return Status::OK();
  }

  /// Called for every input message. The per-record nearline hot path: job
  /// throughput is bounded by this virtual call, so implementations inherit
  /// the hot-path discipline rules (liquid-lint propagates from here).
  LIQUID_HOT_PATH
  virtual Status Process(const messaging::ConsumerRecord& envelope,
                         MessageCollector* collector,
                         TaskCoordinator* coordinator) = 0;

  /// Called periodically when the job configures a window interval.
  virtual Status Window(MessageCollector* collector,
                        TaskCoordinator* coordinator) {
    (void)collector;
    (void)coordinator;
    return Status::OK();
  }
};

/// Creates one StreamTask per input partition.
using TaskFactory = std::function<std::unique_ptr<StreamTask>()>;

}  // namespace liquid::processing

#endif  // LIQUID_PROCESSING_TASK_H_
