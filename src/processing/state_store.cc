#include "processing/state_store.h"

namespace liquid::processing {

Status InMemoryStore::Put(const Slice& key, const Slice& value) {
  MutexLock lock(&mu_);
  map_[key.ToString()] = value.ToString();
  return Status::OK();
}

Status InMemoryStore::Delete(const Slice& key) {
  MutexLock lock(&mu_);
  map_.erase(key.ToString());
  return Status::OK();
}

Result<std::string> InMemoryStore::Get(const Slice& key) {
  MutexLock lock(&mu_);
  auto it = map_.find(key.ToString());
  if (it == map_.end()) return Status::NotFound("no such key");
  return it->second;
}

Status InMemoryStore::ForEach(
    const std::function<void(const Slice&, const Slice&)>& fn) {
  MutexLock lock(&mu_);
  for (const auto& [key, value] : map_) fn(key, value);
  return Status::OK();
}

Status InMemoryStore::ForEachInRange(
    const Slice& begin, const Slice& end,
    const std::function<void(const Slice&, const Slice&)>& fn) {
  MutexLock lock(&mu_);
  auto it = map_.lower_bound(begin.ToString());
  const auto stop = end.empty() ? map_.end() : map_.lower_bound(end.ToString());
  for (; it != stop; ++it) fn(it->first, it->second);
  return Status::OK();
}

Result<int64_t> InMemoryStore::Count() {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(map_.size());
}

PersistentStore::PersistentStore(std::unique_ptr<kv::KvStore> kv)
    : kv_(std::move(kv)) {}

Result<std::unique_ptr<PersistentStore>> PersistentStore::Open(
    storage::Disk* disk, const std::string& prefix,
    const kv::KvOptions& options) {
  auto kv = kv::KvStore::Open(disk, prefix, options);
  if (!kv.ok()) return kv.status();
  return std::unique_ptr<PersistentStore>(
      new PersistentStore(std::move(kv).value()));
}

Status PersistentStore::Put(const Slice& key, const Slice& value) {
  return kv_->Put(key, value);
}

Status PersistentStore::Delete(const Slice& key) { return kv_->Delete(key); }

Result<std::string> PersistentStore::Get(const Slice& key) {
  return kv_->Get(key);
}

Status PersistentStore::ForEach(
    const std::function<void(const Slice&, const Slice&)>& fn) {
  return kv_->ForEach(fn);
}

Status PersistentStore::ForEachInRange(
    const Slice& begin, const Slice& end,
    const std::function<void(const Slice&, const Slice&)>& fn) {
  return kv_->ForEachInRange(begin, end, fn);
}

Result<int64_t> PersistentStore::Count() { return kv_->CountLiveKeys(); }

ChangelogStore::ChangelogStore(std::unique_ptr<KeyValueStore> inner,
                               ChangelogEmitter emit)
    : inner_(std::move(inner)), emit_(std::move(emit)) {}

Status ChangelogStore::Put(const Slice& key, const Slice& value) {
  LIQUID_RETURN_NOT_OK(inner_->Put(key, value));
  return emit_(storage::Record::KeyValue(key.ToString(), value.ToString()));
}

Status ChangelogStore::Delete(const Slice& key) {
  LIQUID_RETURN_NOT_OK(inner_->Delete(key));
  return emit_(storage::Record::Tombstone(key.ToString()));
}

Result<std::string> ChangelogStore::Get(const Slice& key) {
  return inner_->Get(key);
}

Status ChangelogStore::ForEach(
    const std::function<void(const Slice&, const Slice&)>& fn) {
  return inner_->ForEach(fn);
}

Status ChangelogStore::ForEachInRange(
    const Slice& begin, const Slice& end,
    const std::function<void(const Slice&, const Slice&)>& fn) {
  return inner_->ForEachInRange(begin, end, fn);
}

Result<int64_t> ChangelogStore::Count() { return inner_->Count(); }

Status ChangelogStore::ApplyChangelogRecord(const storage::Record& record) {
  if (record.is_tombstone) return inner_->Delete(record.key);
  return inner_->Put(record.key, record.value);
}

}  // namespace liquid::processing
