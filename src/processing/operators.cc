#include "processing/operators.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace liquid::processing {

namespace {

int64_t ParseCount(const Result<std::string>& stored) {
  if (!stored.ok()) return 0;
  return std::strtoll(stored.value().c_str(), nullptr, 10);
}

}  // namespace

Status KeyedCounterTask::Init(TaskContext* context) {
  store_ = context->GetStore(store_name_);
  if (store_ == nullptr) {
    return Status::InvalidArgument("store not declared: " + store_name_);
  }
  return Status::OK();
}

Status KeyedCounterTask::Process(const messaging::ConsumerRecord& envelope,
                                 MessageCollector*, TaskCoordinator*) {
  const std::string& key = envelope.record.key;
  const int64_t count = ParseCount(store_->Get(key)) + 1;
  // liquid-lint: allow(hot-alloc): the serialized store value is the task's output; KeyValueStore::Put requires owned bytes.
  return store_->Put(key, std::to_string(count));
}

Status KeyedCounterTask::Window(MessageCollector* collector, TaskCoordinator*) {
  if (output_topic_.empty()) return Status::OK();
  Status status = Status::OK();
  LIQUID_RETURN_NOT_OK(store_->ForEach([&](const Slice& key, const Slice& value) {
    if (!status.ok()) return;
    status = collector->Send(
        output_topic_,
        storage::Record::KeyValue(key.ToString(), value.ToString()));
  }));
  return status;
}

std::string WindowedAggregateTask::WindowKey(int64_t window_start,
                                             const std::string& key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020lld",
                static_cast<long long>(window_start));
  // liquid-lint: allow(hot-alloc): the composed window key is the task's state-store key; the store requires owned bytes.
  return std::string(buf) + "|" + key;
}

Status WindowedAggregateTask::Init(TaskContext* context) {
  store_ = context->GetStore(store_name_);
  if (store_ == nullptr) {
    return Status::InvalidArgument("store not declared: " + store_name_);
  }
  return Status::OK();
}

Status WindowedAggregateTask::Process(const messaging::ConsumerRecord& envelope,
                                      MessageCollector*, TaskCoordinator*) {
  const int64_t ts = envelope.record.timestamp_ms;
  max_event_ms_ = std::max(max_event_ms_, ts);
  const int64_t window_start = (ts / window_ms_) * window_ms_;
  const std::string key = WindowKey(window_start, envelope.record.key);
  const int64_t value = std::strtoll(envelope.record.value.c_str(), nullptr, 10);
  const int64_t sum = ParseCount(store_->Get(key)) + value;
  // liquid-lint: allow(hot-alloc): the serialized store value is the task's output; KeyValueStore::Put requires owned bytes.
  return store_->Put(key, std::to_string(sum));
}

Status WindowedAggregateTask::Window(MessageCollector* collector,
                                     TaskCoordinator*) {
  // A window [start, start+window_ms) is closed once events newer than its
  // end have been seen. Window keys are zero-padded start timestamps, so a
  // range scan up to the cutoff touches only closed windows.
  const int64_t cutoff = max_event_ms_ - window_ms_ + 1;
  if (cutoff <= 0) return Status::OK();
  std::vector<std::pair<std::string, std::string>> closed;
  LIQUID_RETURN_NOT_OK(store_->ForEachInRange(
      Slice(""), WindowKey(cutoff, ""),
      [&](const Slice& key, const Slice& value) {
        closed.emplace_back(key.ToString(), value.ToString());
      }));
  for (auto& [key, value] : closed) {
    LIQUID_RETURN_NOT_OK(
        collector->Send(output_topic_, storage::Record::KeyValue(key, value)));
    LIQUID_RETURN_NOT_OK(store_->Delete(key));
  }
  return Status::OK();
}

Status StreamTableJoinTask::Init(TaskContext* context) {
  store_ = context->GetStore(store_name_);
  if (store_ == nullptr) {
    return Status::InvalidArgument("store not declared: " + store_name_);
  }
  return Status::OK();
}

Status StreamTableJoinTask::Process(const messaging::ConsumerRecord& envelope,
                                    MessageCollector* collector,
                                    TaskCoordinator*) {
  if (envelope.tp.topic == table_topic_) {
    if (envelope.record.is_tombstone) {
      return store_->Delete(envelope.record.key);
    }
    return store_->Put(envelope.record.key, envelope.record.value);
  }
  auto table_value = store_->Get(envelope.record.key);
  if (!table_value.ok()) {
    if (table_value.status().IsNotFound()) return Status::OK();  // No match.
    return table_value.status();
  }
  return collector->Send(
      output_topic_,
      storage::Record::KeyValue(envelope.record.key,
                                envelope.record.value + "|" + *table_value));
}

}  // namespace liquid::processing
