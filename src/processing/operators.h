#ifndef LIQUID_PROCESSING_OPERATORS_H_
#define LIQUID_PROCESSING_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "processing/task.h"

namespace liquid::processing {

/// Stateless 1-to-(0|1) transformation: the classic ETL clean/normalize
/// stage. Returning nullopt drops the record (filter).
class MapTask : public StreamTask {
 public:
  using MapFn = std::function<std::optional<storage::Record>(
      const messaging::ConsumerRecord&)>;

  MapTask(std::string output_topic, MapFn fn)
      : output_topic_(std::move(output_topic)), fn_(std::move(fn)) {}

  Status Process(const messaging::ConsumerRecord& envelope,
                 MessageCollector* collector, TaskCoordinator*) override {
    auto mapped = fn_(envelope);
    if (!mapped.has_value()) return Status::OK();
    return collector->Send(output_topic_, std::move(*mapped));
  }

 private:
  std::string output_topic_;
  MapFn fn_;
};

/// Stateful per-key counter kept in the store named `store`; if
/// `output_topic` is non-empty, Window() emits one record per key with the
/// current count. The canonical incremental-statistics job of §4.2.
class KeyedCounterTask : public StreamTask {
 public:
  KeyedCounterTask(std::string store, std::string output_topic = "")
      : store_name_(std::move(store)), output_topic_(std::move(output_topic)) {}

  Status Init(TaskContext* context) override;
  Status Process(const messaging::ConsumerRecord& envelope,
                 MessageCollector* collector,
                 TaskCoordinator* coordinator) override;
  Status Window(MessageCollector* collector,
                TaskCoordinator* coordinator) override;

 private:
  std::string store_name_;
  std::string output_topic_;
  KeyValueStore* store_ = nullptr;
};

/// Tumbling-window sum per key over record (event) timestamps. State lives in
/// the `store`; closed windows (older than `window_ms` behind the newest
/// event seen) are emitted to `output_topic` and deleted on Window().
class WindowedAggregateTask : public StreamTask {
 public:
  WindowedAggregateTask(std::string store, std::string output_topic,
                        int64_t window_ms)
      : store_name_(std::move(store)),
        output_topic_(std::move(output_topic)),
        window_ms_(window_ms) {}

  Status Init(TaskContext* context) override;
  Status Process(const messaging::ConsumerRecord& envelope,
                 MessageCollector* collector,
                 TaskCoordinator* coordinator) override;
  Status Window(MessageCollector* collector,
                TaskCoordinator* coordinator) override;

  /// Window-state key: "<window_start, 20 digits>|<key>".
  static std::string WindowKey(int64_t window_start, const std::string& key);

 private:
  std::string store_name_;
  std::string output_topic_;
  int64_t window_ms_;
  KeyValueStore* store_ = nullptr;
  int64_t max_event_ms_ = 0;
};

/// Stream-table join: records from `table_topic` upsert the store; records
/// from any other input look up their key and, when present, are emitted to
/// `output_topic` with value = "<stream value>|<table value>".
class StreamTableJoinTask : public StreamTask {
 public:
  StreamTableJoinTask(std::string store, std::string table_topic,
                      std::string output_topic)
      : store_name_(std::move(store)),
        table_topic_(std::move(table_topic)),
        output_topic_(std::move(output_topic)) {}

  Status Init(TaskContext* context) override;
  Status Process(const messaging::ConsumerRecord& envelope,
                 MessageCollector* collector,
                 TaskCoordinator* coordinator) override;

 private:
  std::string store_name_;
  std::string table_topic_;
  std::string output_topic_;
  KeyValueStore* store_ = nullptr;
};

}  // namespace liquid::processing

#endif  // LIQUID_PROCESSING_OPERATORS_H_
