#include "processing/job.h"

#include <algorithm>

#include "common/logging.h"
#include "messaging/broker.h"

namespace liquid::processing {

using messaging::ConsumerRecord;
using messaging::TopicPartition;

/// Routes task output to the messaging layer through the job's producer.
class Job::CollectorImpl : public MessageCollector {
 public:
  explicit CollectorImpl(Job* job) : job_(job) {}

  Status Send(const std::string& topic, storage::Record record) override {
    job_->sent_counter_->Increment();
    job_->StampTrace(&record);
    return job_->producer_->Send(topic, std::move(record));
  }

 private:
  Job* job_;
};

class Job::CoordinatorImpl : public TaskCoordinator {
 public:
  void RequestCommit() override { commit_requested = true; }
  void RequestShutdown() override { shutdown_requested = true; }

  bool commit_requested = false;
  bool shutdown_requested = false;
};

class Job::ContextImpl : public TaskContext {
 public:
  ContextImpl(Job* job, int partition) : job_(job), partition_(partition) {}

  KeyValueStore* GetStore(const std::string& name) override {
    return GetStoreUnderJobLock(name);
  }

  int partition() const override { return partition_; }

  MetricsRegistry* metrics() override { return &job_->metrics_; }

 private:
  // Tasks only run from RunOnce, which holds the job lock across Process();
  // the analysis cannot see that across the virtual call boundary.
  KeyValueStore* GetStoreUnderJobLock(const std::string& name)
      NO_THREAD_SAFETY_ANALYSIS {
    auto it = job_->tasks_.find(partition_);
    if (it == job_->tasks_.end()) return nullptr;
    auto sit = it->second.stores.find(name);
    return sit == it->second.stores.end() ? nullptr : sit->second.get();
  }

  Job* job_;
  int partition_;
};

Job::Job(messaging::Cluster* cluster, messaging::OffsetManager* offsets,
         messaging::GroupCoordinator* coordinator, storage::Disk* state_disk,
         JobConfig config, TaskFactory factory, std::string instance_id,
         messaging::TransactionCoordinator* txn_coordinator)
    : cluster_(cluster),
      offsets_(offsets),
      coordinator_(coordinator),
      state_disk_(state_disk),
      config_(std::move(config)),
      factory_(std::move(factory)),
      instance_id_(std::move(instance_id)),
      txn_coordinator_(txn_coordinator) {
  MetricsRegistry* global = MetricsRegistry::Default();
  const std::string prefix = "liquid.job." + config_.name + ".";
  processed_counter_ = global->GetCounter(prefix + "processed");
  process_us_ = global->GetHistogram(prefix + "process_us");
  e2e_latency_us_ = global->GetHistogram(prefix + "e2e_latency_us");
  // Per-job-registry twins (kept for test/introspection compatibility).
  sent_counter_ = metrics_.GetCounter("job." + config_.name + ".sent");
  job_processed_counter_ =
      metrics_.GetCounter("job." + config_.name + ".processed");
}

Job::~Job() {
  // Joins the run thread first; no-op when already stopped. A destructor
  // cannot propagate the final commit's Status — callers who need it must
  // Stop() explicitly and check.
  LIQUID_IGNORE_ERROR(Stop());
}

std::string Job::ChangelogTopic(const std::string& job, const std::string& store) {
  return "__changelog." + job + "." + store;
}

Result<std::unique_ptr<Job>> Job::Create(
    messaging::Cluster* cluster, messaging::OffsetManager* offsets,
    messaging::GroupCoordinator* coordinator, storage::Disk* state_disk,
    JobConfig config, TaskFactory factory, const std::string& instance_id,
    messaging::TransactionCoordinator* txn_coordinator) {
  if (config.name.empty() || config.inputs.empty()) {
    return Status::InvalidArgument("job needs a name and at least one input");
  }
  if (config.exactly_once && txn_coordinator == nullptr) {
    return Status::InvalidArgument(
        "exactly_once requires a TransactionCoordinator");
  }
  std::unique_ptr<Job> job(new Job(cluster, offsets, coordinator, state_disk,
                                   std::move(config), std::move(factory),
                                   instance_id, txn_coordinator));
  LIQUID_RETURN_NOT_OK(job->Init());
  return job;
}

Status Job::Init() {
  LIQUID_RETURN_NOT_OK(EnsureChangelogTopics());

  messaging::ProducerConfig producer_config;
  producer_config.acks = messaging::AckMode::kAll;
  if (config_.exactly_once) {
    producer_config.transactional_id =
        "job." + config_.name + "#" + instance_id_;
  }
  producer_ = std::make_unique<messaging::Producer>(cluster_, producer_config);
  if (config_.exactly_once) {
    LIQUID_RETURN_NOT_OK(producer_->InitTransactions(txn_coordinator_));
  }
  collector_ = std::make_unique<CollectorImpl>(this);
  coordinator_impl_ = std::make_unique<CoordinatorImpl>();

  messaging::ConsumerConfig consumer_config;
  consumer_config.group = "job." + config_.name;
  consumer_config.start_from_earliest = config_.start_from_earliest;
  consumer_ = std::make_unique<messaging::Consumer>(
      cluster_, offsets_, coordinator_, config_.name + "#" + instance_id_,
      consumer_config);
  LIQUID_RETURN_NOT_OK(consumer_->Subscribe(config_.inputs));

  last_commit_ms_ = cluster_->clock()->NowMs();
  last_window_ms_ = last_commit_ms_;
  return Status::OK();
}

Status Job::EnsureChangelogTopics() {
  if (config_.stores.empty()) return Status::OK();
  int max_partitions = 1;
  for (const std::string& input : config_.inputs) {
    auto topic_config = cluster_->GetTopicConfig(input);
    if (topic_config.ok()) {
      max_partitions = std::max(max_partitions, topic_config->partitions);
    }
  }
  for (const StoreConfig& store : config_.stores) {
    if (!store.changelog) continue;
    messaging::TopicConfig changelog_config;
    changelog_config.partitions = max_partitions;
    changelog_config.replication_factor = config_.changelog_replication;
    changelog_config.log.compaction_enabled = true;
    // Small segments: the compactor can only clean closed segments, and
    // changelogs benefit from frequent cleaning (§4.1).
    changelog_config.log.segment_bytes = 256 * 1024;
    Status st =
        cluster_->CreateTopic(ChangelogTopic(config_.name, store.name),
                              changelog_config);
    if (!st.ok() && !st.IsAlreadyExists()) return st;
  }
  return Status::OK();
}

Status Job::RestoreStore(int partition, const StoreConfig& store_config,
                         ChangelogStore* store) {
  const TopicPartition changelog_tp{
      ChangelogTopic(config_.name, store_config.name), partition};
  int64_t cursor = -1;
  int64_t restored = 0;
  while (true) {
    auto leader = cluster_->LeaderFor(changelog_tp);
    if (!leader.ok()) return leader.status();
    if (cursor < 0) {
      auto bounds = (*leader)->OffsetBounds(changelog_tp);
      if (!bounds.ok()) return bounds.status();
      cursor = bounds->first;
    }
    // read_committed: an exactly-once job's changelog entries must not be
    // restored unless their transaction committed.
    auto resp = (*leader)->Fetch(changelog_tp, cursor, 1 << 20, -1, "",
                                 /*read_committed=*/true);
    if (!resp.ok()) return resp.status();
    if (resp->records.empty()) break;
    for (const auto& record : resp->records) {
      LIQUID_RETURN_NOT_OK(store->ApplyChangelogRecord(record));
      ++restored;
    }
    cursor = resp->next_fetch_offset;
  }
  metrics_.GetCounter("job." + config_.name + ".restored_records")
      ->Increment(restored);
  return Status::OK();
}

Status Job::EnsureTask(int partition) {
  if (tasks_.count(partition)) return Status::OK();
  TaskState state;
  state.task = factory_();
  state.context = std::make_unique<ContextImpl>(this, partition);

  for (const StoreConfig& store_config : config_.stores) {
    std::unique_ptr<KeyValueStore> inner;
    if (store_config.kind == StoreConfig::Kind::kInMemory) {
      inner = std::make_unique<InMemoryStore>();
    } else {
      const std::string prefix = config_.name + "/" + store_config.name + "/" +
                                 std::to_string(partition) + "/";
      auto persistent =
          PersistentStore::Open(state_disk_, prefix, kv::KvOptions{});
      if (!persistent.ok()) return persistent.status();
      inner = std::move(persistent).value();
    }
    if (store_config.changelog) {
      const TopicPartition changelog_tp{
          ChangelogTopic(config_.name, store_config.name), partition};
      // Invoked from store mutations inside Process(), i.e. with mu_ held;
      // the REQUIRES is checked on the lambda body, and the call site is
      // reached only through the type-erased ChangelogEmitter.
      auto emitter = [this, changelog_tp](storage::Record record) REQUIRES(
                         mu_) -> Status {
        // Changelog entries derive from the input record being processed:
        // they carry its trace context so restores and audits can tie a
        // store mutation back to the message that caused it.
        StampTrace(&record);
        changelog_buffer_[changelog_tp].push_back(std::move(record));
        return Status::OK();
      };
      auto changelog_store =
          std::make_unique<ChangelogStore>(std::move(inner), emitter);
      if (config_.restore_from_changelog) {
        LIQUID_RETURN_NOT_OK(
            RestoreStore(partition, store_config, changelog_store.get()));
      }
      state.stores[store_config.name] = std::move(changelog_store);
    } else {
      state.stores[store_config.name] = std::move(inner);
    }
  }

  auto [it, inserted] = tasks_.emplace(partition, std::move(state));
  LIQUID_RETURN_NOT_OK(it->second.task->Init(it->second.context.get()));
  return Status::OK();
}

Result<int> Job::RunOnce() {
  MutexLock lock(&mu_);
  if (stopped_) return Status::FailedPrecondition("job stopped");

  // liquid-lint: allow(snapshot-then-call): mu_ serializes the run loop against Commit/Stop/Kill; the poll is the loop body, not a side call.
  auto records = consumer_->Poll(config_.poll_max_records);
  if (!records.ok()) return records.status();

  // Tasks (and their state restore) are set up eagerly for every assigned
  // partition: a restarted job must rebuild its stores from the changelog
  // even before any new input arrives (§3.2).
  for (const TopicPartition& tp : consumer_->Assignment()) {
    LIQUID_RETURN_NOT_OK(EnsureTask(tp.partition));
  }

  if (config_.exactly_once && !records->empty() && !txn_open_) {
    // liquid-lint: allow(snapshot-then-call): the transaction must open before the first Process() of this round; txn_open_ and the open transaction change together under mu_.
    LIQUID_RETURN_NOT_OK(producer_->BeginTransaction());
    txn_open_ = true;
  }

  TraceCollector* tracer = TraceCollector::Default();
  const bool tracing = tracer->enabled();
  int processed = 0;
  for (const ConsumerRecord& envelope : *records) {
    LIQUID_RETURN_NOT_OK(EnsureTask(envelope.tp.partition));
    TaskState& state = tasks_[envelope.tp.partition];
    const storage::Record& in = envelope.record;
    // Pre-allocate the "process" span id before calling the task: outputs
    // stamped by StampTrace then parent onto the span that produced them.
    current_trace_ = (tracing && in.traced())
                         ? TraceContext{in.trace_id, tracer->NewSpanId(),
                                        in.ingest_us}
                         : TraceContext{};
    const int64_t t0 = cluster_->clock()->NowUs();
    LIQUID_RETURN_NOT_OK(state.task->Process(envelope, collector_.get(),
                                             coordinator_impl_.get()));
    const int64_t t1 = cluster_->clock()->NowUs();
    process_us_->Record(t1 - t0);
    if (current_trace_.active()) {
      tracer->Record(Span{in.trace_id, current_trace_.span_id, in.span_id, t0,
                          t1, "process", config_.name});
      if (in.ingest_us > 0) e2e_latency_us_->Record(t1 - in.ingest_us);
    }
    ++processed;
  }
  current_trace_ = TraceContext{};  // Window/commit output: untraced.
  job_processed_counter_->Increment(processed);
  processed_counter_->Increment(processed);
  if (processed > 0) {
    // Make task output visible promptly so downstream jobs (decoupled through
    // the messaging layer) can pick it up; flushing more often than the
    // commit interval is always safe for at-least-once.
    // liquid-lint: allow(snapshot-then-call): flushing inside the serialized run loop keeps output visibility ordered before the offsets a later commit publishes.
    LIQUID_RETURN_NOT_OK(producer_->Flush());
  }

  const int64_t now = cluster_->clock()->NowMs();
  if (config_.window_interval_ms > 0 &&
      now - last_window_ms_ >= config_.window_interval_ms) {
    last_window_ms_ = now;
    for (auto& [partition, state] : tasks_) {
      LIQUID_RETURN_NOT_OK(
          state.task->Window(collector_.get(), coordinator_impl_.get()));
    }
  }
  if (coordinator_impl_->commit_requested ||
      now - last_commit_ms_ >= config_.commit_interval_ms) {
    coordinator_impl_->commit_requested = false;
    last_commit_ms_ = now;
    LIQUID_RETURN_NOT_OK(CommitLocked());
  }
  if (coordinator_impl_->shutdown_requested) {
    stopped_ = true;
    // liquid-lint: allow(snapshot-then-call): stopped_ and the closed consumer must change together, or a racing RunOnce could poll a closed consumer.
    LIQUID_RETURN_NOT_OK(consumer_->Close());
  }
  return processed;
}

Result<int64_t> Job::RunUntilIdle(int idle_rounds) {
  int64_t total = 0;
  int idle = 0;
  while (idle < idle_rounds) {
    auto processed = RunOnce();
    if (!processed.ok()) {
      if (processed.status().IsFailedPrecondition()) break;  // Shut down.
      return processed.status();
    }
    total += *processed;
    idle = *processed == 0 ? idle + 1 : 0;
  }
  bool stopped;
  {
    MutexLock lock(&mu_);
    stopped = stopped_;
  }
  if (!stopped) LIQUID_RETURN_NOT_OK(Commit());
  return total;
}

void Job::StampTrace(storage::Record* record) {
  // Records that already carry a context (a task forwarding its input
  // verbatim) keep it; otherwise the output inherits the current input's
  // trace so the trace id spans the whole derivation chain.
  if (record->traced() || !current_trace_.active()) return;
  record->trace_id = current_trace_.trace_id;
  record->span_id = current_trace_.span_id;
  record->ingest_us = current_trace_.ingest_us;
}

Status Job::FlushChangelogs() {
  for (auto& [tp, records] : changelog_buffer_) {
    if (records.empty()) continue;
    // liquid-lint: allow(snapshot-then-call): changelog entries ride in the commit's transaction; draining the buffer is part of the atomic commit under mu_.
    LIQUID_RETURN_NOT_OK(producer_->SendBatch(tp, std::move(records)).status());
    records.clear();
  }
  return Status::OK();
}

Status Job::CommitLocked() {
  LIQUID_RETURN_NOT_OK(FlushChangelogs());
  if (config_.exactly_once) {
    if (!txn_open_) return Status::OK();  // Nothing processed: nothing to do.
    // liquid-lint: allow(snapshot-then-call): outputs, changelogs, offsets and the commit marker must land as one atomic unit (exactly-once); mu_ is what makes the unit atomic.
    LIQUID_RETURN_NOT_OK(producer_->Flush());
    // Input offsets ride inside the transaction: outputs, changelog updates
    // and checkpoints become visible atomically (exactly-once).
    const std::string group = "job." + config_.name;
    const std::string txn_id = "job." + config_.name + "#" + instance_id_;
    for (const auto& [tp, position] : consumer_->Positions()) {
      messaging::OffsetCommit commit;
      commit.offset = position;
      commit.annotations = config_.checkpoint_annotations;
      // liquid-lint: allow(snapshot-then-call): offsets ride inside the same transaction (see above); registering them is part of the atomic commit.
      LIQUID_RETURN_NOT_OK(
          txn_coordinator_->AddOffsets(txn_id, group, tp, std::move(commit)));
    }
    // liquid-lint: allow(snapshot-then-call): txn_open_ and the committed transaction change together under mu_ -- releasing between them would let a racing RunOnce reuse a closed transaction.
    LIQUID_RETURN_NOT_OK(producer_->CommitTransaction());
    txn_open_ = false;
    return Status::OK();
  }
  // liquid-lint: allow(snapshot-then-call): at-least-once commit = flush-then-commit with no interleaved processing; mu_ provides exactly that window.
  LIQUID_RETURN_NOT_OK(producer_->Flush());
  // liquid-lint: allow(snapshot-then-call): same atomic flush-then-commit window as the flush above.
  return consumer_->CommitWithAnnotations(config_.checkpoint_annotations);
}

Status Job::Commit() {
  MutexLock lock(&mu_);
  return CommitLocked();
}

Status Job::Stop() {
  StopThread();
  MutexLock lock(&mu_);
  if (stopped_) return Status::OK();
  stopped_ = true;
  // Always close the consumer, even when the final commit fails — but
  // report the commit failure first: lost offsets outrank a close error.
  const Status commit = CommitLocked();
  // liquid-lint: allow(snapshot-then-call): final commit and close must complete before stopped_ becomes observable outside mu_, or a racing Commit() would touch a closed consumer.
  const Status close = consumer_->Close();
  LIQUID_RETURN_NOT_OK(commit);
  return close;
}

Status Job::Kill() {
  StopThread();
  MutexLock lock(&mu_);
  if (stopped_) return Status::OK();
  stopped_ = true;
  // No flush, no checkpoint: whatever transaction is open stays dangling and
  // will be aborted when the next incarnation fences this one.
  // liquid-lint: allow(snapshot-then-call): same stop contract as Stop() -- the close happens inside the window that flips stopped_.
  return consumer_->CloseWithoutCommit();
}

Status Job::StartThread(int poll_sleep_ms) {
  if (thread_running_.exchange(true)) {
    return Status::FailedPrecondition("job thread already running");
  }
  run_thread_ = std::thread([this, poll_sleep_ms] {
    while (thread_running_.load()) {
      auto processed = RunOnce();
      if (!processed.ok()) break;
      if (*processed == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_sleep_ms));
      }
    }
  });
  return Status::OK();
}

void Job::StopThread() {
  if (!thread_running_.exchange(false)) return;
  if (run_thread_.joinable()) run_thread_.join();
}

KeyValueStore* Job::GetStore(int partition, const std::string& store_name) {
  MutexLock lock(&mu_);
  auto it = tasks_.find(partition);
  if (it == tasks_.end()) return nullptr;
  auto sit = it->second.stores.find(store_name);
  return sit == it->second.stores.end() ? nullptr : sit->second.get();
}

std::vector<TopicPartition> Job::AssignedPartitions() const {
  return consumer_->Assignment();
}

}  // namespace liquid::processing
