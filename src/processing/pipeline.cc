#include "processing/pipeline.h"

namespace liquid::processing {

Pipeline::Pipeline(messaging::Cluster* cluster,
                   messaging::OffsetManager* offsets,
                   messaging::GroupCoordinator* coordinator,
                   storage::Disk* state_disk)
    : cluster_(cluster),
      offsets_(offsets),
      coordinator_(coordinator),
      state_disk_(state_disk) {}

Status Pipeline::AddMapStage(const std::string& name, const std::string& input,
                             const std::string& output, MapTask::MapFn fn) {
  JobConfig config;
  config.name = name;
  config.inputs = {input};
  return AddStage(std::move(config), [output, fn]() {
    return std::make_unique<MapTask>(output, fn);
  });
}

Status Pipeline::AddStage(JobConfig config, TaskFactory factory) {
  auto job = Job::Create(cluster_, offsets_, coordinator_, state_disk_,
                         std::move(config), std::move(factory));
  if (!job.ok()) return job.status();
  jobs_.push_back(std::move(job).value());
  return Status::OK();
}

Result<int64_t> Pipeline::RunUntilAllIdle(int idle_rounds) {
  int64_t total = 0;
  int idle = 0;
  while (idle < idle_rounds) {
    int64_t round = 0;
    for (auto& job : jobs_) {
      auto processed = job->RunOnce();
      if (!processed.ok()) return processed.status();
      round += *processed;
    }
    total += round;
    idle = round == 0 ? idle + 1 : 0;
  }
  LIQUID_RETURN_NOT_OK(CommitAll());
  return total;
}

Status Pipeline::CommitAll() {
  for (auto& job : jobs_) {
    LIQUID_RETURN_NOT_OK(job->Commit());
  }
  return Status::OK();
}

}  // namespace liquid::processing
