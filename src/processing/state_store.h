#ifndef LIQUID_PROCESSING_STATE_STORE_H_
#define LIQUID_PROCESSING_STATE_STORE_H_

#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "kv/kv_store.h"
#include "messaging/metadata.h"
#include "processing/task.h"
#include "storage/disk.h"

namespace liquid::processing {

/// Volatile in-memory store: fastest, state lost on task failure unless a
/// changelog is attached.
class InMemoryStore : public KeyValueStore {
 public:
  InMemoryStore() = default;

  Status Put(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Result<std::string> Get(const Slice& key) override;
  Status ForEach(
      const std::function<void(const Slice&, const Slice&)>& fn) override;
  Status ForEachInRange(
      const Slice& begin, const Slice& end,
      const std::function<void(const Slice&, const Slice&)>& fn) override;
  Result<int64_t> Count() override;

 private:
  Mutex mu_;
  std::map<std::string, std::string> map_ GUARDED_BY(mu_);
};

/// Durable store over the from-scratch LSM engine — the paper's "state
/// off-heap by using RocksDB" (§4.4).
class PersistentStore : public KeyValueStore {
 public:
  static Result<std::unique_ptr<PersistentStore>> Open(
      storage::Disk* disk, const std::string& prefix,
      const kv::KvOptions& options);

  Status Put(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Result<std::string> Get(const Slice& key) override;
  Status ForEach(
      const std::function<void(const Slice&, const Slice&)>& fn) override;
  Status ForEachInRange(
      const Slice& begin, const Slice& end,
      const std::function<void(const Slice&, const Slice&)>& fn) override;
  Result<int64_t> Count() override;

  kv::KvStore* kv() { return kv_.get(); }

 private:
  explicit PersistentStore(std::unique_ptr<kv::KvStore> kv);

  std::unique_ptr<kv::KvStore> kv_;
};

/// Decorator that mirrors every mutation to a compacted changelog feed in the
/// messaging layer (§3.2: "the processing layer publish[es] state updates to
/// a changelog ... after failure, state is reconstructed from the changelog").
class ChangelogStore : public KeyValueStore {
 public:
  /// `emit` publishes one record to the changelog partition of this task.
  using ChangelogEmitter = std::function<Status(storage::Record record)>;

  ChangelogStore(std::unique_ptr<KeyValueStore> inner, ChangelogEmitter emit);

  Status Put(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Result<std::string> Get(const Slice& key) override;
  Status ForEach(
      const std::function<void(const Slice&, const Slice&)>& fn) override;
  Status ForEachInRange(
      const Slice& begin, const Slice& end,
      const std::function<void(const Slice&, const Slice&)>& fn) override;
  Result<int64_t> Count() override;

  /// Applies one changelog record during restore (no re-emission).
  Status ApplyChangelogRecord(const storage::Record& record);

  KeyValueStore* inner() { return inner_.get(); }

 private:
  std::unique_ptr<KeyValueStore> inner_;
  ChangelogEmitter emit_;
};

}  // namespace liquid::processing

#endif  // LIQUID_PROCESSING_STATE_STORE_H_
