#ifndef LIQUID_PROCESSING_JOB_H_
#define LIQUID_PROCESSING_JOB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "kv/kv_store.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/group_coordinator.h"
#include "messaging/offset_manager.h"
#include "messaging/producer.h"
#include "messaging/transaction.h"
#include "processing/state_store.h"
#include "processing/task.h"

namespace liquid::processing {

/// Declares one state store of a job.
struct StoreConfig {
  enum class Kind { kInMemory, kPersistent };

  std::string name;
  Kind kind = Kind::kInMemory;
  /// Mirror mutations to a compacted changelog feed for failure recovery.
  bool changelog = true;
};

/// Configuration of an ETL-like job (§3.2).
struct JobConfig {
  std::string name;
  /// Input feeds; the job is parallelized into one task per input partition.
  std::vector<std::string> inputs;
  std::vector<StoreConfig> stores;
  /// Start from the earliest offset when no checkpoint exists.
  bool start_from_earliest = true;
  /// Restore store contents from the changelog when a task (re)starts.
  bool restore_from_changelog = true;
  /// Offsets are checkpointed (and outputs flushed) at least this often.
  int64_t commit_interval_ms = 1000;
  /// StreamTask::Window cadence; <= 0 disables windowing.
  int64_t window_interval_ms = -1;
  size_t poll_max_records = 512;
  /// Annotations attached to every offset checkpoint (e.g. {"version","v2"}).
  std::map<std::string, std::string> checkpoint_annotations;
  int changelog_replication = 1;
  /// Exactly-once read-process-write: outputs, changelog updates and input
  /// offsets commit atomically through the transaction coordinator; on a
  /// crash the open transaction is aborted, so read_committed consumers of
  /// the output feeds never observe duplicates (§4.3 extension). Requires a
  /// TransactionCoordinator at Create time.
  bool exactly_once = false;
};

/// A running instance ("container") of a processing-layer job. Multiple
/// instances with the same JobConfig.name share the consumer group, so the
/// input partitions — and therefore the tasks — are split between them.
///
/// Drive it with RunOnce()/RunUntilIdle() for deterministic execution, or
/// Start()/Stop() for a background thread.
class Job {
 public:
  /// `state_disk` is the container-local disk holding persistent stores; give
  /// a fresh disk to simulate the job being rescheduled on a new machine (its
  /// state then comes back via the changelog).
  static Result<std::unique_ptr<Job>> Create(
      messaging::Cluster* cluster, messaging::OffsetManager* offsets,
      messaging::GroupCoordinator* coordinator, storage::Disk* state_disk,
      JobConfig config, TaskFactory factory, const std::string& instance_id = "0",
      messaging::TransactionCoordinator* txn_coordinator = nullptr);

  ~Job();

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// One poll-process cycle; returns the number of records processed.
  Result<int> RunOnce() EXCLUDES(mu_);

  /// Runs until `idle_rounds` consecutive cycles process nothing, then
  /// commits. Returns total records processed.
  Result<int64_t> RunUntilIdle(int idle_rounds = 2);

  /// Flushes outputs and changelogs, then checkpoints input offsets with the
  /// configured annotations (at-least-once order, §4.3).
  Status Commit() EXCLUDES(mu_);

  /// Commits and leaves the consumer group.
  Status Stop() EXCLUDES(mu_);

  /// SIGKILL semantics for failure-injection tests: leaves the group without
  /// committing anything; an open transaction is left dangling (the next
  /// incarnation's InitTransactions fences and aborts it).
  Status Kill() EXCLUDES(mu_);

  /// Background execution.
  Status StartThread(int poll_sleep_ms = 1);
  void StopThread();

  /// The store of the task owning `partition`; null when absent. Tasks are
  /// keyed by partition id (shared across all input topics).
  KeyValueStore* GetStore(int partition, const std::string& store_name)
      EXCLUDES(mu_);
  KeyValueStore* GetStore(const messaging::TopicPartition& partition,
                          const std::string& store_name) {
    return GetStore(partition.partition, store_name);
  }

  std::vector<messaging::TopicPartition> AssignedPartitions() const;

  MetricsRegistry* metrics() { return &metrics_; }
  const JobConfig& config() const { return config_; }
  messaging::Producer* producer() { return producer_.get(); }

  /// Changelog feed name for a store of this job.
  static std::string ChangelogTopic(const std::string& job,
                                    const std::string& store);

 private:
  class CollectorImpl;
  class CoordinatorImpl;
  class ContextImpl;

  struct TaskState {
    std::unique_ptr<StreamTask> task;
    std::map<std::string, std::unique_ptr<KeyValueStore>> stores;
    std::unique_ptr<ContextImpl> context;
  };

  Job(messaging::Cluster* cluster, messaging::OffsetManager* offsets,
      messaging::GroupCoordinator* coordinator, storage::Disk* state_disk,
      JobConfig config, TaskFactory factory, std::string instance_id,
      messaging::TransactionCoordinator* txn_coordinator);

  Status Init();
  /// Flush + checkpoint, transactional or plain.
  Status CommitLocked() REQUIRES(mu_);
  Status EnsureChangelogTopics();
  Status EnsureTask(int partition) REQUIRES(mu_);
  Status RestoreStore(int partition, const StoreConfig& store_config,
                      ChangelogStore* store);
  Status FlushChangelogs() REQUIRES(mu_);
  /// Stamps an outgoing record (task output or changelog entry) with the
  /// trace context of the input record currently being processed, so the one
  /// trace id follows the derivation chain downstream. Called only with mu_
  /// held — from the collector/emitter reached through RunOnce's Process()
  /// call — but the analysis cannot see that across the virtual boundary.
  void StampTrace(storage::Record* record) NO_THREAD_SAFETY_ANALYSIS;

  messaging::Cluster* cluster_;
  messaging::OffsetManager* offsets_;
  messaging::GroupCoordinator* coordinator_;
  storage::Disk* const state_disk_;
  const JobConfig config_;
  const TaskFactory factory_;
  const std::string instance_id_;
  messaging::TransactionCoordinator* txn_coordinator_;

  std::unique_ptr<messaging::Consumer> consumer_;
  std::unique_ptr<messaging::Producer> producer_;
  // liquid-lint: allow(guarded-by): set once in Init() before any thread touches the job; only dereferenced afterwards.
  std::unique_ptr<CollectorImpl> collector_;
  // liquid-lint: allow(guarded-by): same Init()-once contract as collector_.
  std::unique_ptr<CoordinatorImpl> coordinator_impl_;

  // Cached handles into MetricsRegistry::Default() ("liquid.job.<name>.*")
  // and the job's own registry ("job.<name>.*"), resolved once at
  // construction; registry entries are never erased.
  Counter* processed_counter_ = nullptr;
  Histogram* process_us_ = nullptr;
  Histogram* e2e_latency_us_ = nullptr;
  Counter* sent_counter_ = nullptr;
  Counter* job_processed_counter_ = nullptr;

  mutable Mutex mu_;
  /// Trace context of the input record currently inside Process(); the
  /// per-record "process" span is pre-allocated into span_id so everything
  /// the task emits parents onto it. Inactive outside the processing loop.
  TraceContext current_trace_ GUARDED_BY(mu_);
  std::map<int, TaskState> tasks_ GUARDED_BY(mu_);  // Keyed by partition id.
  std::map<messaging::TopicPartition, std::vector<storage::Record>>
      changelog_buffer_ GUARDED_BY(mu_);
  int64_t last_commit_ms_ GUARDED_BY(mu_) = 0;
  int64_t last_window_ms_ GUARDED_BY(mu_) = 0;
  bool stopped_ GUARDED_BY(mu_) = false;
  bool txn_open_ GUARDED_BY(mu_) = false;

  MetricsRegistry metrics_;

  // liquid-lint: allow(guarded-by): written only by StartThread/StopThread, which serialize through the thread_running_ exchange.
  std::thread run_thread_;
  std::atomic<bool> thread_running_{false};
};

}  // namespace liquid::processing

#endif  // LIQUID_PROCESSING_JOB_H_
