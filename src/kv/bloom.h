#ifndef LIQUID_KV_BLOOM_H_
#define LIQUID_KV_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace liquid::kv {

/// Standard bloom filter used by SSTables to skip tables that cannot contain
/// a key (double-hashing scheme, as in LevelDB/RocksDB).
class BloomFilter {
 public:
  /// Builds a filter over `keys` with ~`bits_per_key` bits per key.
  static std::string Build(const std::vector<std::string>& keys,
                           int bits_per_key);

  /// True if `key` may be in the filter encoded in `data` (false positives
  /// possible, false negatives impossible). An empty filter matches nothing.
  static bool MayContain(const Slice& data, const Slice& key);

 private:
  static uint64_t Hash(const Slice& key);
};

}  // namespace liquid::kv

#endif  // LIQUID_KV_BLOOM_H_
