#ifndef LIQUID_KV_KV_STORE_H_
#define LIQUID_KV_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kv/sstable.h"
#include "kv/wal.h"
#include "storage/disk.h"

namespace liquid::kv {

/// Tuning options of the LSM store.
struct KvOptions {
  size_t memtable_bytes = 4 << 20;
  size_t block_size = 4096;
  int bloom_bits_per_key = 10;
  /// Flushing the memtable creates an L0 table; once this many L0 tables
  /// exist they are merged (with L1) into a fresh L1 run.
  int l0_compaction_trigger = 4;
  /// Compaction splits its output into tables of roughly this size.
  size_t max_table_bytes = 8 << 20;
};

/// Persistent log-structured key-value store — the from-scratch stand-in for
/// RocksDB that backs stateful processing tasks (§4.4: "the processing layer
/// allocates the state off-heap by using RocksDB").
///
/// Two-level LSM: WAL + memtable -> L0 (overlapping tables, newest first) ->
/// L1 (one sorted, non-overlapping run). Thread-safe.
class KvStore {
 public:
  /// Opens the store rooted at `name_prefix` (e.g. "job1/store/"), recovering
  /// the manifest, tables and WAL.
  static Result<std::unique_ptr<KvStore>> Open(storage::Disk* disk,
                                               const std::string& name_prefix,
                                               const KvOptions& options);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);

  /// NotFound when absent or deleted.
  Result<std::string> Get(const Slice& key) const;

  /// Forces the memtable to an L0 table (empty memtable is a no-op).
  Status Flush();

  /// Merges all L0 tables and the L1 run into a fresh L1 run, dropping
  /// tombstones and shadowed versions.
  Status CompactAll();

  /// Visits all live (non-deleted) keys in key order with a merged view of
  /// memtable + tables.
  Status ForEach(
      const std::function<void(const Slice& key, const Slice& value)>& fn) const;

  /// Visits live keys in [begin, end) in key order (empty end = unbounded).
  Status ForEachInRange(
      const Slice& begin, const Slice& end,
      const std::function<void(const Slice& key, const Slice& value)>& fn) const;

  /// Number of live keys (full scan; for tests and state-restore accounting).
  Result<int64_t> CountLiveKeys() const;

  size_t memtable_size_bytes() const;
  int l0_table_count() const;
  int l1_table_count() const;
  Result<uint64_t> ApproximateSizeBytes() const;

 private:
  KvStore(storage::Disk* disk, std::string name_prefix, KvOptions options);

  Status Recover();
  Status WriteManifestLocked();
  Status ApplyLocked(Entry entry);
  Status FlushLocked();
  Status CompactAllLocked();
  std::string TableName(uint64_t number) const;

  /// Collects the merged view (newest version per key, including tombstones)
  /// into `out`, sorted by key. Requires mu_ held.
  Status MergedEntriesLocked(std::vector<Entry>* out) const;

  storage::Disk* disk_;
  const std::string name_prefix_;
  const KvOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> memtable_;  // Latest entry per key.
  size_t memtable_bytes_ = 0;
  std::unique_ptr<WriteAheadLog> wal_;
  std::vector<std::unique_ptr<SSTable>> l0_;  // Newest first.
  std::vector<std::unique_ptr<SSTable>> l1_;  // Key-ordered, non-overlapping.
  uint64_t next_table_number_ = 1;
  uint64_t last_sequence_ = 0;
};

}  // namespace liquid::kv

#endif  // LIQUID_KV_KV_STORE_H_
