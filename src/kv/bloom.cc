#include "kv/bloom.h"

#include <algorithm>

namespace liquid::kv {

uint64_t BloomFilter::Hash(const Slice& key) {
  // FNV-1a 64.
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < key.size(); ++i) {
    h ^= static_cast<unsigned char>(key[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::string BloomFilter::Build(const std::vector<std::string>& keys,
                               int bits_per_key) {
  // k = bits_per_key * ln(2), clamped to [1, 30].
  int k = static_cast<int>(bits_per_key * 0.69);
  k = std::clamp(k, 1, 30);

  size_t bits = std::max<size_t>(keys.size() * bits_per_key, 64);
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  filter.push_back(static_cast<char>(k));  // k stored in the last byte.
  for (const auto& key : keys) {
    uint64_t h = Hash(key);
    const uint64_t delta = (h >> 33) | (h << 31);  // Double hashing.
    for (int i = 0; i < k; ++i) {
      const size_t bit = h % bits;
      filter[bit / 8] |= static_cast<char>(1 << (bit % 8));
      h += delta;
    }
  }
  return filter;
}

bool BloomFilter::MayContain(const Slice& data, const Slice& key) {
  if (data.size() < 2) return false;
  const size_t bytes = data.size() - 1;
  const size_t bits = bytes * 8;
  const int k = static_cast<unsigned char>(data[data.size() - 1]);
  if (k < 1 || k > 30) return true;  // Unknown encoding: be conservative.

  uint64_t h = Hash(key);
  const uint64_t delta = (h >> 33) | (h << 31);
  for (int i = 0; i < k; ++i) {
    const size_t bit = h % bits;
    if ((data[bit / 8] & (1 << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace liquid::kv
