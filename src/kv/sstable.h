#ifndef LIQUID_KV_SSTABLE_H_
#define LIQUID_KV_SSTABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk.h"

namespace liquid::kv {

/// Kind of an entry inside a table / memtable / WAL.
enum class EntryType : uint8_t { kPut = 0, kDelete = 1 };

/// One key-value entry with its MVCC sequence number. Within a table keys are
/// unique (tables are built from a deduplicated source); across tables the
/// newest table wins.
struct Entry {
  std::string key;
  std::string value;
  uint64_t sequence = 0;
  EntryType type = EntryType::kPut;
};

/// Immutable sorted table of entries on disk — the persistence unit of the
/// LSM store backing stateful processing tasks (the paper's RocksDB, §4.4).
///
/// Layout:
///   [data block]*            entries, ~block_size each
///   [filter block]           bloom filter over all keys
///   [index block]            (last_key, offset, size) per data block
///   footer: fixed64 filter_off, fixed32 filter_sz,
///           fixed64 index_off,  fixed32 index_sz,
///           fixed64 entry_count, fixed64 magic
class SSTable {
 public:
  struct Options {
    size_t block_size = 4096;
    int bloom_bits_per_key = 10;
  };

  /// Writes a table from `entries` (must be sorted by key, unique keys).
  static Status Write(storage::Disk* disk, const std::string& name,
                      const std::vector<Entry>& entries, const Options& options);

  /// Opens a table, loading its index and filter into memory.
  static Result<std::unique_ptr<SSTable>> Open(storage::Disk* disk,
                                               const std::string& name);

  SSTable(const SSTable&) = delete;
  SSTable& operator=(const SSTable&) = delete;

  /// Point lookup; NotFound when absent (a kDelete entry IS found — callers
  /// must check entry.type).
  Result<Entry> Get(const Slice& key) const;

  uint64_t entry_count() const { return entry_count_; }
  const std::string& name() const { return name_; }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }

  /// Sequential scanner over all entries in key order.
  class Iterator {
   public:
    explicit Iterator(const SSTable* table);
    bool Valid() const { return valid_; }
    const Entry& entry() const { return entry_; }
    /// Advances; invalid after the last entry. IO errors end the iteration
    /// and are reported through status().
    void Next();
    /// Positions at the first entry with key >= target.
    void Seek(const Slice& target);
    const Status& status() const { return status_; }

   private:
    void LoadBlock(size_t block_index);
    void ParseNext();

    const SSTable* table_;
    size_t block_index_ = 0;
    std::string block_;
    size_t block_pos_ = 0;
    Entry entry_;
    bool valid_ = false;
    Status status_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint32_t size;
  };

  SSTable(std::unique_ptr<storage::File> file, std::string name);

  Status LoadFooter();
  Status ReadBlock(size_t block_index, std::string* out) const;
  /// Index of the first block whose last_key >= key, or npos.
  size_t BlockFor(const Slice& key) const;

  std::unique_ptr<storage::File> file_;
  std::string name_;
  std::vector<IndexEntry> index_;
  std::string filter_;
  uint64_t entry_count_ = 0;
  std::string min_key_;
  std::string max_key_;
};

}  // namespace liquid::kv

#endif  // LIQUID_KV_SSTABLE_H_
