#ifndef LIQUID_KV_WAL_H_
#define LIQUID_KV_WAL_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "kv/sstable.h"
#include "storage/disk.h"

namespace liquid::kv {

/// Write-ahead log for the LSM store: every mutation is appended (and CRC
/// protected) before it reaches the memtable, so an un-flushed memtable can be
/// rebuilt after a crash.
class WriteAheadLog {
 public:
  static Result<std::unique_ptr<WriteAheadLog>> Open(storage::Disk* disk,
                                                     const std::string& name);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one mutation record.
  Status Append(const Entry& entry);

  /// Invokes `fn` for every intact record in order. A truncated final frame
  /// (torn write from a crash) ends the replay cleanly with OK — that is the
  /// expected crash artifact. A *complete* frame that fails its CRC or does
  /// not decode is real corruption: the intact prefix is still delivered,
  /// then Corruption is returned so the caller never silently serves a store
  /// missing acknowledged writes.
  Status Replay(const std::function<void(const Entry&)>& fn) const;

  /// Truncates the log to empty (after a successful memtable flush).
  Status Reset();

  uint64_t size_bytes() const { return file_->Size(); }

 private:
  WriteAheadLog(storage::Disk* disk, std::unique_ptr<storage::File> file,
                std::string name);

  storage::Disk* disk_;
  std::unique_ptr<storage::File> file_;
  std::string name_;
};

}  // namespace liquid::kv

#endif  // LIQUID_KV_WAL_H_
