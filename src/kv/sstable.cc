#include "kv/sstable.h"

#include <algorithm>

#include "common/coding.h"
#include "kv/bloom.h"

namespace liquid::kv {

namespace {

constexpr uint64_t kTableMagic = 0x4c49515549442e4bull;  // "LIQUID.K"
constexpr size_t kFooterSize = 8 + 4 + 8 + 4 + 8 + 8;

void EncodeEntry(const Entry& entry, std::string* dst) {
  PutLengthPrefixed(dst, entry.key);
  PutLengthPrefixed(dst, entry.value);
  PutFixed64(dst, entry.sequence);
  dst->push_back(static_cast<char>(entry.type));
}

Status DecodeEntry(Slice* input, Entry* entry) {
  Slice key, value;
  LIQUID_RETURN_NOT_OK(GetLengthPrefixed(input, &key));
  LIQUID_RETURN_NOT_OK(GetLengthPrefixed(input, &value));
  uint64_t sequence = 0;
  LIQUID_RETURN_NOT_OK(GetFixed64(input, &sequence));
  if (input->empty()) return Status::Corruption("entry type missing");
  const uint8_t type_byte = static_cast<uint8_t>((*input)[0]);
  if (type_byte > static_cast<uint8_t>(EntryType::kDelete)) {
    return Status::Corruption("invalid entry type byte");
  }
  entry->type = static_cast<EntryType>(type_byte);
  input->RemovePrefix(1);
  entry->key = key.ToString();
  entry->value = value.ToString();
  entry->sequence = sequence;
  return Status::OK();
}

}  // namespace

Status SSTable::Write(storage::Disk* disk, const std::string& name,
                      const std::vector<Entry>& entries, const Options& options) {
  auto file_result = disk->OpenOrCreate(name);
  if (!file_result.ok()) return file_result.status();
  std::unique_ptr<storage::File> file = std::move(file_result).value();
  if (file->Size() != 0) {
    return Status::AlreadyExists("table file not empty: " + name);
  }

  std::string block;
  std::string index;
  std::vector<std::string> keys;
  keys.reserve(entries.size());
  uint64_t offset = 0;
  std::string last_key_in_block;

  auto flush_block = [&]() -> Status {
    if (block.empty()) return Status::OK();
    PutLengthPrefixed(&index, last_key_in_block);
    PutFixed64(&index, offset);
    PutFixed32(&index, static_cast<uint32_t>(block.size()));
    LIQUID_RETURN_NOT_OK(file->Append(block));
    offset += block.size();
    block.clear();
    return Status::OK();
  };

  const std::string* prev_key = nullptr;
  for (const Entry& entry : entries) {
    if (prev_key != nullptr && !(*prev_key < entry.key)) {
      return Status::InvalidArgument("entries not sorted/unique: " + entry.key);
    }
    prev_key = &entry.key;
    keys.push_back(entry.key);
    EncodeEntry(entry, &block);
    last_key_in_block = entry.key;
    if (block.size() >= options.block_size) {
      LIQUID_RETURN_NOT_OK(flush_block());
    }
  }
  LIQUID_RETURN_NOT_OK(flush_block());

  const std::string filter = BloomFilter::Build(keys, options.bloom_bits_per_key);
  const uint64_t filter_offset = offset;
  LIQUID_RETURN_NOT_OK(file->Append(filter));
  const uint64_t index_offset = filter_offset + filter.size();
  LIQUID_RETURN_NOT_OK(file->Append(index));

  std::string footer;
  PutFixed64(&footer, filter_offset);
  PutFixed32(&footer, static_cast<uint32_t>(filter.size()));
  PutFixed64(&footer, index_offset);
  PutFixed32(&footer, static_cast<uint32_t>(index.size()));
  PutFixed64(&footer, entries.size());
  PutFixed64(&footer, kTableMagic);
  LIQUID_RETURN_NOT_OK(file->Append(footer));
  return file->Sync();
}

SSTable::SSTable(std::unique_ptr<storage::File> file, std::string name)
    : file_(std::move(file)), name_(std::move(name)) {}

Result<std::unique_ptr<SSTable>> SSTable::Open(storage::Disk* disk,
                                               const std::string& name) {
  auto file_result = disk->OpenOrCreate(name);
  if (!file_result.ok()) return file_result.status();
  std::unique_ptr<SSTable> table(
      new SSTable(std::move(file_result).value(), name));
  LIQUID_RETURN_NOT_OK(table->LoadFooter());
  return table;
}

Status SSTable::LoadFooter() {
  const uint64_t size = file_->Size();
  if (size < kFooterSize) return Status::Corruption("table too small: " + name_);
  std::string footer;
  LIQUID_RETURN_NOT_OK(file_->ReadAt(size - kFooterSize, kFooterSize, &footer));
  Slice cursor(footer);
  uint64_t filter_offset = 0, index_offset = 0;
  uint32_t filter_size = 0, index_size = 0;
  uint64_t magic = 0;
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &filter_offset));
  LIQUID_RETURN_NOT_OK(GetFixed32(&cursor, &filter_size));
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &index_offset));
  LIQUID_RETURN_NOT_OK(GetFixed32(&cursor, &index_size));
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &entry_count_));
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &magic));
  if (magic != kTableMagic) return Status::Corruption("bad table magic: " + name_);

  LIQUID_RETURN_NOT_OK(file_->ReadAt(filter_offset, filter_size, &filter_));
  std::string index_bytes;
  LIQUID_RETURN_NOT_OK(file_->ReadAt(index_offset, index_size, &index_bytes));
  Slice index_cursor(index_bytes);
  while (!index_cursor.empty()) {
    Slice last_key;
    uint64_t offset = 0;
    uint32_t block_size = 0;
    LIQUID_RETURN_NOT_OK(GetLengthPrefixed(&index_cursor, &last_key));
    LIQUID_RETURN_NOT_OK(GetFixed64(&index_cursor, &offset));
    LIQUID_RETURN_NOT_OK(GetFixed32(&index_cursor, &block_size));
    index_.push_back(IndexEntry{last_key.ToString(), offset, block_size});
  }
  if (!index_.empty()) {
    max_key_ = index_.back().last_key;
    // min_key: first key of first block.
    std::string block;
    LIQUID_RETURN_NOT_OK(ReadBlock(0, &block));
    Slice cursor2(block);
    Entry first;
    LIQUID_RETURN_NOT_OK(DecodeEntry(&cursor2, &first));
    min_key_ = first.key;
  }
  return Status::OK();
}

Status SSTable::ReadBlock(size_t block_index, std::string* out) const {
  const IndexEntry& entry = index_[block_index];
  LIQUID_RETURN_NOT_OK(file_->ReadAt(entry.offset, entry.size, out));
  if (out->size() != entry.size) {
    return Status::Corruption("short block read: " + name_);
  }
  return Status::OK();
}

size_t SSTable::BlockFor(const Slice& key) const {
  // First block whose last_key >= key.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (Slice(index_[mid].last_key).Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<Entry> SSTable::Get(const Slice& key) const {
  if (index_.empty()) return Status::NotFound("empty table");
  if (!BloomFilter::MayContain(filter_, key)) {
    return Status::NotFound("bloom miss");
  }
  const size_t block_index = BlockFor(key);
  if (block_index >= index_.size()) return Status::NotFound("past max key");
  std::string block;
  LIQUID_RETURN_NOT_OK(ReadBlock(block_index, &block));
  Slice cursor(block);
  while (!cursor.empty()) {
    Entry entry;
    LIQUID_RETURN_NOT_OK(DecodeEntry(&cursor, &entry));
    const int cmp = Slice(entry.key).Compare(key);
    if (cmp == 0) return entry;
    if (cmp > 0) break;
  }
  return Status::NotFound("key not in table");
}

SSTable::Iterator::Iterator(const SSTable* table) : table_(table) {
  if (table_->index_.empty()) return;
  LoadBlock(0);
  ParseNext();
}

void SSTable::Iterator::LoadBlock(size_t block_index) {
  block_index_ = block_index;
  block_pos_ = 0;
  if (block_index_ >= table_->index_.size()) {
    block_.clear();
    return;
  }
  status_ = table_->ReadBlock(block_index_, &block_);
  if (!status_.ok()) block_.clear();
}

void SSTable::Iterator::ParseNext() {
  while (true) {
    if (block_pos_ >= block_.size()) {
      if (block_index_ + 1 >= table_->index_.size() || !status_.ok()) {
        valid_ = false;
        return;
      }
      LoadBlock(block_index_ + 1);
      continue;
    }
    Slice cursor(block_.data() + block_pos_, block_.size() - block_pos_);
    const size_t before = cursor.size();
    status_ = DecodeEntry(&cursor, &entry_);
    if (!status_.ok()) {
      valid_ = false;
      return;
    }
    block_pos_ += before - cursor.size();
    valid_ = true;
    return;
  }
}

void SSTable::Iterator::Next() {
  if (!valid_) return;
  ParseNext();
}

void SSTable::Iterator::Seek(const Slice& target) {
  if (table_->index_.empty()) {
    valid_ = false;
    return;
  }
  const size_t block_index = table_->BlockFor(target);
  if (block_index >= table_->index_.size()) {
    valid_ = false;
    return;
  }
  LoadBlock(block_index);
  ParseNext();
  while (valid_ && Slice(entry_.key).Compare(target) < 0) {
    ParseNext();
  }
}

}  // namespace liquid::kv
