#include "kv/wal.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace liquid::kv {

WriteAheadLog::WriteAheadLog(storage::Disk* disk,
                             std::unique_ptr<storage::File> file,
                             std::string name)
    : disk_(disk), file_(std::move(file)), name_(std::move(name)) {}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    storage::Disk* disk, const std::string& name) {
  auto file = disk->OpenOrCreate(name);
  if (!file.ok()) return file.status();
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(disk, std::move(file).value(), name));
}

Status WriteAheadLog::Append(const Entry& entry) {
  std::string payload;
  PutFixed64(&payload, entry.sequence);
  payload.push_back(static_cast<char>(entry.type));
  PutLengthPrefixed(&payload, entry.key);
  PutLengthPrefixed(&payload, entry.value);

  std::string framed;
  PutFixed32(&framed, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  framed.append(payload);
  return file_->Append(framed);
}

Status WriteAheadLog::Replay(const std::function<void(const Entry&)>& fn) const {
  const uint64_t size = file_->Size();
  if (size == 0) return Status::OK();
  std::string bytes;
  LIQUID_RETURN_NOT_OK(file_->ReadAt(0, size, &bytes));
  Slice cursor(bytes);
  while (cursor.size() >= 8) {
    const uint32_t masked_crc = DecodeFixed32(cursor.data());
    const uint32_t length = DecodeFixed32(cursor.data() + 4);
    if (cursor.size() < 8 + static_cast<size_t>(length)) break;  // Torn tail.
    const Slice payload(cursor.data() + 8, length);
    // A complete frame that fails its CRC is not a torn write — something
    // altered bytes we already acknowledged. Surface it.
    if (crc32c::Unmask(masked_crc) !=
        crc32c::Value(payload.data(), payload.size())) {
      return Status::Corruption("wal frame crc mismatch: " + name_);
    }
    Slice body = payload;
    Entry entry;
    uint64_t sequence = 0;
    if (!GetFixed64(&body, &sequence).ok() || body.empty()) {
      return Status::Corruption("wal frame body truncated: " + name_);
    }
    entry.sequence = sequence;
    // An out-of-range type byte is corruption the CRC did not catch (e.g. a
    // bug writing the frame); never materialize an invalid enum value.
    const uint8_t type_byte = static_cast<uint8_t>(body[0]);
    if (type_byte > static_cast<uint8_t>(EntryType::kDelete)) {
      return Status::Corruption("wal entry type invalid: " + name_);
    }
    entry.type = static_cast<EntryType>(type_byte);
    body.RemovePrefix(1);
    Slice key, value;
    if (!GetLengthPrefixed(&body, &key).ok() ||
        !GetLengthPrefixed(&body, &value).ok()) {
      return Status::Corruption("wal entry fields truncated: " + name_);
    }
    entry.key = key.ToString();
    entry.value = value.ToString();
    fn(entry);
    cursor.RemovePrefix(8 + length);
  }
  // Whatever remains is a torn final frame — the expected crash artifact.
  return Status::OK();
}

Status WriteAheadLog::Reset() { return file_->Truncate(0); }

}  // namespace liquid::kv
