#include "kv/kv_store.h"

#include <algorithm>
#include <cstdio>

#include "common/coding.h"

namespace liquid::kv {

namespace {
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestTmpName[] = "MANIFEST.tmp";
constexpr char kWalName[] = "WAL";
}  // namespace

KvStore::KvStore(storage::Disk* disk, std::string name_prefix, KvOptions options)
    : disk_(disk), name_prefix_(std::move(name_prefix)), options_(options) {}

Result<std::unique_ptr<KvStore>> KvStore::Open(storage::Disk* disk,
                                               const std::string& name_prefix,
                                               const KvOptions& options) {
  std::unique_ptr<KvStore> store(new KvStore(disk, name_prefix, options));
  LIQUID_RETURN_NOT_OK(store->Recover());
  return store;
}

std::string KvStore::TableName(uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%012llu.sst",
                static_cast<unsigned long long>(number));
  return name_prefix_ + buf;
}

Status KvStore::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string manifest_path = name_prefix_ + kManifestName;
  if (disk_->Exists(manifest_path)) {
    auto file = disk_->OpenOrCreate(manifest_path);
    if (!file.ok()) return file.status();
    std::string bytes;
    LIQUID_RETURN_NOT_OK((*file)->ReadAt(0, (*file)->Size(), &bytes));
    Slice cursor(bytes);
    uint64_t n0 = 0, n1 = 0;
    LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &next_table_number_));
    LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &last_sequence_));
    LIQUID_RETURN_NOT_OK(GetVarint64(&cursor, &n0));
    for (uint64_t i = 0; i < n0; ++i) {
      uint64_t number = 0;
      LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &number));
      auto table = SSTable::Open(disk_, TableName(number));
      if (!table.ok()) return table.status();
      l0_.push_back(std::move(table).value());
    }
    LIQUID_RETURN_NOT_OK(GetVarint64(&cursor, &n1));
    for (uint64_t i = 0; i < n1; ++i) {
      uint64_t number = 0;
      LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &number));
      auto table = SSTable::Open(disk_, TableName(number));
      if (!table.ok()) return table.status();
      l1_.push_back(std::move(table).value());
    }
  }
  auto wal = WriteAheadLog::Open(disk_, name_prefix_ + kWalName);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();
  LIQUID_RETURN_NOT_OK(wal_->Replay([this](const Entry& entry) {
    last_sequence_ = std::max(last_sequence_, entry.sequence);
    memtable_bytes_ += entry.key.size() + entry.value.size();
    memtable_[entry.key] = entry;
  }));
  return Status::OK();
}

Status KvStore::WriteManifestLocked() {
  std::string bytes;
  PutFixed64(&bytes, next_table_number_);
  PutFixed64(&bytes, last_sequence_);
  PutVarint64(&bytes, l0_.size());
  for (const auto& table : l0_) {
    // Recover the number from the stored name: prefix + "t<num>.sst".
    const std::string& name = table->name();
    const std::string digits =
        name.substr(name_prefix_.size() + 1, name.size() - name_prefix_.size() - 5);
    PutFixed64(&bytes, std::strtoull(digits.c_str(), nullptr, 10));
  }
  PutVarint64(&bytes, l1_.size());
  for (const auto& table : l1_) {
    const std::string& name = table->name();
    const std::string digits =
        name.substr(name_prefix_.size() + 1, name.size() - name_prefix_.size() - 5);
    PutFixed64(&bytes, std::strtoull(digits.c_str(), nullptr, 10));
  }
  const std::string tmp_path = name_prefix_ + kManifestTmpName;
  if (disk_->Exists(tmp_path)) LIQUID_RETURN_NOT_OK(disk_->Remove(tmp_path));
  auto file = disk_->OpenOrCreate(tmp_path);
  if (!file.ok()) return file.status();
  LIQUID_RETURN_NOT_OK((*file)->Append(bytes));
  // liquid-lint: allow(snapshot-then-call): the manifest must be durable before the store lock is released -- unlocking first would let readers observe a table set a crash could not recover.
  LIQUID_RETURN_NOT_OK((*file)->Sync());
  return disk_->Rename(tmp_path, name_prefix_ + kManifestName);
}

Status KvStore::ApplyLocked(Entry entry) {
  entry.sequence = ++last_sequence_;
  LIQUID_RETURN_NOT_OK(wal_->Append(entry));
  memtable_bytes_ += entry.key.size() + entry.value.size();
  memtable_[entry.key] = std::move(entry);
  if (memtable_bytes_ >= options_.memtable_bytes) {
    LIQUID_RETURN_NOT_OK(FlushLocked());
    if (static_cast<int>(l0_.size()) >= options_.l0_compaction_trigger) {
      LIQUID_RETURN_NOT_OK(CompactAllLocked());
    }
  }
  return Status::OK();
}

Status KvStore::Put(const Slice& key, const Slice& value) {
  Entry entry;
  entry.key = key.ToString();
  entry.value = value.ToString();
  entry.type = EntryType::kPut;
  std::lock_guard<std::mutex> lock(mu_);
  return ApplyLocked(std::move(entry));
}

Status KvStore::Delete(const Slice& key) {
  Entry entry;
  entry.key = key.ToString();
  entry.type = EntryType::kDelete;
  std::lock_guard<std::mutex> lock(mu_);
  return ApplyLocked(std::move(entry));
}

Result<std::string> KvStore::Get(const Slice& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto mit = memtable_.find(key.ToString());
  if (mit != memtable_.end()) {
    if (mit->second.type == EntryType::kDelete) {
      return Status::NotFound("deleted");
    }
    return mit->second.value;
  }
  for (const auto& table : l0_) {
    auto entry = table->Get(key);
    if (entry.ok()) {
      if (entry->type == EntryType::kDelete) return Status::NotFound("deleted");
      return std::move(entry->value);
    }
    if (!entry.status().IsNotFound()) return entry.status();
  }
  // L1 is non-overlapping: binary search by key range.
  size_t lo = 0, hi = l1_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (Slice(l1_[mid]->max_key()).Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < l1_.size() && Slice(l1_[lo]->min_key()).Compare(key) <= 0) {
    auto entry = l1_[lo]->Get(key);
    if (entry.ok()) {
      if (entry->type == EntryType::kDelete) return Status::NotFound("deleted");
      return std::move(entry->value);
    }
    if (!entry.status().IsNotFound()) return entry.status();
  }
  return Status::NotFound("no such key");
}

Status KvStore::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  std::vector<Entry> entries;
  entries.reserve(memtable_.size());
  for (auto& [key, entry] : memtable_) entries.push_back(entry);

  const uint64_t number = next_table_number_++;
  SSTable::Options table_options{options_.block_size, options_.bloom_bits_per_key};
  LIQUID_RETURN_NOT_OK(
      SSTable::Write(disk_, TableName(number), entries, table_options));
  auto table = SSTable::Open(disk_, TableName(number));
  if (!table.ok()) return table.status();
  l0_.insert(l0_.begin(), std::move(table).value());  // Newest first.

  LIQUID_RETURN_NOT_OK(WriteManifestLocked());
  memtable_.clear();
  memtable_bytes_ = 0;
  return wal_->Reset();
}

Status KvStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status KvStore::MergedEntriesLocked(std::vector<Entry>* out) const {
  // Priority: memtable > L0[0] > L0[1] > ... > L1. Since sequences are global
  // and monotonic, the max sequence per key is equivalent.
  std::map<std::string, Entry> merged;
  auto absorb = [&merged](const Entry& entry) {
    auto it = merged.find(entry.key);
    if (it == merged.end() || it->second.sequence < entry.sequence) {
      merged[entry.key] = entry;
    }
  };
  for (const auto& table : l1_) {
    for (auto it = table->NewIterator(); it.Valid(); it.Next()) {
      absorb(it.entry());
    }
  }
  for (auto tit = l0_.rbegin(); tit != l0_.rend(); ++tit) {
    for (auto it = (*tit)->NewIterator(); it.Valid(); it.Next()) {
      absorb(it.entry());
    }
  }
  for (const auto& [key, entry] : memtable_) absorb(entry);
  out->reserve(merged.size());
  for (auto& [key, entry] : merged) out->push_back(std::move(entry));
  return Status::OK();
}

Status KvStore::CompactAllLocked() {
  std::vector<Entry> merged;
  {
    // Exclude the memtable from compaction: it still lives in the WAL.
    std::map<std::string, Entry> saved;
    saved.swap(memtable_);
    Status st = MergedEntriesLocked(&merged);
    saved.swap(memtable_);
    LIQUID_RETURN_NOT_OK(st);
  }

  std::vector<std::string> old_tables;
  for (const auto& table : l0_) old_tables.push_back(table->name());
  for (const auto& table : l1_) old_tables.push_back(table->name());

  std::vector<std::unique_ptr<SSTable>> new_l1;
  SSTable::Options table_options{options_.block_size, options_.bloom_bits_per_key};
  std::vector<Entry> chunk;
  size_t chunk_bytes = 0;
  auto flush_chunk = [&]() -> Status {
    if (chunk.empty()) return Status::OK();
    const uint64_t number = next_table_number_++;
    LIQUID_RETURN_NOT_OK(
        SSTable::Write(disk_, TableName(number), chunk, table_options));
    auto table = SSTable::Open(disk_, TableName(number));
    if (!table.ok()) return table.status();
    new_l1.push_back(std::move(table).value());
    chunk.clear();
    chunk_bytes = 0;
    return Status::OK();
  };
  for (Entry& entry : merged) {
    if (entry.type == EntryType::kDelete) continue;  // Bottom level: drop.
    chunk_bytes += entry.key.size() + entry.value.size();
    chunk.push_back(std::move(entry));
    if (chunk_bytes >= options_.max_table_bytes) {
      LIQUID_RETURN_NOT_OK(flush_chunk());
    }
  }
  LIQUID_RETURN_NOT_OK(flush_chunk());

  l0_.clear();
  l1_ = std::move(new_l1);
  LIQUID_RETURN_NOT_OK(WriteManifestLocked());
  for (const auto& name : old_tables) {
    LIQUID_RETURN_NOT_OK(disk_->Remove(name));
  }
  return Status::OK();
}

Status KvStore::CompactAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactAllLocked();
}

Status KvStore::ForEach(
    const std::function<void(const Slice&, const Slice&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> merged;
  LIQUID_RETURN_NOT_OK(MergedEntriesLocked(&merged));
  for (const Entry& entry : merged) {
    if (entry.type == EntryType::kDelete) continue;
    fn(entry.key, entry.value);
  }
  return Status::OK();
}

Status KvStore::ForEachInRange(
    const Slice& begin, const Slice& end,
    const std::function<void(const Slice&, const Slice&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> merged;
  LIQUID_RETURN_NOT_OK(MergedEntriesLocked(&merged));
  for (const Entry& entry : merged) {
    if (entry.type == EntryType::kDelete) continue;
    if (Slice(entry.key).Compare(begin) < 0) continue;
    if (!end.empty() && Slice(entry.key).Compare(end) >= 0) break;
    fn(entry.key, entry.value);
  }
  return Status::OK();
}

Result<int64_t> KvStore::CountLiveKeys() const {
  int64_t count = 0;
  LIQUID_RETURN_NOT_OK(ForEach([&count](const Slice&, const Slice&) { ++count; }));
  return count;
}

size_t KvStore::memtable_size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memtable_bytes_;
}

int KvStore::l0_table_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(l0_.size());
}

int KvStore::l1_table_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(l1_.size());
}

Result<uint64_t> KvStore::ApproximateSizeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = memtable_bytes_;
  LIQUID_ASSIGN_OR_RETURN(uint64_t disk_bytes, disk_->TotalBytes(name_prefix_));
  return total + disk_bytes;
}

}  // namespace liquid::kv
