#include "coord/leader_election.h"

#include "common/fault.h"

namespace liquid::coord {

LeaderElection::LeaderElection(CoordinationService* coord, std::string path,
                               std::string candidate_id, int64_t session_id)
    : coord_(coord),
      path_(std::move(path)),
      candidate_id_(std::move(candidate_id)),
      session_id_(session_id),
      alive_token_(std::make_shared<std::atomic<bool>>(true)) {}

LeaderElection::~LeaderElection() { alive_token_->store(false); }

bool LeaderElection::Contend(LeadershipCallback on_elected) {
  {
    MutexLock lock(&mu_);
    contending_ = true;
    on_elected_ = std::move(on_elected);
  }
  if (TryAcquire()) return true;
  ArmWatch();
  return false;
}

bool LeaderElection::TryAcquire() {
  // Chaos surface (DESIGN.md §7): a candidate that cannot reach the election
  // znode loses this round; its armed watch re-contends on the next change.
  // TryAcquire returns bool, so the fault point is spelled out by hand.
  {
    FaultRegistry* faults = FaultRegistry::Default();
    if (faults->armed() && !faults->Hit("coord.election.acquire").ok()) {
      return false;
    }
  }
  auto result =
      coord_->Create(session_id_, path_, candidate_id_, NodeKind::kEphemeral);
  if (result.ok()) {
    LeadershipCallback cb;
    bool resigned = false;
    {
      MutexLock lock(&mu_);
      if (!contending_) {
        resigned = true;
      } else {
        is_leader_ = true;
        cb = on_elected_;
      }
    }
    if (resigned) {
      // Resigned while acquiring: give the node back, outside the lock
      // (section 5a). Best-effort — if the delete fails the ephemeral node
      // dies with the session anyway, and once contending_ is false nothing
      // re-creates the node, so deleting after unlock cannot race a re-win.
      LIQUID_IGNORE_ERROR(coord_->Delete(path_));
      return false;
    }
    if (cb) cb();
    return true;
  }
  return false;
}

void LeaderElection::ArmWatch() {
  auto token = alive_token_;
  const bool exists = coord_->Exists(path_, [this,
                                             token](const WatchEvent& event) {
    if (!token->load()) return;
    if (event.type != EventType::kDeleted) {
      // Data change or creation by someone else: keep watching.
      ArmWatch();
      return;
    }
    bool still_contending;
    {
      MutexLock lock(&mu_);
      still_contending = contending_ && !is_leader_;
    }
    if (!still_contending) return;
    if (!TryAcquire()) ArmWatch();
  });
  if (!exists) {
    // Node vanished between TryAcquire and Exists: contend again.
    bool still_contending;
    {
      MutexLock lock(&mu_);
      still_contending = contending_ && !is_leader_;
    }
    if (still_contending && !TryAcquire()) {
      // Lost the race again; the watch armed by Exists on the (now existing)
      // node covers us. If the node is still absent we spin once more.
      if (!coord_->Exists(path_)) ArmWatch();
    }
  }
}

void LeaderElection::Resign() {
  bool was_leader;
  {
    MutexLock lock(&mu_);
    was_leader = is_leader_;
    is_leader_ = false;
    contending_ = false;
    on_elected_ = nullptr;
  }
  // Best-effort: the node may already be gone (session expiry races resign),
  // and an ephemeral node is reclaimed with the session either way.
  if (was_leader) LIQUID_IGNORE_ERROR(coord_->Delete(path_));
}

bool LeaderElection::IsLeader() const {
  MutexLock lock(&mu_);
  return is_leader_;
}

Result<std::string> LeaderElection::CurrentLeader() const {
  return coord_->Get(path_);
}

}  // namespace liquid::coord
