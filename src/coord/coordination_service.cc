#include "coord/coordination_service.h"

#include <algorithm>

#include "common/fault.h"
#include <cstdio>

namespace liquid::coord {

namespace {

bool ValidPath(const std::string& path) {
  if (path.empty() || path[0] != '/') return false;
  if (path.size() > 1 && path.back() == '/') return false;
  return path.find("//") == std::string::npos;
}

std::string SequenceSuffix(int64_t seq) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%010lld", static_cast<long long>(seq));
  return std::string(buf);
}

}  // namespace

std::string CoordinationService::ParentPath(const std::string& path) {
  auto pos = path.rfind('/');
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

std::string CoordinationService::BaseName(const std::string& path) {
  auto pos = path.rfind('/');
  return path.substr(pos + 1);
}

int64_t CoordinationService::CreateSession() {
  MutexLock lock(&mu_);
  int64_t id = next_session_++;
  live_sessions_.insert(id);
  return id;
}

void CoordinationService::CloseSession(int64_t session_id) {
  std::vector<FiredWatch> fired;
  {
    MutexLock lock(&mu_);
    live_sessions_.erase(session_id);
    auto it = session_nodes_.find(session_id);
    if (it != session_nodes_.end()) {
      // Delete deepest-first so children vanish before parents.
      std::vector<std::string> paths(it->second.begin(), it->second.end());
      std::sort(paths.begin(), paths.end(),
                [](const std::string& a, const std::string& b) {
                  return a.size() > b.size();
                });
      for (const auto& path : paths) {
        // Session teardown is best-effort: a node may already have been
        // deleted by its owner or a concurrent session close.
        LIQUID_IGNORE_ERROR(DeleteLocked(path, -1, &fired));
      }
      session_nodes_.erase(it);
    }
  }
  for (auto& [watcher, event] : fired) watcher(event);
}

bool CoordinationService::SessionAlive(int64_t session_id) const {
  MutexLock lock(&mu_);
  return live_sessions_.count(session_id) > 0;
}

Result<std::string> CoordinationService::Create(int64_t session_id,
                                                const std::string& path,
                                                const std::string& data,
                                                NodeKind kind) {
  // Chaos surface (DESIGN.md §7): a session write the coordinator rejects —
  // models ZooKeeper-style connection loss on znode creation (broker
  // registration, election nodes, partition state).
  LIQUID_FAULT_POINT("coord.create");
  std::vector<FiredWatch> fired;
  std::string actual_path;
  {
    MutexLock lock(&mu_);
    if (!ValidPath(path)) {
      return Status::InvalidArgument("bad znode path: " + path);
    }
    if (!live_sessions_.count(session_id)) {
      return Status::FailedPrecondition("session expired");
    }
    const std::string parent = ParentPath(path);
    Node* parent_node = nullptr;
    if (parent != "/") {
      auto pit = nodes_.find(parent);
      if (pit == nodes_.end()) {
        return Status::NotFound("parent znode missing: " + parent);
      }
      parent_node = &pit->second;
      if (pit->second.kind == NodeKind::kEphemeral ||
          pit->second.kind == NodeKind::kEphemeralSequential) {
        return Status::FailedPrecondition("ephemeral znodes cannot have children");
      }
    }

    actual_path = path;
    if (kind == NodeKind::kPersistentSequential ||
        kind == NodeKind::kEphemeralSequential) {
      int64_t seq =
          parent_node ? parent_node->next_sequence++ : root_sequence_fallback_++;
      actual_path += SequenceSuffix(seq);
    }

    if (nodes_.count(actual_path)) {
      return Status::AlreadyExists("znode exists: " + actual_path);
    }

    Node node;
    node.data = data;
    node.kind = kind;
    node.stat.version = 0;
    const bool ephemeral =
        kind == NodeKind::kEphemeral || kind == NodeKind::kEphemeralSequential;
    node.stat.owner_session = ephemeral ? session_id : 0;
    nodes_.emplace(actual_path, std::move(node));
    if (ephemeral) session_nodes_[session_id].insert(actual_path);

    if (parent_node) {
      parent_node->children.insert(BaseName(actual_path));
      FireChildWatchers(parent_node, parent, &fired);
    }
    FireExistsWatchers(actual_path, EventType::kCreated, &fired);
  }
  for (auto& [watcher, event] : fired) watcher(event);
  return actual_path;
}

Status CoordinationService::DeleteLocked(const std::string& path,
                                         int64_t expected_version,
                                         std::vector<FiredWatch>* fired) {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("znode missing: " + path);
  Node& node = it->second;
  if (expected_version >= 0 && node.stat.version != expected_version) {
    return Status::FailedPrecondition("znode version mismatch: " + path);
  }
  if (!node.children.empty()) {
    return Status::FailedPrecondition("znode has children: " + path);
  }
  FireDataWatchers(&node, EventType::kDeleted, path, fired);
  if (node.stat.owner_session != 0) {
    auto sit = session_nodes_.find(node.stat.owner_session);
    if (sit != session_nodes_.end()) sit->second.erase(path);
  }
  nodes_.erase(it);

  const std::string parent = ParentPath(path);
  if (parent != "/") {
    auto pit = nodes_.find(parent);
    if (pit != nodes_.end()) {
      pit->second.children.erase(BaseName(path));
      FireChildWatchers(&pit->second, parent, fired);
    }
  }
  FireExistsWatchers(path, EventType::kDeleted, fired);
  return Status::OK();
}

Status CoordinationService::Delete(const std::string& path,
                                   int64_t expected_version) {
  std::vector<FiredWatch> fired;
  Status st;
  {
    MutexLock lock(&mu_);
    st = DeleteLocked(path, expected_version, &fired);
  }
  for (auto& [watcher, event] : fired) watcher(event);
  return st;
}

Result<std::string> CoordinationService::Get(const std::string& path,
                                             Watcher watcher) {
  MutexLock lock(&mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("znode missing: " + path);
  if (watcher) it->second.data_watchers.push_back(std::move(watcher));
  return it->second.data;
}

Result<NodeStat> CoordinationService::Stat(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("znode missing: " + path);
  return it->second.stat;
}

Status CoordinationService::Set(const std::string& path, const std::string& data,
                                int64_t expected_version) {
  std::vector<FiredWatch> fired;
  {
    MutexLock lock(&mu_);
    auto it = nodes_.find(path);
    if (it == nodes_.end()) return Status::NotFound("znode missing: " + path);
    Node& node = it->second;
    if (expected_version >= 0 && node.stat.version != expected_version) {
      return Status::FailedPrecondition("znode version mismatch: " + path);
    }
    node.data = data;
    node.stat.version++;
    FireDataWatchers(&node, EventType::kDataChanged, path, &fired);
  }
  for (auto& [watcher, event] : fired) watcher(event);
  return Status::OK();
}

Result<std::vector<std::string>> CoordinationService::GetChildren(
    const std::string& path, Watcher watcher) {
  MutexLock lock(&mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("znode missing: " + path);
  if (watcher) it->second.child_watchers.push_back(std::move(watcher));
  return std::vector<std::string>(it->second.children.begin(),
                                  it->second.children.end());
}

bool CoordinationService::Exists(const std::string& path, Watcher watcher) {
  MutexLock lock(&mu_);
  auto it = nodes_.find(path);
  if (it != nodes_.end()) {
    if (watcher) it->second.data_watchers.push_back(std::move(watcher));
    return true;
  }
  if (watcher) absent_watchers_[path].push_back(std::move(watcher));
  return false;
}

size_t CoordinationService::NodeCount() const {
  MutexLock lock(&mu_);
  return nodes_.size();
}

void CoordinationService::FireDataWatchers(Node* node, EventType type,
                                           const std::string& path,
                                           std::vector<FiredWatch>* fired) {
  for (auto& watcher : node->data_watchers) {
    fired->emplace_back(std::move(watcher), WatchEvent{type, path});
  }
  node->data_watchers.clear();
}

void CoordinationService::FireChildWatchers(Node* node, const std::string& path,
                                            std::vector<FiredWatch>* fired) {
  for (auto& watcher : node->child_watchers) {
    fired->emplace_back(std::move(watcher),
                        WatchEvent{EventType::kChildrenChanged, path});
  }
  node->child_watchers.clear();
}

void CoordinationService::FireExistsWatchers(const std::string& path,
                                             EventType type,
                                             std::vector<FiredWatch>* fired) {
  auto it = absent_watchers_.find(path);
  if (it == absent_watchers_.end()) return;
  for (auto& watcher : it->second) {
    fired->emplace_back(std::move(watcher), WatchEvent{type, path});
  }
  absent_watchers_.erase(it);
}

}  // namespace liquid::coord
