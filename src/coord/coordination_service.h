#ifndef LIQUID_COORD_COORDINATION_SERVICE_H_
#define LIQUID_COORD_COORDINATION_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace liquid::coord {

/// Node creation modes, mirroring ZooKeeper.
enum class NodeKind {
  kPersistent,
  kEphemeral,              // Deleted when the owning session ends.
  kPersistentSequential,   // Path gets a monotonically increasing suffix.
  kEphemeralSequential,
};

/// Per-node bookkeeping exposed to clients.
struct NodeStat {
  int64_t version = 0;        // Data version, bumped on every Set.
  int64_t owner_session = 0;  // 0 for persistent nodes.
  int64_t create_time_ms = 0;
};

/// Watch notification types, mirroring ZooKeeper's one-shot watches.
enum class EventType { kCreated, kDeleted, kDataChanged, kChildrenChanged };

/// Payload delivered to a one-shot watcher: what happened, and where.
struct WatchEvent {
  EventType type;
  std::string path;
};

using Watcher = std::function<void(const WatchEvent&)>;

/// In-process ZooKeeper-equivalent: a hierarchical namespace of znodes with
/// versions, ephemeral nodes, sequential nodes, one-shot watches and sessions.
///
/// The paper's messaging layer uses ZooKeeper for controller election, broker
/// membership, and the in-sync-replica (ISR) set (§4.3). This class provides
/// exactly those primitives; session expiry is triggered explicitly so broker
/// failures can be injected deterministically in tests and benches.
///
/// Thread-safe. Watches fire outside the internal lock, on the mutating
/// thread, and are one-shot (re-arm by re-reading).
class CoordinationService {
 public:
  CoordinationService() = default;

  CoordinationService(const CoordinationService&) = delete;
  CoordinationService& operator=(const CoordinationService&) = delete;

  /// Opens a session; ephemeral nodes created under it live until the session
  /// is closed or expired.
  int64_t CreateSession();

  /// Graceful close: deletes the session's ephemeral nodes (firing watches).
  void CloseSession(int64_t session_id);

  /// Simulated failure: identical effect to CloseSession, kept separate so
  /// call sites document intent.
  void ExpireSession(int64_t session_id) { CloseSession(session_id); }

  bool SessionAlive(int64_t session_id) const;

  /// Creates a node. Parent must exist (except for root-level nodes). For
  /// sequential kinds, returns the actual path including the suffix.
  Result<std::string> Create(int64_t session_id, const std::string& path,
                             const std::string& data, NodeKind kind);

  /// Deletes a node. If expected_version >= 0, fails with FailedPrecondition
  /// on mismatch. Fails with FailedPrecondition if the node has children.
  Status Delete(const std::string& path, int64_t expected_version = -1);

  /// Reads node data; optionally arms a one-shot watch for delete/data-change.
  Result<std::string> Get(const std::string& path, Watcher watcher = nullptr);

  Result<NodeStat> Stat(const std::string& path) const;

  /// Writes node data with optimistic concurrency control.
  Status Set(const std::string& path, const std::string& data,
             int64_t expected_version = -1);

  /// Lists immediate children (names, not full paths), sorted; optionally arms
  /// a one-shot watch for child creation/deletion under `path`.
  Result<std::vector<std::string>> GetChildren(const std::string& path,
                                               Watcher watcher = nullptr);

  /// True if the node exists; optionally arms a one-shot watch for creation
  /// or deletion of `path`.
  bool Exists(const std::string& path, Watcher watcher = nullptr);

  /// Total number of nodes, for scale benches.
  size_t NodeCount() const;

 private:
  struct Node {
    std::string data;
    NodeKind kind = NodeKind::kPersistent;
    NodeStat stat;
    std::set<std::string> children;  // Child names.
    int64_t next_sequence = 0;
    std::vector<Watcher> data_watchers;
    std::vector<Watcher> child_watchers;
  };

  // All private helpers assume mu_ is held; they append to *fired the watch
  // callbacks to invoke after the lock is released.
  using FiredWatch = std::pair<Watcher, WatchEvent>;

  static std::string ParentPath(const std::string& path);
  static std::string BaseName(const std::string& path);

  Status DeleteLocked(const std::string& path, int64_t expected_version,
                      std::vector<FiredWatch>* fired) REQUIRES(mu_);
  void FireDataWatchers(Node* node, EventType type, const std::string& path,
                        std::vector<FiredWatch>* fired) REQUIRES(mu_);
  void FireChildWatchers(Node* node, const std::string& path,
                         std::vector<FiredWatch>* fired) REQUIRES(mu_);
  void FireExistsWatchers(const std::string& path, EventType type,
                          std::vector<FiredWatch>* fired) REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Node> nodes_ GUARDED_BY(mu_);
  // Watches armed on paths that do not exist yet (Exists() on absent node).
  std::map<std::string, std::vector<Watcher>> absent_watchers_ GUARDED_BY(mu_);
  std::map<int64_t, std::set<std::string>> session_nodes_ GUARDED_BY(mu_);
  std::set<int64_t> live_sessions_ GUARDED_BY(mu_);
  int64_t next_session_ GUARDED_BY(mu_) = 1;
  // Sequence counter for sequential nodes created directly under "/".
  int64_t root_sequence_fallback_ GUARDED_BY(mu_) = 0;
};

}  // namespace liquid::coord

#endif  // LIQUID_COORD_COORDINATION_SERVICE_H_
