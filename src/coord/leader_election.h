#ifndef LIQUID_COORD_LEADER_ELECTION_H_
#define LIQUID_COORD_LEADER_ELECTION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "coord/coordination_service.h"

namespace liquid::coord {

/// Leader-election recipe over CoordinationService, as used by the messaging
/// layer's controller (§4.3): the candidate that creates the ephemeral
/// election znode wins; losers arm a watch and re-contend when the incumbent's
/// session ends.
class LeaderElection {
 public:
  /// Invoked (on the mutating thread) when this candidate becomes leader.
  using LeadershipCallback = std::function<void()>;

  /// `path` is the election znode (e.g. "/controller"); `candidate_id` is
  /// stored as its data so observers can see who leads.
  LeaderElection(CoordinationService* coord, std::string path,
                 std::string candidate_id, int64_t session_id);
  ~LeaderElection();

  LeaderElection(const LeaderElection&) = delete;
  LeaderElection& operator=(const LeaderElection&) = delete;

  /// Joins the election. Returns true if this candidate won immediately.
  /// If not, a watch is armed and `on_elected` fires when leadership is won
  /// later (after incumbent failure).
  bool Contend(LeadershipCallback on_elected);

  /// Abandons leadership (deletes the znode if held) and stops contending.
  void Resign();

  bool IsLeader() const;

  /// The candidate_id of the current leader, or NotFound if none.
  Result<std::string> CurrentLeader() const;

 private:
  bool TryAcquire();
  void ArmWatch();

  CoordinationService* coord_;
  const std::string path_;
  const std::string candidate_id_;
  const int64_t session_id_;

  mutable Mutex mu_;
  bool is_leader_ GUARDED_BY(mu_) = false;
  bool contending_ GUARDED_BY(mu_) = false;
  LeadershipCallback on_elected_ GUARDED_BY(mu_);
  // Armed watches live in the coordination service and can outlive this
  // object; callbacks bail out once the token reads false.
  std::shared_ptr<std::atomic<bool>> alive_token_;
};

}  // namespace liquid::coord

#endif  // LIQUID_COORD_LEADER_ELECTION_H_
