#include "workload/generators.h"

namespace liquid::workload {

std::map<std::string, std::string> ParseEvent(const std::string& payload) {
  std::map<std::string, std::string> out;
  size_t pos = 0;
  while (pos < payload.size()) {
    const size_t semi = payload.find(';', pos);
    const size_t end = semi == std::string::npos ? payload.size() : semi;
    const size_t eq = payload.find('=', pos);
    if (eq != std::string::npos && eq < end) {
      out[payload.substr(pos, eq - pos)] = payload.substr(eq + 1, end - eq - 1);
    }
    pos = end + 1;
  }
  return out;
}

std::string EncodeEvent(const std::map<std::string, std::string>& fields) {
  std::string out;
  for (const auto& [key, value] : fields) {
    if (!out.empty()) out += ';';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

RumEventGenerator::RumEventGenerator(Options options)
    : options_(options), rng_(options.seed) {}

storage::Record RumEventGenerator::Next(int64_t timestamp_ms) {
  const int cdn = static_cast<int>(rng_.Uniform(options_.num_cdns));
  int64_t load_ms =
      options_.base_load_ms +
      static_cast<int64_t>(rng_.Uniform(options_.load_jitter_ms + 1));
  if (count_ >= options_.anomaly_start_event &&
      count_ < options_.anomaly_end_event && cdn == options_.anomalous_cdn) {
    load_ms = options_.anomaly_load_ms;
  }
  std::map<std::string, std::string> fields;
  fields["page"] = "page" + std::to_string(rng_.Uniform(options_.num_pages));
  fields["load_ms"] = std::to_string(load_ms);
  fields["region"] =
      "region" + std::to_string(rng_.Uniform(options_.num_regions));
  fields["cdn"] = "cdn" + std::to_string(cdn);
  const std::string session = "session" + std::to_string(rng_.Uniform(100000));
  ++count_;
  return storage::Record::KeyValue(session, EncodeEvent(fields), timestamp_ms);
}

CallGraphGenerator::CallGraphGenerator(Options options)
    : options_(options), rng_(options.seed) {}

void CallGraphGenerator::EmitSpans(const std::string& request_id,
                                   int span_counter_base, int parent, int depth,
                                   int64_t timestamp_ms,
                                   std::vector<storage::Record>* out,
                                   int* next_span) {
  const int span = (*next_span)++;
  const int service = static_cast<int>(rng_.Uniform(options_.num_services));
  int64_t latency_us =
      options_.base_latency_us + static_cast<int64_t>(rng_.Uniform(1000));
  if (service == options_.slow_service) latency_us = options_.slow_latency_us;

  std::map<std::string, std::string> fields;
  fields["span"] = std::to_string(span);
  fields["parent"] = std::to_string(parent);
  fields["service"] = "svc" + std::to_string(service);
  fields["latency_us"] = std::to_string(latency_us);
  out->push_back(
      storage::Record::KeyValue(request_id, EncodeEvent(fields), timestamp_ms));

  if (depth >= options_.max_depth) return;
  const int children = static_cast<int>(rng_.Uniform(options_.max_fanout + 1));
  for (int i = 0; i < children; ++i) {
    EmitSpans(request_id, span_counter_base, span, depth + 1, timestamp_ms, out,
              next_span);
  }
}

std::vector<storage::Record> CallGraphGenerator::NextRequest(
    int64_t timestamp_ms) {
  const std::string request_id = "req" + std::to_string(requests_++);
  std::vector<storage::Record> out;
  int next_span = 0;
  EmitSpans(request_id, 0, -1, 1, timestamp_ms, &out, &next_span);
  // Shuffle to mimic out-of-order arrival from distributed services.
  for (size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng_.Uniform(i)]);
  }
  return out;
}

ProfileUpdateGenerator::ProfileUpdateGenerator(Options options)
    : options_(options),
      zipf_(options.num_users, options.zipf_theta, options.seed),
      rng_(options.seed * 31 + 1) {}

storage::Record ProfileUpdateGenerator::Next(int64_t timestamp_ms) {
  const uint64_t user = zipf_.Next();
  ++count_;
  return storage::Record::KeyValue("user" + std::to_string(user),
                                   rng_.Bytes(options_.value_bytes),
                                   timestamp_ms);
}

}  // namespace liquid::workload
