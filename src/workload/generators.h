#ifndef LIQUID_WORKLOAD_GENERATORS_H_
#define LIQUID_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/record.h"

namespace liquid::workload {

/// Parses "k1=v1;k2=v2;..." event payloads produced by the generators.
std::map<std::string, std::string> ParseEvent(const std::string& payload);
std::string EncodeEvent(const std::map<std::string, std::string>& fields);

/// Real-user-monitoring page-load events (§5.1 "site speed monitoring"):
/// each event has a timestamp, page, load time, client region and serving
/// CDN. A configurable anomaly window makes one CDN pathologically slow so
/// detection latency can be measured.
class RumEventGenerator {
 public:
  struct Options {
    int num_pages = 50;
    int num_regions = 8;
    int num_cdns = 4;
    int64_t base_load_ms = 200;
    int64_t load_jitter_ms = 150;
    /// Events in [anomaly_start_event, anomaly_end_event) served by
    /// `anomalous_cdn` take anomaly_load_ms.
    int64_t anomaly_start_event = -1;
    int64_t anomaly_end_event = -1;
    int anomalous_cdn = 0;
    int64_t anomaly_load_ms = 5000;
    uint64_t seed = 42;
  };

  explicit RumEventGenerator(Options options);

  /// Next event; key = session id, value = encoded fields
  /// (page, load_ms, region, cdn), timestamp = event time.
  storage::Record Next(int64_t timestamp_ms);

  int64_t events_generated() const { return count_; }

 private:
  Options options_;
  Random rng_;
  int64_t count_ = 0;
};

/// REST call-tree events (§5.1 "call graph assembly"): each user request
/// fans out into a tree of spans sharing the request's unique id. Spans of a
/// request are emitted contiguously but child-shuffled; the assembly job
/// groups them by request id and rebuilds the tree.
class CallGraphGenerator {
 public:
  struct Options {
    int max_fanout = 3;
    int max_depth = 3;
    int num_services = 20;
    int64_t base_latency_us = 500;
    /// One service can be made slow to exercise slow-call detection.
    int slow_service = -1;
    int64_t slow_latency_us = 50000;
    uint64_t seed = 7;
  };

  explicit CallGraphGenerator(Options options);

  /// Generates all spans of one request. Key = request id; value = encoded
  /// fields (span, parent, service, latency_us).
  std::vector<storage::Record> NextRequest(int64_t timestamp_ms);

  int64_t requests_generated() const { return requests_; }

 private:
  void EmitSpans(const std::string& request_id, int span_counter_base,
                 int parent, int depth, int64_t timestamp_ms,
                 std::vector<storage::Record>* out, int* next_span);

  Options options_;
  Random rng_;
  int64_t requests_ = 0;
};

/// Keyed user-content updates with Zipf-skewed popularity (§5.1 "data
/// cleaning and normalization", §4.1 log compaction: "only a small percentage
/// of data changes periodically, such as user profile updates").
class ProfileUpdateGenerator {
 public:
  struct Options {
    uint64_t num_users = 10000;
    double zipf_theta = 0.9;
    size_t value_bytes = 64;
    uint64_t seed = 99;
  };

  explicit ProfileUpdateGenerator(Options options);

  /// Key = "user<N>", value = fresh profile payload.
  storage::Record Next(int64_t timestamp_ms);

 private:
  Options options_;
  ZipfGenerator zipf_;
  Random rng_;
  int64_t count_ = 0;
};

}  // namespace liquid::workload

#endif  // LIQUID_WORKLOAD_GENERATORS_H_
