#include "storage/record.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace liquid::storage {

namespace {
constexpr uint8_t kAttrTombstone = 1u << 0;
constexpr uint8_t kAttrHasKey = 1u << 1;
constexpr uint8_t kAttrControl = 1u << 2;
constexpr uint8_t kAttrTraced = 1u << 3;
// length + crc + offset + timestamp + producer_id + sequence + leader_epoch
// + attributes
constexpr size_t kHeaderFixedBytes = 4 + 4 + 8 + 8 + 8 + 4 + 4 + 1;
// trace_id + span_id + ingest_us, present only when kAttrTraced is set.
constexpr size_t kTraceBlockBytes = 8 + 8 + 8;
}  // namespace

size_t Record::EncodedSize() const {
  return kHeaderFixedBytes + (traced() ? kTraceBlockBytes : 0) +
         VarintLength(key.size()) + key.size() + VarintLength(value.size()) +
         value.size();
}

void EncodeRecord(const Record& record, std::string* dst) {
  std::string body;
  body.reserve(record.EncodedSize() - 8);
  PutFixed64(&body, static_cast<uint64_t>(record.offset));
  PutFixed64(&body, static_cast<uint64_t>(record.timestamp_ms));
  PutFixed64(&body, static_cast<uint64_t>(record.producer_id));
  PutFixed32(&body, static_cast<uint32_t>(record.sequence));
  PutFixed32(&body, static_cast<uint32_t>(record.leader_epoch));
  uint8_t attrs = 0;
  if (record.is_tombstone) attrs |= kAttrTombstone;
  if (record.has_key) attrs |= kAttrHasKey;
  if (record.is_control) attrs |= kAttrControl;
  if (record.traced()) attrs |= kAttrTraced;
  body.push_back(static_cast<char>(attrs));
  if (record.traced()) {
    PutFixed64(&body, record.trace_id);
    PutFixed64(&body, record.span_id);
    PutFixed64(&body, static_cast<uint64_t>(record.ingest_us));
  }
  PutLengthPrefixed(&body, record.key);
  PutLengthPrefixed(&body, record.value);

  const uint32_t crc = crc32c::Mask(crc32c::Value(body.data(), body.size()));
  PutFixed32(dst, static_cast<uint32_t>(body.size()) + 4);  // +4 for the crc
  PutFixed32(dst, crc);
  // liquid-lint: allow(hot-alloc): copies the reserved body into the batch buffer EncodedBatch::Encode pre-reserved to the exact total size.
  dst->append(body);
}

Status DecodeRecord(Slice* input, Record* record) {
  if (input->empty()) return Status::OutOfRange("no more records");
  if (input->size() < 8) return Status::Corruption("record header truncated");
  uint32_t length = 0;
  Slice peek = *input;
  LIQUID_RETURN_NOT_OK(GetFixed32(&peek, &length));
  if (length < 4 + 8 + 8 + 8 + 4 + 4 + 1 + 2) {
    return Status::Corruption("record length too small");
  }
  if (peek.size() < length) return Status::Corruption("record body truncated");

  uint32_t masked_crc = 0;
  LIQUID_RETURN_NOT_OK(GetFixed32(&peek, &masked_crc));
  const Slice body(peek.data(), length - 4);
  const uint32_t actual = crc32c::Value(body.data(), body.size());
  if (crc32c::Unmask(masked_crc) != actual) {
    return Status::Corruption("record crc mismatch");
  }

  Slice cursor = body;
  uint64_t offset = 0, timestamp = 0, producer_id = 0;
  uint32_t sequence = 0, leader_epoch = 0;
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &offset));
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &timestamp));
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &producer_id));
  LIQUID_RETURN_NOT_OK(GetFixed32(&cursor, &sequence));
  LIQUID_RETURN_NOT_OK(GetFixed32(&cursor, &leader_epoch));
  if (cursor.empty()) return Status::Corruption("record attributes missing");
  const uint8_t attrs = static_cast<uint8_t>(cursor[0]);
  cursor.RemovePrefix(1);
  uint64_t trace_id = 0, span_id = 0, ingest_us = 0;
  if ((attrs & kAttrTraced) != 0) {
    LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &trace_id));
    LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &span_id));
    LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &ingest_us));
  }
  Slice key, value;
  LIQUID_RETURN_NOT_OK(GetLengthPrefixed(&cursor, &key));
  LIQUID_RETURN_NOT_OK(GetLengthPrefixed(&cursor, &value));

  record->offset = static_cast<int64_t>(offset);
  record->timestamp_ms = static_cast<int64_t>(timestamp);
  record->producer_id = static_cast<int64_t>(producer_id);
  record->sequence = static_cast<int32_t>(sequence);
  record->leader_epoch = static_cast<int32_t>(leader_epoch);
  record->is_tombstone = (attrs & kAttrTombstone) != 0;
  record->has_key = (attrs & kAttrHasKey) != 0;
  record->is_control = (attrs & kAttrControl) != 0;
  record->trace_id = trace_id;
  record->span_id = span_id;
  record->ingest_us = static_cast<int64_t>(ingest_us);
  record->key = key.ToString();
  record->value = value.ToString();

  input->RemovePrefix(4 + length);
  return Status::OK();
}

Status DecodeRecordHeader(Slice input, RecordFrameHeader* header,
                          bool verify_crc) {
  if (input.empty()) return Status::OutOfRange("no more records");
  if (input.size() < 8) return Status::Corruption("record header truncated");
  uint32_t length = 0;
  LIQUID_RETURN_NOT_OK(GetFixed32(&input, &length));
  if (length < 4 + 8 + 8 + 8 + 4 + 4 + 1 + 2) {
    return Status::Corruption("record length too small");
  }
  if (input.size() < length) return Status::Corruption("record body truncated");
  uint32_t masked_crc = 0;
  LIQUID_RETURN_NOT_OK(GetFixed32(&input, &masked_crc));
  const Slice body(input.data(), length - 4);
  if (verify_crc &&
      crc32c::Unmask(masked_crc) != crc32c::Value(body.data(), body.size())) {
    return Status::Corruption("record crc mismatch");
  }
  Slice cursor = body;
  uint64_t offset = 0, timestamp = 0, producer_id = 0;
  uint32_t sequence = 0, leader_epoch = 0;
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &offset));
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &timestamp));
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &producer_id));
  LIQUID_RETURN_NOT_OK(GetFixed32(&cursor, &sequence));
  LIQUID_RETURN_NOT_OK(GetFixed32(&cursor, &leader_epoch));
  if (cursor.empty()) return Status::Corruption("record attributes missing");
  const uint8_t attrs = static_cast<uint8_t>(cursor[0]);
  header->offset = static_cast<int64_t>(offset);
  header->timestamp_ms = static_cast<int64_t>(timestamp);
  header->leader_epoch = static_cast<int32_t>(leader_epoch);
  header->is_control = (attrs & kAttrControl) != 0;
  header->traced = (attrs & kAttrTraced) != 0;
  header->encoded_size = 4 + static_cast<size_t>(length);
  return Status::OK();
}

Status DecodeRecords(Slice input, std::vector<Record>* records) {
  while (!input.empty()) {
    // A truncated tail (from a size-limited fetch) is expected: stop cleanly
    // when the remaining bytes cannot hold the next full record.
    if (input.size() < 4) break;
    const uint32_t length = DecodeFixed32(input.data());
    if (input.size() < 4 + static_cast<size_t>(length)) break;
    Record record;
    LIQUID_RETURN_NOT_OK(DecodeRecord(&input, &record));
    records->push_back(std::move(record));
  }
  return Status::OK();
}

}  // namespace liquid::storage
