#include "storage/disk.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace liquid::storage {

namespace fs = std::filesystem;

void SpinFor(int64_t nanos) {
  if (nanos <= 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(nanos);
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy-wait: sleeping would round up to scheduler granularity and distort
    // the relative costs the latency model encodes.
  }
}

Result<uint64_t> Disk::TotalBytes(const std::string& prefix) const {
  LIQUID_ASSIGN_OR_RETURN(std::vector<std::string> names, List(prefix));
  uint64_t total = 0;
  for (const auto& name : names) {
    auto file = const_cast<Disk*>(this)->OpenOrCreate(name);
    if (!file.ok()) return file.status();
    total += (*file)->Size();
  }
  return total;
}

/// File handle over MemDisk storage.
class MemFile : public File {
 public:
  MemFile(std::shared_ptr<MemDisk::FileData> data, const MemDisk* disk)
      : data_(std::move(data)), disk_(disk) {}

  Status Append(const Slice& slice) override {
    disk_->ChargeWrite(slice.size());
    std::lock_guard<std::mutex> lock(data_->mu);
    data_->bytes.append(slice.data(), slice.size());
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override {
    std::unique_lock<std::mutex> lock(data_->mu);
    out->clear();
    if (offset >= data_->bytes.size()) {
      lock.unlock();
      disk_->ChargeRead(0);
      return Status::OK();
    }
    const size_t available = data_->bytes.size() - offset;
    const size_t len = n < available ? n : available;
    out->assign(data_->bytes.data() + offset, len);
    lock.unlock();
    disk_->ChargeRead(len);
    return Status::OK();
  }

  uint64_t Size() const override {
    std::lock_guard<std::mutex> lock(data_->mu);
    return data_->bytes.size();
  }

  Status Sync() override {
    // fsync semantics: only bytes present when the call starts are guaranteed
    // durable, so snapshot the size first. The fault hook and latency charge
    // run *before* advancing the watermark — a failed fsync leaves the file
    // exactly as unsynced as it was, which is what power-loss-after-failed-
    // fsync looks like.
    uint64_t size = 0;
    std::string name;
    {
      std::lock_guard<std::mutex> lock(data_->mu);
      size = data_->bytes.size();
      name = data_->name;
    }
    LIQUID_RETURN_NOT_OK(disk_->ChargeSync(name));
    std::lock_guard<std::mutex> lock(data_->mu);
    if (data_->synced_bytes < size) data_->synced_bytes = size;
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(data_->mu);
    if (size < data_->bytes.size()) data_->bytes.resize(size);
    if (data_->synced_bytes > size) data_->synced_bytes = size;
    return Status::OK();
  }

 private:
  std::shared_ptr<MemDisk::FileData> data_;
  const MemDisk* disk_;
};

void MemDisk::ChargeRead(size_t n) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_read_ += static_cast<int64_t>(n);
    ++read_ops_;
  }
  SpinFor(latency_.read_seek_us * 1000 +
          latency_.read_byte_ns * static_cast<int64_t>(n));
}

void MemDisk::ChargeWrite(size_t n) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_written_ += static_cast<int64_t>(n);
  }
  SpinFor(latency_.write_seek_us * 1000 +
          latency_.write_byte_ns * static_cast<int64_t>(n));
}

Status MemDisk::ChargeSync(const std::string& name) const {
  std::function<Status(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = sync_fault_hook_;
  }
  if (hook) LIQUID_RETURN_NOT_OK(hook(name));
  SpinFor(latency_.sync_us * 1000);
  std::lock_guard<std::mutex> lock(mu_);
  ++sync_ops_;
  return Status::OK();
}

int64_t MemDisk::bytes_read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_read_;
}

int64_t MemDisk::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

int64_t MemDisk::read_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_ops_;
}

int64_t MemDisk::sync_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_ops_;
}

void MemDisk::SetSyncFaultHook(
    std::function<Status(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_fault_hook_ = std::move(hook);
}

void MemDisk::SimulateCrash() {
  // Snapshot the slots under the disk lock, truncate each under its own file
  // lock (lock order: mu_ strictly before FileData::mu, same as elsewhere).
  std::vector<std::shared_ptr<FileData>> slots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots.reserve(files_.size());
    for (const auto& [name, data] : files_) slots.push_back(data);
  }
  for (const auto& data : slots) {
    std::lock_guard<std::mutex> lock(data->mu);
    if (data->bytes.size() > data->synced_bytes) {
      data->bytes.resize(data->synced_bytes);
    }
  }
}

Result<std::unique_ptr<File>> MemDisk::OpenOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = files_[name];
  if (!slot) {
    slot = std::make_shared<FileData>();
    slot->name = name;
  }
  return std::unique_ptr<File>(new MemFile(slot, this));
}

Status MemDisk::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  files_.erase(it);
  return Status::OK();
}

bool MemDisk::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

Result<std::vector<std::string>> MemDisk::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, data] : files_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

Status MemDisk::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = it->second;
  {
    std::lock_guard<std::mutex> data_lock(it->second->mu);
    it->second->name = to;
  }
  files_.erase(it);
  return Status::OK();
}

namespace {

/// File handle over a real filesystem path. Reads use a fresh ifstream per
/// call (simple and correct; FsDisk is for examples, not benches).
class FsFile : public File {
 public:
  explicit FsFile(std::string path) : path_(std::move(path)) {
    // Ensure the file exists.
    std::ofstream touch(path_, std::ios::binary | std::ios::app);
  }

  Status Append(const Slice& data) override {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out) return Status::IOError("cannot open for append: " + path_);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IOError("append failed: " + path_);
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override {
    std::ifstream in(path_, std::ios::binary);
    if (!in) return Status::IOError("cannot open for read: " + path_);
    in.seekg(static_cast<std::streamoff>(offset));
    out->resize(n);
    in.read(out->data(), static_cast<std::streamsize>(n));
    out->resize(static_cast<size_t>(in.gcount()));
    return Status::OK();
  }

  uint64_t Size() const override {
    std::error_code ec;
    auto size = fs::file_size(path_, ec);
    return ec ? 0 : static_cast<uint64_t>(size);
  }

  Status Sync() override { return Status::OK(); }

  Status Truncate(uint64_t size) override {
    std::error_code ec;
    fs::resize_file(path_, size, ec);
    if (ec) return Status::IOError("truncate failed: " + path_);
    return Status::OK();
  }

 private:
  std::string path_;
};

}  // namespace

FsDisk::FsDisk(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
}

std::string FsDisk::Resolve(const std::string& name) const {
  return root_ + "/" + name;
}

Result<std::unique_ptr<File>> FsDisk::OpenOrCreate(const std::string& name) {
  const std::string path = Resolve(name);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  return std::unique_ptr<File>(new FsFile(path));
}

Status FsDisk::Remove(const std::string& name) {
  std::error_code ec;
  if (!fs::remove(Resolve(name), ec) || ec) {
    return Status::NotFound("no such file: " + name);
  }
  return Status::OK();
}

bool FsDisk::Exists(const std::string& name) const {
  std::error_code ec;
  return fs::exists(Resolve(name), ec);
}

Result<std::vector<std::string>> FsDisk::List(const std::string& prefix) const {
  std::vector<std::string> out;
  std::error_code ec;
  if (!fs::exists(root_, ec)) return out;
  for (const auto& entry : fs::recursive_directory_iterator(root_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string rel = fs::relative(entry.path(), root_, ec).string();
    if (rel.compare(0, prefix.size(), prefix) == 0) out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status FsDisk::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(Resolve(from), Resolve(to), ec);
  if (ec) return Status::IOError("rename failed: " + from + " -> " + to);
  return Status::OK();
}

}  // namespace liquid::storage
