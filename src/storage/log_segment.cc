#include "storage/log_segment.h"

#include <algorithm>
#include <cstdio>

#include "common/coding.h"

namespace liquid::storage {

namespace {

std::string SegmentFileName(const std::string& prefix, int64_t base_offset) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020lld", static_cast<long long>(base_offset));
  return prefix + buf + ".log";
}

// Reads in chunks of this size while scanning forward from an index position.
constexpr size_t kScanChunkBytes = 128 * 1024;

// A record frame is never smaller than its fixed header fields (see
// DecodeRecord's minimum-length check); bounds frame-count reservations.
constexpr size_t kMinFrameBytes = 4 + 4 + 8 + 8 + 8 + 4 + 4 + 1 + 2;

}  // namespace

LogSegment::LogSegment(Disk* disk, std::unique_ptr<File> file,
                       std::string file_name, int64_t base_offset,
                       const Config& config)
    : disk_(disk),
      file_(std::move(file)),
      file_name_(std::move(file_name)),
      base_offset_(base_offset),
      config_(config),
      next_offset_(base_offset) {}

Result<std::unique_ptr<LogSegment>> LogSegment::Open(
    Disk* disk, PageCache* cache, const std::string& name_prefix,
    int64_t base_offset, const Config& config) {
  const std::string name = SegmentFileName(name_prefix, base_offset);
  auto file_result = disk->OpenOrCreate(name);
  if (!file_result.ok()) return file_result.status();
  std::unique_ptr<File> file = std::move(file_result).value();
  CachedFile* cached = nullptr;
  if (cache != nullptr) {
    // liquid-lint: allow(hot-alloc): one-time segment open on the amortized roll path (once per segment_bytes of appends).
    auto wrapped = std::make_unique<CachedFile>(std::move(file), cache);
    cached = wrapped.get();
    file = std::move(wrapped);
  }
  // liquid-lint: allow(hot-alloc): one-time segment open on the amortized roll path.
  std::unique_ptr<LogSegment> segment(
      new LogSegment(disk, std::move(file), name, base_offset, config));
  segment->cached_file_ = cached;
  LIQUID_RETURN_NOT_OK(segment->Recover());
  return segment;
}

Status LogSegment::Recover() {
  const uint64_t file_size = file_->Size();
  uint64_t pos = 0;
  std::string buffer;
  size_t buffer_base = 0;  // File position of buffer[0].
  while (pos < file_size) {
    // Ensure the buffer holds a full record starting at pos.
    const size_t in_buf = pos - buffer_base;
    if (in_buf >= buffer.size() || buffer.size() - in_buf < 4) {
      LIQUID_RETURN_NOT_OK(file_->ReadAt(pos, kScanChunkBytes, &buffer));
      buffer_base = pos;
    }
    Slice cursor(buffer.data() + (pos - buffer_base),
                 buffer.size() - (pos - buffer_base));
    if (cursor.size() < 4) break;
    const uint32_t length = DecodeFixed32(cursor.data());
    if (cursor.size() < 4 + static_cast<size_t>(length)) {
      if (buffer_base + buffer.size() >= file_size) break;  // Corrupt tail.
      // Record spans past the buffer: refill starting at pos.
      LIQUID_RETURN_NOT_OK(
          file_->ReadAt(pos, std::max<size_t>(kScanChunkBytes, 4 + length),
                        &buffer));
      buffer_base = pos;
      cursor = Slice(buffer);
      if (cursor.size() < 4 + static_cast<size_t>(length)) break;
    }
    Record record;
    Status st = DecodeRecord(&cursor, &record);
    if (!st.ok()) break;  // Corrupt tail: truncate here.
    const size_t record_bytes = 4 + length;
    MaybeIndex(record.offset, pos, record.timestamp_ms, record_bytes);
    next_offset_ = record.offset + 1;
    max_timestamp_ms_ = std::max(max_timestamp_ms_, record.timestamp_ms);
    pos += record_bytes;
  }
  end_pos_ = pos;
  if (pos < file_size) {
    LIQUID_RETURN_NOT_OK(file_->Truncate(pos));
  }
  return Status::OK();
}

void LogSegment::MaybeIndex(int64_t offset, uint64_t position,
                            int64_t timestamp_ms, size_t record_bytes) {
  if (index_.empty() || bytes_since_index_ >= config_.index_interval_bytes) {
    index_.push_back(IndexEntry{offset, position});
    if (time_index_.empty() || timestamp_ms > time_index_.back().timestamp_ms) {
      time_index_.push_back(TimeIndexEntry{timestamp_ms, offset});
    }
    bytes_since_index_ = 0;
  }
  bytes_since_index_ += record_bytes;
}

Status LogSegment::Append(const std::vector<Record>& records) {
  if (records.empty()) return Status::OK();
  std::string encoded;
  uint64_t pos = end_pos_;
  for (const Record& record : records) {
    if (record.offset < next_offset_) {
      return Status::InvalidArgument("non-monotonic offset in segment append");
    }
    const size_t before = encoded.size();
    EncodeRecord(record, &encoded);
    MaybeIndex(record.offset, pos, record.timestamp_ms, encoded.size() - before);
    pos += encoded.size() - before;
    next_offset_ = record.offset + 1;
    max_timestamp_ms_ = std::max(max_timestamp_ms_, record.timestamp_ms);
  }
  LIQUID_RETURN_NOT_OK(file_->Append(encoded));
  end_pos_ = pos;
  return Status::OK();
}

Status LogSegment::AppendEncoded(const EncodedBatch& batch) {
  if (batch.empty()) return Status::OK();
  const Slice bytes = batch.bytes();
  const size_t base_pos = batch.frames().front().pos;
  uint64_t pos = end_pos_;
  for (const BatchFrame& frame : batch.frames()) {
    if (frame.offset < next_offset_) {
      return Status::InvalidArgument("non-monotonic offset in segment append");
    }
    MaybeIndex(frame.offset, pos + (frame.pos - base_pos), frame.timestamp_ms,
               frame.len);
    next_offset_ = frame.offset + 1;
    max_timestamp_ms_ = std::max(max_timestamp_ms_, frame.timestamp_ms);
  }
  LIQUID_RETURN_NOT_OK(file_->Append(bytes));
  end_pos_ = pos + bytes.size();
  return Status::OK();
}

Status LogSegment::Flush() {
  const uint64_t target = end_pos_;
  LIQUID_RETURN_NOT_OK(file_->Sync());
  // Advance the watermark monotonically: concurrent every-batch flushes can
  // complete out of order, and a lower racing target must not re-dirty the
  // segment.
  uint64_t prev = synced_pos_.load(std::memory_order_relaxed);
  while (prev < target &&
         // order: release pairs with dirty()'s acquire (see the header).
         !synced_pos_.compare_exchange_weak(prev, target,
                                            std::memory_order_release,
                                            std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Result<EncodedBatch> LogSegment::ReadEncodedPinned(int64_t from_offset,
                                                   size_t max_bytes) const {
  EncodedBatch none;
  if (cached_file_ == nullptr || from_offset >= next_offset_) return none;
  uint64_t pos = LookupPosition(from_offset);
  const PageCache::PinnedPage pin = cached_file_->Pin(pos);
  if (!pin) return none;
  // The span servable from this pin: the pinned page clamped to committed
  // segment bytes (the cached tail page can run ahead of end_pos_ only in
  // recovery scenarios; never serve past the committed end).
  const uint64_t page_end =
      std::min<uint64_t>(pin.file_offset + pin.bytes->size(), end_pos_);
  std::vector<BatchFrame> frames;
  frames.reserve(
      static_cast<size_t>(page_end > pos ? page_end - pos : 0) / kMinFrameBytes +
      1);
  size_t gathered = 0;
  while (pos + 4 <= page_end) {
    const size_t in_page = static_cast<size_t>(pos - pin.file_offset);
    Slice cursor(pin.bytes->data() + in_page,
                 static_cast<size_t>(page_end - pos));
    const uint32_t length = DecodeFixed32(cursor.data());
    if (pos + 4 + length > page_end) break;  // Record crosses the page edge.
    RecordFrameHeader header;
    LIQUID_RETURN_NOT_OK(
        DecodeRecordHeader(cursor, &header, /*verify_crc=*/true));
    pos += header.encoded_size;
    if (header.offset < from_offset) continue;
    if (gathered > 0 && gathered + header.encoded_size > max_bytes) break;
    BatchFrame frame;
    frame.offset = header.offset;
    frame.timestamp_ms = header.timestamp_ms;
    frame.leader_epoch = header.leader_epoch;
    frame.traced = header.traced;
    frame.is_control = header.is_control;
    frame.pos = in_page;
    frame.len = header.encoded_size;
    frames.push_back(frame);
    gathered += header.encoded_size;
    if (gathered >= max_bytes) break;
  }
  // No complete qualifying record inside the pinned page: let the caller
  // fall back to the copying path (which guarantees at least one record).
  if (frames.empty()) return none;
  return EncodedBatch::FromParts(pin.bytes, std::move(frames));
}

Status LogSegment::ReadEncoded(int64_t from_offset, size_t max_bytes,
                               std::string* buf,
                               std::vector<BatchFrame>* frames) const {
  if (from_offset >= next_offset_) return Status::OK();
  uint64_t pos = LookupPosition(from_offset);
  // The gather loop stops once max_bytes accumulate (or the segment ends), so
  // both outputs can be reserved up front instead of regrowing per frame.
  const size_t bound =
      static_cast<size_t>(std::min<uint64_t>(max_bytes, end_pos_ - pos));
  buf->reserve(buf->size() + bound);
  frames->reserve(frames->size() + bound / kMinFrameBytes + 1);
  size_t gathered = 0;
  std::string buffer;
  uint64_t buffer_base = 0;
  bool have_buffer = false;
  while (pos < end_pos_) {
    if (!have_buffer || pos < buffer_base ||
        pos - buffer_base + 4 > buffer.size()) {
      LIQUID_RETURN_NOT_OK(file_->ReadAt(pos, kScanChunkBytes, &buffer));
      buffer_base = pos;
      have_buffer = true;
      if (buffer.size() < 4) break;
    }
    Slice cursor(buffer.data() + (pos - buffer_base),
                 buffer.size() - (pos - buffer_base));
    const uint32_t length = DecodeFixed32(cursor.data());
    if (cursor.size() < 4 + static_cast<size_t>(length)) {
      LIQUID_RETURN_NOT_OK(file_->ReadAt(
          pos, std::max<size_t>(kScanChunkBytes, 4 + length), &buffer));
      buffer_base = pos;
      cursor = Slice(buffer);
      if (cursor.size() < 4 + static_cast<size_t>(length)) {
        return Status::Corruption("segment read hit truncated record");
      }
    }
    RecordFrameHeader header;
    LIQUID_RETURN_NOT_OK(
        DecodeRecordHeader(cursor, &header, /*verify_crc=*/true));
    pos += header.encoded_size;
    if (header.offset < from_offset) continue;
    if (gathered > 0 && gathered + header.encoded_size > max_bytes) break;
    BatchFrame frame;
    frame.offset = header.offset;
    frame.timestamp_ms = header.timestamp_ms;
    frame.leader_epoch = header.leader_epoch;
    frame.traced = header.traced;
    frame.is_control = header.is_control;
    frame.pos = buf->size();
    frame.len = header.encoded_size;
    buf->append(cursor.data(), header.encoded_size);
    frames->push_back(frame);
    gathered += header.encoded_size;
    if (gathered >= max_bytes) break;
  }
  return Status::OK();
}

uint64_t LogSegment::LookupPosition(int64_t target_offset) const {
  if (index_.empty()) return 0;
  // Greatest entry with entry.offset <= target_offset.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), target_offset,
      [](int64_t target, const IndexEntry& e) { return target < e.offset; });
  if (it == index_.begin()) return 0;
  --it;
  return it->position;
}

Status LogSegment::Read(int64_t from_offset, size_t max_bytes,
                        std::vector<Record>* out) const {
  if (from_offset >= next_offset_) return Status::OK();
  uint64_t pos = LookupPosition(from_offset);
  size_t gathered = 0;
  std::string buffer;
  uint64_t buffer_base = 0;
  bool have_buffer = false;
  while (pos < end_pos_) {
    if (!have_buffer || pos < buffer_base ||
        pos - buffer_base + 4 > buffer.size()) {
      LIQUID_RETURN_NOT_OK(file_->ReadAt(pos, kScanChunkBytes, &buffer));
      buffer_base = pos;
      have_buffer = true;
      if (buffer.size() < 4) break;
    }
    Slice cursor(buffer.data() + (pos - buffer_base),
                 buffer.size() - (pos - buffer_base));
    const uint32_t length = DecodeFixed32(cursor.data());
    if (cursor.size() < 4 + static_cast<size_t>(length)) {
      LIQUID_RETURN_NOT_OK(file_->ReadAt(
          pos, std::max<size_t>(kScanChunkBytes, 4 + length), &buffer));
      buffer_base = pos;
      cursor = Slice(buffer);
      if (cursor.size() < 4 + static_cast<size_t>(length)) {
        return Status::Corruption("segment read hit truncated record");
      }
    }
    Record record;
    LIQUID_RETURN_NOT_OK(DecodeRecord(&cursor, &record));
    const size_t record_bytes = 4 + length;
    pos += record_bytes;
    if (record.offset < from_offset) continue;
    if (gathered > 0 && gathered + record_bytes > max_bytes) break;
    out->push_back(std::move(record));
    gathered += record_bytes;
    if (gathered >= max_bytes) break;
  }
  return Status::OK();
}

Result<int64_t> LogSegment::OffsetForTimestamp(int64_t ts_ms) const {
  // The sparse time index narrows the scan; then scan records for precision.
  int64_t start = base_offset_;
  auto it = std::upper_bound(time_index_.begin(), time_index_.end(), ts_ms,
                             [](int64_t target, const TimeIndexEntry& e) {
                               return target < e.timestamp_ms;
                             });
  if (it != time_index_.begin()) {
    --it;
    start = it->offset;
  }
  std::vector<Record> records;
  int64_t cursor = start;
  while (cursor < next_offset_) {
    records.clear();
    LIQUID_RETURN_NOT_OK(Read(cursor, kScanChunkBytes, &records));
    if (records.empty()) break;
    for (const Record& record : records) {
      if (record.timestamp_ms >= ts_ms) return record.offset;
    }
    cursor = records.back().offset + 1;
  }
  return Status::NotFound("no record at or after timestamp");
}

Status LogSegment::Drop() {
  file_.reset();
  return disk_->Remove(file_name_);
}

}  // namespace liquid::storage
