#include "storage/page_cache.h"

#include <algorithm>
#include <cstring>

namespace liquid::storage {

PageCache::PageCache(PageCacheConfig config, Clock* clock)
    : config_(config), clock_(clock) {}

uint64_t PageCache::NewFileId() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_file_id_++;
}

void PageCache::Touch(Page* page) {
  lru_.erase(page->lru_it);
  lru_.push_front(page->key);
  page->lru_it = lru_.begin();
}

void PageCache::InsertPage(uint64_t key, std::string bytes, int64_t write_ms) {
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    bytes_cached_ -= it->second.bytes->size();
    // Replace the buffer wholesale (never mutate): outstanding pins keep the
    // old buffer alive and see a frozen snapshot.
    it->second.bytes = std::make_shared<std::string>(std::move(bytes));
    if (write_ms != 0) {
      it->second.written = true;
      it->second.last_write_ms = std::max(it->second.last_write_ms, write_ms);
    }
    bytes_cached_ += it->second.bytes->size();
    Touch(&it->second);
    return;
  }
  Page page;
  page.key = key;
  page.written = write_ms != 0;
  page.last_write_ms = write_ms;
  bytes_cached_ += bytes.size();
  page.bytes = std::make_shared<std::string>(std::move(bytes));
  lru_.push_front(key);
  page.lru_it = lru_.begin();
  pages_.emplace(key, std::move(page));
  EvictIfNeeded();
}

void PageCache::EvictIfNeeded() {
  const int64_t now = clock_->NowMs();
  // Pass 0 evicts only clean (flushed) pages, preserving the freshly written
  // head of the log in RAM; pass 1 force-evicts dirty pages if still over
  // capacity (the OS would block on writeback here).
  for (int pass = 0; pass < 2 && bytes_cached_ > config_.capacity_bytes; ++pass) {
    const bool forced = pass == 1;
    auto it = lru_.end();
    while (bytes_cached_ > config_.capacity_bytes && it != lru_.begin()) {
      --it;
      auto pit = pages_.find(*it);
      if (pit == pages_.end()) {
        it = lru_.erase(it);
        continue;
      }
      Page& page = pit->second;
      const bool dirty =
          page.written && now - page.last_write_ms < config_.flush_after_ms;
      if (dirty && !forced) continue;
      if (dirty) ++forced_evictions_;
      bytes_cached_ -= page.bytes->size();
      pages_.erase(pit);
      it = lru_.erase(it);
      ++evictions_;
    }
  }
}

Status PageCache::Read(uint64_t file_id, const File& file, uint64_t offset,
                       size_t n, std::string* out) {
  out->clear();
  if (n == 0) return Status::OK();
  const uint64_t file_size = file.Size();
  if (offset >= file_size) return Status::OK();
  n = std::min<uint64_t>(n, file_size - offset);
  out->reserve(n);

  const size_t page_size = config_.page_size;
  uint64_t page_no = offset / page_size;
  const uint64_t last_page = (offset + n - 1) / page_size;

  while (page_no <= last_page) {
    const uint64_t key = MakeKey(file_id, page_no);
    // Holding a reference pins the buffer: NoteAppend sees use_count() > 1
    // and clones instead of mutating, so copying outside the lock is safe.
    std::shared_ptr<const std::string> page_bytes;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pages_.find(key);
      if (it != pages_.end()) {
        page_bytes = it->second.bytes;
        Touch(&it->second);
        ++hits_;
      } else {
        ++misses_;
      }
    }
    if (!page_bytes) {
      // Miss: fetch this page plus read-ahead in one sequential disk read
      // (single seek), as the OS would.
      const int ahead = std::max(1, config_.readahead_pages);
      const uint64_t fetch_bytes = static_cast<uint64_t>(ahead) * page_size;
      std::string chunk;
      LIQUID_RETURN_NOT_OK(file.ReadAt(page_no * page_size, fetch_bytes, &chunk));
      if (chunk.empty()) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (uint64_t i = 0; i * page_size < chunk.size(); ++i) {
          const size_t begin = i * page_size;
          const size_t len = std::min(page_size, chunk.size() - begin);
          InsertPage(MakeKey(file_id, page_no + i), chunk.substr(begin, len), 0);
        }
      }
      page_bytes = std::make_shared<const std::string>(
          chunk.substr(0, std::min<size_t>(page_size, chunk.size())));
    }
    // Copy the requested byte range out of this page.
    const uint64_t page_start = page_no * page_size;
    const uint64_t want_begin = std::max<uint64_t>(offset, page_start);
    const uint64_t want_end =
        std::min<uint64_t>(offset + n, page_start + page_bytes->size());
    if (want_begin >= want_end) break;
    out->append(page_bytes->data() + (want_begin - page_start),
                want_end - want_begin);
    ++page_no;
  }
  return Status::OK();
}

PageCache::PinnedPage PageCache::Pin(uint64_t file_id, uint64_t offset) {
  const uint64_t page_no = offset / config_.page_size;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(MakeKey(file_id, page_no));
  if (it == pages_.end()) return PinnedPage{};
  Touch(&it->second);
  ++hits_;
  return PinnedPage{it->second.bytes, page_no * config_.page_size};
}

void PageCache::NoteAppend(uint64_t file_id, uint64_t offset, const Slice& data) {
  if (data.empty()) return;
  const size_t page_size = config_.page_size;
  const int64_t now = clock_->NowMs();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t pos = 0;
  while (pos < data.size()) {
    const uint64_t abs = offset + pos;
    const uint64_t page_no = abs / page_size;
    const uint64_t page_start = page_no * page_size;
    const size_t in_page_off = static_cast<size_t>(abs - page_start);
    const size_t len =
        std::min<size_t>(page_size - in_page_off, data.size() - pos);

    const uint64_t key = MakeKey(file_id, page_no);
    auto it = pages_.find(key);
    if (it == pages_.end()) {
      Page page;
      page.key = key;
      page.written = true;
      page.last_write_ms = now;
      lru_.push_front(key);
      page.lru_it = lru_.begin();
      it = pages_.emplace(key, std::move(page)).first;
    } else {
      it->second.written = true;
      it->second.last_write_ms = now;
      Touch(&it->second);
    }
    Page& page = it->second;
    if (!page.bytes) {
      page.bytes = std::make_shared<std::string>();
    } else if (page.bytes.use_count() > 1) {
      // Copy-on-extend: a pin (or an in-flight Read copy) holds this buffer,
      // so never mutate it in place — clone first, bounded by page_size.
      // The use_count() check is race-free: new references are only taken
      // under mu_, which we hold; a stale count can only be too high (a
      // reader concurrently dropping its reference), which merely causes a
      // harmless extra clone.
      page.bytes = std::make_shared<std::string>(*page.bytes);
    }
    std::string& buf = *page.bytes;
    if (buf.size() < in_page_off + len) {
      bytes_cached_ += in_page_off + len - buf.size();
      buf.resize(in_page_off + len);
    }
    std::memcpy(buf.data() + in_page_off, data.data() + pos, len);
    pos += len;
  }
  EvictIfNeeded();
}

void PageCache::Invalidate(uint64_t file_id, uint64_t from_offset) {
  const uint64_t first_page = from_offset / config_.page_size;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pages_.begin(); it != pages_.end();) {
    const uint64_t fid = it->first >> 40;
    const uint64_t page_no = it->first & ((1ull << 40) - 1);
    if (fid == file_id && page_no >= first_page) {
      bytes_cached_ -= it->second.bytes->size();
      lru_.erase(it->second.lru_it);
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t PageCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
int64_t PageCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
int64_t PageCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}
int64_t PageCache::forced_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return forced_evictions_;
}
size_t PageCache::bytes_cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_cached_;
}

CachedFile::CachedFile(std::unique_ptr<File> base, PageCache* cache)
    : base_(std::move(base)), cache_(cache), file_id_(cache->NewFileId()) {}

Status CachedFile::Append(const Slice& data) {
  const uint64_t offset = base_->Size();
  LIQUID_RETURN_NOT_OK(base_->Append(data));
  cache_->NoteAppend(file_id_, offset, data);
  return Status::OK();
}

Status CachedFile::ReadAt(uint64_t offset, size_t n, std::string* out) const {
  return cache_->Read(file_id_, *base_, offset, n, out);
}

uint64_t CachedFile::Size() const { return base_->Size(); }

Status CachedFile::Sync() { return base_->Sync(); }

Status CachedFile::Truncate(uint64_t size) {
  LIQUID_RETURN_NOT_OK(base_->Truncate(size));
  cache_->Invalidate(file_id_, size);
  return Status::OK();
}

}  // namespace liquid::storage
