#include "storage/record_batch.h"

#include <utility>

namespace liquid::storage {

EncodedBatch EncodedBatch::Encode(const std::vector<Record>& records) {
  // liquid-lint: allow(hot-alloc): one shared buffer per batch is the encode-once design; reserved to the exact encoded size just below.
  auto buffer = std::make_shared<std::string>();
  size_t total = 0;
  for (const Record& record : records) total += record.EncodedSize();
  buffer->reserve(total);

  std::vector<BatchFrame> frames;
  frames.reserve(records.size());
  for (const Record& record : records) {
    BatchFrame frame;
    frame.offset = record.offset;
    frame.timestamp_ms = record.timestamp_ms;
    frame.leader_epoch = record.leader_epoch;
    frame.traced = record.traced();
    frame.is_control = record.is_control;
    frame.pos = buffer->size();
    EncodeRecord(record, buffer.get());
    frame.len = buffer->size() - frame.pos;
    frames.push_back(frame);
  }

  EncodedBatch batch;
  batch.buffer_ = std::move(buffer);
  batch.frames_ = std::move(frames);
  return batch;
}

EncodedBatch EncodedBatch::FromParts(std::shared_ptr<const std::string> buffer,
                                     std::vector<BatchFrame> frames) {
  EncodedBatch batch;
  batch.buffer_ = std::move(buffer);
  batch.frames_ = std::move(frames);
  return batch;
}

size_t EncodedBatch::size_bytes() const {
  if (frames_.empty()) return 0;
  return frames_.back().pos + frames_.back().len - frames_.front().pos;
}

Slice EncodedBatch::bytes() const {
  if (frames_.empty() || buffer_ == nullptr) return Slice();
  return Slice(buffer_->data() + frames_.front().pos, size_bytes());
}

Status EncodedBatch::DecodeAll(std::vector<Record>* out) const {
  Slice input = bytes();
  while (!input.empty()) {
    Record record;
    LIQUID_RETURN_NOT_OK(DecodeRecord(&input, &record));
    out->push_back(std::move(record));
  }
  return Status::OK();
}

Result<Record> EncodedBatch::DecodeFrame(size_t i) const {
  if (i >= frames_.size()) return Status::OutOfRange("frame index");
  Slice input(buffer_->data() + frames_[i].pos, frames_[i].len);
  Record record;
  LIQUID_RETURN_NOT_OK(DecodeRecord(&input, &record));
  return record;
}

void EncodedBatch::TrimToOffset(int64_t bound) {
  while (!frames_.empty() && frames_.back().offset >= bound) {
    frames_.pop_back();
  }
}

void EncodedBatch::SliceFrom(int64_t offset) {
  size_t keep = 0;
  while (keep < frames_.size() && frames_[keep].offset < offset) ++keep;
  if (keep > 0) frames_.erase(frames_.begin(), frames_.begin() + keep);
}

}  // namespace liquid::storage
