#ifndef LIQUID_STORAGE_RECORD_BATCH_H_
#define LIQUID_STORAGE_RECORD_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/record.h"

namespace liquid::storage {

/// Framing of one record inside an EncodedBatch buffer: where its bytes live
/// plus the header fields hot paths need (offset clamping, epoch caching,
/// trace sampling) without decoding the payload.
struct BatchFrame {
  int64_t offset = -1;
  int64_t timestamp_ms = 0;
  int32_t leader_epoch = -1;
  bool traced = false;
  bool is_control = false;
  /// Byte position of the frame inside the batch buffer.
  size_t pos = 0;
  /// Frame length in bytes, including the length prefix.
  size_t len = 0;
};

/// A batch of records encoded once into a shared immutable buffer.
///
/// This is the currency of the broker's encode-once hot path: the leader
/// encodes a produce batch exactly once, appends the same bytes to its own
/// log, forwards them to followers, and serves them to replica fetches —
/// no per-hop re-encode or Record-vector deep copy. Copying an EncodedBatch
/// copies a shared_ptr and a frame vector, never the payload bytes.
///
/// Frames always describe a contiguous span of the buffer, so trimming to a
/// visibility bound (drop trailing frames) and slicing past already-stored
/// offsets (drop leading frames) are O(frames) metadata operations that leave
/// the buffer untouched.
class EncodedBatch {
 public:
  EncodedBatch() = default;

  /// Encodes `records` (offsets/timestamps already assigned) into a fresh
  /// shared buffer.
  static EncodedBatch Encode(const std::vector<Record>& records);

  /// Wraps already-encoded bytes whose framing was parsed elsewhere (e.g.
  /// Log::ReadEncoded). Frames must describe a contiguous ascending span of
  /// `buffer`.
  static EncodedBatch FromParts(std::shared_ptr<const std::string> buffer,
                                std::vector<BatchFrame> frames);

  bool empty() const { return frames_.empty(); }
  size_t record_count() const { return frames_.size(); }

  /// Offset of the first record; -1 when empty.
  int64_t base_offset() const {
    return frames_.empty() ? -1 : frames_.front().offset;
  }
  /// Offset of the last record; -1 when empty.
  int64_t last_offset() const {
    return frames_.empty() ? -1 : frames_.back().offset;
  }

  /// Encoded size of the frame span in bytes.
  size_t size_bytes() const;

  /// The contiguous encoded bytes covering exactly the current frames.
  Slice bytes() const;

  const std::vector<BatchFrame>& frames() const { return frames_; }
  const std::shared_ptr<const std::string>& buffer() const { return buffer_; }

  /// Decodes every frame into `out` (appending). Wire-format round trip;
  /// used by consumer-facing paths and tests.
  Status DecodeAll(std::vector<Record>* out) const;

  /// Decodes the i-th frame only (e.g. to re-emit a traced record's span
  /// without materializing the rest of the batch).
  Result<Record> DecodeFrame(size_t i) const;

  /// Drops trailing frames with offset >= bound (visibility clamp: high
  /// watermark or LSO). The buffer is untouched.
  void TrimToOffset(int64_t bound);

  /// Drops leading frames with offset < offset (follower already has them).
  void SliceFrom(int64_t offset);

 private:
  std::shared_ptr<const std::string> buffer_;
  std::vector<BatchFrame> frames_;
};

}  // namespace liquid::storage

#endif  // LIQUID_STORAGE_RECORD_BATCH_H_
