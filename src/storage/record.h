#ifndef LIQUID_STORAGE_RECORD_H_
#define LIQUID_STORAGE_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace liquid::storage {

/// Producer identity for idempotent publishing (the "exactly-once effort"
/// the paper mentions in §4.3). kNoProducerId means plain at-least-once.
constexpr int64_t kNoProducerId = -1;

/// A message in the commit log (§3.1 "data is divided into messages").
///
/// Records are keyed (possibly with an absent key), carry a timestamp used
/// for metadata-based access and retention, and may be tombstones (value
/// absent), which log compaction uses to delete keys.
struct Record {
  int64_t offset = -1;  // Assigned by the log on append.
  int64_t timestamp_ms = 0;
  std::string key;
  std::string value;
  bool has_key = true;
  bool is_tombstone = false;
  /// Control records are protocol-internal (transaction commit/abort
  /// markers); they occupy offsets but are never delivered to applications.
  bool is_control = false;

  // Idempotent-producer metadata (optional extension).
  int64_t producer_id = kNoProducerId;
  int32_t sequence = -1;
  /// Epoch of the leader that appended this record (KIP-101-style log
  /// reconciliation); -1 before a leader stamps it.
  int32_t leader_epoch = -1;

  // Trace context (observability extension; see common/trace.h and
  // OBSERVABILITY.md). Stamped by the producer when the record is sampled
  // and propagated unchanged through replication, the processing layer and
  // changelogs. trace_id == 0 means untraced: the wire encoding then omits
  // the trace block entirely, so untraced records cost no extra bytes.
  uint64_t trace_id = 0;
  /// Span that last touched the record (the parent of the next hop's span).
  uint64_t span_id = 0;
  /// Microseconds when the record first entered the system (producer clock);
  /// end-to-end latency gauges are derived from it.
  int64_t ingest_us = 0;

  bool traced() const { return trace_id != 0; }

  static Record KeyValue(std::string k, std::string v, int64_t ts_ms = 0) {
    Record r;
    r.key = std::move(k);
    r.value = std::move(v);
    r.timestamp_ms = ts_ms;
    return r;
  }

  static Record ValueOnly(std::string v, int64_t ts_ms = 0) {
    Record r;
    r.has_key = false;
    r.value = std::move(v);
    r.timestamp_ms = ts_ms;
    return r;
  }

  static Record Tombstone(std::string k, int64_t ts_ms = 0) {
    Record r;
    r.key = std::move(k);
    r.is_tombstone = true;
    r.timestamp_ms = ts_ms;
    return r;
  }

  /// Transaction end marker for `pid` ("commit" or "abort" in the value).
  static Record ControlMarker(int64_t pid, bool committed) {
    Record r;
    r.has_key = false;
    r.is_control = true;
    r.producer_id = pid;
    r.value = committed ? "commit" : "abort";
    return r;
  }

  /// On-disk size of this record including framing.
  size_t EncodedSize() const;
};

/// Appends the wire encoding of `record` to *dst. Layout:
///   fixed32 length          (bytes after this field)
///   fixed32 crc             (masked CRC32C of everything after this field)
///   fixed64 offset
///   fixed64 timestamp_ms
///   fixed64 producer_id
///   fixed32 sequence
///   fixed32 leader_epoch
///   byte    attributes      (bit0 tombstone, bit1 has_key, bit2 control,
///                            bit3 traced)
///   [fixed64 trace_id, fixed64 span_id, fixed64 ingest_us — only when the
///    traced bit is set]
///   varint  key_len,  key bytes
///   varint  value_len, value bytes
void EncodeRecord(const Record& record, std::string* dst);

/// Decodes one record from the front of `input`, advancing past it.
/// Returns Corruption on CRC mismatch or truncation; OutOfRange if `input`
/// is empty.
Status DecodeRecord(Slice* input, Record* record);

/// Decodes as many complete records as `input` holds, stopping cleanly at a
/// truncated tail (which fetch responses produce by design).
Status DecodeRecords(Slice input, std::vector<Record>* records);

/// Framing metadata of one encoded record, parsed without materializing the
/// key/value strings. This is what the shared-buffer (encode-once) paths
/// carry per record: enough to index, split at segment boundaries, clamp to
/// visibility bounds and stamp replication epochs, with the payload bytes
/// staying in the shared immutable buffer.
struct RecordFrameHeader {
  int64_t offset = -1;
  int64_t timestamp_ms = 0;
  int32_t leader_epoch = -1;
  bool is_control = false;
  bool traced = false;
  /// Total frame size in bytes, including the length prefix.
  size_t encoded_size = 0;
};

/// Parses the framing header of the record at the front of `input` without
/// copying key/value bytes. When `verify_crc` is set the whole frame is
/// checksummed (same Corruption contract as DecodeRecord).
Status DecodeRecordHeader(Slice input, RecordFrameHeader* header,
                          bool verify_crc);

}  // namespace liquid::storage

#endif  // LIQUID_STORAGE_RECORD_H_
