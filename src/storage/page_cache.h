#ifndef LIQUID_STORAGE_PAGE_CACHE_H_
#define LIQUID_STORAGE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/disk.h"

namespace liquid::storage {

/// Configuration of the explicit page cache that models the OS file-system
/// cache behaviour the paper relies on (§4.1 "anti-caching"): freshly appended
/// log pages stay in RAM and are flushed behind after a configurable timeout;
/// reads at the head of the log therefore hit RAM, while rewind reads miss and
/// pay disk cost, amortized by sequential read-ahead.
struct PageCacheConfig {
  size_t page_size = 4096;
  size_t capacity_bytes = 64ull << 20;  // 64 MiB
  /// Dirty (recently appended) pages are not evictable until this old.
  int64_t flush_after_ms = 1000;
  /// Pages fetched ahead on a read miss (models OS prefetching; §4.1 notes
  /// "after typically a few seconds, successive reads become fast due to
  /// prefetching").
  int readahead_pages = 8;
};

/// Shared page cache over Disk files. Thread-safe.
///
/// Pages are identified by (file_id, page_number); files obtain ids from
/// NewFileId(). Use CachedFile to wrap a File with transparent caching.
class PageCache {
 public:
  /// A refcounted view of one cache-resident page, for zero-copy reads. The
  /// pin keeps `bytes` alive and immutable for as long as it is held: the
  /// append path never mutates a pinned buffer in place (it clones the page
  /// first — copy-on-extend), and eviction/invalidation only drop the
  /// cache's own reference. `file_offset` is the file position of the
  /// buffer's first byte.
  struct PinnedPage {
    std::shared_ptr<const std::string> bytes;
    uint64_t file_offset = 0;
    explicit operator bool() const { return bytes != nullptr; }
  };

  PageCache(PageCacheConfig config, Clock* clock);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  uint64_t NewFileId();

  /// Reads [offset, offset+n) of `file`, serving from cache where possible.
  /// Misses read from disk with read-ahead and populate the cache.
  Status Read(uint64_t file_id, const File& file, uint64_t offset, size_t n,
              std::string* out);

  /// Pins the resident page containing byte `offset` of `file_id`; returns an
  /// empty pin on a cache miss (callers fall back to the copying Read path,
  /// which populates the cache). Counts as a cache hit when it succeeds; a
  /// miss is not counted here because the fallback read counts it.
  PinnedPage Pin(uint64_t file_id, uint64_t offset);

  /// Records bytes just appended to `file` at `offset` so the head of the log
  /// stays in RAM (write path populates the cache, as the OS cache would).
  void NoteAppend(uint64_t file_id, uint64_t offset, const Slice& data);

  /// Drops all pages of `file_id` at or after byte `from_offset` (truncate) or
  /// the whole file (from_offset == 0).
  void Invalidate(uint64_t file_id, uint64_t from_offset = 0);

  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  /// Evictions that had to discard a page younger than flush_after_ms.
  int64_t forced_evictions() const;
  size_t bytes_cached() const;

 private:
  struct Page {
    /// Shared so Pin() can hand out refcounted views. NoteAppend extends the
    /// buffer in place only while the cache holds the sole reference
    /// (use_count() == 1 under mu_); otherwise it clones first, so a pinned
    /// buffer is immutable for the life of the pin.
    std::shared_ptr<std::string> bytes;
    bool written = false;       // Populated by the append path (vs a read).
    int64_t last_write_ms = 0;  // Meaningful only when written.
    uint64_t key = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  static uint64_t MakeKey(uint64_t file_id, uint64_t page_no) {
    return (file_id << 40) | page_no;
  }

  // All require mu_ held.
  void Touch(Page* page);
  void InsertPage(uint64_t key, std::string bytes, int64_t write_ms);
  void EvictIfNeeded();

  const PageCacheConfig config_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Page> pages_;
  std::list<uint64_t> lru_;  // Front = most recently used.
  size_t bytes_cached_ = 0;
  uint64_t next_file_id_ = 1;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t forced_evictions_ = 0;
};

/// File decorator routing reads through a PageCache and populating it on
/// append, giving log segments the paper's anti-caching behaviour.
class CachedFile : public File {
 public:
  CachedFile(std::unique_ptr<File> base, PageCache* cache);

  Status Append(const Slice& data) override;
  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override;
  uint64_t Size() const override;
  Status Sync() override;
  Status Truncate(uint64_t size) override;

  /// Zero-copy read support: pins the cache-resident page containing byte
  /// `offset`; empty on a cache miss. See PageCache::Pin.
  PageCache::PinnedPage Pin(uint64_t offset) const {
    return cache_->Pin(file_id_, offset);
  }

 private:
  std::unique_ptr<File> base_;
  PageCache* cache_;
  uint64_t file_id_;
};

}  // namespace liquid::storage

#endif  // LIQUID_STORAGE_PAGE_CACHE_H_
