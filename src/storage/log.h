#ifndef LIQUID_STORAGE_LOG_H_
#define LIQUID_STORAGE_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/mpsc_ring.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk.h"
#include "storage/log_segment.h"
#include "storage/page_cache.h"
#include "storage/record.h"
#include "storage/record_batch.h"

namespace liquid::storage {

/// When appended bytes are fsynced to stable storage (DESIGN.md §6c).
enum class SyncMode {
  /// Never fsync from the append path; flush-behind only (the page cache /
  /// OS decide). Fastest, and the pre-sync_mode behaviour — a crash loses
  /// the unflushed tail. This is Kafka's production default.
  kNone,
  /// fsync inline on every append call — the durability baseline the group
  /// mode is measured against (Kafka's flush.messages=1).
  kEveryBatch,
  /// Group commit: a per-log committer thread issues one fsync covering all
  /// batches committed during the previous sync window; appenders that
  /// request durability block until their offsets are covered instead of
  /// paying one fsync per batch.
  kGroup,
};

/// How producer batches reach the append pipeline (DESIGN.md §5a).
enum class Staging {
  /// Producers run the reserve → encode → ordered-commit pipeline themselves,
  /// serializing on append_mu_ for reservation and commit. The byte-identical
  /// reference path.
  kOff,
  /// Producers claim offsets from a bounded lock-free MPSC ring with one CAS,
  /// encode and publish with no mutex touch, and a single drainer (the
  /// committer thread) appends in offset order and advances
  /// committed_offset_/durable_offset_ exactly as the locked path does. A
  /// full ring surfaces ResourceExhausted backpressure (client-side throttle
  /// convention — the broker never sleeps).
  kRing,
};

/// Per-log (i.e. per topic-partition) configuration, mirroring Kafka's
/// segment / retention / compaction knobs the paper discusses in §4.1.
struct LogConfig {
  /// Roll to a new segment once the active one reaches this size.
  size_t segment_bytes = 1 << 20;
  /// Sparse-index granularity inside each segment.
  size_t index_interval_bytes = 4096;
  /// Delete whole segments older than this (<= 0: keep forever).
  int64_t retention_ms = -1;
  /// Delete oldest segments while the log exceeds this size (<= 0: unbounded).
  int64_t retention_bytes = -1;
  /// Keyed topics (changelogs) may be compacted: only the latest record per
  /// key is retained in cleaned segments.
  bool compaction_enabled = false;
  /// During compaction, drop tombstones too (they have already served their
  /// delete-propagation purpose once every consumer saw them).
  bool compaction_drops_tombstones = false;
  /// Durability of the append path; see SyncMode.
  SyncMode sync_mode = SyncMode::kNone;
  /// Producer-side staging of the append path; see Staging.
  Staging staging = Staging::kOff;
  /// Staging ring capacity in records (rounded up to a power of two). Bounds
  /// both producer run-ahead and the drainer's backlog; a batch larger than
  /// this is rejected outright under Staging::kRing.
  size_t staging_capacity = 4096;
};

/// Per-append knobs for Log::AppendBatch.
struct AppendOptions {
  /// Block until the appended offsets are fsynced (only meaningful under
  /// SyncMode::kGroup, where it maps AckMode::kAll onto the group commit;
  /// kEveryBatch syncs inline regardless and kNone never syncs). A non-OK
  /// return then means the batch was NOT acknowledged durable — it may or
  /// may not survive a crash.
  bool await_durability = false;
  /// Under Staging::kRing, return as soon as the batch is claimed, encoded
  /// and published to the ring — before the drainer has appended it. The
  /// returned batch carries final offsets; callers that need to observe the
  /// append result (or the records' visibility via end_offset()) call
  /// AwaitAppended(base, end). Ignored under Staging::kOff, where AppendBatch
  /// is always synchronous. Default off so legacy callers (transaction
  /// markers, compaction tests, Append()) keep their synchronous contract.
  bool async_stage = false;
};

/// Outcome of one compaction pass, reported for the E4 bench.
struct CompactionStats {
  int64_t records_before = 0;
  int64_t records_after = 0;
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
  int segments_cleaned = 0;
};

/// An append-only, segmented, offset-addressed commit log — the storage
/// behind one topic-partition (§3.1 "each topic is realized as a distributed
/// commit log, in which each partition is append-only and keeps an ordered,
/// immutable sequence of messages with a unique identifier called an offset").
///
/// Thread-safe. Appends go through a reserve → encode → ordered-commit
/// pipeline: offsets are reserved under a short-held mutex, record encoding
/// (the CPU-heavy part — CRCs cover the offset field, so encoding can only
/// happen after reservation) runs with no lock held, and writers then commit
/// in reservation order under the exclusive lock. Concurrent appenders thus
/// overlap their encoding work instead of serializing on it. Truncation,
/// retention and compaction drain the pipeline first; reads are shared.
///
/// Under LogConfig::staging == Staging::kRing the reservation mutex leaves
/// the producer path entirely: producers claim offsets from a bounded
/// lock-free MPSC ring (common/mpsc_ring.h) with a single CAS, encode and
/// publish without any lock, and the committer thread drains the ring in
/// offset order, appending and advancing the same watermarks the locked
/// pipeline uses. Acked byte streams are identical between the two modes.
class Log {
 public:
  /// Opens the log stored under `name_prefix` (e.g. "events-0/"), recovering
  /// existing segments. `cache` may be null.
  static Result<std::unique_ptr<Log>> Open(Disk* disk, PageCache* cache,
                                           const std::string& name_prefix,
                                           const LogConfig& config, Clock* clock);

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Stops and joins the group-commit committer thread, syncing any batches
  /// still in flight (best effort; errors are dropped — a closing log has no
  /// one left to acknowledge to).
  ~Log();

  /// Appends records in place, assigning consecutive offsets (and the current
  /// time to records whose timestamp is 0) so the caller sees the assignment.
  /// Returns the offset of the first record.
  Result<int64_t> Append(std::vector<Record>* records);

  /// Like Append, but also returns the records' one-time wire encoding as a
  /// shared immutable buffer (the encode-once hot path: the caller forwards
  /// the same bytes to followers and replica fetches without re-encoding).
  LIQUID_HOT_PATH
  Result<EncodedBatch> AppendBatch(std::vector<Record>* records) {
    return AppendBatch(records, AppendOptions{});
  }

  /// AppendBatch with per-call durability control; see AppendOptions.
  LIQUID_HOT_PATH
  Result<EncodedBatch> AppendBatch(std::vector<Record>* records,
                                   const AppendOptions& options);

  /// All offsets below this have been fsynced (only advanced by kEveryBatch
  /// and kGroup modes; stays 0 under kNone).
  int64_t durable_offset() const;

  /// Blocks until offsets below `end_offset` are durable or the covering
  /// group sync failed; returns that sync's error in the latter case (the
  /// batch is then unacknowledged, not absent). Decoupled from AppendBatch
  /// so callers like Broker::Produce can release their own per-partition
  /// lock first — the whole point of group commit is that other producers
  /// keep filling the sync window while this caller waits. Only meaningful
  /// under SyncMode::kGroup (kNone never advances durability: the call
  /// would block until the log closes).
  Status AwaitDurable(int64_t end_offset) EXCLUDES(append_mu_);

  /// Blocks until the staged batch covering [base_offset, end_offset) has
  /// been appended by the drainer (and, under SyncMode::kEveryBatch, fsynced
  /// — that mode's per-batch durability contract). Returns the append/sync
  /// error if the drainer failed inside that range; the batch is then
  /// unacknowledged, not necessarily absent (same semantics as a failed
  /// group sync). Instant under Staging::kOff, where AppendBatch already
  /// committed before returning.
  Status AwaitAppended(int64_t base_offset, int64_t end_offset)
      EXCLUDES(append_mu_);

  /// Appends records that already carry offsets (replication path: followers
  /// copy the leader's records verbatim, preserving offsets and gaps).
  Status AppendWithOffsets(const std::vector<Record>& records);

  /// Appends a pre-encoded batch carrying offsets (encode-once replication
  /// path: the leader's bytes land on the follower's disk verbatim).
  Status AppendEncoded(const EncodedBatch& batch);

  /// Reads records with offset in [offset, min(end, offset+...)), gathering up
  /// to `max_bytes` of encoded data, at least one record when any exists.
  /// Requests below start_offset() are clamped forward to it (retention may
  /// have deleted the prefix); requests at or past end_offset() return empty.
  Status Read(int64_t offset, size_t max_bytes, std::vector<Record>* out) const;

  /// Like Read, but returns the raw encoded frames as a shared buffer without
  /// materializing Record structs (replica-fetch fast path).
  LIQUID_HOT_PATH
  Status ReadEncoded(int64_t offset, size_t max_bytes, EncodedBatch* out) const;

  /// First offset with a timestamp >= ts_ms (metadata-based rewind, §3.1).
  Result<int64_t> OffsetForTimestamp(int64_t ts_ms) const;

  /// Oldest available offset (advances when retention deletes segments).
  int64_t start_offset() const;
  /// One past the newest offset.
  int64_t end_offset() const;

  uint64_t size_bytes() const;
  int segment_count() const;

  /// Deletes all records with offset >= offset (follower reconciliation after
  /// leader change).
  Status Truncate(int64_t offset);

  /// Applies time/size retention using the injected clock; returns the number
  /// of deleted segments.
  Result<int> ApplyRetention();

  /// Runs one compaction pass over all closed segments (§4.1 "log
  /// compaction"). No-op unless config.compaction_enabled.
  Result<CompactionStats> Compact();

  const LogConfig& config() const { return config_; }

 private:
  /// The staging-drain failure ledger entry: the drainer could not append or
  /// fsync offsets [begin, end); waiters overlapping it get `status`.
  struct AppendFailure {
    int64_t begin = 0;
    int64_t end = 0;
    Status status;
  };

  /// RAII pipeline quiescer for mutators (truncate/retention/compaction and
  /// the follower append paths). Construction drains the append pipeline —
  /// under Staging::kRing it first closes the ring's claim gate so no new
  /// batch can slip in; destruction reopens the ring at next_offset_ and
  /// resyncs the pipeline counters. The caller holds append_mu_ across the
  /// object's whole lifetime (scope order: append_mu_ lock, StagingDrain,
  /// WriterMutexLock — so the destructor runs with append_mu_ held and mu_
  /// released).
  class StagingDrain {
   public:
    // Thread-safety analysis cannot express "append_mu_ held across the
    // object lifetime" on a non-scoped-capability type; the single callers'
    // lock scopes above guarantee it.
    explicit StagingDrain(Log* log) NO_THREAD_SAFETY_ANALYSIS : log_(log) {
      log_->DrainAppendsLocked();
    }
    ~StagingDrain() NO_THREAD_SAFETY_ANALYSIS { log_->ReopenStagingLocked(); }
    StagingDrain(const StagingDrain&) = delete;
    StagingDrain& operator=(const StagingDrain&) = delete;

   private:
    Log* const log_;
  };

  Log(Disk* disk, PageCache* cache, std::string name_prefix, LogConfig config,
      Clock* clock);

  Status OpenExisting();
  Status RollLocked(int64_t base_offset) REQUIRES(mu_);
  LogSegment* ActiveLocked() REQUIRES(mu_) { return segments_.back().get(); }
  Status AppendRecordsLocked(const std::vector<Record>& records) REQUIRES(mu_);
  Status AppendBatchLocked(const EncodedBatch& batch) REQUIRES(mu_);

  /// Blocks until no append reservation is outstanding. Callers hold
  /// append_mu_ through their whole mutation so no new reservation can slip
  /// in, then resync the pipeline counters to next_offset_ when done.
  void DrainAppendsLocked() REQUIRES(append_mu_);

  /// Flushes every dirty segment under the shared log lock. Appends are
  /// excluded (they commit under the exclusive lock) but reads proceed.
  Status SyncDirtySegments() const EXCLUDES(mu_);

  /// Group-commit committer: waits for committed-but-not-durable batches,
  /// syncs them with one fsync per window, publishes durable_offset_.
  /// Under Staging::kRing the same thread is the ring drainer (DrainerLoop)
  /// so staging introduces no new lock level.
  void CommitterLoop();

  /// Staged-append producer path: claim offsets from the ring with one CAS,
  /// encode unlocked, publish with a release store. No append_mu_ touch on
  /// the common path.
  LIQUID_HOT_PATH
  Result<EncodedBatch> AppendBatchStaged(std::vector<Record>* records,
                                         const AppendOptions& options);

  /// Ring drainer body (the committer thread under Staging::kRing): consumes
  /// published runs in offset order, appends them, advances
  /// committed_offset_ (and durable_offset_ per SyncMode), records failures,
  /// and parks on committer_cv_ when idle.
  void DrainerLoop();

  /// One group-commit window (ring mode): snapshot the committed target,
  /// fsync, republish durable_offset_ — same logic as CommitterLoop's body.
  void GroupWindowOnce() EXCLUDES(append_mu_);

  /// Signals the parked drainer after publishing a run. Lock-free on the
  /// saturated common path: only the idle transition takes append_mu_.
  LIQUID_HOT_PATH
  void WakeDrainer();

  /// Reopens the staging ring at next_offset_ after a mutation and resyncs
  /// reserved_offset_/committed_offset_. No-op under Staging::kOff (the
  /// legacy counter resyncs in the mutators handle that path). Called with
  /// append_mu_ held and mu_ free (see StagingDrain).
  void ReopenStagingLocked() REQUIRES(append_mu_) EXCLUDES(mu_);

  /// Records a drainer append/sync failure for offsets [begin, end), keeping
  /// a bounded ledger (oldest entries evicted; their waiters were already
  /// signalled at record time).
  void RecordAppendFailureLocked(int64_t begin, int64_t end, Status status)
      REQUIRES(append_mu_);

  /// The recorded failure overlapping [base, end), or nullptr.
  const AppendFailure* FailureOverlappingLocked(int64_t base,
                                                int64_t end) const
      REQUIRES(append_mu_);

  /// True once AwaitAppended(…, end) may return success: committed (and,
  /// under kEveryBatch, durable) covers `end`.
  bool AppendedLocked(int64_t end) const REQUIRES(append_mu_);

  Disk* const disk_;
  PageCache* const cache_;
  const std::string name_prefix_;
  const LogConfig config_;
  Clock* const clock_;

  /// Guards log structure: one writer (committing appends, truncation,
  /// retention, compaction) or many readers. Acquired after append_mu_ when
  /// both are held.
  mutable SharedMutex mu_;
  std::vector<std::unique_ptr<LogSegment>> segments_ GUARDED_BY(mu_);
  int64_t next_offset_ GUARDED_BY(mu_) = 0;
  int64_t start_offset_ GUARDED_BY(mu_) = 0;

  /// Guards the append pipeline's reservation window. Held only for counter
  /// updates (never across encoding or I/O), so reservation is cheap even
  /// under heavy producer concurrency. All group-commit bookkeeping lives
  /// under this same mutex — the committer thread introduces no new lock
  /// level (DESIGN.md §5a: it snapshots under append_mu_, fsyncs under the
  /// shared mu_, republishes under append_mu_).
  mutable Mutex append_mu_;
  CondVar append_cv_{&append_mu_};
  /// Next offset to hand to a reserving appender.
  int64_t reserved_offset_ GUARDED_BY(append_mu_) = 0;
  /// All appends below this offset have committed (in reservation order).
  int64_t committed_offset_ GUARDED_BY(append_mu_) = 0;

  /// Group-commit state (meaningful for kEveryBatch/kGroup). All offsets
  /// below durable_offset_ are fsynced.
  int64_t durable_offset_ GUARDED_BY(append_mu_) = 0;
  /// A failed group sync attempt covered offsets below sync_failed_upto_;
  /// last_sync_error_ holds why. Waiters in that range fail their ack; the
  /// committer retries once new batches commit past the failed window.
  int64_t sync_failed_upto_ GUARDED_BY(append_mu_) = 0;
  Status last_sync_error_ GUARDED_BY(append_mu_);
  bool committer_stop_ GUARDED_BY(append_mu_) = false;
  /// Wakes the committer when committed_offset_ advances (kGroup), and the
  /// ring drainer when a run is published while it is parked (kRing).
  CondVar committer_cv_{&append_mu_};
  /// Bounded ledger of drainer append/sync failures (Staging::kRing): the
  /// failed range becomes an offset gap (legal in this log) and overlapping
  /// AwaitAppended waiters get the error.
  std::vector<AppendFailure> append_failures_ GUARDED_BY(append_mu_);
  /// Wakes AwaitDurable waiters when durable_offset_ / sync_failed_upto_
  /// move.
  CondVar durable_cv_{&append_mu_};
  /// Started by Open when config.sync_mode == kGroup, joined by ~Log.
  // liquid-lint: allow(guarded-by): written once in Open before the Log is published to any other thread and joined in the destructor after the stop handshake; never accessed concurrently.
  std::thread committer_;

  /// The MPSC staging ring (null under Staging::kOff). Internally
  /// synchronized and lock-free; gate transitions (Close/Reset) run under
  /// append_mu_.
  const std::unique_ptr<MpscRing<EncodedBatch>> staging_;
  /// True while the drainer is parked on committer_cv_. Producers check it
  /// after publishing (behind a seq_cst fence handshake, see WakeDrainer)
  /// so the saturated common path never touches append_mu_.
  std::atomic<bool> drainer_parked_{false};

  /// Hot-path metric handles, resolved once at construction
  /// (OBSERVABILITY.md: hot paths never do registry name lookups).
  Counter* fetch_zero_copy_bytes_;
  Counter* fetch_copied_bytes_;
  Counter* group_commit_batches_;
  Counter* group_commit_syncs_;
  Gauge* staging_depth_;
  Counter* staging_ring_full_;
  Counter* staging_drained_batches_;
  Counter* staging_occupancy_sum_;
  Counter* producer_append_mu_acquisitions_;
  Counter* group_commit_ledger_evictions_;
};

}  // namespace liquid::storage

#endif  // LIQUID_STORAGE_LOG_H_
