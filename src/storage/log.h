#ifndef LIQUID_STORAGE_LOG_H_
#define LIQUID_STORAGE_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk.h"
#include "storage/log_segment.h"
#include "storage/page_cache.h"
#include "storage/record.h"
#include "storage/record_batch.h"

namespace liquid::storage {

/// Per-log (i.e. per topic-partition) configuration, mirroring Kafka's
/// segment / retention / compaction knobs the paper discusses in §4.1.
struct LogConfig {
  /// Roll to a new segment once the active one reaches this size.
  size_t segment_bytes = 1 << 20;
  /// Sparse-index granularity inside each segment.
  size_t index_interval_bytes = 4096;
  /// Delete whole segments older than this (<= 0: keep forever).
  int64_t retention_ms = -1;
  /// Delete oldest segments while the log exceeds this size (<= 0: unbounded).
  int64_t retention_bytes = -1;
  /// Keyed topics (changelogs) may be compacted: only the latest record per
  /// key is retained in cleaned segments.
  bool compaction_enabled = false;
  /// During compaction, drop tombstones too (they have already served their
  /// delete-propagation purpose once every consumer saw them).
  bool compaction_drops_tombstones = false;
};

/// Outcome of one compaction pass, reported for the E4 bench.
struct CompactionStats {
  int64_t records_before = 0;
  int64_t records_after = 0;
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
  int segments_cleaned = 0;
};

/// An append-only, segmented, offset-addressed commit log — the storage
/// behind one topic-partition (§3.1 "each topic is realized as a distributed
/// commit log, in which each partition is append-only and keeps an ordered,
/// immutable sequence of messages with a unique identifier called an offset").
///
/// Thread-safe. Appends go through a reserve → encode → ordered-commit
/// pipeline: offsets are reserved under a short-held mutex, record encoding
/// (the CPU-heavy part — CRCs cover the offset field, so encoding can only
/// happen after reservation) runs with no lock held, and writers then commit
/// in reservation order under the exclusive lock. Concurrent appenders thus
/// overlap their encoding work instead of serializing on it. Truncation,
/// retention and compaction drain the pipeline first; reads are shared.
class Log {
 public:
  /// Opens the log stored under `name_prefix` (e.g. "events-0/"), recovering
  /// existing segments. `cache` may be null.
  static Result<std::unique_ptr<Log>> Open(Disk* disk, PageCache* cache,
                                           const std::string& name_prefix,
                                           const LogConfig& config, Clock* clock);

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Appends records in place, assigning consecutive offsets (and the current
  /// time to records whose timestamp is 0) so the caller sees the assignment.
  /// Returns the offset of the first record.
  Result<int64_t> Append(std::vector<Record>* records);

  /// Like Append, but also returns the records' one-time wire encoding as a
  /// shared immutable buffer (the encode-once hot path: the caller forwards
  /// the same bytes to followers and replica fetches without re-encoding).
  LIQUID_HOT_PATH
  Result<EncodedBatch> AppendBatch(std::vector<Record>* records);

  /// Appends records that already carry offsets (replication path: followers
  /// copy the leader's records verbatim, preserving offsets and gaps).
  Status AppendWithOffsets(const std::vector<Record>& records);

  /// Appends a pre-encoded batch carrying offsets (encode-once replication
  /// path: the leader's bytes land on the follower's disk verbatim).
  Status AppendEncoded(const EncodedBatch& batch);

  /// Reads records with offset in [offset, min(end, offset+...)), gathering up
  /// to `max_bytes` of encoded data, at least one record when any exists.
  /// Requests below start_offset() are clamped forward to it (retention may
  /// have deleted the prefix); requests at or past end_offset() return empty.
  Status Read(int64_t offset, size_t max_bytes, std::vector<Record>* out) const;

  /// Like Read, but returns the raw encoded frames as a shared buffer without
  /// materializing Record structs (replica-fetch fast path).
  LIQUID_HOT_PATH
  Status ReadEncoded(int64_t offset, size_t max_bytes, EncodedBatch* out) const;

  /// First offset with a timestamp >= ts_ms (metadata-based rewind, §3.1).
  Result<int64_t> OffsetForTimestamp(int64_t ts_ms) const;

  /// Oldest available offset (advances when retention deletes segments).
  int64_t start_offset() const;
  /// One past the newest offset.
  int64_t end_offset() const;

  uint64_t size_bytes() const;
  int segment_count() const;

  /// Deletes all records with offset >= offset (follower reconciliation after
  /// leader change).
  Status Truncate(int64_t offset);

  /// Applies time/size retention using the injected clock; returns the number
  /// of deleted segments.
  Result<int> ApplyRetention();

  /// Runs one compaction pass over all closed segments (§4.1 "log
  /// compaction"). No-op unless config.compaction_enabled.
  Result<CompactionStats> Compact();

  const LogConfig& config() const { return config_; }

 private:
  Log(Disk* disk, PageCache* cache, std::string name_prefix, LogConfig config,
      Clock* clock);

  Status OpenExisting();
  Status RollLocked(int64_t base_offset) REQUIRES(mu_);
  LogSegment* ActiveLocked() REQUIRES(mu_) { return segments_.back().get(); }
  Status AppendRecordsLocked(const std::vector<Record>& records) REQUIRES(mu_);
  Status AppendBatchLocked(const EncodedBatch& batch) REQUIRES(mu_);

  /// Blocks until no append reservation is outstanding. Callers hold
  /// append_mu_ through their whole mutation so no new reservation can slip
  /// in, then resync the pipeline counters to next_offset_ when done.
  void DrainAppendsLocked() REQUIRES(append_mu_);

  Disk* const disk_;
  PageCache* const cache_;
  const std::string name_prefix_;
  const LogConfig config_;
  Clock* const clock_;

  /// Guards log structure: one writer (committing appends, truncation,
  /// retention, compaction) or many readers. Acquired after append_mu_ when
  /// both are held.
  mutable SharedMutex mu_;
  std::vector<std::unique_ptr<LogSegment>> segments_ GUARDED_BY(mu_);
  int64_t next_offset_ GUARDED_BY(mu_) = 0;
  int64_t start_offset_ GUARDED_BY(mu_) = 0;

  /// Guards the append pipeline's reservation window. Held only for counter
  /// updates (never across encoding or I/O), so reservation is cheap even
  /// under heavy producer concurrency.
  mutable Mutex append_mu_;
  CondVar append_cv_{&append_mu_};
  /// Next offset to hand to a reserving appender.
  int64_t reserved_offset_ GUARDED_BY(append_mu_) = 0;
  /// All appends below this offset have committed (in reservation order).
  int64_t committed_offset_ GUARDED_BY(append_mu_) = 0;
};

}  // namespace liquid::storage

#endif  // LIQUID_STORAGE_LOG_H_
