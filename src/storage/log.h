#ifndef LIQUID_STORAGE_LOG_H_
#define LIQUID_STORAGE_LOG_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/disk.h"
#include "storage/log_segment.h"
#include "storage/page_cache.h"
#include "storage/record.h"

namespace liquid::storage {

/// Per-log (i.e. per topic-partition) configuration, mirroring Kafka's
/// segment / retention / compaction knobs the paper discusses in §4.1.
struct LogConfig {
  /// Roll to a new segment once the active one reaches this size.
  size_t segment_bytes = 1 << 20;
  /// Sparse-index granularity inside each segment.
  size_t index_interval_bytes = 4096;
  /// Delete whole segments older than this (<= 0: keep forever).
  int64_t retention_ms = -1;
  /// Delete oldest segments while the log exceeds this size (<= 0: unbounded).
  int64_t retention_bytes = -1;
  /// Keyed topics (changelogs) may be compacted: only the latest record per
  /// key is retained in cleaned segments.
  bool compaction_enabled = false;
  /// During compaction, drop tombstones too (they have already served their
  /// delete-propagation purpose once every consumer saw them).
  bool compaction_drops_tombstones = false;
};

/// Outcome of one compaction pass, reported for the E4 bench.
struct CompactionStats {
  int64_t records_before = 0;
  int64_t records_after = 0;
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
  int segments_cleaned = 0;
};

/// An append-only, segmented, offset-addressed commit log — the storage
/// behind one topic-partition (§3.1 "each topic is realized as a distributed
/// commit log, in which each partition is append-only and keeps an ordered,
/// immutable sequence of messages with a unique identifier called an offset").
///
/// Thread-safe: appends/truncation/retention/compaction are exclusive,
/// reads are shared.
class Log {
 public:
  /// Opens the log stored under `name_prefix` (e.g. "events-0/"), recovering
  /// existing segments. `cache` may be null.
  static Result<std::unique_ptr<Log>> Open(Disk* disk, PageCache* cache,
                                           const std::string& name_prefix,
                                           const LogConfig& config, Clock* clock);

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Appends records in place, assigning consecutive offsets (and the current
  /// time to records whose timestamp is 0) so the caller sees the assignment.
  /// Returns the offset of the first record.
  Result<int64_t> Append(std::vector<Record>* records);

  /// Appends records that already carry offsets (replication path: followers
  /// copy the leader's records verbatim, preserving offsets and gaps).
  Status AppendWithOffsets(const std::vector<Record>& records);

  /// Reads records with offset in [offset, min(end, offset+...)), gathering up
  /// to `max_bytes` of encoded data, at least one record when any exists.
  /// Requests below start_offset() are clamped forward to it (retention may
  /// have deleted the prefix); requests at or past end_offset() return empty.
  Status Read(int64_t offset, size_t max_bytes, std::vector<Record>* out) const;

  /// First offset with a timestamp >= ts_ms (metadata-based rewind, §3.1).
  Result<int64_t> OffsetForTimestamp(int64_t ts_ms) const;

  /// Oldest available offset (advances when retention deletes segments).
  int64_t start_offset() const;
  /// One past the newest offset.
  int64_t end_offset() const;

  uint64_t size_bytes() const;
  int segment_count() const;

  /// Deletes all records with offset >= offset (follower reconciliation after
  /// leader change).
  Status Truncate(int64_t offset);

  /// Applies time/size retention using the injected clock; returns the number
  /// of deleted segments.
  Result<int> ApplyRetention();

  /// Runs one compaction pass over all closed segments (§4.1 "log
  /// compaction"). No-op unless config.compaction_enabled.
  Result<CompactionStats> Compact();

  const LogConfig& config() const { return config_; }

 private:
  Log(Disk* disk, PageCache* cache, std::string name_prefix, LogConfig config,
      Clock* clock);

  Status OpenExisting();
  Status RollLocked(int64_t base_offset);
  LogSegment* ActiveLocked() { return segments_.back().get(); }
  Status AppendEncodedLocked(const std::vector<Record>& records);

  Disk* disk_;
  PageCache* cache_;
  const std::string name_prefix_;
  LogConfig config_;
  Clock* clock_;

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<LogSegment>> segments_;  // Ordered by base offset.
  int64_t next_offset_ = 0;
  int64_t start_offset_ = 0;
};

}  // namespace liquid::storage

#endif  // LIQUID_STORAGE_LOG_H_
