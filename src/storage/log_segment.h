#ifndef LIQUID_STORAGE_LOG_SEGMENT_H_
#define LIQUID_STORAGE_LOG_SEGMENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk.h"
#include "storage/page_cache.h"
#include "storage/record.h"
#include "storage/record_batch.h"

namespace liquid::storage {

/// One file of a partition's append-only log, plus its in-memory sparse offset
/// index and time index (§4.1: "brokers maintain an incrementally-built index
/// file that is used to select the chunks of the log at which requested
/// offsets are stored").
///
/// Not internally synchronized: the owning Log serializes appends (exclusive)
/// against reads (shared).
class LogSegment {
 public:
  /// A sparse index entry every `index_interval_bytes` of appended data.
  /// An interval of 0 indexes every record (dense); SIZE_MAX disables the
  /// index entirely (forces scans) — both used by the index ablation bench.
  struct Config {
    size_t index_interval_bytes = 4096;
  };

  /// Opens (creating if absent) the segment whose data file is
  /// "<name_prefix><base_offset, 20 digits>.log". Recovers the index by
  /// scanning existing data, truncating any corrupt tail.
  /// `cache` may be null (reads go straight to disk).
  static Result<std::unique_ptr<LogSegment>> Open(Disk* disk, PageCache* cache,
                                                  const std::string& name_prefix,
                                                  int64_t base_offset,
                                                  const Config& config);

  LogSegment(const LogSegment&) = delete;
  LogSegment& operator=(const LogSegment&) = delete;

  /// Appends records whose offsets are already assigned (ascending, all
  /// >= next_offset()). Gaps are legal: compaction produces them.
  Status Append(const std::vector<Record>& records);

  /// Appends a pre-encoded batch (encode-once path): the batch bytes go to
  /// the file verbatim in one write, and the index is fed from the batch's
  /// frame metadata — no re-encode, no Record materialization.
  Status AppendEncoded(const EncodedBatch& batch);

  /// Like Read, but collects the raw encoded frames into `buf` (appending)
  /// plus their framing into `frames` (positions relative to `buf`), without
  /// materializing key/value strings. CRCs are verified while scanning.
  Status ReadEncoded(int64_t from_offset, size_t max_bytes, std::string* buf,
                     std::vector<BatchFrame>* frames) const;

  /// Zero-copy read: when the bytes holding `from_offset` are resident in the
  /// page cache, returns an EncodedBatch whose buffer IS the pinned page —
  /// frames reference it directly, and the pin keeps the bytes alive and
  /// immutable across later appends, eviction and invalidation (the cache
  /// clones a pinned page before extending it). Returns an empty batch when
  /// the fast path does not apply — no cache, a cache miss, or the first
  /// qualifying record crossing the page edge — so callers fall back to the
  /// copying ReadEncoded. CRCs are verified while parsing, like ReadEncoded.
  Result<EncodedBatch> ReadEncodedPinned(int64_t from_offset,
                                         size_t max_bytes) const;

  /// Collects records with offset >= from_offset until `max_bytes` of encoded
  /// data have been gathered (at least one record if any qualifies).
  Status Read(int64_t from_offset, size_t max_bytes,
              std::vector<Record>* out) const;

  /// First offset whose record timestamp is >= ts_ms, or NotFound.
  Result<int64_t> OffsetForTimestamp(int64_t ts_ms) const;

  int64_t base_offset() const { return base_offset_; }
  /// One past the last appended offset; == base_offset() when empty.
  int64_t next_offset() const { return next_offset_; }
  uint64_t size_bytes() const { return end_pos_; }
  int64_t max_timestamp_ms() const { return max_timestamp_ms_; }
  bool empty() const { return next_offset_ == base_offset_; }
  const std::string& file_name() const { return file_name_; }

  /// fsyncs appended bytes and advances the durable watermark dirty() keys
  /// off. Safe under the owning Log's shared lock: appends (which grow the
  /// segment) hold the exclusive lock, and concurrent flushes race only on
  /// the monotonic watermark.
  Status Flush();

  /// True when bytes appended after the last successful Flush() exist; the
  /// group committer uses this to sync only segments that need it.
  bool dirty() const {
    // order: acquire pairs with Flush()'s release so a caller that sees the
    // watermark also sees the bytes as synced in the backing file.
    return synced_pos_.load(std::memory_order_acquire) < end_pos_;
  }

  /// Removes the backing file. The segment must not be used afterwards.
  Status Drop();

 private:
  LogSegment(Disk* disk, std::unique_ptr<File> file, std::string file_name,
             int64_t base_offset, const Config& config);

  /// Scans existing bytes to rebuild the index; truncates a corrupt tail.
  Status Recover();

  /// Greatest indexed file position whose offset is <= target.
  uint64_t LookupPosition(int64_t target_offset) const;

  void MaybeIndex(int64_t offset, uint64_t position, int64_t timestamp_ms,
                  size_t record_bytes);

  struct IndexEntry {
    int64_t offset;
    uint64_t position;
  };
  struct TimeIndexEntry {
    int64_t timestamp_ms;
    int64_t offset;
  };

  Disk* disk_;
  std::unique_ptr<File> file_;
  /// Set when file_ is a CachedFile (page cache present): the typed handle
  /// the zero-copy read path pins pages through. Owned by file_.
  CachedFile* cached_file_ = nullptr;
  std::string file_name_;
  int64_t base_offset_;
  Config config_;
  /// Bytes [0, synced_pos_) were covered by a successful Flush(). Atomic
  /// because concurrent every-batch appenders flush under the shared log
  /// lock; 0 after open (recovery does not know what the last process
  /// synced, so the first flush conservatively covers the whole file).
  std::atomic<uint64_t> synced_pos_{0};

  std::vector<IndexEntry> index_;
  std::vector<TimeIndexEntry> time_index_;
  size_t bytes_since_index_ = 0;
  int64_t next_offset_;
  uint64_t end_pos_ = 0;
  int64_t max_timestamp_ms_ = 0;
};

}  // namespace liquid::storage

#endif  // LIQUID_STORAGE_LOG_SEGMENT_H_
