#ifndef LIQUID_STORAGE_DISK_H_
#define LIQUID_STORAGE_DISK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace liquid::storage {

/// Latency model for the simulated disk, charged by busy-waiting so that
/// benchmarks observe realistic *relative* costs (a cold random read is orders
/// of magnitude more expensive than a RAM hit) without requiring a real
/// spinning disk. Defaults are zero (no charge) for unit tests.
struct DiskLatencyModel {
  /// Fixed cost per read/write call (seek + request overhead), microseconds.
  int64_t read_seek_us = 0;
  int64_t write_seek_us = 0;
  /// Per-byte transfer cost, nanoseconds.
  int64_t read_byte_ns = 0;
  int64_t write_byte_ns = 0;
  /// Fixed cost per Sync() call (fsync: flush device write cache plus a
  /// journal commit), microseconds. Dominates small synchronous writes on
  /// real disks, which is exactly the effect group commit amortizes.
  int64_t sync_us = 0;

  /// A model shaped like an HDD: ~4 ms seek, ~150 MB/s transfer, scaled down
  /// 50x so benches finish quickly while preserving the RAM-vs-disk gap.
  static DiskLatencyModel ScaledHdd() {
    DiskLatencyModel m;
    m.read_seek_us = 80;   // 4 ms / 50
    m.write_seek_us = 80;
    m.read_byte_ns = 0;    // transfer cost folded into seek at this scale
    m.write_byte_ns = 0;
    m.sync_us = 160;       // 8 ms fsync / 50
    return m;
  }
};

/// A random-access, append-oriented file.
class File {
 public:
  virtual ~File() = default;

  /// Appends bytes at the end of the file.
  virtual Status Append(const Slice& data) = 0;

  /// Reads up to `n` bytes at `offset` into *out (replacing its contents).
  /// Short reads at EOF are not an error; *out may end up smaller than n.
  virtual Status ReadAt(uint64_t offset, size_t n, std::string* out) const = 0;

  virtual uint64_t Size() const = 0;

  /// Durably persists appended data (no-op for the in-memory disk, which is
  /// always "durable" for the lifetime of the Disk object).
  virtual Status Sync() = 0;

  /// Discards all bytes at and after `size`.
  virtual Status Truncate(uint64_t size) = 0;
};

/// A flat namespace of files. The commit log, the KV store and the DFS all
/// store their segments/tables/blocks through this interface so that tests can
/// use the deterministic in-memory disk and examples can use the real FS.
class Disk {
 public:
  virtual ~Disk() = default;

  /// Opens `name`, creating it empty if absent.
  virtual Result<std::unique_ptr<File>> OpenOrCreate(const std::string& name) = 0;

  virtual Status Remove(const std::string& name) = 0;
  virtual bool Exists(const std::string& name) const = 0;

  /// Names of all files whose name starts with `prefix`, sorted.
  virtual Result<std::vector<std::string>> List(const std::string& prefix) const = 0;

  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Sum of file sizes under `prefix` (operational metrics / retention).
  virtual Result<uint64_t> TotalBytes(const std::string& prefix) const;
};

/// In-memory disk with an injectable latency model. The bytes live as long as
/// the MemDisk object, so "process crash" is simulated by destroying the
/// higher-level object (Log, Table, ...) and reopening it on the same disk —
/// or, for durability experiments, by calling SimulateCrash(), which drops
/// every byte that was appended but never covered by a successful Sync().
class MemDisk : public Disk {
 public:
  explicit MemDisk(DiskLatencyModel latency = DiskLatencyModel{})
      : latency_(latency) {}

  Result<std::unique_ptr<File>> OpenOrCreate(const std::string& name) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  Result<std::vector<std::string>> List(const std::string& prefix) const override;
  Status Rename(const std::string& from, const std::string& to) override;

  /// Total bytes read from / written to this disk, for IO accounting.
  int64_t bytes_read() const;
  int64_t bytes_written() const;
  int64_t read_ops() const;
  /// Number of successful File::Sync() calls, for fsync-coalescing benches
  /// and the group-commit tests.
  int64_t sync_ops() const;

  /// Fault injection: called at the top of every File::Sync() with the file
  /// name; a non-OK return fails the sync and leaves the file's durable
  /// watermark where it was. Pass nullptr to clear.
  void SetSyncFaultHook(std::function<Status(const std::string&)> hook);

  /// Truncates every file back to its last successfully synced size —
  /// the power-loss model: unsynced appends vanish, synced bytes survive.
  void SimulateCrash();

 private:
  friend class MemFile;
  struct FileData {
    std::string name;
    std::string bytes;
    /// Bytes [0, synced_bytes) survived the last successful Sync().
    uint64_t synced_bytes = 0;
    mutable std::mutex mu;
  };

  void ChargeRead(size_t n) const;
  void ChargeWrite(size_t n) const;
  Status ChargeSync(const std::string& name) const;

  DiskLatencyModel latency_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileData>> files_;
  std::function<Status(const std::string&)> sync_fault_hook_;
  mutable int64_t bytes_read_ = 0;
  mutable int64_t bytes_written_ = 0;
  mutable int64_t read_ops_ = 0;
  mutable int64_t sync_ops_ = 0;
};

/// Disk backed by a real directory on the local filesystem; file names may
/// contain '/' which map to subdirectories.
class FsDisk : public Disk {
 public:
  explicit FsDisk(std::string root);

  Result<std::unique_ptr<File>> OpenOrCreate(const std::string& name) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  Result<std::vector<std::string>> List(const std::string& prefix) const override;
  Status Rename(const std::string& from, const std::string& to) override;

 private:
  std::string Resolve(const std::string& name) const;

  std::string root_;
};

/// Busy-waits for the given duration; used to charge simulated IO latency.
void SpinFor(int64_t nanos);

}  // namespace liquid::storage

#endif  // LIQUID_STORAGE_DISK_H_
