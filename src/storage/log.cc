#include "storage/log.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "common/fault.h"

namespace liquid::storage {

Log::Log(Disk* disk, PageCache* cache, std::string name_prefix, LogConfig config,
         Clock* clock)
    : disk_(disk),
      cache_(cache),
      name_prefix_(std::move(name_prefix)),
      config_(config),
      clock_(clock),
      staging_(config.staging == Staging::kRing
                   ? std::make_unique<MpscRing<EncodedBatch>>(
                         config.staging_capacity)
                   : nullptr) {
  // Hot-path metric handles, resolved once: registry entries are never
  // erased, so the fetch/append paths skip the name lookup entirely.
  std::string instance = name_prefix_;
  while (!instance.empty() && instance.back() == '/') instance.pop_back();
  MetricsRegistry* global = MetricsRegistry::Default();
  const std::string prefix = "liquid.log." + instance + ".";
  fetch_zero_copy_bytes_ = global->GetCounter(prefix + "fetch_zero_copy_bytes");
  fetch_copied_bytes_ = global->GetCounter(prefix + "fetch_copied_bytes");
  group_commit_batches_ = global->GetCounter(prefix + "group_commit_batches");
  group_commit_syncs_ = global->GetCounter(prefix + "group_commit_syncs");
  staging_depth_ = global->GetGauge(prefix + "staging_depth");
  staging_ring_full_ = global->GetCounter(prefix + "staging_ring_full_total");
  staging_drained_batches_ =
      global->GetCounter(prefix + "staging_drained_batches");
  staging_occupancy_sum_ = global->GetCounter(prefix + "staging_occupancy_sum");
  producer_append_mu_acquisitions_ =
      global->GetCounter(prefix + "producer_append_mu_acquisitions");
  group_commit_ledger_evictions_ =
      global->GetCounter(prefix + "group_commit_ledger_evictions");
}

Log::~Log() {
  {
    MutexLock lock(&append_mu_);
    committer_stop_ = true;
    committer_cv_.Signal();
    durable_cv_.SignalAll();
  }
  if (committer_.joinable()) committer_.join();
}

Result<std::unique_ptr<Log>> Log::Open(Disk* disk, PageCache* cache,
                                       const std::string& name_prefix,
                                       const LogConfig& config, Clock* clock) {
  std::unique_ptr<Log> log(new Log(disk, cache, name_prefix, config, clock));
  LIQUID_RETURN_NOT_OK(log->OpenExisting());
  if (config.sync_mode == SyncMode::kGroup || config.staging == Staging::kRing) {
    // Only group mode (committer) and ring staging (drainer — the same
    // thread, so staging adds no new lock level) pay for a thread;
    // metadata-scale logs (kNone + kOff, the default) start nothing.
    log->committer_ = std::thread([raw = log.get()] { raw->CommitterLoop(); });
  }
  return log;
}

Status Log::OpenExisting() {
  LIQUID_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          disk_->List(name_prefix_));
  std::vector<int64_t> base_offsets;
  for (const auto& name : names) {
    if (name.size() < name_prefix_.size() + 4 ||
        name.compare(name.size() - 4, 4, ".log") != 0) {
      continue;
    }
    const std::string digits =
        name.substr(name_prefix_.size(), name.size() - name_prefix_.size() - 4);
    base_offsets.push_back(std::strtoll(digits.c_str(), nullptr, 10));
  }
  std::sort(base_offsets.begin(), base_offsets.end());

  MutexLock pipeline_lock(&append_mu_);
  WriterMutexLock lock(&mu_);
  LogSegment::Config seg_config{config_.index_interval_bytes};
  for (int64_t base : base_offsets) {
    auto segment =
        LogSegment::Open(disk_, cache_, name_prefix_, base, seg_config);
    if (!segment.ok()) return segment.status();
    segments_.push_back(std::move(segment).value());
  }
  if (segments_.empty()) {
    auto segment = LogSegment::Open(disk_, cache_, name_prefix_, 0, seg_config);
    if (!segment.ok()) return segment.status();
    segments_.push_back(std::move(segment).value());
  }
  start_offset_ = segments_.front()->base_offset();
  next_offset_ = segments_.back()->next_offset();
  reserved_offset_ = next_offset_;
  committed_offset_ = next_offset_;
  // Recovery defines the log's contents: whatever survived on disk is by
  // definition the durable state, so the bookkeeping restarts at the
  // recovered end (acknowledgments were only ever given for synced bytes).
  durable_offset_ = next_offset_;
  // Single-threaded here (the Log has not been published yet), so resetting
  // the ring directly is safe.
  if (staging_ != nullptr) staging_->Reset(next_offset_);
  return Status::OK();
}

Status Log::RollLocked(int64_t base_offset) {
  LogSegment::Config seg_config{config_.index_interval_bytes};
  auto segment =
      LogSegment::Open(disk_, cache_, name_prefix_, base_offset, seg_config);
  if (!segment.ok()) return segment.status();
  // liquid-lint: allow(hot-alloc): segment roll runs once per segment_bytes of appends; amortized to ~zero per record.
  segments_.push_back(std::move(segment).value());
  return Status::OK();
}

Status Log::AppendRecordsLocked(const std::vector<Record>& records) {
  // Large batches are split at segment boundaries so that a single huge
  // append (e.g. a changelog flush) still produces closed segments that
  // retention and compaction can work on.
  size_t i = 0;
  while (i < records.size()) {
    if (ActiveLocked()->size_bytes() >= config_.segment_bytes) {
      LIQUID_RETURN_NOT_OK(RollLocked(records[i].offset));
    }
    uint64_t bytes = ActiveLocked()->size_bytes();
    size_t j = i;
    while (j < records.size()) {
      const uint64_t record_bytes = records[j].EncodedSize();
      if (j > i && bytes + record_bytes > config_.segment_bytes) break;
      bytes += record_bytes;
      ++j;
    }
    const std::vector<Record> chunk(records.begin() + i, records.begin() + j);
    LIQUID_RETURN_NOT_OK(ActiveLocked()->Append(chunk));
    i = j;
  }
  return Status::OK();
}

Status Log::AppendBatchLocked(const EncodedBatch& batch) {
  // Same segment-boundary splitting as AppendRecordsLocked, but by frame:
  // each chunk is a cheap view into the shared buffer, never a re-encode.
  const std::vector<BatchFrame>& frames = batch.frames();
  size_t i = 0;
  while (i < frames.size()) {
    if (ActiveLocked()->size_bytes() >= config_.segment_bytes) {
      LIQUID_RETURN_NOT_OK(RollLocked(frames[i].offset));
    }
    uint64_t bytes = ActiveLocked()->size_bytes();
    size_t j = i;
    while (j < frames.size()) {
      if (j > i && bytes + frames[j].len > config_.segment_bytes) break;
      bytes += frames[j].len;
      ++j;
    }
    const EncodedBatch chunk = EncodedBatch::FromParts(
        batch.buffer(),
        std::vector<BatchFrame>(frames.begin() + i, frames.begin() + j));
    LIQUID_RETURN_NOT_OK(ActiveLocked()->AppendEncoded(chunk));
    i = j;
  }
  return Status::OK();
}

void Log::DrainAppendsLocked() {
  if (staging_ != nullptr) {
    // Close the claim gate first: new producers fail with kClosed (async
    // callers surface backpressure, synchronous ones wait on append_cv_ for
    // the reopen), while already-claimed runs still publish and drain.
    staging_->Close();
    committer_cv_.Signal();
    append_cv_.Wait([this]() REQUIRES(append_mu_) {
      return committed_offset_ >= staging_->reserved();
    });
    return;
  }
  append_cv_.Wait([this]() REQUIRES(append_mu_) {
    return committed_offset_ == reserved_offset_;
  });
}

void Log::ReopenStagingLocked() {
  if (staging_ == nullptr) return;
  int64_t next = 0;
  {
    ReaderMutexLock lock(&mu_);
    next = next_offset_;
  }
  // Quiescence holds: the gate has been closed since DrainAppendsLocked and
  // the caller held append_mu_ throughout, so the ring is empty and no
  // producer can claim until the Reset below reopens it.
  staging_->Reset(next);
  reserved_offset_ = next;
  committed_offset_ = next;
  staging_depth_->Set(0);
  // Wake synchronous producers parked on the closed gate (AppendBatchStaged).
  append_cv_.SignalAll();
}

void Log::RecordAppendFailureLocked(int64_t begin, int64_t end, Status status) {
  // A bounded ledger: waiters are signalled at record time, so an evicted
  // entry can only affect a waiter that was already asleep for 64 further
  // failures — it then reports success for a gap, which the reader observes
  // as missing offsets (legal in this log) rather than corrupt data.
  constexpr size_t kMaxAppendFailures = 64;
  append_failures_.push_back(AppendFailure{begin, end, status});
  if (append_failures_.size() > kMaxAppendFailures) {
    append_failures_.erase(append_failures_.begin());
    // Saturation is observable (DESIGN.md §6c): an evicted entry downgrades
    // its range from "known failed" to "unacknowledged, not absent", so a
    // nonzero eviction count tells the operator which logs ran hot enough
    // for the ledger to wrap.
    group_commit_ledger_evictions_->Increment();
  }
  if (config_.sync_mode == SyncMode::kGroup && sync_failed_upto_ < end) {
    // AwaitDurable waiters covering the failed range must not wait for a
    // durable watermark that can never reach them; fold the failure into the
    // group-commit failed-window convention.
    sync_failed_upto_ = end;
    last_sync_error_ = std::move(status);
  }
  durable_cv_.SignalAll();
}

const Log::AppendFailure* Log::FailureOverlappingLocked(int64_t base,
                                                        int64_t end) const {
  for (const AppendFailure& failure : append_failures_) {
    if (failure.begin < end && failure.end > base) return &failure;
  }
  return nullptr;
}

bool Log::AppendedLocked(int64_t end) const {
  // kEveryBatch's contract is durability on return, so staged waiters hold
  // out for the drainer's per-batch fsync, not just the append.
  if (config_.sync_mode == SyncMode::kEveryBatch) {
    return durable_offset_ >= end;
  }
  return committed_offset_ >= end;
}

Status Log::AwaitAppended(int64_t base_offset, int64_t end_offset) {
  MutexLock lock(&append_mu_);
  // liquid-lint: allow(hot-block): the staged-append acknowledgment wait IS the product semantic — acks=all produce and synchronous legacy callers block until the drainer has landed their offsets; the async produce path never calls this (DESIGN.md section 5a).
  durable_cv_.Wait([this, base_offset, end_offset]() REQUIRES(append_mu_) {
    return AppendedLocked(end_offset) ||
           FailureOverlappingLocked(base_offset, end_offset) != nullptr ||
           committer_stop_;
  });
  if (const AppendFailure* failure =
          FailureOverlappingLocked(base_offset, end_offset)) {
    return failure->status;
  }
  if (AppendedLocked(end_offset)) return Status::OK();
  return Status::Aborted("log closing before the batch was appended");
}

void Log::WakeDrainer() {
  // order: the seq_cst fence pairs with the drainer's fence between setting
  // drainer_parked_ and re-checking the ring (DrainerLoop phase C): either
  // this thread observes parked and signals under the mutex, or the
  // drainer's predicate check observes the freshly published run. Without
  // the fences both sides could read stale values and the wakeup would be
  // lost.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // relaxed: the fence above carries the ordering.
  if (drainer_parked_.load(std::memory_order_relaxed)) {
    MutexLock lock(&append_mu_);
    producer_append_mu_acquisitions_->Increment();
    committer_cv_.Signal();
  }
}

Status Log::SyncDirtySegments() const {
  // Chaos surface (DESIGN.md §7): a failing or stalling fsync. Group-commit
  // windows fold the injected error into the failed-window ledger; every-
  // batch callers see it inline — both must keep the ack contract honest.
  LIQUID_FAULT_POINT("log.sync.before");
  ReaderMutexLock lock(&mu_);
  for (const auto& segment : segments_) {
    if (!segment->dirty()) continue;
    // liquid-lint: allow(snapshot-then-call): fsync deliberately runs under the shared log lock: it must exclude truncation/compaction (which drop segments) but not readers; appenders queue behind at most one sync window at the exclusive-lock gate (DESIGN.md section 6c).
    // liquid-lint: allow(hot-block): reachable from AppendBatch only under sync_mode=every_batch, whose contract IS one blocking fsync per batch (the durability baseline; DESIGN.md section 6c).
    LIQUID_RETURN_NOT_OK(segment->Flush());
  }
  return Status::OK();
}

void Log::CommitterLoop() {
  if (staging_ != nullptr) {
    // Ring staging unifies the drainer with the committer thread: one thread
    // owns ordered commit AND the group-commit window, so no new lock level
    // appears (DESIGN.md section 5a).
    DrainerLoop();
    return;
  }
  while (true) {
    int64_t target = 0;
    bool stopping = false;
    {
      MutexLock lock(&append_mu_);
      committer_cv_.Wait([this]() REQUIRES(append_mu_) {
        // A failed window is not retried until new batches commit past it
        // (retrying an fsync that just failed in a tight loop helps nobody);
        // its waiters were already failed via sync_failed_upto_.
        return committer_stop_ ||
               (committed_offset_ > durable_offset_ &&
                committed_offset_ > sync_failed_upto_);
      });
      stopping = committer_stop_;
      if (committed_offset_ <= durable_offset_) {
        if (stopping) return;
        continue;  // Woken after a failed window with nothing new to sync.
      }
      target = committed_offset_;
    }
    // One fsync covers every batch committed during the previous window
    // (snapshot-then-call: no append_mu_ held across the sync).
    const Status st = SyncDirtySegments();
    {
      MutexLock lock(&append_mu_);
      if (st.ok()) {
        if (durable_offset_ < target) durable_offset_ = target;
        if (sync_failed_upto_ <= target) {
          sync_failed_upto_ = 0;
          last_sync_error_ = Status::OK();
        }
        group_commit_syncs_->Increment();
      } else {
        if (sync_failed_upto_ < target) sync_failed_upto_ = target;
        last_sync_error_ = st;
      }
      durable_cv_.SignalAll();
      if (stopping) return;
    }
  }
}

void Log::GroupWindowOnce() {
  int64_t target = 0;
  {
    MutexLock lock(&append_mu_);
    // A failed window is not retried until new runs commit past it; its
    // waiters were already failed via sync_failed_upto_ (same convention as
    // CommitterLoop).
    if (committed_offset_ <= durable_offset_ ||
        committed_offset_ <= sync_failed_upto_) {
      return;
    }
    target = committed_offset_;
  }
  // One fsync covers every run committed since the previous window
  // (snapshot-then-call: no append_mu_ held across the sync).
  const Status st = SyncDirtySegments();
  MutexLock lock(&append_mu_);
  if (st.ok()) {
    if (durable_offset_ < target) durable_offset_ = target;
    if (sync_failed_upto_ <= target) {
      sync_failed_upto_ = 0;
      last_sync_error_ = Status::OK();
    }
    group_commit_syncs_->Increment();
  } else {
    if (sync_failed_upto_ < target) sync_failed_upto_ = target;
    last_sync_error_ = st;
  }
  durable_cv_.SignalAll();
}

void Log::DrainerLoop() {
  for (;;) {
    int64_t cursor = 0;
    {
      MutexLock lock(&append_mu_);
      // Re-read every round: a mutation (truncate/retention) may have
      // resynced the pipeline while we were parked.
      cursor = committed_offset_;
    }
    // Phase A: consume every published run, appending in offset order and
    // advancing the same watermarks the locked pipeline uses.
    EncodedBatch batch;
    int64_t count = 0;
    while (staging_->TryConsume(cursor, &count, &batch)) {
      staging_drained_batches_->Increment();
      // Occupancy at drain time includes the run being drained (TryConsume
      // already freed its slots).
      staging_occupancy_sum_->Increment(staging_->depth() + count);
      staging_depth_->Set(staging_->depth());
      Status write_status;
      {
        WriterMutexLock lock(&mu_);
        write_status = AppendBatchLocked(batch);
        if (write_status.ok()) next_offset_ = batch.last_offset() + 1;
      }
      const int64_t end = cursor + count;
      {
        // Committed advances even on a write error — the failed range
        // becomes an offset gap (legal in this log) and its waiters get the
        // status from the failure ledger.
        MutexLock lock(&append_mu_);
        committed_offset_ = end;
        reserved_offset_ = end;  // Kept mirrored for diagnostics.
        if (!write_status.ok()) {
          RecordAppendFailureLocked(cursor, end, write_status);
        } else if (config_.sync_mode == SyncMode::kGroup) {
          group_commit_batches_->Increment();
        }
        append_cv_.SignalAll();
        durable_cv_.SignalAll();
      }
      if (write_status.ok() && config_.sync_mode == SyncMode::kEveryBatch) {
        // every_batch's contract is one fsync per batch; the drainer pays it
        // on the producers' behalf before their AwaitAppended returns.
        const Status sync_status = SyncDirtySegments();
        MutexLock lock(&append_mu_);
        if (sync_status.ok()) {
          if (durable_offset_ < end) durable_offset_ = end;
        } else {
          RecordAppendFailureLocked(cursor, end, sync_status);
        }
        durable_cv_.SignalAll();
      }
      cursor = end;
      batch = EncodedBatch();  // Drop the buffer reference promptly.
    }
    // Phase B: group-commit window over the runs just committed.
    if (config_.sync_mode == SyncMode::kGroup) GroupWindowOnce();
    // Phase C: park until a new run is published (or group work appears) or
    // the log stops. Draining before exit keeps the destructor's best-effort
    // sync contract.
    {
      MutexLock lock(&append_mu_);
      if (committer_stop_) {
        if (!staging_->PeekReady(committed_offset_)) return;
        continue;  // A run landed late; drain it before exiting.
      }
      drainer_parked_.store(true, std::memory_order_relaxed);
      // order: the seq_cst fence pairs with the producer-side fence in
      // WakeDrainer — see the lost-wakeup argument there.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      committer_cv_.Wait([this]() REQUIRES(append_mu_) {
        return committer_stop_ || staging_->PeekReady(committed_offset_) ||
               (config_.sync_mode == SyncMode::kGroup &&
                committed_offset_ > durable_offset_ &&
                committed_offset_ > sync_failed_upto_);
      });
      drainer_parked_.store(false, std::memory_order_relaxed);
    }
  }
}

Status Log::AwaitDurable(int64_t end_offset) {
  MutexLock lock(&append_mu_);
  // liquid-lint: allow(hot-block): the durability wait IS the product semantic of acks=all under sync_mode=group — the caller asked to block until its offsets are fsynced, bounded by one committer sync window (DESIGN.md section 6c).
  durable_cv_.Wait([this, end_offset]() REQUIRES(append_mu_) {
    return durable_offset_ >= end_offset || sync_failed_upto_ >= end_offset ||
           committer_stop_;
  });
  if (durable_offset_ >= end_offset) return Status::OK();
  if (sync_failed_upto_ >= end_offset && !last_sync_error_.ok()) {
    return last_sync_error_;
  }
  return Status::Aborted("log closing before the batch became durable");
}

int64_t Log::durable_offset() const {
  MutexLock lock(&append_mu_);
  return durable_offset_;
}

Result<int64_t> Log::Append(std::vector<Record>* records) {
  LIQUID_ASSIGN_OR_RETURN(EncodedBatch batch, AppendBatch(records));
  return batch.base_offset();
}

Result<EncodedBatch> Log::AppendBatch(std::vector<Record>* records,
                                      const AppendOptions& options) {
  if (records->empty()) return Status::InvalidArgument("empty append");
  // Chaos surface: reject/delay the append before any offset is reserved,
  // covering the locked and ring-staged paths alike.
  LIQUID_FAULT_POINT("log.append.before");
  if (staging_ != nullptr) return AppendBatchStaged(records, options);

  // Phase 1: reserve the offset range (short critical section).
  int64_t base;
  {
    MutexLock lock(&append_mu_);
    producer_append_mu_acquisitions_->Increment();
    base = reserved_offset_;
    reserved_offset_ += static_cast<int64_t>(records->size());
  }

  // Phase 2: stamp and encode with no lock held. This is where the CPU time
  // goes (CRC32C over every payload byte), and concurrent appenders overlap
  // here freely.
  const int64_t now = clock_->NowMs();
  int64_t offset = base;
  for (Record& record : *records) {
    record.offset = offset++;
    if (record.timestamp_ms == 0) record.timestamp_ms = now;
  }
  const EncodedBatch batch = EncodedBatch::Encode(*records);

  // Phase 3: wait for our turn, so bytes land on disk in offset order.
  {
    MutexLock lock(&append_mu_);
    producer_append_mu_acquisitions_->Increment();
    // liquid-lint: allow(hot-block): bounded turn-ordering wait of the append pipeline: predecessors commit already-encoded bytes without doing I/O under this lock (see section 5a).
    append_cv_.Wait([this, base]() REQUIRES(append_mu_) {
      return committed_offset_ == base;
    });
  }

  // Phase 4: write under the exclusive log lock.
  Status write_status;
  {
    WriterMutexLock lock(&mu_);
    write_status = AppendBatchLocked(batch);
    if (write_status.ok()) next_offset_ = batch.last_offset() + 1;
  }

  // Phase 5: commit and wake successors. Committed advances even on a write
  // error — otherwise every queued appender behind us would deadlock; the
  // failed range simply becomes an offset gap (gaps are legal in this log).
  const int64_t end = base + static_cast<int64_t>(records->size());
  {
    MutexLock lock(&append_mu_);
    producer_append_mu_acquisitions_->Increment();
    committed_offset_ = end;
    append_cv_.SignalAll();
    if (config_.sync_mode == SyncMode::kGroup && write_status.ok()) {
      group_commit_batches_->Increment();
      committer_cv_.Signal();
    }
  }
  LIQUID_RETURN_NOT_OK(write_status);

  // Phase 6 (durability): every_batch pays one inline fsync per call — the
  // baseline group commit is measured against; group mode blocks only the
  // callers that asked for a durable acknowledgment, on the shared
  // committer's next window.
  switch (config_.sync_mode) {
    case SyncMode::kNone:
      break;
    case SyncMode::kEveryBatch: {
      LIQUID_RETURN_NOT_OK(SyncDirtySegments());
      MutexLock lock(&append_mu_);
      if (durable_offset_ < end) durable_offset_ = end;
      durable_cv_.SignalAll();
      break;
    }
    case SyncMode::kGroup:
      if (options.await_durability) {
        LIQUID_RETURN_NOT_OK(AwaitDurable(end));
      }
      break;
  }
  return batch;
}

Result<EncodedBatch> Log::AppendBatchStaged(std::vector<Record>* records,
                                            const AppendOptions& options) {
  const int64_t n = static_cast<int64_t>(records->size());
  if (n > static_cast<int64_t>(staging_->capacity())) {
    return Status::InvalidArgument("batch exceeds staging ring capacity");
  }

  // Claim the offset range with a single CAS — no mutex on the common path.
  int64_t base = 0;
  for (;;) {
    const auto claim = staging_->Claim(n, &base);
    if (claim == MpscRing<EncodedBatch>::ClaimResult::kOk) break;
    if (options.async_stage) {
      // The broker-produce path: surface backpressure to the client-side
      // throttle/retry convention instead of ever sleeping broker-side.
      staging_ring_full_->Increment();
      return Status::ResourceExhausted(
          claim == MpscRing<EncodedBatch>::ClaimResult::kFull
              ? "staging ring full; retry after backoff"
              : "staging ring gated by a log mutation; retry after backoff");
    }
    // Synchronous-compatibility callers keep their Staging::kOff semantics:
    // they would have blocked on append_mu_, so block here until the drainer
    // frees slots (kFull) or the mutator reopens the gate (kClosed).
    if (claim == MpscRing<EncodedBatch>::ClaimResult::kFull) {
      staging_ring_full_->Increment();
    }
    MutexLock lock(&append_mu_);
    producer_append_mu_acquisitions_->Increment();
    // liquid-lint: allow(hot-block): synchronous-compatibility wait — these callers block exactly where Staging::kOff would have blocked them on append_mu_; the async produce hot path returns ResourceExhausted above instead of waiting.
    append_cv_.Wait([this, n]() REQUIRES(append_mu_) {
      // Wake once the gate is open AND the ring has room for this run (the
      // drainer signals append_cv_ on every commit, the mutator on reopen).
      // Another claimer may still race us to the room; the outer loop
      // re-claims.
      if (committer_stop_) return true;
      if (staging_->closed()) return false;
      return staging_->reserved() + n - staging_->consumed() <=
             static_cast<int64_t>(staging_->capacity());
    });
    if (committer_stop_) {
      return Status::Aborted("log closing before the batch was staged");
    }
  }

  // Stamp and encode with no lock held and final offsets assigned (CRCs
  // cover the offset field) — the same overlap the locked path's phase 2
  // gives concurrent appenders.
  const int64_t now = clock_->NowMs();
  int64_t offset = base;
  for (Record& record : *records) {
    record.offset = offset++;
    if (record.timestamp_ms == 0) record.timestamp_ms = now;
  }
  EncodedBatch batch = EncodedBatch::Encode(*records);

  // Publish the run: one release store makes it visible to the drainer. The
  // stored copy shares the encoded buffer with the returned batch (frames
  // are cheap views).
  staging_->Publish(base, n, batch);
  staging_depth_->Set(staging_->depth());
  WakeDrainer();

  const int64_t end = base + n;
  if (!options.async_stage) {
    // Synchronous compatibility: the caller observes the append result and
    // end_offset() visibility on return, exactly like Staging::kOff.
    LIQUID_RETURN_NOT_OK(AwaitAppended(base, end));
    if (config_.sync_mode == SyncMode::kGroup && options.await_durability) {
      LIQUID_RETURN_NOT_OK(AwaitDurable(end));
    }
  }
  return batch;
}

Status Log::AppendWithOffsets(const std::vector<Record>& records) {
  if (records.empty()) return Status::OK();
  MutexLock pipeline_lock(&append_mu_);
  StagingDrain staging_drain(this);
  WriterMutexLock lock(&mu_);
  if (records.front().offset < next_offset_) {
    return Status::InvalidArgument("offsets overlap existing log");
  }
  LIQUID_RETURN_NOT_OK(AppendRecordsLocked(records));
  next_offset_ = records.back().offset + 1;
  reserved_offset_ = next_offset_;
  committed_offset_ = next_offset_;
  // Follower/replication appends feed the same group-commit window.
  if (config_.sync_mode == SyncMode::kGroup) committer_cv_.Signal();
  return Status::OK();
}

Status Log::AppendEncoded(const EncodedBatch& batch) {
  if (batch.empty()) return Status::OK();
  const int64_t end = batch.last_offset() + 1;
  MutexLock pipeline_lock(&append_mu_);
  StagingDrain staging_drain(this);
  {
    WriterMutexLock lock(&mu_);
    if (batch.base_offset() < next_offset_) {
      return Status::InvalidArgument("offsets overlap existing log");
    }
    LIQUID_RETURN_NOT_OK(AppendBatchLocked(batch));
    next_offset_ = end;
  }
  reserved_offset_ = end;
  committed_offset_ = end;
  if (config_.sync_mode == SyncMode::kEveryBatch) {
    // Follower durability mirrors the leader's ack contract: the replica
    // fetch that lands these bytes advances the follower's LEO, which the
    // leader counts toward an acks=all acknowledgment — so under every-batch
    // sync they must hit stable storage here, or a power-cycle of the full
    // ISR loses acked records when a once-follower wins the next election.
    LIQUID_RETURN_NOT_OK(SyncDirtySegments());
    if (durable_offset_ < end) durable_offset_ = end;
    durable_cv_.SignalAll();
  }
  if (config_.sync_mode == SyncMode::kGroup) committer_cv_.Signal();
  return Status::OK();
}

Status Log::Read(int64_t offset, size_t max_bytes,
                 std::vector<Record>* out) const {
  ReaderMutexLock lock(&mu_);
  offset = std::max(offset, start_offset_);
  if (offset >= next_offset_) return Status::OK();
  // Find the segment containing `offset`: greatest base_offset <= offset.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), offset,
                             [](int64_t target, const auto& seg) {
                               return target < seg->base_offset();
                             });
  if (it != segments_.begin()) --it;
  size_t gathered = 0;
  while (it != segments_.end() && gathered < max_bytes) {
    const size_t before = out->size();
    LIQUID_RETURN_NOT_OK((*it)->Read(offset, max_bytes - gathered, out));
    for (size_t i = before; i < out->size(); ++i) {
      gathered += (*out)[i].EncodedSize();
    }
    if (!out->empty()) offset = out->back().offset + 1;
    ++it;
    // Compaction can leave a segment empty of qualifying records; continue to
    // the next segment in that case (gathered unchanged).
  }
  return Status::OK();
}

Status Log::ReadEncoded(int64_t offset, size_t max_bytes,
                        EncodedBatch* out) const {
  ReaderMutexLock lock(&mu_);
  *out = EncodedBatch();
  offset = std::max(offset, start_offset_);
  if (offset >= next_offset_) return Status::OK();
  auto it = std::upper_bound(segments_.begin(), segments_.end(), offset,
                             [](int64_t target, const auto& seg) {
                               return target < seg->base_offset();
                             });
  if (it != segments_.begin()) --it;
  // Zero-copy fast path: when the requested bytes are resident in the page
  // cache, the response frames reference the pinned page buffer directly —
  // no gather copy. Partial responses are legal (callers loop on the next
  // offset), so one pinned page's worth per call is enough.
  {
    Result<EncodedBatch> pinned = (*it)->ReadEncodedPinned(offset, max_bytes);
    LIQUID_RETURN_NOT_OK(pinned.status());
    if (!pinned->empty()) {
      fetch_zero_copy_bytes_->Increment(
          static_cast<int64_t>(pinned->size_bytes()));
      *out = std::move(pinned).value();
      return Status::OK();
    }
  }
  std::string bytes;
  std::vector<BatchFrame> frames;
  while (it != segments_.end() && bytes.size() < max_bytes) {
    LIQUID_RETURN_NOT_OK(
        (*it)->ReadEncoded(offset, max_bytes - bytes.size(), &bytes, &frames));
    if (!frames.empty()) offset = frames.back().offset + 1;
    ++it;
  }
  fetch_copied_bytes_->Increment(static_cast<int64_t>(bytes.size()));
  // liquid-lint: allow(hot-alloc): one shared immutable buffer per fetch is the encode-once zero-copy contract (DESIGN.md); move of the gathered bytes, not a copy.
  *out = EncodedBatch::FromParts(
      std::make_shared<const std::string>(std::move(bytes)), std::move(frames));
  return Status::OK();
}

Result<int64_t> Log::OffsetForTimestamp(int64_t ts_ms) const {
  ReaderMutexLock lock(&mu_);
  for (const auto& segment : segments_) {
    if (segment->empty()) continue;
    if (segment->max_timestamp_ms() < ts_ms) continue;
    auto result = segment->OffsetForTimestamp(ts_ms);
    if (result.ok()) return result;
    if (!result.status().IsNotFound()) return result.status();
  }
  return Status::NotFound("no record at or after timestamp");
}

int64_t Log::start_offset() const {
  ReaderMutexLock lock(&mu_);
  return start_offset_;
}

int64_t Log::end_offset() const {
  ReaderMutexLock lock(&mu_);
  return next_offset_;
}

uint64_t Log::size_bytes() const {
  ReaderMutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& segment : segments_) total += segment->size_bytes();
  return total;
}

int Log::segment_count() const {
  ReaderMutexLock lock(&mu_);
  return static_cast<int>(segments_.size());
}

Status Log::Truncate(int64_t offset) {
  MutexLock pipeline_lock(&append_mu_);
  StagingDrain staging_drain(this);
  WriterMutexLock lock(&mu_);
  const auto resync = [this]() REQUIRES(append_mu_, mu_) {
    reserved_offset_ = next_offset_;
    committed_offset_ = next_offset_;
  };
  if (offset >= next_offset_) return Status::OK();
  if (offset <= start_offset_) {
    // Everything goes: drop all segments and restart at `offset`.
    for (auto& segment : segments_) LIQUID_RETURN_NOT_OK(segment->Drop());
    segments_.clear();
    next_offset_ = offset;
    start_offset_ = offset;
    resync();
    LIQUID_RETURN_NOT_OK(RollLocked(offset));
    return Status::OK();
  }
  // Drop whole segments with base >= offset.
  while (!segments_.empty() && segments_.back()->base_offset() >= offset) {
    LIQUID_RETURN_NOT_OK(segments_.back()->Drop());
    segments_.pop_back();
  }
  // Partially truncate the now-last segment by rewriting its survivors.
  if (!segments_.empty() && segments_.back()->next_offset() > offset) {
    LogSegment* last = segments_.back().get();
    std::vector<Record> survivors;
    std::vector<Record> chunk;
    int64_t cursor = last->base_offset();
    while (cursor < offset) {
      chunk.clear();
      LIQUID_RETURN_NOT_OK(last->Read(cursor, 1 << 20, &chunk));
      if (chunk.empty()) break;
      bool hit_boundary = false;
      for (Record& record : chunk) {
        if (record.offset >= offset) {
          // Gaps (from compaction) can make the first record of a chunk land
          // beyond the truncation point even though the segment base is below
          // it; stop here or we would spin forever.
          hit_boundary = true;
          break;
        }
        survivors.push_back(std::move(record));
      }
      if (hit_boundary) break;
      cursor = survivors.back().offset + 1;
    }
    const int64_t base = last->base_offset();
    LIQUID_RETURN_NOT_OK(last->Drop());
    segments_.pop_back();
    LogSegment::Config seg_config{config_.index_interval_bytes};
    auto segment = LogSegment::Open(disk_, cache_, name_prefix_, base, seg_config);
    if (!segment.ok()) return segment.status();
    if (!survivors.empty()) {
      LIQUID_RETURN_NOT_OK((*segment)->Append(survivors));
    }
    segments_.push_back(std::move(segment).value());
  }
  if (segments_.empty()) {
    next_offset_ = offset;
    start_offset_ = std::min(start_offset_, offset);
    resync();
    LIQUID_RETURN_NOT_OK(RollLocked(offset));
  }
  next_offset_ = offset;
  resync();
  return Status::OK();
}

Result<int> Log::ApplyRetention() {
  MutexLock pipeline_lock(&append_mu_);
  StagingDrain staging_drain(this);
  WriterMutexLock lock(&mu_);
  const int64_t now = clock_->NowMs();
  int deleted = 0;
  // Never delete the active (last) segment.
  while (segments_.size() > 1) {
    LogSegment* oldest = segments_.front().get();
    bool expired = false;
    if (config_.retention_ms > 0 && !oldest->empty() &&
        now - oldest->max_timestamp_ms() > config_.retention_ms) {
      expired = true;
    }
    if (!expired && config_.retention_bytes > 0) {
      uint64_t total = 0;
      for (const auto& segment : segments_) total += segment->size_bytes();
      if (total > static_cast<uint64_t>(config_.retention_bytes)) expired = true;
    }
    if (!expired) break;
    LIQUID_RETURN_NOT_OK(oldest->Drop());
    segments_.erase(segments_.begin());
    start_offset_ = segments_.front()->base_offset();
    ++deleted;
  }
  return deleted;
}

Result<CompactionStats> Log::Compact() {
  MutexLock pipeline_lock(&append_mu_);
  StagingDrain staging_drain(this);
  WriterMutexLock lock(&mu_);
  CompactionStats stats;
  if (!config_.compaction_enabled || segments_.size() < 2) return stats;

  // Phase 1: build the key -> newest offset map across the WHOLE log (the
  // active segment contributes newest offsets but is never rewritten).
  std::unordered_map<std::string, int64_t> latest;
  for (const auto& segment : segments_) {
    int64_t cursor = segment->base_offset();
    std::vector<Record> chunk;
    while (cursor < segment->next_offset()) {
      chunk.clear();
      LIQUID_RETURN_NOT_OK(segment->Read(cursor, 1 << 20, &chunk));
      if (chunk.empty()) break;
      for (const Record& record : chunk) {
        if (record.has_key) latest[record.key] = record.offset;
      }
      cursor = chunk.back().offset + 1;
    }
  }

  // Phase 2: rewrite every closed segment keeping only live records.
  const size_t closed = segments_.size() - 1;
  std::vector<Record> survivors;
  for (size_t i = 0; i < closed; ++i) {
    LogSegment* segment = segments_[i].get();
    stats.bytes_before += segment->size_bytes();
    int64_t cursor = segment->base_offset();
    std::vector<Record> chunk;
    while (cursor < segment->next_offset()) {
      chunk.clear();
      LIQUID_RETURN_NOT_OK(segment->Read(cursor, 1 << 20, &chunk));
      if (chunk.empty()) break;
      for (Record& record : chunk) {
        ++stats.records_before;
        bool keep = true;
        if (record.has_key) {
          keep = latest[record.key] == record.offset;
          if (keep && record.is_tombstone && config_.compaction_drops_tombstones) {
            keep = false;
          }
        }
        if (keep) survivors.push_back(std::move(record));
      }
      cursor = chunk.back().offset + 1;
    }
    ++stats.segments_cleaned;
  }

  // Phase 3: swap in cleaned segments. (Kafka swaps atomically via .cleaned /
  // .swap files; with the simulated disk we rebuild in place, which is safe
  // because the disk outlives us and the active segment is untouched.)
  const int64_t first_base = segments_.front()->base_offset();
  for (size_t i = 0; i < closed; ++i) {
    LIQUID_RETURN_NOT_OK(segments_[i]->Drop());
  }
  segments_.erase(segments_.begin(), segments_.begin() + closed);

  LogSegment::Config seg_config{config_.index_interval_bytes};
  auto cleaned =
      LogSegment::Open(disk_, cache_, name_prefix_, first_base, seg_config);
  if (!cleaned.ok()) return cleaned.status();
  if (!survivors.empty()) {
    LIQUID_RETURN_NOT_OK((*cleaned)->Append(survivors));
  }
  stats.records_after = static_cast<int64_t>(survivors.size());
  stats.bytes_after = (*cleaned)->size_bytes();
  segments_.insert(segments_.begin(), std::move(cleaned).value());
  start_offset_ = segments_.front()->base_offset();
  return stats;
}

}  // namespace liquid::storage
