#include "messaging/consumer.h"

#include <algorithm>

#include "common/logging.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"

namespace liquid::messaging {

Consumer::Consumer(Cluster* cluster, OffsetManager* offsets,
                   GroupCoordinator* coordinator, std::string member_id,
                   ConsumerConfig config)
    : cluster_(cluster),
      offsets_(offsets),
      coordinator_(coordinator),
      member_id_(std::move(member_id)),
      config_(std::move(config)) {
  MetricsRegistry* global = MetricsRegistry::Default();
  const std::string prefix = "liquid.consumer." + config_.group + ".";
  records_counter_ = global->GetCounter(prefix + "records");
  lag_gauge_ = global->GetGauge(prefix + "lag");
  e2e_latency_us_ = global->GetHistogram(prefix + "e2e_latency_us");
  retry_metrics_ = RetryMetrics::Create(prefix);
}

// A destructor cannot propagate the final auto-commit's Status; users who
// care about the last commit must call Close() explicitly and check it.
Consumer::~Consumer() { LIQUID_IGNORE_ERROR(Close()); }

Status Consumer::Subscribe(const std::vector<std::string>& topics) {
  MutexLock lock(&mu_);
  topics_ = topics;
  auto generation = coordinator_->JoinGroup(config_.group, member_id_, topics);
  if (!generation.ok()) return generation.status();
  return RefreshAssignmentLocked();
}

Status Consumer::RefreshAssignmentLocked() {
  const int64_t current = coordinator_->Generation(config_.group);
  if (current == generation_) return Status::OK();
  LIQUID_ASSIGN_OR_RETURN(GroupAssignment assignment,
                          coordinator_->GetAssignment(config_.group, member_id_));
  generation_ = assignment.generation;
  assignment_ = std::move(assignment.partitions);
  poll_cursor_ = 0;

  std::map<TopicPartition, int64_t> fresh;
  for (const TopicPartition& tp : assignment_) {
    auto kept = positions_.find(tp);
    if (kept != positions_.end()) {
      fresh[tp] = kept->second;  // Still ours: keep the position.
      continue;
    }
    auto committed = offsets_->Fetch(config_.group, tp);
    if (committed.ok()) {
      fresh[tp] = committed->offset;
      continue;
    }
    // No committed offset: start from the earliest or the latest data.
    auto leader = cluster_->LeaderFor(tp);
    if (leader.ok()) {
      auto bounds = (*leader)->OffsetBounds(tp);
      if (bounds.ok()) {
        fresh[tp] = config_.start_from_earliest ? bounds->first : bounds->second;
        continue;
      }
    }
    fresh[tp] = 0;
  }
  positions_ = std::move(fresh);
  return Status::OK();
}

Result<std::vector<ConsumerRecord>> Consumer::Poll(size_t max_records) {
  MutexLock lock(&mu_);
  if (closed_) return Status::FailedPrecondition("consumer closed");
  coordinator_->Heartbeat(config_.group, member_id_);  // Polling = liveness.
  LIQUID_RETURN_NOT_OK(RefreshAssignmentLocked());
  std::vector<ConsumerRecord> out;
  if (assignment_.empty()) return out;
  // Callers pass modest budgets, but cap the upfront reservation anyway so a
  // huge max_records cannot turn into a huge speculative allocation.
  out.reserve(std::min<size_t>(max_records, 1024));

  for (size_t visited = 0;
       visited < assignment_.size() && out.size() < max_records; ++visited) {
    const TopicPartition& tp =
        assignment_[(poll_cursor_ + visited) % assignment_.size()];
    // Unified retry discipline (DESIGN.md §7): a transiently failing
    // partition (leader mid-election, injected Unavailable) gets a short
    // jittered backoff and a fresh LeaderFor — the metadata refresh — instead
    // of silently losing its turn. An exhausted budget defers the partition
    // to the next Poll rather than failing the whole call.
    RetryState retry(config_.retry, cluster_->clock(), Deadline::Infinite(),
                     static_cast<uint64_t>(positions_[tp] + 1) *
                             1099511628211ull +
                         static_cast<uint64_t>(tp.partition),
                     &retry_metrics_);
    Result<FetchResponse> resp = Status::Unavailable("no fetch attempt");
    do {
      auto leader = cluster_->LeaderFor(tp);
      if (leader.ok()) {
        resp = (*leader)->Fetch(tp, positions_[tp], config_.fetch_max_bytes,
                                -1, config_.client_id, config_.read_committed);
      } else {
        resp = leader.status();
      }
    } while (!resp.ok() && retry.ShouldRetry(resp.status()));
    if (!resp.ok()) continue;
    // Same client-side quota contract as the producer: the broker never
    // sleeps; an over-quota consumer serves its own throttle verdict here.
    // liquid-lint: allow(snapshot-then-call): mu_ is the consumer's API lock and the poll is the throttle point; Close/Commit waiting out an in-flight poll is the documented contract.
    // liquid-lint: allow(hot-block): client-side quota contract (section 4.5): the broker never sleeps; an over-quota consumer serves its own throttle verdict here.
    if (resp->throttle_ms > 0) cluster_->clock()->SleepMs(resp->throttle_ms);
    bool took_all = true;
    for (auto& record : resp->records) {
      if (out.size() >= max_records) {
        took_all = false;
        break;
      }
      positions_[tp] = record.offset + 1;
      out.push_back(ConsumerRecord{tp, std::move(record)});
    }
    if (took_all) {
      // Advance past filtered records (control markers, aborted data).
      positions_[tp] = std::max(positions_[tp], resp->next_fetch_offset);
    }
    // Live lag for this partition: committed data not yet consumed. A dead
    // (non-polling) member stops updating these; the lag monitor derives its
    // view from committed offsets instead (see lag_monitor.h).
    const int64_t lag =
        std::max<int64_t>(0, resp->high_watermark - positions_[tp]);
    partition_lag_[tp] = lag;
    auto gauge = partition_lag_gauges_.find(tp);
    if (gauge == partition_lag_gauges_.end()) {
      // liquid-lint: allow(metric-hot-lookup): per-partition gauge names depend on the dynamic assignment; the lookup runs once per newly assigned partition and is cached in partition_lag_gauges_.
      gauge = partition_lag_gauges_
                  .emplace(tp, MetricsRegistry::Default()->GetGauge(
                                   "liquid.consumer." + config_.group +
                                   ".lag." + tp.ToString()))
                  .first;
    }
    gauge->second->Set(lag);
  }
  poll_cursor_ = (poll_cursor_ + 1) % std::max<size_t>(assignment_.size(), 1);
  int64_t total_lag = 0;
  for (const auto& [tp, lag] : partition_lag_) total_lag += lag;
  lag_gauge_->Set(total_lag);
  if (!out.empty()) {
    records_counter_->Increment(static_cast<int64_t>(out.size()));
    const int64_t now_us = cluster_->clock()->NowUs();
    for (const ConsumerRecord& cr : out) {
      // End-to-end latency is measured against the producer's ingest stamp,
      // so it covers the full path: produce -> append -> (replicate) -> fetch.
      if (cr.record.traced() && cr.record.ingest_us > 0) {
        e2e_latency_us_->Record(now_us - cr.record.ingest_us);
      }
    }
  }
  return out;
}

Status Consumer::Commit() {
  return CommitWithAnnotations({});
}

Status Consumer::CommitWithAnnotations(
    const std::map<std::string, std::string>& annotations) {
  MutexLock lock(&mu_);
  for (const TopicPartition& tp : assignment_) {
    OffsetCommit commit;
    commit.offset = positions_[tp];
    commit.annotations = annotations;
    LIQUID_RETURN_NOT_OK(offsets_->Commit(config_.group, tp, std::move(commit)));
  }
  return Status::OK();
}

Status Consumer::Seek(const TopicPartition& tp, int64_t offset) {
  MutexLock lock(&mu_);
  if (std::find(assignment_.begin(), assignment_.end(), tp) ==
      assignment_.end()) {
    return Status::InvalidArgument("partition not assigned: " + tp.ToString());
  }
  positions_[tp] = offset;
  return Status::OK();
}

Status Consumer::SeekToTimestamp(int64_t ts_ms) {
  MutexLock lock(&mu_);
  for (const TopicPartition& tp : assignment_) {
    auto leader = cluster_->LeaderFor(tp);
    if (!leader.ok()) return leader.status();
    auto offset = (*leader)->OffsetForTimestamp(tp, ts_ms);
    if (offset.ok()) {
      positions_[tp] = *offset;
    } else if (offset.status().IsNotFound()) {
      // All data is older: position at the end.
      auto bounds = (*leader)->OffsetBounds(tp);
      if (bounds.ok()) positions_[tp] = bounds->second;
    } else {
      return offset.status();
    }
  }
  return Status::OK();
}

Result<int64_t> Consumer::Position(const TopicPartition& tp) const {
  MutexLock lock(&mu_);
  auto it = positions_.find(tp);
  if (it == positions_.end()) {
    return Status::NotFound("no position for " + tp.ToString());
  }
  return it->second;
}

std::map<TopicPartition, int64_t> Consumer::Positions() const {
  MutexLock lock(&mu_);
  return positions_;
}

Status Consumer::CloseWithoutCommit() {
  MutexLock lock(&mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  return coordinator_->LeaveGroup(config_.group, member_id_);
}

std::vector<TopicPartition> Consumer::Assignment() const {
  MutexLock lock(&mu_);
  return assignment_;
}

Status Consumer::Close() {
  MutexLock lock(&mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  return coordinator_->LeaveGroup(config_.group, member_id_);
}

}  // namespace liquid::messaging
