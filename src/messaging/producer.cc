#include "messaging/producer.h"

#include <atomic>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"

namespace liquid::messaging {

namespace {

std::atomic<int64_t> g_next_producer_id{1};

uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Producer::Producer(Cluster* cluster, ProducerConfig config)
    : cluster_(cluster),
      config_(config),
      records_counter_(
          MetricsRegistry::Default()->GetCounter("liquid.producer.records")),
      throttle_waits_counter_(MetricsRegistry::Default()->GetCounter(
          "liquid.producer.throttle_waits")),
      producer_id_(config.idempotent || !config.transactional_id.empty()
                       ? g_next_producer_id.fetch_add(1)
                       : storage::kNoProducerId) {}

Result<int> Producer::PartitionFor(const std::string& topic,
                                   const storage::Record& record) {
  LIQUID_ASSIGN_OR_RETURN(TopicConfig config, cluster_->GetTopicConfig(topic));
  const int n = config.partitions;
  if (custom_partitioner_) return custom_partitioner_(record, n);
  if (config_.partitioner == PartitionerType::kHashByKey && record.has_key &&
      !record.key.empty()) {
    return static_cast<int>(HashKey(record.key) % static_cast<uint64_t>(n));
  }
  return static_cast<int>(round_robin_[topic]++ % static_cast<uint64_t>(n));
}

Status Producer::Send(const std::string& topic, storage::Record record) {
  // Sampling decision happens exactly once per record, here at the system
  // boundary. Records that already carry a context (a job re-publishing an
  // input's context downstream) are never re-stamped, so one trace id covers
  // the whole derivation chain.
  TraceCollector* tracer = TraceCollector::Default();
  if (!record.traced() && tracer->ShouldSample()) {
    record.trace_id = tracer->NewTraceId();
    record.span_id = tracer->NewSpanId();
    record.ingest_us = cluster_->clock()->NowUs();
  }
  std::vector<storage::Record> to_send;
  TopicPartition tp;
  {
    MutexLock lock(&mu_);
    auto partition = PartitionFor(topic, record);
    if (!partition.ok()) return partition.status();
    tp = TopicPartition{topic, *partition};
    auto& batch = batches_[tp];
    // swap() below hands the capacity to to_send, so re-reserve per fill
    // cycle: one allocation per batch_max_records sends instead of log2(n)
    // regrowths per cycle.
    if (batch.capacity() < config_.batch_max_records) {
      batch.reserve(config_.batch_max_records);
    }
    batch.push_back(std::move(record));
    if (batch.size() < config_.batch_max_records) return Status::OK();
    to_send.swap(batch);
  }
  return SendBatch(tp, std::move(to_send)).status();
}

Status Producer::Flush() {
  std::map<TopicPartition, std::vector<storage::Record>> pending;
  {
    MutexLock lock(&mu_);
    pending.swap(batches_);
  }
  for (auto& [tp, records] : pending) {
    if (records.empty()) continue;
    LIQUID_RETURN_NOT_OK(SendBatch(tp, std::move(records)).status());
  }
  return Status::OK();
}

Status Producer::InitTransactions(TransactionCoordinator* coordinator) {
  if (config_.transactional_id.empty()) {
    return Status::InvalidArgument("no transactional_id configured");
  }
  LIQUID_ASSIGN_OR_RETURN(int64_t pid,
                          coordinator->InitProducer(config_.transactional_id));
  MutexLock lock(&mu_);
  txn_coordinator_ = coordinator;
  producer_id_ = pid;
  next_sequence_.clear();
  return Status::OK();
}

Status Producer::BeginTransaction() {
  TransactionCoordinator* coordinator = nullptr;
  {
    MutexLock lock(&mu_);
    if (txn_coordinator_ == nullptr) {
      return Status::FailedPrecondition("InitTransactions not called");
    }
    if (in_transaction_) {
      return Status::FailedPrecondition("transaction already open");
    }
    coordinator = txn_coordinator_;
  }
  LIQUID_RETURN_NOT_OK(coordinator->Begin(config_.transactional_id));
  MutexLock lock(&mu_);
  in_transaction_ = true;
  return Status::OK();
}

Status Producer::CommitTransaction() {
  TransactionCoordinator* coordinator = nullptr;
  {
    MutexLock lock(&mu_);
    if (!in_transaction_) return Status::FailedPrecondition("no transaction");
    coordinator = txn_coordinator_;
  }
  LIQUID_RETURN_NOT_OK(Flush());
  Status st = coordinator->End(config_.transactional_id, /*commit=*/true);
  MutexLock lock(&mu_);
  in_transaction_ = false;
  return st;
}

Status Producer::AbortTransaction() {
  TransactionCoordinator* coordinator = nullptr;
  {
    MutexLock lock(&mu_);
    if (!in_transaction_) return Status::FailedPrecondition("no transaction");
    coordinator = txn_coordinator_;
  }
  LIQUID_RETURN_NOT_OK(Flush());  // Records land, then get abort-marked.
  Status st = coordinator->End(config_.transactional_id, /*commit=*/false);
  MutexLock lock(&mu_);
  in_transaction_ = false;
  return st;
}

Result<ProduceResponse> Producer::SendBatch(
    const TopicPartition& tp, std::vector<storage::Record> records) {
  if (records.empty()) return Status::InvalidArgument("empty batch");
  const bool sequenced =
      config_.idempotent || !config_.transactional_id.empty();
  int32_t first_sequence = -1;
  int64_t producer_id = storage::kNoProducerId;
  TransactionCoordinator* txn = nullptr;
  {
    MutexLock lock(&mu_);
    if (in_transaction_) txn = txn_coordinator_;
    producer_id = producer_id_;
    if (sequenced) {
      auto it = next_sequence_.find(tp);
      first_sequence = it == next_sequence_.end() ? 0 : it->second;
    }
  }
  if (txn != nullptr) {
    // Register the partition with the coordinator before the first write,
    // outside mu_ (section 5a): the coordinator pointer was snapshotted and
    // registration is idempotent, so a racing Commit/Abort sees either a
    // registered partition with no data or the full write — same as before.
    Status st = txn->AddPartition(config_.transactional_id, tp);
    if (!st.ok()) return st;
  }

  TraceCollector* tracer = TraceCollector::Default();
  const bool tracing = tracer->enabled();
  const int64_t send_start_us = tracing ? cluster_->clock()->NowUs() : 0;

  // Unified retry discipline (DESIGN.md §7). The jitter seed mixes the
  // partition and batch identity so concurrent producers desynchronize
  // without a global RNG; the backoff sleeps live inside RetryState, off
  // every broker thread (client-side backoff convention, §4.5).
  RetryState retry(config_.retry, cluster_->clock(), Deadline::Infinite(),
                   HashKey(tp.topic) + static_cast<uint64_t>(tp.partition) * 31 +
                       static_cast<uint64_t>(first_sequence + 1),
                   &retry_metrics_);
  for (;;) {
    // Resolve the leader through the cache; on a retriable failure the entry
    // was erased below, so this re-resolve is the metadata refresh that keeps
    // a retry from re-sending to a dead leader.
    Broker* leader = nullptr;
    Status last_error;
    {
      MutexLock lock(&mu_);
      auto it = leader_ids_.find(tp);
      if (it != leader_ids_.end()) leader = cluster_->broker(it->second);
    }
    if (leader == nullptr) {
      auto resolved = cluster_->LeaderFor(tp);
      if (resolved.ok()) {
        leader = *resolved;
        const int leader_id = leader->id();  // Snapshot before taking mu_.
        MutexLock lock(&mu_);
        leader_ids_[tp] = leader_id;
      } else {
        last_error = resolved.status();
        if (!retry.ShouldRetry(last_error)) return last_error;
        MutexLock lock(&mu_);
        ++send_retries_;
        if (retry.needs_metadata_refresh()) leader_ids_.erase(tp);
        continue;
      }
    }
    auto resp = leader->Produce(tp, records, config_.acks, producer_id,
                                first_sequence, config_.client_id);
    if (resp.ok()) {
      records_counter_->Increment(static_cast<int64_t>(records.size()));
      if (tracing) {
        // One "produce" span per traced record: producer hand-off to the
        // partition leader, parented on the record's current span so the
        // whole journey chains into one trace tree.
        const int64_t now_us = cluster_->clock()->NowUs();
        for (const storage::Record& record : records) {
          if (!record.traced()) continue;
          tracer->Record(Span{record.trace_id, tracer->NewSpanId(),
                              record.span_id, send_start_us, now_us, "produce",
                              tp.ToString()});
        }
      }
      {
        MutexLock lock(&mu_);
        records_sent_ += static_cast<int64_t>(records.size());
        if (sequenced) {
          next_sequence_[tp] =
              first_sequence + static_cast<int32_t>(records.size());
        }
      }
      // Quota enforcement is client-side (§4.5): the broker reports the
      // throttle in the response instead of sleeping on its request thread,
      // and the producer backs off here before its next send.
      if (resp->throttle_ms > 0) {
        throttle_waits_counter_->Increment();
        // liquid-lint: allow(hot-block): client-side quota contract (section 4.5): the producer serves its own throttle verdict.
        cluster_->clock()->SleepMs(resp->throttle_ms);
      }
      return resp;
    }
    last_error = resp.status();
    // ResourceExhausted is the staging ring's backpressure verdict
    // (LogConfig::staging == ring): the broker never sleeps; RetryState backs
    // off on the producer's thread — same convention as quota throttling.
    // Non-retriable codes and an exhausted budget both land here.
    if (!retry.ShouldRetry(last_error)) return last_error;
    {
      MutexLock lock(&mu_);
      ++send_retries_;
      // NotLeader/Unavailable: drop the cached leader so the next attempt
      // re-reads cluster metadata (satellite: no re-send to a dead leader).
      if (retry.needs_metadata_refresh()) leader_ids_.erase(tp);
    }
  }
}

int64_t Producer::records_sent() const {
  MutexLock lock(&mu_);
  return records_sent_;
}

int64_t Producer::send_retries() const {
  MutexLock lock(&mu_);
  return send_retries_;
}

}  // namespace liquid::messaging
