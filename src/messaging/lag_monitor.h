#ifndef LIQUID_MESSAGING_LAG_MONITOR_H_
#define LIQUID_MESSAGING_LAG_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "messaging/metadata.h"
#include "messaging/offset_manager.h"

namespace liquid::messaging {

class Cluster;

/// Lag of one consumer group on one partition, derived from durable state:
/// the group's last *committed* offset versus the partition leader's high
/// watermark. Because neither side depends on the consumer process being
/// alive, a dead or stuck consumer shows monotonically growing lag here —
/// the primary "is my nearline pipeline keeping up" signal of the paper's
/// operability story (§4.2 offset metadata).
struct GroupPartitionLag {
  TopicPartition tp;
  /// Last committed offset (next offset the group would resume from);
  /// -1 when the group has never committed for this partition.
  int64_t committed = -1;
  /// Leader's high watermark (end of committed data consumers can see).
  int64_t high_watermark = 0;
  /// max(0, high_watermark - committed): records committed to the log that
  /// the group has not yet checkpointed past.
  int64_t lag = 0;
  /// Milliseconds since the group last committed for this partition.
  int64_t checkpoint_age_ms = 0;
};

/// Aggregated lag of one consumer group across all partitions it has
/// committed offsets for.
struct GroupLag {
  std::string group;
  std::vector<GroupPartitionLag> partitions;
  /// Sum of per-partition lags.
  int64_t total_lag = 0;
  /// Staleness of the group's oldest checkpoint (max over partitions).
  int64_t max_checkpoint_age_ms = 0;
};

/// Computes committed-offset lag for every group known to the offset manager
/// and publishes it into MetricsRegistry::Default():
///   liquid.consumer.<group>.lag                  (total, gauge)
///   liquid.consumer.<group>.lag.<topic>-<p>      (per partition, gauge)
///   liquid.consumer.<group>.checkpoint_age_ms    (max over partitions)
/// The same gauge names are also refreshed live by Consumer::Poll; this
/// function is the authoritative path when the consumer may be dead (it is
/// what `liquid-top` calls each refresh). Partitions whose leader is
/// unavailable are skipped.
std::vector<GroupLag> CollectConsumerLag(Cluster* cluster,
                                         OffsetManager* offsets, Clock* clock);

/// Renders the result of CollectConsumerLag as a fixed-width operator table
/// (one row per group/partition, with totals), as printed by `liquid-top`.
std::string FormatLagTable(const std::vector<GroupLag>& groups);

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_LAG_MONITOR_H_
