#ifndef LIQUID_MESSAGING_QUOTA_H_
#define LIQUID_MESSAGING_QUOTA_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace liquid::messaging {

/// Per-client byte-rate quotas, the messaging-layer half of multi-tenancy
/// (§4.5: "to retain a given quality-of-service per application, while
/// maintaining a high cluster utilization, Liquid uses a resource management
/// layer that isolates resources on a per-application basis").
///
/// Token-bucket per client id: each request charges its payload bytes; when a
/// client exceeds its rate the broker responds with a throttle delay (as
/// Kafka does), which the client is expected to honour before retrying.
class QuotaManager {
 public:
  explicit QuotaManager(Clock* clock) : clock_(clock) {}

  QuotaManager(const QuotaManager&) = delete;
  QuotaManager& operator=(const QuotaManager&) = delete;

  /// Sets the allowed byte rate for `client_id` (<= 0 removes the quota).
  void SetQuota(const std::string& client_id, int64_t bytes_per_sec);

  /// Charges `bytes` against the client's bucket; returns the throttle delay
  /// in ms the client must wait (0 if within quota or unquoted). The empty
  /// client id is never throttled (internal traffic: replication, restore).
  int64_t Charge(const std::string& client_id, int64_t bytes);

  int64_t throttled_requests() const;

 private:
  struct Bucket {
    int64_t bytes_per_sec = 0;
    double tokens = 0;       // Available bytes.
    int64_t last_refill_ms = 0;
  };

  Clock* const clock_;
  mutable Mutex mu_;
  std::map<std::string, Bucket> buckets_ GUARDED_BY(mu_);
  int64_t throttled_requests_ GUARDED_BY(mu_) = 0;
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_QUOTA_H_
