#ifndef LIQUID_MESSAGING_PRODUCER_H_
#define LIQUID_MESSAGING_PRODUCER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "messaging/metadata.h"
#include "messaging/transaction.h"
#include "storage/record.h"

namespace liquid::messaging {

class Cluster;

/// How records are routed to partitions (§3.1: "producers can choose to which
/// partition to publish data in a round-robin fashion or according to a hash
/// function for load-balancing or semantic routing").
enum class PartitionerType { kRoundRobin, kHashByKey };

/// Producer tuning knobs: durability (acks), routing, retries, batching.
struct ProducerConfig {
  AckMode acks = AckMode::kAll;
  PartitionerType partitioner = PartitionerType::kHashByKey;
  /// Unified retry discipline (DESIGN.md §7): NotLeader / Unavailable /
  /// ResourceExhausted back off with capped exponential jittered delays and
  /// the leader cache is invalidated (metadata refresh) in between; all other
  /// codes fail fast.
  RetryPolicy retry;
  /// Batches flush automatically once this many records accumulate for a
  /// partition (or on Flush()).
  size_t batch_max_records = 64;
  /// Enables idempotent publishing: the broker deduplicates retried batches
  /// by (producer id, sequence) — the paper's "exactly-once effort" (§4.3).
  bool idempotent = false;
  /// Client id charged against broker-side byte-rate quotas (§4.5); empty
  /// means unquoted.
  std::string client_id;
  /// Stable transactional id; set it (plus InitTransactions) to publish
  /// atomically with Begin/Commit/AbortTransaction (implies idempotence).
  std::string transactional_id;
};

/// Publishing client of the messaging layer.
class Producer {
 public:
  /// Optional custom routing: record -> partition index.
  using CustomPartitioner =
      std::function<int(const storage::Record&, int num_partitions)>;

  Producer(Cluster* cluster, ProducerConfig config);

  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  /// Buffers one record for `topic`; flushes its partition batch when full.
  LIQUID_HOT_PATH
  Status Send(const std::string& topic, storage::Record record);

  /// Sends all buffered batches.
  Status Flush();

  /// Synchronously publishes a batch straight to one partition.
  Result<ProduceResponse> SendBatch(const TopicPartition& tp,
                                    std::vector<storage::Record> records);

  void SetCustomPartitioner(CustomPartitioner partitioner) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    custom_partitioner_ = std::move(partitioner);
  }

  // ---- Transactions (exactly-once publishing, §4.3 extension) ----

  /// Registers config.transactional_id with the coordinator; fences any
  /// previous incarnation. Must be called before Begin/Commit/Abort.
  Status InitTransactions(TransactionCoordinator* coordinator);

  /// Starts a transaction; subsequent sends are invisible to read_committed
  /// consumers until CommitTransaction.
  Status BeginTransaction();

  /// Flushes buffered batches and atomically commits the transaction.
  Status CommitTransaction();

  /// Discards the transaction: its records stay in the logs but are filtered
  /// from read_committed consumers forever.
  Status AbortTransaction();

  int64_t records_sent() const EXCLUDES(mu_);
  int64_t send_retries() const EXCLUDES(mu_);
  int64_t producer_id() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return producer_id_;
  }

 private:
  Result<int> PartitionFor(const std::string& topic,
                           const storage::Record& record) REQUIRES(mu_);

  Cluster* cluster_;
  const ProducerConfig config_;

  // Cached handles into MetricsRegistry::Default(), resolved once at
  // construction so SendBatch never takes the registry lock (entries are
  // never erased, so the pointers stay valid for the process lifetime).
  Counter* const records_counter_;
  Counter* const throttle_waits_counter_;
  const RetryMetrics retry_metrics_ = RetryMetrics::Create("liquid.producer.");

  mutable Mutex mu_;
  CustomPartitioner custom_partitioner_ GUARDED_BY(mu_);
  // Assigned by InitTransactions after construction, so reads must hold mu_.
  int64_t producer_id_ GUARDED_BY(mu_);
  TransactionCoordinator* txn_coordinator_ GUARDED_BY(mu_) = nullptr;
  bool in_transaction_ GUARDED_BY(mu_) = false;
  std::map<TopicPartition, std::vector<storage::Record>> batches_
      GUARDED_BY(mu_);
  std::map<TopicPartition, int32_t> next_sequence_ GUARDED_BY(mu_);
  /// Last-known leader broker id per partition. SendBatch resolves through
  /// this cache; a retriable failure erases the entry so the next attempt
  /// re-reads cluster metadata instead of re-sending to a dead leader.
  std::map<TopicPartition, int> leader_ids_ GUARDED_BY(mu_);
  std::map<std::string, uint64_t> round_robin_ GUARDED_BY(mu_);
  int64_t records_sent_ GUARDED_BY(mu_) = 0;
  int64_t send_retries_ GUARDED_BY(mu_) = 0;
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_PRODUCER_H_
