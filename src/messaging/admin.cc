#include "messaging/admin.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"

namespace liquid::messaging {

Admin::Admin(Cluster* cluster, OffsetManager* offsets)
    : cluster_(cluster), offsets_(offsets) {}

ClusterDescription Admin::DescribeCluster() const {
  ClusterDescription description;
  description.controller_id = cluster_->ControllerId();
  const auto alive = cluster_->AliveBrokerIds();
  const std::set<int> alive_set(alive.begin(), alive.end());
  for (int id : cluster_->BrokerIds()) {
    if (alive_set.count(id)) {
      description.alive_brokers.push_back(id);
    } else {
      description.dead_brokers.push_back(id);
    }
  }
  for (const std::string& topic : cluster_->Topics()) {
    ++description.topics;
    auto partitions = cluster_->PartitionsOf(topic);
    if (!partitions.ok()) continue;
    for (const TopicPartition& tp : *partitions) {
      ++description.partitions;
      auto state = cluster_->GetPartitionState(tp);
      if (!state.ok()) continue;
      if (state->leader < 0) ++description.offline_partitions;
      if (state->isr.size() < state->replicas.size()) {
        ++description.under_replicated_partitions;
      }
    }
  }
  return description;
}

Result<std::vector<PartitionState>> Admin::DescribeTopic(
    const std::string& topic) const {
  LIQUID_ASSIGN_OR_RETURN(std::vector<TopicPartition> partitions,
                          cluster_->PartitionsOf(topic));
  std::vector<PartitionState> out;
  for (const TopicPartition& tp : partitions) {
    LIQUID_ASSIGN_OR_RETURN(PartitionState state,
                            cluster_->GetPartitionState(tp));
    out.push_back(std::move(state));
  }
  return out;
}

Result<std::vector<PartitionLag>> Admin::ConsumerLag(
    const std::string& group, const std::string& topic) const {
  LIQUID_ASSIGN_OR_RETURN(std::vector<TopicPartition> partitions,
                          cluster_->PartitionsOf(topic));
  std::vector<PartitionLag> out;
  for (const TopicPartition& tp : partitions) {
    PartitionLag lag;
    lag.tp = tp;
    auto leader = cluster_->LeaderFor(tp);
    if (leader.ok()) {
      auto hw = (*leader)->HighWatermark(tp);
      if (hw.ok()) lag.high_watermark = *hw;
    }
    auto commit = offsets_->Fetch(group, tp);
    if (commit.ok()) lag.committed_offset = commit->offset;
    lag.lag = lag.high_watermark -
              (lag.committed_offset < 0 ? 0 : lag.committed_offset);
    out.push_back(lag);
  }
  return out;
}

Status Admin::ReassignPartition(const TopicPartition& tp,
                                const std::vector<int>& new_replicas) {
  if (new_replicas.empty()) {
    return Status::InvalidArgument("empty replica set");
  }
  LIQUID_ASSIGN_OR_RETURN(PartitionState state, cluster_->GetPartitionState(tp));
  LIQUID_ASSIGN_OR_RETURN(TopicConfig config,
                          cluster_->GetTopicConfig(tp.topic));
  for (int id : new_replicas) {
    Broker* broker = cluster_->broker(id);
    if (broker == nullptr || !broker->alive()) {
      return Status::InvalidArgument("replica target not alive: " +
                                     std::to_string(id));
    }
  }
  // Unified retry discipline (DESIGN.md §7): a reassignment that lands during
  // a leader election re-reads the partition state with jittered backoff
  // until a leader emerges or the budget runs out.
  RetryState retry(retry_policy_, cluster_->clock(), Deadline::Infinite(),
                   static_cast<uint64_t>(tp.partition) + 1, &retry_metrics_);
  while (state.leader < 0) {
    Status offline = Status::Unavailable("partition offline: " + tp.ToString());
    if (!retry.ShouldRetry(offline)) return offline;
    LIQUID_ASSIGN_OR_RETURN(state, cluster_->GetPartitionState(tp));
  }

  // Phase 1: adding replicas join as followers of the current leader.
  for (int id : new_replicas) {
    Broker* broker = cluster_->broker(id);
    if (!broker->HostsPartition(tp)) {
      LIQUID_RETURN_NOT_OK(broker->BecomeFollower(tp, state, config));
    }
  }
  // Phase 2: drive catch-up until every new replica matches the leader.
  Broker* leader = cluster_->broker(state.leader);
  for (int round = 0; round < 1000; ++round) {
    cluster_->ReplicationTick();
    LIQUID_ASSIGN_OR_RETURN(int64_t leader_leo, leader->LogEndOffset(tp));
    bool caught_up = true;
    for (int id : new_replicas) {
      if (id == state.leader) continue;
      auto leo = cluster_->broker(id)->LogEndOffset(tp);
      if (!leo.ok() || *leo < leader_leo) {
        caught_up = false;
        break;
      }
    }
    if (caught_up) break;
    if (round == 999) return Status::TimedOut("reassignment catch-up stalled");
  }

  // Phase 3: switch the authoritative state to the new replica set.
  PartitionState next;
  next.replicas = new_replicas;
  next.leader_epoch = state.leader_epoch + 1;
  const bool leader_stays =
      std::find(new_replicas.begin(), new_replicas.end(), state.leader) !=
      new_replicas.end();
  next.leader = leader_stays ? state.leader : new_replicas.front();
  next.isr = new_replicas;
  LIQUID_RETURN_NOT_OK(cluster_->coord()->Set(paths::PartitionStatePath(tp),
                                              next.Serialize()));
  for (int id : new_replicas) {
    Broker* broker = cluster_->broker(id);
    Status st = id == next.leader ? broker->BecomeLeader(tp, next, config)
                                  : broker->BecomeFollower(tp, next, config);
    if (!st.ok()) {
      LIQUID_LOG_WARN << "reassignment role change failed on broker " << id
                      << ": " << st.ToString();
    }
  }
  // Phase 4: drop the partition from replicas leaving the set.
  for (int id : state.replicas) {
    if (std::find(new_replicas.begin(), new_replicas.end(), id) !=
        new_replicas.end()) {
      continue;
    }
    Broker* broker = cluster_->broker(id);
    if (broker != nullptr && broker->alive()) {
      // The reassignment is already committed in metadata; a failed stop on
      // a departing replica leaves orphaned data behind but must not fail
      // (or roll back) the reassignment itself.
      if (Status st = broker->StopReplica(tp, /*delete_data=*/true);
          !st.ok() && !st.IsNotFound()) {
        LIQUID_LOG_WARN << "reassign: stop-replica failed on broker " << id
                        << " for " << tp.ToString() << ": " << st.ToString();
      }
    }
  }
  return Status::OK();
}

Status Admin::DrainBroker(int broker_id) {
  std::vector<int> alive = cluster_->AliveBrokerIds();
  alive.erase(std::remove(alive.begin(), alive.end(), broker_id), alive.end());
  if (alive.empty()) {
    return Status::FailedPrecondition("no other brokers to drain onto");
  }
  size_t next_target = 0;
  for (const std::string& topic : cluster_->Topics()) {
    auto partitions = cluster_->PartitionsOf(topic);
    if (!partitions.ok()) continue;
    for (const TopicPartition& tp : *partitions) {
      auto state = cluster_->GetPartitionState(tp);
      if (!state.ok()) continue;
      if (std::find(state->replicas.begin(), state->replicas.end(), broker_id) ==
          state->replicas.end()) {
        continue;
      }
      // Replace broker_id with an alive broker not already in the set.
      std::vector<int> replicas = state->replicas;
      for (int& replica : replicas) {
        if (replica != broker_id) continue;
        for (size_t tried = 0; tried < alive.size(); ++tried) {
          const int candidate = alive[next_target++ % alive.size()];
          if (std::find(replicas.begin(), replicas.end(), candidate) ==
              replicas.end()) {
            replica = candidate;
            break;
          }
        }
      }
      if (std::find(replicas.begin(), replicas.end(), broker_id) !=
          replicas.end()) {
        continue;  // Could not find a substitute (tiny clusters): skip.
      }
      LIQUID_RETURN_NOT_OK(ReassignPartition(tp, replicas));
    }
  }
  return Status::OK();
}

}  // namespace liquid::messaging
