#ifndef LIQUID_MESSAGING_METADATA_H_
#define LIQUID_MESSAGING_METADATA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/log.h"

namespace liquid::messaging {

/// Identifies one partition of one topic.
struct TopicPartition {
  std::string topic;
  int partition = 0;

  bool operator==(const TopicPartition& other) const {
    return partition == other.partition && topic == other.topic;
  }
  bool operator<(const TopicPartition& other) const {
    if (topic != other.topic) return topic < other.topic;
    return partition < other.partition;
  }

  // liquid-lint: allow(hot-alloc): formats a partition name on demand; hot paths reach this only on traced/error/log branches and callers that must own a string key.
  std::string ToString() const { return topic + "-" + std::to_string(partition); }
};

/// Hash functor so TopicPartition can key unordered containers.
struct TopicPartitionHash {
  size_t operator()(const TopicPartition& tp) const {
    return std::hash<std::string>()(tp.topic) * 31 +
           static_cast<size_t>(tp.partition);
  }
};

/// Per-topic configuration set at creation time.
struct TopicConfig {
  int partitions = 1;
  int replication_factor = 1;
  storage::LogConfig log;
  /// Produce with acks=all fails unless at least this many replicas
  /// (including the leader) are in sync.
  int min_insync_replicas = 1;
  /// If the ISR is empty on failover, allow electing a non-ISR replica
  /// (availability over durability).
  bool unclean_leader_election = false;
};

/// Replication state of one partition, maintained by the controller in the
/// coordination service (§4.3).
struct PartitionState {
  int leader = -1;       // Broker id; -1 = offline.
  int leader_epoch = 0;  // Bumped on every leader change.
  std::vector<int> replicas;
  std::vector<int> isr;  // In-sync replicas, always a subset of replicas.

  std::string Serialize() const;
  static Result<PartitionState> Parse(const std::string& data);
};

/// Durability level requested by a producer (§4.3 performance/durability
/// trade-off).
enum class AckMode {
  kNone = 0,  // Fire and forget: acknowledged before even the local append.
  kLeader = 1,  // Acknowledged after the leader's local append.
  kAll = -1,    // Acknowledged after every ISR member has the data.
};

/// Broker reply to a produce request: where the batch landed in the log.
struct ProduceResponse {
  int64_t base_offset = -1;
  int64_t log_end_offset = -1;
  /// Quota verdict (§4.5): how long the caller must back off before its next
  /// request. The broker never sleeps on the request path — clients enforce
  /// their own throttle (see Producer), keeping broker threads available.
  int64_t throttle_ms = 0;
};

/// Broker reply to a fetch request: records plus the log offsets a consumer
/// needs to track its position and compute lag (high_watermark − position).
struct FetchResponse {
  std::vector<storage::Record> records;
  /// Replica fetches get the raw encoded frames as a shared immutable buffer
  /// instead of `records` (the encode-once path: the follower appends these
  /// bytes verbatim — no decode/re-encode round trip, no deep copy).
  storage::EncodedBatch batch;
  int64_t high_watermark = 0;
  int64_t log_start_offset = 0;
  int64_t log_end_offset = 0;
  /// Where the consumer should fetch next. May be beyond the last returned
  /// record: read_committed fetches filter out control markers and aborted
  /// data, and the position must advance past them.
  int64_t next_fetch_offset = 0;
  /// Same client-side throttle contract as ProduceResponse::throttle_ms.
  int64_t throttle_ms = 0;
};

/// Coordination-service paths used by brokers and the controller.
namespace paths {

inline std::string BrokersRoot() { return "/brokers"; }
inline std::string BrokerIds() { return "/brokers/ids"; }
inline std::string Broker(int id) {
  return "/brokers/ids/" + std::to_string(id);
}
inline std::string Controller() { return "/controller"; }
inline std::string TopicsRoot() { return "/topics"; }
inline std::string Topic(const std::string& topic) { return "/topics/" + topic; }
inline std::string Partitions(const std::string& topic) {
  return "/topics/" + topic + "/partitions";
}
inline std::string PartitionStatePath(const TopicPartition& tp) {
  return "/topics/" + tp.topic + "/partitions/" + std::to_string(tp.partition);
}

}  // namespace paths

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_METADATA_H_
