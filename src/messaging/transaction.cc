#include "messaging/transaction.h"

#include "common/logging.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"

namespace liquid::messaging {

TransactionCoordinator::TransactionCoordinator(Cluster* cluster,
                                               OffsetManager* offsets)
    : cluster_(cluster), offsets_(offsets) {}

Result<int64_t> TransactionCoordinator::InitProducer(const std::string& txn_id) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    TxnState state;
    state.pid = next_pid_++;
    state.epoch = 0;
    txns_[txn_id] = state;
    return txns_[txn_id].pid;
  }
  // Fencing: a new incarnation of the same transactional id aborts whatever
  // the zombie predecessor left in flight and bumps the epoch.
  TxnState& state = it->second;
  if (state.in_flight) {
    Status st = EndLocked(&state, /*commit=*/false);
    if (!st.ok()) {
      LIQUID_LOG_WARN << "fencing abort for " << txn_id
                      << " failed: " << st.ToString();
    }
  }
  state.epoch++;
  state.pid = next_pid_++;  // New pid: the zombie's produces are orphaned.
  return state.pid;
}

Status TransactionCoordinator::Begin(const std::string& txn_id) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return Status::NotFound("unknown transactional id: " + txn_id);
  }
  if (it->second.in_flight) {
    return Status::FailedPrecondition("transaction already in flight");
  }
  it->second.in_flight = true;
  it->second.partitions.clear();
  it->second.pending_offsets.clear();
  return Status::OK();
}

Status TransactionCoordinator::AddPartition(const std::string& txn_id,
                                            const TopicPartition& tp) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return Status::NotFound("unknown transactional id: " + txn_id);
  }
  TxnState& state = it->second;
  if (!state.in_flight) {
    return Status::FailedPrecondition("no transaction in flight");
  }
  if (state.partitions.count(tp)) return Status::OK();
  auto leader = cluster_->LeaderFor(tp);
  if (!leader.ok()) return leader.status();
  LIQUID_RETURN_NOT_OK((*leader)->BeginPartitionTxn(tp, state.pid));
  state.partitions.insert(tp);
  return Status::OK();
}

Status TransactionCoordinator::AddOffsets(const std::string& txn_id,
                                          const std::string& group,
                                          const TopicPartition& tp,
                                          OffsetCommit commit) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return Status::NotFound("unknown transactional id: " + txn_id);
  }
  if (!it->second.in_flight) {
    return Status::FailedPrecondition("no transaction in flight");
  }
  it->second.pending_offsets.push_back(
      TxnState::PendingOffset{group, tp, std::move(commit)});
  return Status::OK();
}

Status TransactionCoordinator::EndLocked(TxnState* state, bool commit) {
  Status result = Status::OK();
  for (const TopicPartition& tp : state->partitions) {
    auto leader = cluster_->LeaderFor(tp);
    if (!leader.ok()) {
      result = leader.status();
      continue;
    }
    Status st = (*leader)->WriteTxnMarker(tp, state->pid, commit);
    if (!st.ok() && !st.IsNotFound()) result = st;
  }
  if (commit && result.ok()) {
    for (const auto& pending : state->pending_offsets) {
      LIQUID_RETURN_NOT_OK(
          offsets_->Commit(pending.group, pending.tp, pending.commit));
    }
  }
  state->in_flight = false;
  state->partitions.clear();
  state->pending_offsets.clear();
  return result;
}

Status TransactionCoordinator::End(const std::string& txn_id, bool commit) {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return Status::NotFound("unknown transactional id: " + txn_id);
  }
  if (!it->second.in_flight) {
    return Status::FailedPrecondition("no transaction in flight");
  }
  return EndLocked(&it->second, commit);
}

Result<int64_t> TransactionCoordinator::ProducerIdFor(
    const std::string& txn_id) const {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return Status::NotFound("unknown transactional id: " + txn_id);
  }
  return it->second.pid;
}

bool TransactionCoordinator::InFlight(const std::string& txn_id) const {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn_id);
  return it != txns_.end() && it->second.in_flight;
}

}  // namespace liquid::messaging
