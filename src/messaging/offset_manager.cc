#include "messaging/offset_manager.h"

#include <cerrno>
#include <cstdlib>

#include "common/coding.h"
#include "common/fault.h"
#include "common/metrics.h"

namespace liquid::messaging {

namespace {

std::string EncodeCommit(const OffsetCommit& commit) {
  std::string out;
  PutFixed64(&out, static_cast<uint64_t>(commit.offset));
  PutFixed64(&out, static_cast<uint64_t>(commit.committed_at_ms));
  PutVarint32(&out, static_cast<uint32_t>(commit.annotations.size()));
  for (const auto& [key, value] : commit.annotations) {
    PutLengthPrefixed(&out, key);
    PutLengthPrefixed(&out, value);
  }
  return out;
}

Result<OffsetCommit> DecodeCommit(const std::string& data) {
  Slice cursor(data);
  OffsetCommit commit;
  uint64_t offset = 0, at = 0;
  uint32_t count = 0;
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &offset));
  LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &at));
  LIQUID_RETURN_NOT_OK(GetVarint32(&cursor, &count));
  commit.offset = static_cast<int64_t>(offset);
  commit.committed_at_ms = static_cast<int64_t>(at);
  for (uint32_t i = 0; i < count; ++i) {
    Slice key, value;
    LIQUID_RETURN_NOT_OK(GetLengthPrefixed(&cursor, &key));
    LIQUID_RETURN_NOT_OK(GetLengthPrefixed(&cursor, &value));
    commit.annotations[key.ToString()] = value.ToString();
  }
  return commit;
}

}  // namespace

OffsetManager::OffsetManager(std::unique_ptr<storage::Log> log, Clock* clock)
    : log_(std::move(log)), clock_(clock) {}

Result<std::unique_ptr<OffsetManager>> OffsetManager::Open(
    storage::Disk* disk, const std::string& prefix, Clock* clock) {
  storage::LogConfig config;
  config.compaction_enabled = true;
  config.segment_bytes = 256 * 1024;
  auto log = storage::Log::Open(disk, nullptr, prefix, config, clock);
  if (!log.ok()) return log.status();
  std::unique_ptr<OffsetManager> manager(
      new OffsetManager(std::move(log).value(), clock));
  LIQUID_RETURN_NOT_OK(manager->Recover());
  return manager;
}

Status OffsetManager::Recover() {
  MutexLock lock(&mu_);
  int64_t cursor = log_->start_offset();
  std::vector<storage::Record> chunk;
  while (cursor < log_->end_offset()) {
    chunk.clear();
    LIQUID_RETURN_NOT_OK(log_->Read(cursor, 1 << 20, &chunk));
    if (chunk.empty()) break;
    for (const auto& record : chunk) {
      auto commit = DecodeCommit(record.value);
      if (!commit.ok()) continue;
      std::string group;
      TopicPartition tp;
      if (ParseCacheKey(record.key, &group, &tp)) {
        latest_[{group, tp}] = *commit;
      }
      cache_[record.key] = std::move(commit).value();
    }
    cursor = chunk.back().offset + 1;
  }
  return Status::OK();
}

std::string OffsetManager::CacheKey(const std::string& group,
                                    const TopicPartition& tp,
                                    const std::string& label) {
  // liquid-lint: allow(hot-alloc): builds the cache key whose lookup lets Fetch skip a full coordinator-log scan -- the allocation pays for the scan it avoids.
  std::string key = group + "\x01" + tp.topic + "\x01" +
                    std::to_string(tp.partition);
  if (!label.empty()) key += "\x01" + label;
  return key;
}

bool OffsetManager::ParseCacheKey(const std::string& key, std::string* group,
                                  TopicPartition* tp) {
  const size_t first = key.find('\x01');
  if (first == std::string::npos) return false;
  const size_t second = key.find('\x01', first + 1);
  if (second == std::string::npos) return false;
  if (key.find('\x01', second + 1) != std::string::npos) {
    return false;  // Three separators: a labeled checkpoint.
  }
  *group = key.substr(0, first);
  tp->topic = key.substr(first + 1, second - first - 1);
  errno = 0;
  char* end = nullptr;
  const long partition = std::strtol(key.c_str() + second + 1, &end, 10);
  if (errno != 0 || end == key.c_str() + second + 1 || *end != '\0') {
    return false;
  }
  tp->partition = static_cast<int>(partition);
  return true;
}

void OffsetManager::NoteCommitLocked(const std::string& group,
                                     const TopicPartition& tp,
                                     const OffsetCommit& commit) {
  latest_[{group, tp}] = commit;
  MetricsRegistry* global = MetricsRegistry::Default();
  global->GetCounter("liquid.offsets.commits")->Increment();
  global->GetGauge("liquid.offsets." + group + ".last_commit_ms")
      ->Set(commit.committed_at_ms);
}

std::vector<GroupCommit> OffsetManager::SnapshotCommits() const {
  MutexLock lock(&mu_);
  std::vector<GroupCommit> out;
  out.reserve(latest_.size());
  for (const auto& [key, commit] : latest_) {
    out.push_back(GroupCommit{key.first, key.second, commit});
  }
  return out;
}

Status OffsetManager::Persist(const std::string& key,
                              const OffsetCommit& commit) {
  std::vector<storage::Record> batch;
  batch.push_back(storage::Record::KeyValue(key, EncodeCommit(commit)));
  // Unified retry discipline (DESIGN.md §7): transient append verdicts
  // (staging-ring backpressure surfacing as ResourceExhausted, injected
  // Unavailable) back off and retry; IOError/Corruption fail fast so a sick
  // disk is reported, not papered over. Commits are rare and the manager is
  // logically centralized, so sleeping briefly under mu_ here only delays
  // other offset traffic of the same coordinator — never a broker data path.
  RetryState retry(retry_policy_, clock_, Deadline::Infinite(),
                   static_cast<uint64_t>(commits_total_) + 1, &retry_metrics_);
  for (;;) {
    Status append = [&]() -> Status {
      // Chaos surface (DESIGN.md §7): the offset-commit append — lets the
      // soak prove consumers resume from the last *durable* checkpoint.
      LIQUID_FAULT_POINT("offsets.commit.before_append");
      return log_->Append(&batch).status();
    }();
    if (append.ok() || !retry.ShouldRetry(append)) return append;
  }
}

Status OffsetManager::Commit(const std::string& group, const TopicPartition& tp,
                             OffsetCommit commit) {
  if (commit.committed_at_ms == 0) commit.committed_at_ms = clock_->NowMs();
  const std::string key = CacheKey(group, tp, "");
  MutexLock lock(&mu_);
  LIQUID_RETURN_NOT_OK(Persist(key, commit));
  NoteCommitLocked(group, tp, commit);
  cache_[key] = std::move(commit);
  ++commits_total_;
  return Status::OK();
}

Result<OffsetCommit> OffsetManager::Fetch(const std::string& group,
                                          const TopicPartition& tp) const {
  MutexLock lock(&mu_);
  auto it = cache_.find(CacheKey(group, tp, ""));
  if (it == cache_.end()) {
    return Status::NotFound("no committed offset for " + group + "/" +
                            tp.ToString());
  }
  return it->second;
}

Status OffsetManager::CommitLabeled(const std::string& group,
                                    const TopicPartition& tp,
                                    const std::string& label,
                                    OffsetCommit commit) {
  if (label.empty()) return Status::InvalidArgument("empty label");
  if (commit.committed_at_ms == 0) commit.committed_at_ms = clock_->NowMs();
  const std::string key = CacheKey(group, tp, label);
  MutexLock lock(&mu_);
  LIQUID_RETURN_NOT_OK(Persist(key, commit));
  cache_[key] = std::move(commit);
  ++commits_total_;
  return Status::OK();
}

Result<OffsetCommit> OffsetManager::FetchLabeled(const std::string& group,
                                                 const TopicPartition& tp,
                                                 const std::string& label) const {
  MutexLock lock(&mu_);
  auto it = cache_.find(CacheKey(group, tp, label));
  if (it == cache_.end()) {
    return Status::NotFound("no labeled commit '" + label + "'");
  }
  return it->second;
}

Result<storage::CompactionStats> OffsetManager::CompactBackingLog() {
  return log_->Compact();
}

int64_t OffsetManager::commits_total() const {
  MutexLock lock(&mu_);
  return commits_total_;
}

}  // namespace liquid::messaging
