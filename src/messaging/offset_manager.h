#ifndef LIQUID_MESSAGING_OFFSET_MANAGER_H_
#define LIQUID_MESSAGING_OFFSET_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "messaging/metadata.h"
#include "storage/disk.h"
#include "storage/log.h"

namespace liquid::messaging {

/// A checkpoint of consumption progress, optionally annotated with arbitrary
/// metadata (§4.2: "a map of offsets to the metadata, such as the software
/// version that consumed a given offset, or the timestamp at which data was
/// read").
struct OffsetCommit {
  int64_t offset = -1;
  int64_t committed_at_ms = 0;
  std::map<std::string, std::string> annotations;
};

/// One (group, partition) entry of SnapshotCommits(): the latest *unlabeled*
/// commit, in structured form. Labeled checkpoints are excluded — they mark
/// historical points, not current consumption progress, so including them
/// would make lag look perpetually huge.
struct GroupCommit {
  std::string group;
  TopicPartition tp;
  OffsetCommit commit;
};

/// The highly-available, logically centralized offset manager (§3.1, §4.2).
///
/// Commits are persisted to an internal *compacted* commit log (exactly how
/// Kafka's __consumer_offsets topic works) and cached in memory; on restart
/// the cache is rebuilt by replaying the log. Labeled commits provide the
/// annotation-based rewind the paper describes: a job can checkpoint "where
/// algorithm v2 started" and later re-read from that point.
class OffsetManager {
 public:
  static Result<std::unique_ptr<OffsetManager>> Open(storage::Disk* disk,
                                                     const std::string& prefix,
                                                     Clock* clock);

  OffsetManager(const OffsetManager&) = delete;
  OffsetManager& operator=(const OffsetManager&) = delete;

  /// Saves the latest commit for (group, tp).
  Status Commit(const std::string& group, const TopicPartition& tp,
                OffsetCommit commit);

  /// Latest commit for (group, tp); NotFound if never committed.
  Result<OffsetCommit> Fetch(const std::string& group,
                             const TopicPartition& tp) const;

  /// Saves a named checkpoint that is NOT overwritten by later Commit()s —
  /// e.g. label = "algo-v2" marking where a new pipeline version started.
  Status CommitLabeled(const std::string& group, const TopicPartition& tp,
                       const std::string& label, OffsetCommit commit);

  Result<OffsetCommit> FetchLabeled(const std::string& group,
                                    const TopicPartition& tp,
                                    const std::string& label) const;

  /// Latest unlabeled commit of every (group, partition) ever committed or
  /// recovered. This is the observability surface the lag monitor builds on:
  /// because it reflects *committed* progress (not live consumer positions),
  /// lag derived from it keeps growing when a consumer dies — exactly the
  /// signal an operator needs (see lag_monitor.h).
  std::vector<GroupCommit> SnapshotCommits() const EXCLUDES(mu_);

  /// Compacts the backing log (it is keyed, so only the newest commit per
  /// (group, tp[, label]) survives).
  Result<storage::CompactionStats> CompactBackingLog();

  uint64_t backing_log_bytes() const { return log_->size_bytes(); }
  int64_t commits_total() const;

 private:
  OffsetManager(std::unique_ptr<storage::Log> log, Clock* clock);

  Status Recover() EXCLUDES(mu_);
  /// Appends the commit record; held under mu_ so the backing-log append and
  /// the cache update of one commit are atomic with respect to readers.
  Status Persist(const std::string& key, const OffsetCommit& commit)
      REQUIRES(mu_);
  static std::string CacheKey(const std::string& group, const TopicPartition& tp,
                              const std::string& label);
  /// Inverse of CacheKey for unlabeled keys; returns false for labeled ones
  /// (used by Recover to rebuild the structured latest_ map).
  static bool ParseCacheKey(const std::string& key, std::string* group,
                            TopicPartition* tp);
  /// Mirrors an unlabeled commit into latest_ and the commit metrics.
  void NoteCommitLocked(const std::string& group, const TopicPartition& tp,
                        const OffsetCommit& commit) REQUIRES(mu_);

  std::unique_ptr<storage::Log> log_;
  Clock* const clock_;
  /// Commit appends retry transient backing-log verdicts (staging-ring
  /// backpressure, injected Unavailable) with the unified backoff; real
  /// I/O errors still fail fast (DESIGN.md §7). Offset commits are small
  /// and rare relative to produces, so the bounded in-lock retry is cheaper
  /// than surfacing every transient hiccup to all consumers of the group.
  const RetryPolicy retry_policy_{.max_attempts = 4, .max_backoff_ms = 8};
  const RetryMetrics retry_metrics_ = RetryMetrics::Create("liquid.offsets.");

  mutable Mutex mu_;
  std::map<std::string, OffsetCommit> cache_ GUARDED_BY(mu_);
  /// Structured mirror of the *unlabeled* entries of cache_, keyed by
  /// (group, partition); maintained by Commit and rebuilt by Recover. Kept
  /// separate so SnapshotCommits never parses flat cache keys.
  std::map<std::pair<std::string, TopicPartition>, OffsetCommit> latest_
      GUARDED_BY(mu_);
  int64_t commits_total_ GUARDED_BY(mu_) = 0;
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_OFFSET_MANAGER_H_
