#include "messaging/lag_monitor.h"

#include <algorithm>
#include <map>

#include "common/metrics.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"

namespace liquid::messaging {

std::vector<GroupLag> CollectConsumerLag(Cluster* cluster,
                                         OffsetManager* offsets, Clock* clock) {
  const int64_t now_ms = clock->NowMs();
  std::map<std::string, GroupLag> by_group;
  for (const GroupCommit& entry : offsets->SnapshotCommits()) {
    auto leader = cluster->LeaderFor(entry.tp);
    if (!leader.ok()) continue;  // Leaderless partition: no watermark to read.
    auto hw = (*leader)->HighWatermark(entry.tp);
    if (!hw.ok()) continue;

    GroupPartitionLag lag;
    lag.tp = entry.tp;
    lag.committed = entry.commit.offset;
    lag.high_watermark = *hw;
    lag.lag = std::max<int64_t>(0, *hw - std::max<int64_t>(0, lag.committed));
    lag.checkpoint_age_ms =
        std::max<int64_t>(0, now_ms - entry.commit.committed_at_ms);

    GroupLag& group = by_group[entry.group];
    group.group = entry.group;
    group.total_lag += lag.lag;
    group.max_checkpoint_age_ms =
        std::max(group.max_checkpoint_age_ms, lag.checkpoint_age_ms);
    group.partitions.push_back(std::move(lag));
  }

  MetricsRegistry* global = MetricsRegistry::Default();
  std::vector<GroupLag> out;
  out.reserve(by_group.size());
  for (auto& [name, group] : by_group) {
    const std::string prefix = "liquid.consumer." + name + ".";
    global->GetGauge(prefix + "lag")->Set(group.total_lag);
    global->GetGauge(prefix + "checkpoint_age_ms")
        ->Set(group.max_checkpoint_age_ms);
    for (const GroupPartitionLag& partition : group.partitions) {
      global->GetGauge(prefix + "lag." + partition.tp.ToString())
          ->Set(partition.lag);
    }
    out.push_back(std::move(group));
  }
  return out;
}

std::string FormatLagTable(const std::vector<GroupLag>& groups) {
  // Column widths chosen for typical topic/group names; longer values simply
  // push the row wider (readability over strict alignment).
  auto pad = [](std::string s, size_t width) {
    if (s.size() < width) s.append(width - s.size(), ' ');
    return s;
  };
  std::string out;
  out += pad("GROUP", 24) + pad("PARTITION", 20) + pad("COMMITTED", 12) +
         pad("HIGH-WM", 12) + pad("LAG", 10) + "CHECKPOINT-AGE-MS\n";
  if (groups.empty()) {
    out += "(no committed offsets)\n";
    return out;
  }
  for (const GroupLag& group : groups) {
    for (const GroupPartitionLag& partition : group.partitions) {
      out += pad(group.group, 24) + pad(partition.tp.ToString(), 20) +
             pad(std::to_string(partition.committed), 12) +
             pad(std::to_string(partition.high_watermark), 12) +
             pad(std::to_string(partition.lag), 10) +
             std::to_string(partition.checkpoint_age_ms) + "\n";
    }
    out += pad(group.group + " TOTAL", 44) + pad("", 24) +
           pad(std::to_string(group.total_lag), 10) +
           std::to_string(group.max_checkpoint_age_ms) + "\n";
  }
  return out;
}

}  // namespace liquid::messaging
