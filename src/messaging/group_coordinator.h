#ifndef LIQUID_MESSAGING_GROUP_COORDINATOR_H_
#define LIQUID_MESSAGING_GROUP_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "messaging/metadata.h"

namespace liquid::messaging {

class Cluster;

/// Partitions assigned to one group member in one generation.
struct GroupAssignment {
  int64_t generation = 0;
  std::vector<TopicPartition> partitions;
};

/// Coordinates consumer groups (§3.1): within a group each partition is owned
/// by exactly one member (queue semantics); across groups every group sees
/// all data (pub/sub semantics). Membership changes bump the generation and
/// trigger a rebalance; members discover it by comparing generations on poll.
///
/// Liveness: every Poll counts as a heartbeat; EvictExpiredMembers() removes
/// members silent for longer than the session timeout so their partitions are
/// redistributed (a crashed consumer cannot stall its partitions forever).
class GroupCoordinator {
 public:
  /// `session_timeout_ms <= 0` disables liveness eviction.
  explicit GroupCoordinator(Cluster* cluster, int64_t session_timeout_ms = -1);

  GroupCoordinator(const GroupCoordinator&) = delete;
  GroupCoordinator& operator=(const GroupCoordinator&) = delete;

  /// Adds (or re-registers) a member subscribing to `topics`; rebalances and
  /// returns the new generation.
  Result<int64_t> JoinGroup(const std::string& group,
                            const std::string& member_id,
                            const std::vector<std::string>& topics);

  /// Removes the member; its partitions are redistributed.
  Status LeaveGroup(const std::string& group, const std::string& member_id);

  /// The member's current assignment; NotFound if not a member.
  Result<GroupAssignment> GetAssignment(const std::string& group,
                                        const std::string& member_id) const;

  /// Current generation of the group (0 if the group does not exist).
  int64_t Generation(const std::string& group) const;

  /// Number of members in the group.
  int MemberCount(const std::string& group) const;

  /// Records liveness for a member (Consumer::Poll calls this).
  void Heartbeat(const std::string& group, const std::string& member_id);

  /// Evicts members whose last heartbeat is older than the session timeout,
  /// rebalancing affected groups. Returns the number of evicted members.
  int EvictExpiredMembers();

 private:
  struct Group {
    int64_t generation = 0;
    // member id -> subscribed topics.
    std::map<std::string, std::vector<std::string>> members;
    // member id -> assigned partitions.
    std::map<std::string, std::vector<TopicPartition>> assignment;
    // member id -> last heartbeat (clock ms).
    std::map<std::string, int64_t> last_heartbeat_ms;
  };

  /// Round-robin assignment of every subscribed partition over members,
  /// deterministic in member-id order.
  Status RebalanceLocked(Group* group) REQUIRES(mu_);

  Cluster* cluster_;
  const int64_t session_timeout_ms_;
  mutable Mutex mu_;
  std::map<std::string, Group> groups_ GUARDED_BY(mu_);
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_GROUP_COORDINATOR_H_
